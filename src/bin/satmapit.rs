//! `satmapit` — command-line front-end to the mapper toolchain.
//!
//! ```sh
//! satmapit kernels                      # list the benchmark suite
//! satmapit dot <kernel>                 # dump a kernel's DFG as Graphviz
//! satmapit map <kernel> [--size N] [--timeout S] [--routing R]
//!                                       # map, print the kernel program,
//!                                       # verify by execution
//! satmapit sweep <kernel> [--timeout S] # one Figure-6 column (2x2..5x5)
//! ```

use sat_mapit::cgra::Cgra;
use sat_mapit::core::routing::map_with_routing;
use sat_mapit::core::{codegen, Mapper, MapperConfig};
use sat_mapit::dfg::dot::to_dot;
use sat_mapit::kernels;
use sat_mapit::schedule::{mii, rec_mii, res_mii};
use sat_mapit::sim::verify_mapping;
use std::process::exit;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("kernels") => cmd_kernels(),
        Some("dot") => cmd_dot(&args[1..]),
        Some("map") => cmd_map(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        _ => {
            eprintln!("usage: satmapit <kernels|dot|map|sweep> [args]   (see --help in source)");
            exit(2);
        }
    }
}

fn kernel_or_exit(name: Option<&String>) -> kernels::Kernel {
    let Some(name) = name else {
        eprintln!("expected a kernel name; try `satmapit kernels`");
        exit(2);
    };
    if name == "paper-example" {
        return kernels::paper_example();
    }
    kernels::by_name(name).unwrap_or_else(|| {
        eprintln!("unknown kernel `{name}`; available: {:?} + paper-example", kernels::NAMES);
        exit(2);
    })
}

fn flag(args: &[String], name: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn cmd_kernels() {
    println!("{:<14} {:>5} {:>5}  description", "name", "nodes", "edges");
    for k in kernels::all() {
        println!(
            "{:<14} {:>5} {:>5}  {}",
            k.name(),
            k.dfg.num_nodes(),
            k.dfg.num_edges(),
            k.description
        );
    }
}

fn cmd_dot(args: &[String]) {
    let kernel = kernel_or_exit(args.first());
    print!("{}", to_dot(&kernel.dfg));
}

fn cmd_map(args: &[String]) {
    let kernel = kernel_or_exit(args.first());
    let size = flag(args, "--size").unwrap_or(3) as u16;
    let timeout = Duration::from_secs(flag(args, "--timeout").unwrap_or(60));
    let routes = flag(args, "--routing").unwrap_or(0) as u32;
    let cgra = Cgra::square(size);
    let config = MapperConfig {
        timeout: Some(timeout),
        ..MapperConfig::default()
    };

    println!(
        "kernel `{}` on {} | MII = max(Res {}, Rec {}) = {}",
        kernel.name(),
        cgra,
        res_mii(&kernel.dfg, &cgra),
        rec_mii(&kernel.dfg),
        mii(&kernel.dfg, &cgra)
    );

    let (dfg, outcome, used_routes) = if routes > 0 {
        let routed = map_with_routing(&kernel.dfg, &cgra, &config, routes);
        (routed.dfg, routed.outcome, routed.routes)
    } else {
        let outcome = Mapper::new(&kernel.dfg, &cgra).with_config(config).run();
        (kernel.dfg.clone(), outcome, 0)
    };

    match outcome.result {
        Ok(mapped) => {
            println!(
                "mapped at II={} ({} routing nodes) in {:?}",
                mapped.ii(),
                used_routes,
                outcome.elapsed
            );
            let program = codegen::kernel_program(&dfg, &cgra, &mapped.mapping, &mapped.registers);
            println!("\n{program}");
            println!("utilization: {:.0}%", program.utilization() * 100.0);
            match verify_mapping(&dfg, &cgra, &mapped, kernel.memory.clone(), 8) {
                Ok(sim) => println!("verified 8 iterations by execution ({} cycles) ✓", sim.cycles),
                Err(e) => {
                    eprintln!("VERIFICATION FAILED: {e}");
                    exit(1);
                }
            }
        }
        Err(e) => {
            eprintln!("mapping failed: {e} (after {:?})", outcome.elapsed);
            exit(1);
        }
    }
}

fn cmd_sweep(args: &[String]) {
    let kernel = kernel_or_exit(args.first());
    let timeout = Duration::from_secs(flag(args, "--timeout").unwrap_or(60));
    println!(" size | MII | II  | time");
    for n in 2..=5u16 {
        let cgra = Cgra::square(n);
        let outcome = Mapper::new(&kernel.dfg, &cgra)
            .with_timeout(timeout)
            .run();
        match outcome.ii() {
            Some(ii) => println!(
                " {n}x{n}  | {:>3} | {ii:>3} | {:?}",
                mii(&kernel.dfg, &cgra),
                outcome.elapsed
            ),
            None => println!(" {n}x{n}  | {:>3} |  ✕  | {:?}", mii(&kernel.dfg, &cgra), outcome.elapsed),
        }
    }
}
