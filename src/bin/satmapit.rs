//! `satmapit` — command-line front-end to the mapper toolchain.
//!
//! ```sh
//! satmapit kernels                      # list the benchmark suite
//! satmapit dot <kernel>                 # dump a kernel's DFG as Graphviz
//! satmapit map <kernel> [flags]         # map one kernel, verify by execution
//! satmapit sweep <kernel> [flags]       # one Figure-6 column (2x2..5x5)
//! satmapit batch [flags]                # the whole suite through the engine
//! satmapit serve [flags]                # the mapping daemon (JSON over TCP)
//! satmapit submit [flags]               # submit one job to a daemon
//! satmapit bench-service [flags]        # load-test a daemon, emit BENCH_service.json
//! ```
//!
//! Run `satmapit <subcommand> --help` for per-subcommand flags. Unknown
//! flags are an error, not silently ignored.

#![forbid(unsafe_code)]

use sat_mapit::cgra::Cgra;
use sat_mapit::core::routing::map_with_routing;
use sat_mapit::core::{codegen, Mapper, MapperConfig};
use sat_mapit::dfg::dot::to_dot;
use sat_mapit::engine::{
    map_raced, BackendKind, CacheLifecycle, DurabilityPolicy, Engine, EngineConfig, Job,
    ShareConfig,
};
use sat_mapit::kernels;
use sat_mapit::morph::MorphMapper;
use sat_mapit::obs;
use sat_mapit::schedule::{mii, rec_mii, res_mii};
use sat_mapit::service::client::RetryPolicy;
use sat_mapit::service::wire::{self, MapRequest};
use sat_mapit::service::{Client, Json, Server, ServerConfig};
use sat_mapit::sim::verify_mapping;
use std::process::exit;
use std::time::Duration;

const TOP_HELP: &str = "satmapit — SAT-based modulo-scheduling mapper for CGRAs

USAGE:
    satmapit <SUBCOMMAND> [ARGS]

SUBCOMMANDS:
    kernels    List the 11-kernel MiBench/Rodinia benchmark suite
    dot        Dump a kernel's DFG as Graphviz
    map        Map one kernel onto a square mesh and verify by execution
    sweep      Map one kernel on every mesh size 2x2..5x5 (one Fig. 6 column)
    batch      Map the whole suite across mesh sizes through the parallel engine
    serve      Run the mapping daemon (line-delimited JSON over TCP)
    submit     Submit one mapping job to a running daemon
    bench-service  Open-loop load test of the daemon; emits BENCH_service.json

Run `satmapit <SUBCOMMAND> --help` for that subcommand's flags.";

fn main() {
    // The fault-injection plane (chaos testing; see docs/robustness.md)
    // arms itself from SATMAPIT_FAULTS. A malformed plan is fatal: the
    // operator asked for specific faults, so running without them would
    // silently test nothing.
    if let Err(e) = sat_mapit::faults::init_from_env() {
        // lint: allow(log-discipline) -- usage errors are stderr's contract
        eprintln!("invalid {}: {e}", sat_mapit::faults::ENV_VAR);
        exit(2);
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("kernels") => cmd_kernels(&args[1..]),
        Some("dot") => cmd_dot(&args[1..]),
        Some("map") => cmd_map(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("batch") => cmd_batch(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("submit") => cmd_submit(&args[1..]),
        Some("bench-service") => cmd_bench_service(&args[1..]),
        Some("--help") | Some("-h") | Some("help") => println!("{TOP_HELP}"),
        Some(other) => {
            // lint: allow(log-discipline) -- usage errors are stderr's contract
            eprintln!("unknown subcommand `{other}`\n\n{TOP_HELP}");
            exit(2);
        }
        None => {
            // lint: allow(log-discipline) -- usage errors are stderr's contract
            eprintln!("{TOP_HELP}");
            exit(2);
        }
    }
}

/// One recognized flag: name, whether it takes a value, and help text.
struct FlagSpec {
    name: &'static str,
    takes_value: bool,
    help: &'static str,
}

/// Parsed command line: positional arguments and flag values.
struct Parsed {
    positional: Vec<String>,
    values: Vec<(&'static str, String)>,
}

impl Parsed {
    fn value(&self, name: &str) -> Option<&str> {
        self.values
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    fn parse_num<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.value(name) {
            None => default,
            Some(raw) => raw.parse().unwrap_or_else(|_| {
                // lint: allow(log-discipline) -- usage errors are stderr's contract
                eprintln!("invalid value `{raw}` for {name}");
                exit(2);
            }),
        }
    }
}

/// Parses `args` against `spec`, printing `help` and exiting on `--help`,
/// and erroring out on any unrecognized flag.
fn parse_args(args: &[String], spec: &[FlagSpec], help: &str) -> Parsed {
    let mut parsed = Parsed {
        positional: Vec::new(),
        values: Vec::new(),
    };
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        if arg == "--help" || arg == "-h" {
            println!("{help}");
            exit(0);
        }
        if let Some(flag) = spec.iter().find(|f| f.name == arg) {
            if flag.takes_value {
                let Some(value) = args.get(i + 1) else {
                    // lint: allow(log-discipline) -- usage errors are stderr's contract
                    eprintln!("flag {} expects a value", flag.name);
                    exit(2);
                };
                parsed.values.push((flag.name, value.clone()));
                i += 2;
            } else {
                parsed.values.push((flag.name, String::from("true")));
                i += 1;
            }
            continue;
        }
        // A lone `-` is the conventional stdin positional, not a flag.
        if arg.starts_with('-') && arg != "-" {
            let known: Vec<&str> = spec.iter().map(|f| f.name).collect();
            // lint: allow(log-discipline) -- usage errors are stderr's contract
            eprintln!(
                "unknown flag `{arg}`; recognized flags: {}",
                if known.is_empty() {
                    String::from("(none)")
                } else {
                    known.join(", ")
                }
            );
            exit(2);
        }
        parsed.positional.push(arg.clone());
        i += 1;
    }
    parsed
}

fn render_help(usage: &str, about: &str, spec: &[FlagSpec]) -> String {
    let mut out = format!("{about}\n\nUSAGE:\n    {usage}\n");
    if !spec.is_empty() {
        out.push_str("\nFLAGS:\n");
        for flag in spec {
            let name = if flag.takes_value {
                format!("{} <value>", flag.name)
            } else {
                flag.name.to_string()
            };
            out.push_str(&format!("    {name:<22} {}\n", flag.help));
        }
    }
    out.push_str("    --help                 Print this help\n");
    out
}

/// Rejects positional arguments beyond the `expected` count (mirrors the
/// strict unknown-flag handling: surplus arguments are an error, not noise).
fn reject_extra_positionals(parsed: &Parsed, expected: usize) {
    if let Some(extra) = parsed.positional.get(expected) {
        // lint: allow(log-discipline) -- usage errors are stderr's contract
        eprintln!("unexpected argument `{extra}`");
        exit(2);
    }
}

/// The `--incremental` / `--no-incremental` pair, shared by every
/// mapping subcommand (one definition so wording and defaults cannot
/// drift between `map`, `sweep` and `batch`).
const INCREMENTAL_FLAG: FlagSpec = FlagSpec {
    name: "--incremental",
    takes_value: false,
    help: "Incremental II ladder (the default): learned clauses carry across IIs",
};
const NO_INCREMENTAL_FLAG: FlagSpec = FlagSpec {
    name: "--no-incremental",
    takes_value: false,
    help: "Re-encode and re-solve every II from scratch (the paper's loop)",
};

/// Resolves the `--incremental` / `--no-incremental` pair (incremental is
/// the default; the last occurrence wins, mirroring repeated value flags).
fn incremental_flag(parsed: &Parsed) -> bool {
    parsed
        .values
        .iter()
        .rev()
        .find_map(|(name, _)| match *name {
            "--incremental" => Some(true),
            "--no-incremental" => Some(false),
            _ => None,
        })
        .unwrap_or(true)
}

/// The `--share` flag, shared by the engine-backed subcommands: learnt-
/// clause exchange between portfolio siblings racing the same II
/// (meaningful with `--portfolio ≥ 2`; changes which equally-valid model
/// is found, so results are only reproducible with it off or a portfolio
/// of 1).
const SHARE_FLAG: FlagSpec = FlagSpec {
    name: "--share",
    takes_value: false,
    help: "Share learnt clauses between portfolio siblings racing the same II (needs --portfolio >= 2)",
};

fn share_flag(parsed: &Parsed) -> ShareConfig {
    if parsed.value("--share").is_some() {
        ShareConfig::on()
    } else {
        ShareConfig::off()
    }
}

/// The `--backend` flag, shared by every mapping subcommand: which exact
/// engine attempts the II ladder (see docs/backends.md).
const BACKEND_FLAG: FlagSpec = FlagSpec {
    name: "--backend",
    takes_value: true,
    help: "Mapping backend: `sat` (CDCL ladder, default), `morph` (monomorphism search), or `race` (both, exchanging proven bounds)",
};

fn backend_flag(parsed: &Parsed) -> BackendKind {
    let raw = parsed.value("--backend").unwrap_or("sat");
    BackendKind::parse(raw).unwrap_or_else(|| {
        // lint: allow(log-discipline) -- usage errors are stderr's contract
        eprintln!("invalid value `{raw}` for --backend; expected sat, morph or race");
        exit(2);
    })
}

/// Runs one mapping job through the chosen backend: the sequential SAT
/// ladder, the sequential morph ladder, or a cross-backend race (whose
/// best II is guaranteed to match the sequential SAT search).
fn run_backend(
    dfg: &sat_mapit::dfg::Dfg,
    cgra: &Cgra,
    config: MapperConfig,
    backend: BackendKind,
) -> sat_mapit::core::MapOutcome {
    match backend {
        BackendKind::Sat => Mapper::new(dfg, cgra).with_config(config).run(),
        BackendKind::Morph => MorphMapper::new(dfg, cgra).with_config(config).run(),
        BackendKind::Race => {
            map_raced(
                dfg,
                cgra,
                &EngineConfig {
                    mapper: config,
                    backend,
                    ..EngineConfig::default()
                },
            )
            .outcome
        }
    }
}

fn kernel_or_exit(name: Option<&String>) -> kernels::Kernel {
    let Some(name) = name else {
        // lint: allow(log-discipline) -- usage errors are stderr's contract
        eprintln!("expected a kernel name; try `satmapit kernels`");
        exit(2);
    };
    if name == "paper-example" {
        return kernels::paper_example();
    }
    kernels::by_name(name).unwrap_or_else(|| {
        // lint: allow(log-discipline) -- usage errors are stderr's contract
        eprintln!(
            "unknown kernel `{name}`; available: {:?} + paper-example",
            kernels::NAMES
        );
        exit(2);
    })
}

fn cmd_kernels(args: &[String]) {
    let help = render_help(
        "satmapit kernels",
        "List the benchmark suite: name, size and description of each kernel.",
        &[],
    );
    let parsed = parse_args(args, &[], &help);
    reject_extra_positionals(&parsed, 0);
    println!("{:<14} {:>5} {:>5}  description", "name", "nodes", "edges");
    for k in kernels::all() {
        println!(
            "{:<14} {:>5} {:>5}  {}",
            k.name(),
            k.dfg.num_nodes(),
            k.dfg.num_edges(),
            k.description
        );
    }
}

fn cmd_dot(args: &[String]) {
    let help = render_help(
        "satmapit dot <kernel>",
        "Dump a kernel's data-flow graph in Graphviz DOT format.",
        &[],
    );
    let parsed = parse_args(args, &[], &help);
    reject_extra_positionals(&parsed, 1);
    let kernel = kernel_or_exit(parsed.positional.first());
    print!("{}", to_dot(&kernel.dfg));
}

fn cmd_map(args: &[String]) {
    let spec = [
        FlagSpec {
            name: "--size",
            takes_value: true,
            help: "Mesh edge length N for an NxN CGRA (default 3)",
        },
        FlagSpec {
            name: "--timeout",
            takes_value: true,
            help: "Wall-clock budget in seconds (default 60)",
        },
        FlagSpec {
            name: "--routing",
            takes_value: true,
            help: "Allow up to this many routing (copy) nodes (default 0)",
        },
        BACKEND_FLAG,
        INCREMENTAL_FLAG,
        NO_INCREMENTAL_FLAG,
    ];
    let help = render_help(
        "satmapit map <kernel> [--size N] [--timeout S] [--routing R] [--backend sat|morph|race] [--no-incremental]",
        "Map one kernel onto an NxN mesh, print the kernel program and verify\nthe mapping by executing it against reference semantics.",
        &spec,
    );
    let parsed = parse_args(args, &spec, &help);
    reject_extra_positionals(&parsed, 1);
    let kernel = kernel_or_exit(parsed.positional.first());
    let size: u16 = parsed.parse_num("--size", 3);
    if size == 0 {
        // lint: allow(log-discipline) -- usage errors are stderr's contract
        eprintln!("--size must be at least 1");
        exit(2);
    }
    let timeout = Duration::from_secs(parsed.parse_num("--timeout", 60u64));
    let routes: u32 = parsed.parse_num("--routing", 0);
    let backend = backend_flag(&parsed);
    if routes > 0 && backend != BackendKind::Sat {
        // lint: allow(log-discipline) -- usage errors are stderr's contract
        eprintln!("--routing currently requires the SAT backend");
        exit(2);
    }
    let cgra = Cgra::square(size);
    let config = MapperConfig {
        timeout: Some(timeout),
        incremental: incremental_flag(&parsed),
        ..MapperConfig::default()
    };

    let fmt_bound = |b: Option<u32>| b.map_or_else(|| "∞".to_string(), |v| v.to_string());
    println!(
        "kernel `{}` on {} | MII = max(Res {}, Rec {}) = {}",
        kernel.name(),
        cgra,
        fmt_bound(res_mii(&kernel.dfg, &cgra)),
        rec_mii(&kernel.dfg),
        fmt_bound(mii(&kernel.dfg, &cgra))
    );

    let (dfg, outcome, used_routes) = if routes > 0 {
        let routed = map_with_routing(&kernel.dfg, &cgra, &config, routes);
        (routed.dfg, routed.outcome, routed.routes)
    } else {
        let outcome = run_backend(&kernel.dfg, &cgra, config, backend);
        (kernel.dfg.clone(), outcome, 0)
    };

    match outcome.result {
        Ok(mapped) => {
            println!(
                "mapped at II={} ({} routing nodes) in {:?}",
                mapped.ii(),
                used_routes,
                outcome.elapsed
            );
            let program = codegen::kernel_program(&dfg, &cgra, &mapped.mapping, &mapped.registers);
            println!("\n{program}");
            println!("utilization: {:.0}%", program.utilization() * 100.0);
            match verify_mapping(&dfg, &cgra, &mapped, kernel.memory.clone(), 8) {
                Ok(sim) => println!(
                    "verified 8 iterations by execution ({} cycles) ✓",
                    sim.cycles
                ),
                Err(e) => {
                    // lint: allow(log-discipline) -- failure outcomes are stderr's contract
                    eprintln!("VERIFICATION FAILED: {e}");
                    exit(1);
                }
            }
        }
        Err(e) => {
            // lint: allow(log-discipline) -- failure outcomes are stderr's contract
            eprintln!("mapping failed: {e} (after {:?})", outcome.elapsed);
            exit(1);
        }
    }
}

fn cmd_sweep(args: &[String]) {
    let spec = [
        FlagSpec {
            name: "--timeout",
            takes_value: true,
            help: "Wall-clock budget in seconds per mesh size (default 60)",
        },
        BACKEND_FLAG,
        INCREMENTAL_FLAG,
        NO_INCREMENTAL_FLAG,
    ];
    let help = render_help(
        "satmapit sweep <kernel> [--timeout S] [--backend sat|morph|race] [--no-incremental]",
        "Map one kernel on every mesh size 2x2..5x5 — one column of the\npaper's Figure 6.",
        &spec,
    );
    let parsed = parse_args(args, &spec, &help);
    reject_extra_positionals(&parsed, 1);
    let kernel = kernel_or_exit(parsed.positional.first());
    let timeout = Duration::from_secs(parsed.parse_num("--timeout", 60u64));
    let config = MapperConfig {
        timeout: Some(timeout),
        incremental: incremental_flag(&parsed),
        ..MapperConfig::default()
    };
    let backend = backend_flag(&parsed);
    println!(" size | MII | II  | time");
    for n in 2..=5u16 {
        let cgra = Cgra::square(n);
        let outcome = run_backend(&kernel.dfg, &cgra, config.clone(), backend);
        let lower = mii(&kernel.dfg, &cgra).map_or_else(|| "∞".to_string(), |v| v.to_string());
        match outcome.ii() {
            Some(ii) => println!(" {n}x{n}  | {lower:>3} | {ii:>3} | {:?}", outcome.elapsed),
            None => println!(" {n}x{n}  | {lower:>3} |  ✕  | {:?}", outcome.elapsed),
        }
    }
}

fn cmd_batch(args: &[String]) {
    let spec = [
        FlagSpec {
            name: "--sizes",
            takes_value: true,
            help: "Comma-separated mesh edge lengths (default 3,4,5)",
        },
        FlagSpec {
            name: "--kernels",
            takes_value: true,
            help: "Comma-separated kernel subset (default: all 11)",
        },
        FlagSpec {
            name: "--timeout",
            takes_value: true,
            help: "Wall-clock budget in seconds per job (default 120)",
        },
        FlagSpec {
            name: "--workers",
            takes_value: true,
            help: "Worker threads (default 0 = one per hardware thread)",
        },
        FlagSpec {
            name: "--race",
            takes_value: true,
            help: "IIs raced concurrently per job (default 4)",
        },
        FlagSpec {
            name: "--portfolio",
            takes_value: true,
            help: "Solver-portfolio variants per II (default 1)",
        },
        FlagSpec {
            name: "--repeat",
            takes_value: true,
            help: "Submit the batch this many times (exercises the cache; default 1)",
        },
        FlagSpec {
            name: "--stats",
            takes_value: false,
            help: "Print full cache statistics (hits/misses, proven-bound ladder starts) and per-outcome latency percentiles after the run",
        },
        FlagSpec {
            name: "--trace",
            takes_value: true,
            help: "Record a flight-recorder trace of the run and write it as Chrome trace JSON (open in Perfetto)",
        },
        BACKEND_FLAG,
        SHARE_FLAG,
        INCREMENTAL_FLAG,
        NO_INCREMENTAL_FLAG,
    ];
    let help = render_help(
        "satmapit batch [--sizes 3,4,5] [--kernels a,b] [--timeout S] [--workers N] [--race W] [--portfolio P] [--backend sat|morph|race] [--share] [--repeat R] [--stats] [--trace FILE] [--no-incremental]",
        "Map the benchmark suite across mesh sizes through the parallel\nII-race engine, with content-hash result caching.",
        &spec,
    );
    let parsed = parse_args(args, &spec, &help);
    reject_extra_positionals(&parsed, 0);

    let sizes: Vec<u16> = parsed
        .value("--sizes")
        .unwrap_or("3,4,5")
        .split(',')
        .map(|s| {
            let size: u16 = s.trim().parse().unwrap_or_else(|_| {
                // lint: allow(log-discipline) -- usage errors are stderr's contract
                eprintln!("invalid mesh size `{s}` in --sizes");
                exit(2);
            });
            if size == 0 {
                // lint: allow(log-discipline) -- usage errors are stderr's contract
                eprintln!("mesh sizes must be at least 1 (got `{s}`)");
                exit(2);
            }
            size
        })
        .collect();
    let kernel_names: Vec<String> = match parsed.value("--kernels") {
        None => kernels::NAMES.iter().map(|s| s.to_string()).collect(),
        Some(list) => list.split(',').map(|s| s.trim().to_string()).collect(),
    };
    let timeout = Duration::from_secs(parsed.parse_num("--timeout", 120u64));
    let repeat: usize = parsed.parse_num("--repeat", 1usize).max(1);

    let config = EngineConfig {
        mapper: MapperConfig {
            timeout: Some(timeout),
            incremental: incremental_flag(&parsed),
            ..MapperConfig::default()
        },
        race_width: parsed.parse_num("--race", 4usize).max(1),
        portfolio: parsed.parse_num("--portfolio", 1usize).max(1),
        workers: parsed.parse_num("--workers", 0usize),
        backend: backend_flag(&parsed),
        share: share_flag(&parsed),
        ..EngineConfig::default()
    };

    let mut jobs = Vec::new();
    for name in &kernel_names {
        let kernel = kernel_or_exit(Some(name));
        for &size in &sizes {
            jobs.push(Job::new(
                format!("{name}@{size}x{size}"),
                kernel.dfg.clone(),
                Cgra::square(size),
            ));
        }
    }

    let trace_path = parsed.value("--trace").map(std::path::PathBuf::from);
    if trace_path.is_some() {
        obs::trace::set_enabled(true);
    }

    let engine = Engine::new(config);
    println!(
        "batch: {} jobs ({} kernels x {} sizes), {} worker threads, race width {}, portfolio {}",
        jobs.len(),
        kernel_names.len(),
        sizes.len(),
        engine.config().effective_workers(),
        engine.config().race_width,
        engine.config().portfolio,
    );

    let mut any_failed = false;
    // Per-outcome latency histograms over every item of every round:
    // the same classes the daemon's `stats` response reports.
    let mut lat_hit = obs::Histogram::new();
    let mut lat_solved = obs::Histogram::new();
    let mut lat_timeout = obs::Histogram::new();
    for round in 0..repeat {
        if repeat > 1 {
            println!("--- round {} ---", round + 1);
        }
        let t0 = std::time::Instant::now();
        let items = engine.map_batch(jobs.clone());
        let wall = t0.elapsed();
        println!(
            "{:<28} {:>4} {:>4} {:>10} {:>7} {:>7}",
            "job", "MII", "II", "time", "cached", "cancel"
        );
        let mut failures = 0usize;
        for item in &items {
            let elapsed_us = item.elapsed.as_micros() as u64;
            if item.cached {
                lat_hit.record(elapsed_us);
            } else if matches!(
                item.outcome.outcome.result,
                Err(sat_mapit::core::MapFailure::Timeout { .. })
            ) {
                lat_timeout.record(elapsed_us);
            } else {
                lat_solved.record(elapsed_us);
            }
            let ii = match item.outcome.ii() {
                Some(ii) => ii.to_string(),
                None => {
                    failures += 1;
                    "✕".to_string()
                }
            };
            let mii_s = item
                .outcome
                .outcome
                .result
                .as_ref()
                .map(|m| m.mii.to_string())
                .unwrap_or_else(|_| "-".to_string());
            println!(
                "{:<28} {:>4} {:>4} {:>10.3?} {:>7} {:>7}",
                item.name,
                mii_s,
                ii,
                item.elapsed,
                if item.cached { "yes" } else { "no" },
                item.outcome.stats.tasks_cancelled,
            );
        }
        let stats = engine.cache_stats();
        println!(
            "round wall-clock {wall:.3?} | cache: {} entries, {} hits, {} misses",
            stats.entries, stats.hits, stats.misses
        );
        if failures > 0 {
            obs::warn!("satmapit::cli", "{failures} job(s) failed to map");
            any_failed = true;
        }
    }
    if parsed.value("--stats").is_some() {
        let stats = engine.cache_stats();
        println!("\ncache statistics");
        println!("  result entries        {}", stats.entries);
        println!("  hits                  {}", stats.hits);
        println!("  misses                {}", stats.misses);
        println!("  proven-bound entries  {}", stats.bound_entries);
        println!(
            "  bound ladder starts   {} (misses whose II ladder started above MII from a proven bound)",
            stats.bound_starts
        );
        if stats.persistent_entries > 0 || stats.persistent_hits > 0 {
            println!("  persistent entries    {}", stats.persistent_entries);
            println!("  persistent hits       {}", stats.persistent_hits);
        }
        println!("\nsolver arena");
        println!("  gc runs               {}", stats.gc_runs);
        println!("  lits reclaimed        {}", stats.lits_reclaimed);
        println!(
            "  peak arena waste      {} words (largest dead-clause residue any solve carried)",
            stats.arena_wasted
        );
        if stats.shared_exported > 0 || stats.shared_imported > 0 {
            println!("\nportfolio clause sharing");
            println!("  clauses exported      {}", stats.shared_exported);
            println!("  clauses imported      {}", stats.shared_imported);
            println!(
                "  ring drops            {} (raise the share ring capacity if persistently high)",
                stats.shared_dropped
            );
        }
        println!("\nbackend races");
        println!("  sat wins              {}", stats.sat_wins);
        println!("  morph wins            {}", stats.morph_wins);
        println!(
            "  bound exchanges       {} (II closures one backend proved for the other)",
            stats.bound_exchanges
        );
        println!("\nlatency by outcome (us)");
        println!(
            "  {:<12} {:>7} {:>10} {:>10} {:>10} {:>10}",
            "class", "count", "p50", "p90", "p99", "max"
        );
        for (class, hist) in [
            ("cache_hit", &lat_hit),
            ("solved", &lat_solved),
            ("timeout", &lat_timeout),
        ] {
            let snap = hist.snapshot();
            println!(
                "  {:<12} {:>7} {:>10} {:>10} {:>10} {:>10}",
                class, snap.count, snap.p50, snap.p90, snap.p99, snap.max
            );
        }
    }
    if let Some(path) = &trace_path {
        let events = obs::trace::drain();
        let rungs = events
            .iter()
            .filter(|e| e.cat == obs::Category::Rung)
            .count();
        match std::fs::write(path, obs::trace::export_chrome(&events)) {
            Ok(()) => println!(
                "trace: {} events ({} rung spans, {} dropped) -> {}",
                events.len(),
                rungs,
                obs::trace::dropped(),
                path.display()
            ),
            Err(e) => {
                obs::error!(
                    "satmapit::cli",
                    "failed to write trace {}: {e}",
                    path.display()
                );
                exit(1);
            }
        }
    }
    if any_failed {
        exit(1);
    }
}

fn cmd_serve(args: &[String]) {
    let spec = [
        FlagSpec {
            name: "--addr",
            takes_value: true,
            help: "Listen address (default 127.0.0.1:7421; port 0 = ephemeral)",
        },
        FlagSpec {
            name: "--cache-dir",
            takes_value: true,
            help: "Directory for the persistent result/bound caches (default: in-memory only)",
        },
        FlagSpec {
            name: "--workers",
            takes_value: true,
            help: "Solver worker threads (default 0 = one per hardware thread)",
        },
        FlagSpec {
            name: "--queue",
            takes_value: true,
            help: "Admission queue capacity; beyond it requests are rejected (default 64)",
        },
        FlagSpec {
            name: "--timeout",
            takes_value: true,
            help: "Default wall-clock budget in seconds per job (default 120)",
        },
        FlagSpec {
            name: "--race",
            takes_value: true,
            help: "IIs raced concurrently per job (default 4)",
        },
        FlagSpec {
            name: "--portfolio",
            takes_value: true,
            help: "Solver-portfolio variants per II (default 1)",
        },
        FlagSpec {
            name: "--trace-dir",
            takes_value: true,
            help: "Enable the flight recorder; `trace` requests drain spans into Chrome trace files in this directory",
        },
        FlagSpec {
            name: "--slow-ms",
            takes_value: true,
            help: "Log the per-II ladder of any solve slower than this many milliseconds (default: off)",
        },
        FlagSpec {
            name: "--max-line-bytes",
            takes_value: true,
            help: "Longest accepted request line in bytes; a client exceeding it gets an error and is disconnected (default 4194304)",
        },
        FlagSpec {
            name: "--cache-entries",
            takes_value: true,
            help: "Result-cache size bound; beyond it the least-recently-used entry is evicted (default 0 = unbounded)",
        },
        FlagSpec {
            name: "--cache-age",
            takes_value: true,
            help: "Result-cache age bound in seconds; older entries are swept on insert (default: none)",
        },
        FlagSpec {
            name: "--compact-every",
            takes_value: true,
            help: "Compact the persistent stores after this many appends instead of only at shutdown (default 256; 0 = shutdown only)",
        },
        FlagSpec {
            name: "--fsync-every",
            takes_value: true,
            help: "fsync the persistent stores after this many appends (default 1 = every append; 0 = never, rely on the OS)",
        },
        FlagSpec {
            name: "--max-append-failures",
            takes_value: true,
            help: "Consecutive append failures before the engine goes degraded memory-only until restart (default 3; 0 = never degrade)",
        },
        BACKEND_FLAG,
        SHARE_FLAG,
        INCREMENTAL_FLAG,
        NO_INCREMENTAL_FLAG,
    ];
    let help = render_help(
        "satmapit serve [--addr HOST:PORT] [--cache-dir DIR] [--workers N] [--queue N] [--timeout S] [--race W] [--portfolio P] [--backend sat|morph|race] [--share] [--trace-dir DIR] [--slow-ms N] [--max-line-bytes N] [--cache-entries N] [--cache-age S] [--compact-every N] [--fsync-every N] [--max-append-failures N] [--no-incremental]",
        "Run the mapping daemon: line-delimited JSON requests over TCP, a\nbounded admission queue over the parallel engine, and result/bound\ncaches persisted to --cache-dir across restarts.\n\nProtocol reference: docs/service.md. Stop it with\n`echo '{\"op\":\"shutdown\"}' | nc HOST PORT` or a `shutdown` request\nfrom any client; shutdown compacts the on-disk caches.",
        &spec,
    );
    let parsed = parse_args(args, &spec, &help);
    reject_extra_positionals(&parsed, 0);

    let addr = parsed
        .value("--addr")
        .unwrap_or("127.0.0.1:7421")
        .to_string();
    let timeout = Duration::from_secs(parsed.parse_num("--timeout", 120u64));
    let config = ServerConfig {
        workers: parsed.parse_num("--workers", 0usize),
        queue_capacity: parsed.parse_num("--queue", 64usize).max(1),
        engine: EngineConfig {
            mapper: MapperConfig {
                timeout: Some(timeout),
                incremental: incremental_flag(&parsed),
                ..MapperConfig::default()
            },
            race_width: parsed.parse_num("--race", 4usize).max(1),
            portfolio: parsed.parse_num("--portfolio", 1usize).max(1),
            // 0: the server divides the hardware threads across its pool
            // (each concurrent solve gets an equal share).
            workers: 0,
            backend: backend_flag(&parsed),
            share: share_flag(&parsed),
            lifecycle: CacheLifecycle {
                max_entries: parsed.parse_num("--cache-entries", 0usize),
                max_age: parsed
                    .value("--cache-age")
                    .map(|_| Duration::from_secs(parsed.parse_num("--cache-age", 0u64))),
                compact_every: parsed.parse_num("--compact-every", 256u64),
            },
            durability: DurabilityPolicy {
                fsync_every: parsed.parse_num("--fsync-every", 1u64),
                max_append_failures: parsed.parse_num("--max-append-failures", 3u64),
                ..DurabilityPolicy::default()
            },
            ..EngineConfig::default()
        },
        cache_dir: parsed.value("--cache-dir").map(std::path::PathBuf::from),
        trace_dir: parsed.value("--trace-dir").map(std::path::PathBuf::from),
        slow_solve: parsed
            .value("--slow-ms")
            .map(|_| Duration::from_millis(parsed.parse_num("--slow-ms", 0u64))),
        max_line_bytes: parsed
            .parse_num("--max-line-bytes", 4 * 1024 * 1024usize)
            .max(1),
        panic_on_name: None,
    };

    let server = Server::bind(&addr, config).unwrap_or_else(|e| {
        obs::error!("satmapit::cli", "failed to start daemon on {addr}: {e}");
        exit(1);
    });
    let stats = server.engine().cache_stats();
    println!(
        "satmapit-service listening on {} ({} persistent result entries, {} proven bounds{})",
        server.local_addr(),
        stats.persistent_entries,
        stats.bound_entries,
        match server.engine().cache_dir() {
            Some(dir) => format!(", cache dir {}", dir.display()),
            None => String::from(", in-memory cache only"),
        }
    );
    if let Err(e) = server.run() {
        obs::error!("satmapit::cli", "daemon failed: {e}");
        exit(1);
    }
    println!("daemon stopped; caches compacted");
}

/// Reads the `submit` DFG: a kernel name, `--file path`, or `-` (stdin),
/// expecting the wire JSON DFG format for the latter two.
fn submit_dfg(parsed: &Parsed) -> sat_mapit::dfg::Dfg {
    use std::io::Read;
    let positional = parsed.positional.first();
    match (positional.map(String::as_str), parsed.value("--file")) {
        (Some(name), None) if name != "-" => kernel_or_exit(Some(&name.to_string())).dfg,
        (source, file) => {
            let text = match (source, file) {
                (_, Some(path)) => std::fs::read_to_string(path).unwrap_or_else(|e| {
                    // lint: allow(log-discipline) -- failure outcomes are stderr's contract
                    eprintln!("cannot read {path}: {e}");
                    exit(2);
                }),
                (Some("-"), None) | (None, None) => {
                    let mut buf = String::new();
                    std::io::stdin()
                        .read_to_string(&mut buf)
                        .unwrap_or_else(|e| {
                            // lint: allow(log-discipline) -- failure outcomes are stderr's contract
                            eprintln!("cannot read stdin: {e}");
                            exit(2);
                        });
                    buf
                }
                _ => unreachable!("first match arm covers bare kernel names"),
            };
            let value = sat_mapit::service::json::parse(text.trim()).unwrap_or_else(|e| {
                // lint: allow(log-discipline) -- failure outcomes are stderr's contract
                eprintln!("DFG is not valid JSON: {e}");
                exit(2);
            });
            wire::dfg_from_json(&value).unwrap_or_else(|e| {
                // lint: allow(log-discipline) -- failure outcomes are stderr's contract
                eprintln!("DFG JSON is malformed: {e}");
                exit(2);
            })
        }
    }
}

fn cmd_submit(args: &[String]) {
    let spec = [
        FlagSpec {
            name: "--addr",
            takes_value: true,
            help: "Daemon address (default 127.0.0.1:7421)",
        },
        FlagSpec {
            name: "--file",
            takes_value: true,
            help: "Read the DFG from this JSON file instead of a kernel name",
        },
        FlagSpec {
            name: "--size",
            takes_value: true,
            help: "Mesh edge length N for an NxN CGRA (default 3)",
        },
        FlagSpec {
            name: "--timeout",
            takes_value: true,
            help: "Per-request wall-clock budget in seconds (default: server's)",
        },
        FlagSpec {
            name: "--timeout-ms",
            takes_value: true,
            help: "Socket budget in milliseconds for connect/read/write; a stalled daemon fails fast instead of hanging (default: none)",
        },
        FlagSpec {
            name: "--retries",
            takes_value: true,
            help: "Total attempts on connection failure, reconnecting between tries (default 1 = no retry; submits are idempotent)",
        },
        FlagSpec {
            name: "--backoff-ms",
            takes_value: true,
            help: "Backoff before the first retry in milliseconds, doubling (with jitter) each further retry (default 50)",
        },
        FlagSpec {
            name: "--json",
            takes_value: false,
            help: "Print the raw JSON response instead of the human summary",
        },
        FlagSpec {
            name: "--stats",
            takes_value: false,
            help: "Also fetch and print the daemon's statistics",
        },
    ];
    let help = render_help(
        "satmapit submit [<kernel> | --file dfg.json | -] [--addr HOST:PORT] [--size N] [--timeout S] [--timeout-ms MS] [--retries N] [--backoff-ms MS] [--json] [--stats]",
        "Submit one mapping job to a running daemon. The DFG comes from a\nbenchmark kernel name, a JSON file (--file), or stdin (`-`), in the\nwire format documented in docs/service.md.",
        &spec,
    );
    let parsed = parse_args(args, &spec, &help);
    reject_extra_positionals(&parsed, 1);

    let addr = parsed.value("--addr").unwrap_or("127.0.0.1:7421");
    let size: u16 = parsed.parse_num("--size", 3);
    if size == 0 {
        // lint: allow(log-discipline) -- usage errors are stderr's contract
        eprintln!("--size must be at least 1");
        exit(2);
    }
    let dfg = submit_dfg(&parsed);
    let request = MapRequest {
        id: Some(1),
        name: format!("{}@{size}x{size}", dfg.name()),
        dfg,
        cgra: Cgra::square(size),
        timeout_ms: parsed
            .value("--timeout")
            .map(|_| parsed.parse_num("--timeout", 120u64) * 1000),
    };

    let socket_budget = parsed
        .value("--timeout-ms")
        .map(|_| parsed.parse_num("--timeout-ms", 0u64))
        .filter(|&ms| ms > 0)
        .map(Duration::from_millis);
    let report_failure = |e: &sat_mapit::service::ClientError| {
        match socket_budget {
            // lint: allow(log-discipline) -- failure outcomes are stderr's contract
            Some(budget) if e.is_timeout() => eprintln!(
                "submit failed: no response from {addr} within --timeout-ms {}; the daemon may be overloaded or the request may need a larger budget",
                budget.as_millis()
            ),
            // lint: allow(log-discipline) -- failure outcomes are stderr's contract
            _ => eprintln!("submit failed: {e}"),
        }
    };
    let retries: u32 = parsed.parse_num("--retries", 1);
    let (reply, stats) = if retries > 1 {
        // Submits are idempotent (deterministic solves, cached), so a
        // reconnect-and-replay loop is safe; see docs/robustness.md.
        let mut client = Client::with_retry(
            addr,
            RetryPolicy {
                attempts: retries,
                backoff: Duration::from_millis(parsed.parse_num("--backoff-ms", 50u64)),
                socket_timeout: socket_budget,
                ..RetryPolicy::default()
            },
        );
        let reply = client.map(&request).unwrap_or_else(|e| {
            report_failure(&e);
            exit(1);
        });
        let stats = parsed.value("--stats").is_some().then(|| client.stats());
        (reply, stats)
    } else {
        let connect = match socket_budget {
            Some(budget) => Client::connect_timeout(addr, budget),
            None => Client::connect(addr),
        };
        let mut client = connect.unwrap_or_else(|e| {
            // lint: allow(log-discipline) -- failure outcomes are stderr's contract
            eprintln!("cannot reach daemon at {addr}: {e}");
            exit(1);
        });
        let reply = client.map(&request).unwrap_or_else(|e| {
            report_failure(&e);
            exit(1);
        });
        let stats = parsed.value("--stats").is_some().then(|| client.stats());
        (reply, stats)
    };

    if parsed.value("--json").is_some() {
        println!("{reply}");
    } else {
        print_submit_summary(&request.name, &reply);
    }
    match stats {
        Some(Ok(stats)) => println!("stats: {stats}"),
        Some(Err(e)) => obs::warn!("satmapit::cli", "stats unavailable: {e}"),
        None => {}
    }
    if reply.get("ok").and_then(Json::as_bool) != Some(true) {
        exit(1);
    }
    let mapped = reply
        .get("result")
        .and_then(|r| r.get("status"))
        .and_then(Json::as_str)
        == Some("mapped");
    if !mapped {
        exit(1);
    }
}

fn print_submit_summary(name: &str, reply: &Json) {
    if reply.get("ok").and_then(Json::as_bool) != Some(true) {
        let error = reply
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("malformed response");
        // lint: allow(log-discipline) -- failure outcomes are stderr's contract
        eprintln!("daemon rejected `{name}`: {error}");
        return;
    }
    let provenance = match (
        reply.get("cached").and_then(Json::as_bool),
        reply.get("persistent").and_then(Json::as_bool),
    ) {
        (Some(true), Some(true)) => "persistent cache hit",
        (Some(true), _) => "cache hit",
        _ => "solved",
    };
    let elapsed_us = reply.get("elapsed_us").and_then(Json::as_u64).unwrap_or(0);
    let Some(result) = reply.get("result") else {
        // lint: allow(log-discipline) -- failure outcomes are stderr's contract
        eprintln!("malformed response: no result");
        return;
    };
    match result.get("status").and_then(Json::as_str) {
        Some("mapped") => {
            let ii = result.get("ii").and_then(Json::as_u64).unwrap_or(0);
            let mii = result.get("mii").and_then(Json::as_u64).unwrap_or(0);
            println!(
                "{name}: mapped at II={ii} (MII {mii}) — {provenance}, {:.3} ms",
                elapsed_us as f64 / 1000.0
            );
        }
        Some("failed") => {
            let error = result
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unknown failure");
            println!(
                "{name}: failed — {error} ({provenance}, {:.3} ms)",
                elapsed_us as f64 / 1000.0
            );
        }
        // lint: allow(log-discipline) -- failure outcomes are stderr's contract
        _ => eprintln!("malformed response: unknown result status"),
    }
}

/// Outcome classes `bench-service` buckets responses into.
const BENCH_CLASSES: [&str; 4] = ["hot", "cold", "timeout", "error"];

/// A tiny chain DFG whose leading constant is `seed`: constants are part
/// of the result fingerprint, so distinct seeds are distinct problems
/// (cold misses) while a repeated seed replays from the cache (hot).
fn bench_dfg(seed: i64) -> sat_mapit::dfg::Dfg {
    use sat_mapit::dfg::{Dfg, Op};
    let mut dfg = Dfg::new(format!("bench{seed}"));
    let a = dfg.add_const(seed);
    let b = dfg.add_node(Op::Neg);
    let c = dfg.add_node(Op::Neg);
    dfg.add_edge(a, b, 0);
    dfg.add_edge(b, c, 0);
    dfg
}

/// Buckets one response into a [`BENCH_CLASSES`] index.
fn bench_classify(reply: &Json) -> usize {
    if reply.get("ok").and_then(Json::as_bool) != Some(true) {
        return 3; // error (shed, queue-full, malformed, ...)
    }
    let status = reply
        .get("result")
        .and_then(|r| r.get("status"))
        .and_then(Json::as_str);
    match status {
        Some("failed") => 2, // the mix only induces failures via deadlines
        _ if reply.get("cached").and_then(Json::as_bool) == Some(true) => 0,
        _ => 1,
    }
}

/// Renders one class's latency histogram for `BENCH_service.json`.
fn bench_class_json(hist: &obs::Histogram) -> Json {
    Json::obj(vec![
        ("count", Json::Int(hist.count() as i64)),
        ("mean_us", Json::Int(hist.mean() as i64)),
        ("p50_us", Json::Int(hist.percentile(0.50) as i64)),
        ("p90_us", Json::Int(hist.percentile(0.90) as i64)),
        ("p99_us", Json::Int(hist.percentile(0.99) as i64)),
        ("max_us", Json::Int(hist.max().unwrap_or(0) as i64)),
    ])
}

fn cmd_bench_service(args: &[String]) {
    let spec = [
        FlagSpec {
            name: "--addr",
            takes_value: true,
            help: "Load an already-running daemon at HOST:PORT (default: spawn one in-process on an ephemeral port)",
        },
        FlagSpec {
            name: "--connections",
            takes_value: true,
            help: "Concurrent client connections (default 128)",
        },
        FlagSpec {
            name: "--requests",
            takes_value: true,
            help: "Total requests across all connections (default 2048)",
        },
        FlagSpec {
            name: "--rate",
            takes_value: true,
            help: "Open-loop arrival rate in requests/second (default 2000)",
        },
        FlagSpec {
            name: "--out",
            takes_value: true,
            help: "Report file (default BENCH_service.json)",
        },
    ];
    let help = render_help(
        "satmapit bench-service [--addr HOST:PORT] [--connections N] [--requests N] [--rate R] [--out FILE]",
        "Open-loop load test of the mapping daemon: arrivals are scheduled\nby --rate regardless of completions (so queueing delay is measured,\nnot hidden), spread over --connections concurrent connections, with\na fixed hot/cold/zero-deadline request mix. Emits per-outcome-class\nthroughput and latency percentiles as JSON (schema: docs/service.md).",
        &spec,
    );
    let parsed = parse_args(args, &spec, &help);
    reject_extra_positionals(&parsed, 0);

    let connections = parsed.parse_num("--connections", 128usize).max(1);
    let requests = parsed.parse_num("--requests", 2048usize).max(1);
    let rate = parsed.parse_num("--rate", 2000f64).max(1.0);
    let out_path = parsed.value("--out").unwrap_or("BENCH_service.json");

    // An external daemon via --addr, or a self-hosted one on an
    // ephemeral port (small problems, generous queue).
    let (addr, local) = match parsed.value("--addr") {
        Some(addr) => (addr.to_string(), None),
        None => {
            let config = ServerConfig {
                queue_capacity: connections.max(64) * 4,
                engine: EngineConfig {
                    mapper: MapperConfig {
                        timeout: Some(Duration::from_secs(10)),
                        ..MapperConfig::default()
                    },
                    workers: 0,
                    ..EngineConfig::default()
                },
                ..ServerConfig::default()
            };
            let server = Server::bind("127.0.0.1:0", config).unwrap_or_else(|e| {
                obs::error!("satmapit::cli", "failed to start bench daemon: {e}");
                exit(1);
            });
            let addr = server.local_addr().to_string();
            (addr, Some(std::thread::spawn(move || server.run())))
        }
    };

    println!(
        "bench-service: {requests} requests at {rate:.0}/s over {connections} connections to {addr}"
    );

    let next = std::sync::atomic::AtomicUsize::new(0);
    let start = std::time::Instant::now();
    let gap = Duration::from_secs_f64(1.0 / rate);
    let cgra = Cgra::square(2);
    let per_thread: Vec<[obs::Histogram; 4]> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|_| {
                let next = &next;
                let addr = addr.as_str();
                let cgra = &cgra;
                scope.spawn(move || {
                    let mut hists = [
                        obs::Histogram::new(),
                        obs::Histogram::new(),
                        obs::Histogram::new(),
                        obs::Histogram::new(),
                    ];
                    let Ok(mut client) = Client::connect_timeout(addr, Duration::from_secs(30))
                    else {
                        return hists;
                    };
                    loop {
                        // ordering: a work-stealing ticket counter; each
                        // arrival slot is claimed exactly once.
                        let ticket = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if ticket >= requests {
                            return hists;
                        }
                        // Open loop: this arrival's time is fixed by the
                        // schedule, not by earlier completions.
                        let due = start + gap.mul_f64(ticket as f64);
                        if let Some(wait) = due.checked_duration_since(std::time::Instant::now()) {
                            std::thread::sleep(wait);
                        }
                        // Mix: 10% expire at admission (zero deadline on a
                        // fresh problem), 20% cold (fresh problem), 70% hot
                        // (one of 4 repeated problems).
                        let (seed, timeout_ms) = match ticket % 10 {
                            9 => (1_000_000 + ticket as i64, Some(0)),
                            7 | 8 => (1000 + ticket as i64, None),
                            slot => (slot as i64, None),
                        };
                        let request = MapRequest {
                            id: Some(ticket as i64),
                            name: format!("bench{ticket}"),
                            dfg: bench_dfg(seed),
                            cgra: cgra.clone(),
                            timeout_ms,
                        };
                        let sent = std::time::Instant::now();
                        let Ok(reply) = client.map(&request) else {
                            // A dead connection can't measure anything
                            // more; count the failure and stop.
                            hists[3].record(sent.elapsed().as_micros() as u64);
                            return hists;
                        };
                        let us = sent.elapsed().as_micros() as u64;
                        hists[bench_classify(&reply)].record(us);
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| std::array::from_fn(|_| obs::Histogram::new()))
            })
            .collect()
    });
    let elapsed = start.elapsed();

    let mut merged: [obs::Histogram; 4] = std::array::from_fn(|_| obs::Histogram::new());
    for hists in &per_thread {
        for (into, from) in merged.iter_mut().zip(hists) {
            into.merge(from);
        }
    }
    let answered: u64 = merged.iter().map(obs::Histogram::count).sum();
    let throughput = answered as f64 / elapsed.as_secs_f64().max(1e-9);

    // Daemon-side admission counters, then shut a self-hosted daemon
    // down (compacts its in-memory-only caches and joins cleanly).
    let daemon_stats = Client::connect_timeout(&addr, Duration::from_secs(10))
        .ok()
        .and_then(|mut c| {
            let stats = c.stats().ok();
            if local.is_some() {
                let _ = c.shutdown();
            }
            stats
        });
    if let Some(handle) = local {
        match handle.join() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => obs::warn!("satmapit::cli", "bench daemon exited with: {e}"),
            Err(_) => obs::warn!("satmapit::cli", "bench daemon panicked"),
        }
    }
    let counter = |name: &str| {
        daemon_stats
            .as_ref()
            .and_then(|s| s.get(name))
            .and_then(Json::as_u64)
            .unwrap_or(0)
    };

    let classes = Json::obj(
        BENCH_CLASSES
            .iter()
            .zip(&merged)
            .map(|(&name, hist)| (name, bench_class_json(hist)))
            .collect(),
    );
    let report = Json::obj(vec![
        ("connections", Json::Int(connections as i64)),
        ("requests", Json::Int(requests as i64)),
        ("answered", Json::Int(answered as i64)),
        ("rate_rps", Json::Int(rate as i64)),
        ("elapsed_us", Json::Int(elapsed.as_micros() as i64)),
        ("throughput_rps", Json::Int(throughput as i64)),
        ("shed", Json::Int(counter("shed") as i64)),
        ("rejected", Json::Int(counter("rejected") as i64)),
        (
            "expired_at_admission",
            Json::Int(counter("expired_at_admission") as i64),
        ),
        ("classes", classes),
    ]);
    std::fs::write(out_path, format!("{report}\n")).unwrap_or_else(|e| {
        obs::error!("satmapit::cli", "cannot write {out_path}: {e}");
        exit(1);
    });

    println!(
        "bench-service: {answered}/{requests} answered in {:.2}s ({throughput:.0} req/s) -> {out_path}",
        elapsed.as_secs_f64()
    );
    for (name, hist) in BENCH_CLASSES.iter().zip(&merged) {
        if hist.count() > 0 {
            println!(
                "  {name:<8} {:>6}  p50 {:>8}us  p99 {:>8}us",
                hist.count(),
                hist.percentile(0.50),
                hist.percentile(0.99)
            );
        }
    }
    if answered < requests as u64 {
        // lint: allow(log-discipline) -- failure outcomes are stderr's contract
        eprintln!(
            "bench-service: {} request(s) lost to dead connections",
            requests as u64 - answered
        );
        exit(1);
    }
}
