//! # sat-mapit
//!
//! A from-scratch Rust reproduction of **SAT-MapIt** (Tirelli, Ferretti,
//! Pozzi — DATE 2023): an exact, SAT-based modulo-scheduling mapper for
//! coarse-grain reconfigurable arrays, together with every substrate it
//! needs and the heuristic state-of-the-art baselines it is evaluated
//! against.
//!
//! This crate is a facade: it re-exports the workspace crates under one
//! roof and hosts the runnable examples and cross-crate integration tests.
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`dfg`] | `satmapit-dfg` | loop-body data-flow graph IR, interpreter, generators |
//! | [`cgra`] | `satmapit-cgra` | PE-array architecture model |
//! | [`sat`] | `satmapit-sat` | CDCL SAT solver, CNF, encodings |
//! | [`graphs`] | `satmapit-graphs` | cliques, colouring, SCC, cyclic arcs |
//! | [`schedule`] | `satmapit-schedule` | ASAP/ALAP, mobility schedule, KMS, MII |
//! | [`regalloc`] | `satmapit-regalloc` | per-PE cyclic-interval register allocation |
//! | [`core`] | `satmapit-core` | the SAT-MapIt mapper itself |
//! | [`morph`] | `satmapit-morph` | exact monomorphism mapping backend (space/time decoupled) |
//! | [`engine`] | `satmapit-engine` | parallel II-race + portfolio engine, batch frontend, result cache |
//! | [`sim`] | `satmapit-sim` | physical simulator + equivalence checking |
//! | [`baselines`] | `satmapit-baselines` | RAMP-like and PathSeeker-like mappers |
//! | [`kernels`] | `satmapit-kernels` | the 11 MiBench/Rodinia benchmark DFGs |
//! | [`service`] | `satmapit-service` | mapping daemon: JSON-over-TCP protocol, persistent caches |
//! | [`obs`] | `satmapit-obs` | flight-recorder tracing, latency histograms, structured logging |
//! | [`faults`] | `satmapit-faults` | deterministic fault injection for I/O paths (see `docs/robustness.md`) |
//!
//! ## Parallel mapping
//!
//! The [`engine`] crate races candidate IIs (and, optionally, a portfolio
//! of solver configurations per II) across a worker pool, with losing
//! workers cancelled cooperatively. Its knobs are the race width (IIs in
//! flight), the portfolio size (solver variants per II) and the worker
//! count; with the default exact configuration it is guaranteed to return
//! the **same best II** as the sequential [`core::Mapper::run`] search.
//! Batch workloads go through [`engine::Engine`], which memoizes results
//! in a content-hash-keyed cache — repeated requests are O(1) and
//! byte-identical. The `satmapit batch` CLI subcommand fronts it.
//!
//! ## Mapping as a service
//!
//! The [`service`] crate wraps the engine in a long-running daemon
//! (`satmapit serve`) speaking line-delimited JSON over TCP, with a
//! bounded admission queue, per-request deadlines, and result/bound
//! caches persisted to disk ([`engine::persist`]) so a warm restart
//! answers repeat lookups without touching the SAT solver. `satmapit
//! submit` is the matching client.
//!
//! ## Quickstart
//!
//! ```
//! use sat_mapit::cgra::Cgra;
//! use sat_mapit::core::Mapper;
//! use sat_mapit::kernels;
//! use sat_mapit::sim::verify_mapping;
//!
//! let kernel = kernels::by_name("srand").unwrap();
//! let cgra = Cgra::square(3);
//! let outcome = Mapper::new(&kernel.dfg, &cgra).run();
//! let mapped = outcome.result.expect("srand maps on a 3x3");
//!
//! // Execute the mapped loop and compare against reference semantics.
//! verify_mapping(&kernel.dfg, &cgra, &mapped, kernel.memory.clone(), 8)
//!     .expect("mapped code computes the same values");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use satmapit_baselines as baselines;
pub use satmapit_cgra as cgra;
pub use satmapit_core as core;
pub use satmapit_dfg as dfg;
pub use satmapit_engine as engine;
pub use satmapit_faults as faults;
pub use satmapit_graphs as graphs;
pub use satmapit_kernels as kernels;
pub use satmapit_morph as morph;
pub use satmapit_obs as obs;
pub use satmapit_regalloc as regalloc;
pub use satmapit_sat as sat;
pub use satmapit_schedule as schedule;
pub use satmapit_service as service;
pub use satmapit_sim as sim;
