//! # satmapit-faults
//!
//! A deterministic fault-injection plane for crash-safety and
//! degradation testing. Production code threads its fallible I/O through
//! **named sites** ([`check`], [`check_write`], [`write_all`]); tests
//! (and the chaos CI job) install a **fault plan** — a deterministic
//! script of which site hits fail, how — and the exact same binary
//! exhibits torn writes, `ENOSPC`, `EINTR` storms, or dies at a chosen
//! instruction.
//!
//! ## The off contract
//!
//! With no plan installed, every site costs exactly **one relaxed atomic
//! load** and the plane is invisible: no locks, no allocation, no hit
//! counting, and no influence on any result fingerprint — the same
//! contract as `satmapit-obs` tracing. This is pinned by tests here and
//! in the engine.
//!
//! ## Plan syntax
//!
//! A plan is `rule (';' rule)*`, each rule `action['=' arg] '@' site
//! [':' hit]`. Hits are 1-based per site; `hit` defaults to 1.
//!
//! | action            | effect at the armed hit                           |
//! |-------------------|---------------------------------------------------|
//! | `error-once`      | one injected I/O error, then the site heals       |
//! | `error`           | every hit from `hit` on fails (persistent outage) |
//! | `enospc-once`     | one `ENOSPC` (`No space left on device`)          |
//! | `enospc`          | persistent `ENOSPC`                               |
//! | `eintr=K`         | `K` consecutive `EINTR`s starting at `hit`        |
//! | `partial-write=K` | write sites: `K` bytes land, then an error (once) |
//! | `abort`           | `std::process::abort()` before the operation      |
//! | `abort-write=K`   | write sites: `K` bytes land, then abort (torn)    |
//!
//! Example: `partial-write=17@append.results:3;abort@compact.rename`
//! tears the third result append after 17 bytes, and kills the process
//! the first time a compaction is about to rename its temp file.
//!
//! The `satmapit` binary installs the plan named by the
//! [`ENV_VAR`](static@ENV_VAR) environment variable at startup, so
//! torture harnesses can inject into spawned daemons. See
//! `docs/robustness.md` for the site inventory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Environment variable the `satmapit` binary reads a fault plan from
/// (see [`init_from_env`]).
pub static ENV_VAR: &str = "SATMAPIT_FAULTS";

/// Fast-path gate: `true` iff a plan is installed. Sites load this and
/// return immediately when clear — the entire cost of the plane when
/// off.
static ACTIVE: AtomicBool = AtomicBool::new(false);

/// Total faults injected since the last [`install`]/[`clear`].
static INJECTED: AtomicU64 = AtomicU64::new(0);

/// The installed plan. Only consulted after [`ACTIVE`] reads `true`.
static PLAN: Mutex<Option<Plan>> = Mutex::new(None);

/// Locks the plan, recovering from poison: the plan is only mutated by
/// whole-value replacement and per-rule counter bumps, both coherent at
/// every instruction, so a panicking injection site must not disable
/// the plane for the rest of the process.
fn lock_plan() -> MutexGuard<'static, Option<Plan>> {
    PLAN.lock().unwrap_or_else(PoisonError::into_inner)
}

/// What a write site should do, as decided by [`check_write`].
#[derive(Debug)]
pub enum WriteFault {
    /// No fault: perform the write normally.
    Proceed,
    /// Fail without writing anything.
    Error(io::Error),
    /// Write only the first `prefix` bytes (a torn write), then either
    /// abort the process or return the error.
    Partial {
        /// How many bytes of the buffer actually land.
        prefix: usize,
        /// `true` ⇒ `std::process::abort()` after the partial write
        /// (the `abort-write` action); `false` ⇒ return `error`.
        abort_after: bool,
        /// The error a non-aborting torn write surfaces.
        error: io::Error,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    Error,
    Enospc,
    Eintr { storm: u64 },
    Partial { bytes: usize },
    Abort,
    AbortWrite { bytes: usize },
}

#[derive(Debug)]
struct Rule {
    site: String,
    /// 1-based hit index the rule arms at.
    from_hit: u64,
    /// How many injections this rule has left; `None` = unbounded.
    budget: Option<u64>,
    action: Action,
}

#[derive(Debug, Default)]
struct Plan {
    rules: Vec<Rule>,
    /// Per-site hit counters (counted only while a plan is installed,
    /// so plan hit indices are deterministic from installation).
    hits: HashMap<String, u64>,
}

/// A fault plan failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError(String);

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad fault plan: {}", self.0)
    }
}

impl std::error::Error for PlanError {}

fn parse_rule(text: &str) -> Result<Rule, PlanError> {
    let (action_part, site_part) = text
        .split_once('@')
        .ok_or_else(|| PlanError(format!("rule `{text}` has no `@site`")))?;
    let (name, arg) = match action_part.split_once('=') {
        Some((name, arg)) => (name, Some(arg)),
        None => (action_part, None),
    };
    let arg_num = |what: &str| -> Result<u64, PlanError> {
        arg.ok_or_else(|| PlanError(format!("action `{name}` needs `={what}`")))?
            .parse::<u64>()
            .map_err(|_| {
                PlanError(format!(
                    "action `{name}`: `={}` is not a number",
                    arg.unwrap()
                ))
            })
    };
    let (action, budget) = match name {
        "error-once" => (Action::Error, Some(1)),
        "error" => (Action::Error, None),
        "enospc-once" => (Action::Enospc, Some(1)),
        "enospc" => (Action::Enospc, None),
        "eintr" => {
            let storm = arg_num("count")?;
            (Action::Eintr { storm }, Some(storm))
        }
        "partial-write" => (
            Action::Partial {
                bytes: arg_num("bytes")? as usize,
            },
            Some(1),
        ),
        "abort" => (Action::Abort, Some(1)),
        "abort-write" => (
            Action::AbortWrite {
                bytes: arg_num("bytes")? as usize,
            },
            Some(1),
        ),
        other => return Err(PlanError(format!("unknown action `{other}`"))),
    };
    if arg.is_some() && !matches!(name, "eintr" | "partial-write" | "abort-write") {
        return Err(PlanError(format!("action `{name}` takes no `=` argument")));
    }
    let (site, from_hit) = match site_part.rsplit_once(':') {
        Some((site, hit)) => {
            let hit = hit
                .parse::<u64>()
                .map_err(|_| PlanError(format!("hit index `{hit}` is not a number")))?;
            if hit == 0 {
                return Err(PlanError("hit indices are 1-based".into()));
            }
            (site, hit)
        }
        None => (site_part, 1),
    };
    if site.is_empty() {
        return Err(PlanError(format!("rule `{text}` has an empty site")));
    }
    Ok(Rule {
        site: site.to_string(),
        from_hit,
        budget,
        action,
    })
}

/// Installs a fault plan, replacing any previous one and resetting all
/// hit and injection counters.
///
/// # Errors
///
/// Returns the parse failure; the previous plan (if any) stays active.
pub fn install(spec: &str) -> Result<(), PlanError> {
    let rules = spec
        .split(';')
        .map(str::trim)
        .filter(|r| !r.is_empty())
        .map(parse_rule)
        .collect::<Result<Vec<Rule>, PlanError>>()?;
    if rules.is_empty() {
        return Err(PlanError("empty plan".into()));
    }
    *lock_plan() = Some(Plan {
        rules,
        hits: HashMap::new(),
    });
    // ordering: Relaxed on both — installation happens-before the
    // workload through whatever mechanism starts the workload (spawn,
    // function call); the gate itself is advisory and a site racing the
    // install may harmlessly see either state.
    INJECTED.store(0, Ordering::Relaxed);
    ACTIVE.store(true, Ordering::Relaxed); // ordering: see above
    Ok(())
}

/// Removes the installed plan; every site returns to the one-load fast
/// path and the injection counter resets (no plan, nothing injected).
pub fn clear() {
    // ordering: advisory gate, as in `install`.
    ACTIVE.store(false, Ordering::Relaxed);
    *lock_plan() = None;
    // ordering: monotone telemetry counter.
    INJECTED.store(0, Ordering::Relaxed);
}

/// `true` while a plan is installed. One relaxed atomic load.
pub fn active() -> bool {
    // ordering: advisory fast-path gate; the plan mutex serializes all
    // actual plan access.
    ACTIVE.load(Ordering::Relaxed)
}

/// Total faults injected since the current plan was installed.
pub fn injected() -> u64 {
    // ordering: monotone telemetry counter.
    INJECTED.load(Ordering::Relaxed)
}

/// Hits recorded for `site` under the current plan (0 when off —
/// inactive sites never count, which is how tests pin the fast path).
pub fn hits(site: &str) -> u64 {
    lock_plan()
        .as_ref()
        .and_then(|plan| plan.hits.get(site).copied())
        .unwrap_or(0)
}

/// Installs the plan named by the [`ENV_VAR`](static@ENV_VAR)
/// environment variable, if set and non-empty. Returns whether a plan
/// was installed.
///
/// # Errors
///
/// Propagates the parse failure; callers (the `satmapit` binary) should
/// treat a malformed plan as fatal — a chaos run with a silently
/// dropped plan would report false greens.
pub fn init_from_env() -> Result<bool, PlanError> {
    match std::env::var(ENV_VAR) {
        Ok(spec) if !spec.is_empty() => install(&spec).map(|()| true),
        _ => Ok(false),
    }
}

/// The decision for one site hit, with the armed rule already consumed.
fn decide(site: &str, is_write: bool) -> Option<Action> {
    let mut guard = lock_plan();
    let plan = guard.as_mut()?;
    let hit = {
        let counter = plan.hits.entry(site.to_string()).or_insert(0);
        *counter += 1;
        *counter
    };
    let rule = plan.rules.iter_mut().find(|rule| {
        rule.site == site && hit >= rule.from_hit && rule.budget.is_none_or(|b| b > 0)
    })?;
    if !is_write
        && matches!(
            rule.action,
            Action::Partial { .. } | Action::AbortWrite { .. }
        )
    {
        // Write-shaped actions degrade to plain errors at non-write
        // sites rather than silently not firing.
        if let Some(budget) = &mut rule.budget {
            *budget -= 1;
        }
        // ordering: monotone telemetry counter.
        INJECTED.fetch_add(1, Ordering::Relaxed);
        return Some(Action::Error);
    }
    if let Some(budget) = &mut rule.budget {
        *budget -= 1;
    }
    // ordering: monotone telemetry counter.
    INJECTED.fetch_add(1, Ordering::Relaxed);
    Some(rule.action)
}

fn injected_error(action: Action) -> io::Error {
    match action {
        Action::Enospc => {
            // Raw ENOSPC (28 on Linux) so callers exercising error-kind
            // dispatch see exactly what a full disk produces.
            io::Error::from_raw_os_error(28)
        }
        Action::Eintr { .. } => io::Error::from(io::ErrorKind::Interrupted),
        _ => io::Error::other("injected fault"),
    }
}

/// Checks a non-write site. When off: one relaxed atomic load, `Ok`.
/// When a plan is armed for this hit, returns the injected error — or
/// never returns (the `abort` action).
///
/// # Errors
///
/// The injected fault, when the plan arms one for this hit.
pub fn check(site: &str) -> io::Result<()> {
    // ordering: advisory fast-path gate (see `active`).
    if !ACTIVE.load(Ordering::Relaxed) {
        return Ok(());
    }
    match decide(site, false) {
        None => Ok(()),
        Some(Action::Abort) => std::process::abort(),
        Some(action) => Err(injected_error(action)),
    }
}

/// Checks a write site about to write `len` bytes. When off: one
/// relaxed atomic load, [`WriteFault::Proceed`]. The `abort` action
/// aborts here; `abort-write`/`partial-write` come back as
/// [`WriteFault::Partial`] for the caller (usually [`write_all`]) to
/// perform.
pub fn check_write(site: &str, len: usize) -> WriteFault {
    // ordering: advisory fast-path gate (see `active`).
    if !ACTIVE.load(Ordering::Relaxed) {
        return WriteFault::Proceed;
    }
    match decide(site, true) {
        None => WriteFault::Proceed,
        Some(Action::Abort) => std::process::abort(),
        Some(Action::Partial { bytes }) => WriteFault::Partial {
            prefix: bytes.min(len),
            abort_after: false,
            error: io::Error::other("injected torn write"),
        },
        Some(Action::AbortWrite { bytes }) => WriteFault::Partial {
            prefix: bytes.min(len),
            abort_after: true,
            error: io::Error::other("unreachable: abort-write aborts"),
        },
        Some(action) => WriteFault::Error(injected_error(action)),
    }
}

/// Writes `buf` through the fault plane: injected `EINTR`s are retried
/// (each retry is a new site hit, so an `eintr=K` storm costs `K`
/// loops), torn writes land their prefix before failing, and
/// `abort-write` kills the process with the torn prefix on disk —
/// exactly the state a power loss mid-`write` leaves behind.
///
/// # Errors
///
/// Injected faults, or real errors from the underlying writer.
pub fn write_all<W: io::Write>(site: &str, writer: &mut W, buf: &[u8]) -> io::Result<()> {
    loop {
        match check_write(site, buf.len()) {
            WriteFault::Proceed => return writer.write_all(buf),
            WriteFault::Error(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            WriteFault::Error(e) => return Err(e),
            WriteFault::Partial {
                prefix,
                abort_after,
                error,
            } => {
                writer.write_all(&buf[..prefix])?;
                if abort_after {
                    let _ = writer.flush();
                    std::process::abort();
                }
                return Err(error);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard, PoisonError};

    /// The plan is process-global; tests that install one serialize.
    static SERIAL: Mutex<()> = Mutex::new(());

    fn serial() -> MutexGuard<'static, ()> {
        SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn off_by_default_and_counts_nothing() {
        let _guard = serial();
        clear();
        assert!(!active());
        for _ in 0..3 {
            assert!(check("persist.append").is_ok());
        }
        assert!(matches!(
            check_write("persist.append", 10),
            WriteFault::Proceed
        ));
        // The fast path never reached the hit counters: installing a plan
        // now arms hit 1 as the *next* call, proving the off path is the
        // single atomic load and nothing more.
        install("error-once@persist.append:1").unwrap();
        assert_eq!(hits("persist.append"), 0);
        assert!(check("persist.append").is_err());
        assert_eq!(hits("persist.append"), 1);
        clear();
    }

    #[test]
    fn error_once_heals_error_persists() {
        let _guard = serial();
        install("error-once@a:2").unwrap();
        assert!(check("a").is_ok(), "hit 1 is below the arm point");
        assert!(check("a").is_err(), "hit 2 fires");
        assert!(check("a").is_ok(), "hit 3 healed");
        assert_eq!(injected(), 1);

        install("error@a:2").unwrap();
        assert!(check("a").is_ok());
        for _ in 0..4 {
            assert!(check("a").is_err(), "persistent outage");
        }
        clear();
    }

    #[test]
    fn enospc_has_the_real_errno() {
        let _guard = serial();
        install("enospc@disk").unwrap();
        let e = check("disk").unwrap_err();
        assert_eq!(e.raw_os_error(), Some(28), "ENOSPC: {e}");
        clear();
    }

    #[test]
    fn eintr_storm_is_retried_by_write_all() {
        let _guard = serial();
        install("eintr=3@w").unwrap();
        let mut sink = Vec::new();
        write_all("w", &mut sink, b"payload").unwrap();
        assert_eq!(sink, b"payload", "the write lands after the storm");
        assert_eq!(
            hits("w"),
            4,
            "three interrupted hits plus the one that proceeds"
        );
        assert_eq!(injected(), 3);
        clear();
    }

    #[test]
    fn partial_write_lands_its_prefix_then_fails() {
        let _guard = serial();
        install("partial-write=4@w:2").unwrap();
        let mut sink = Vec::new();
        write_all("w", &mut sink, b"first").unwrap();
        let err = write_all("w", &mut sink, b"second").unwrap_err();
        assert_eq!(sink, b"firstseco", "4 torn bytes landed: {err}");
        write_all("w", &mut sink, b"third").unwrap();
        clear();
    }

    #[test]
    fn sites_are_independent_and_unknown_sites_pass() {
        let _guard = serial();
        install("error@a").unwrap();
        assert!(check("b").is_ok());
        assert!(check("a").is_err());
        assert_eq!(hits("b"), 1, "active plans count every site hit");
        clear();
    }

    #[test]
    fn malformed_plans_are_rejected() {
        let _guard = serial();
        clear();
        for bad in [
            "",
            "error",
            "nonsense@site",
            "error=3@site",
            "eintr@site",
            "partial-write@site",
            "error@site:0",
            "error@site:x",
            "error@",
        ] {
            assert!(install(bad).is_err(), "plan `{bad}` must not parse");
        }
        assert!(!active(), "failed installs leave the plane off");
    }

    #[test]
    fn write_shaped_actions_degrade_to_errors_at_plain_sites() {
        let _guard = serial();
        install("partial-write=4@s").unwrap();
        assert!(check("s").is_err());
        clear();
    }
}
