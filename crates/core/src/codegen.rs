//! Code generation: turning a validated mapping plus register allocation
//! into a per-PE kernel program, and rendering the prolog/kernel/epilog
//! structure of the modulo schedule (paper Fig. 2b).

use crate::mapping::{Mapping, TransferKind};
use satmapit_cgra::{Cgra, PeId};
use satmapit_dfg::{Dfg, EdgeId, NodeId, Op};
use satmapit_regalloc::RegAllocation;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fmt::Write as _;

/// Where an instruction operand comes from at execution time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OperandSrc {
    /// Read register `r` of the executing PE's register file.
    Register(u8),
    /// Read the output register of PE `p` (a neighbour, or the PE itself
    /// never occurs — same-PE transfers go through the register file).
    NeighborOutput(PeId),
}

/// One operand of a kernel instruction, tagged with the DFG edge it
/// implements (the simulator uses the edge for loop-carried warm-up).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeOperand {
    /// The DFG dependency realized by this operand.
    pub edge: EdgeId,
    /// The physical data source.
    pub src: OperandSrc,
}

/// One slot of the kernel program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Instr {
    /// The DFG node this instruction executes.
    pub node: NodeId,
    /// The operation.
    pub op: Op,
    /// Immediate payload (constants).
    pub imm: i64,
    /// Operand sources in operand-slot order.
    pub operands: Vec<EdgeOperand>,
    /// Register-file destination, if any same-PE consumer needs the value.
    pub dest_reg: Option<u8>,
}

/// The steady-state kernel: one optional instruction per `(PE, cycle)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelProgram {
    /// Initiation interval (kernel length in cycles).
    pub ii: u32,
    /// Folds in flight.
    pub folds: u32,
    /// `grid[pe][cycle]` — the instruction issued by PE `pe` at kernel
    /// cycle `cycle`.
    pub grid: Vec<Vec<Option<Instr>>>,
}

impl KernelProgram {
    /// The instruction at `(pe, cycle)`.
    pub fn at(&self, pe: PeId, cycle: u32) -> Option<&Instr> {
        self.grid[pe.index()][cycle as usize].as_ref()
    }

    /// Number of occupied slots.
    pub fn num_instrs(&self) -> usize {
        self.grid
            .iter()
            .map(|row| row.iter().filter(|i| i.is_some()).count())
            .sum()
    }

    /// Utilization: occupied slots over total slots.
    pub fn utilization(&self) -> f64 {
        let total = self.grid.len() * self.ii as usize;
        if total == 0 {
            0.0
        } else {
            self.num_instrs() as f64 / total as f64
        }
    }
}

impl fmt::Display for KernelProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "kernel (II={}, folds={}):", self.ii, self.folds)?;
        for c in 0..self.ii {
            write!(f, "  c{c}:")?;
            for (pe, row) in self.grid.iter().enumerate() {
                match &row[c as usize] {
                    Some(i) => write!(f, " pe{pe}={}", i.node)?,
                    None => write!(f, " pe{pe}=·")?,
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Builds the kernel program from a mapping and register allocation.
///
/// # Panics
///
/// Panics if the mapping/allocation are inconsistent (a same-PE transfer
/// without an allocated register); run the validator and allocator first.
pub fn kernel_program(
    dfg: &Dfg,
    cgra: &Cgra,
    mapping: &Mapping,
    regs: &RegAllocation,
) -> KernelProgram {
    let mut grid: Vec<Vec<Option<Instr>>> = vec![vec![None; mapping.ii as usize]; cgra.num_pes()];
    for n in dfg.node_ids() {
        let p = mapping.placement(n);
        let node = dfg.node(n);
        let operands = dfg
            .in_edges(n)
            .into_iter()
            .map(|eid| {
                let e = dfg.edge(eid);
                let src = match mapping.transfer(eid) {
                    TransferKind::SamePeRegister => OperandSrc::Register(
                        regs.reg_of(p.pe.index(), e.src.0)
                            .expect("same-PE transfer must have an allocated register"),
                    ),
                    TransferKind::NeighborOutput => {
                        OperandSrc::NeighborOutput(mapping.placement(e.src).pe)
                    }
                };
                EdgeOperand { edge: eid, src }
            })
            .collect();
        let dest_reg = regs.reg_of(p.pe.index(), n.0);
        grid[p.pe.index()][p.cycle as usize] = Some(Instr {
            node: n,
            op: node.op,
            imm: node.imm,
            operands,
            dest_reg,
        });
    }
    KernelProgram {
        ii: mapping.ii,
        folds: mapping.folds,
        grid,
    }
}

/// Stage of the modulo schedule a given global cycle belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stage {
    /// Filling the pipeline.
    Prolog,
    /// Steady state.
    Kernel,
    /// Draining the pipeline.
    Epilog,
}

/// Classifies global cycle `t` for a run of `iterations` iterations
/// (paper Fig. 2b). Requires `iterations >= folds`.
pub fn stage_of(mapping: &Mapping, iterations: u32, t: u32) -> Stage {
    let ii = mapping.ii;
    let folds = mapping.folds;
    if t < (folds - 1) * ii {
        Stage::Prolog
    } else if t < iterations * ii {
        Stage::Kernel
    } else {
        Stage::Epilog
    }
}

/// Renders the full unfolded schedule — prolog, kernel repetitions and
/// epilog — as text, one row per global cycle listing the op instances
/// `node@iteration` that execute (paper Fig. 2b).
pub fn render_stages(dfg: &Dfg, mapping: &Mapping, iterations: u32) -> String {
    let ii = mapping.ii;
    let total = mapping.schedule_len() + (iterations.saturating_sub(1)) * ii;
    let mut out = String::new();
    let mut last_stage = None;
    for t in 0..total {
        let stage = stage_of(mapping, iterations, t);
        if last_stage != Some(stage) {
            let name = match stage {
                Stage::Prolog => "prolog",
                Stage::Kernel => "kernel",
                Stage::Epilog => "epilog",
            };
            let _ = writeln!(out, "--- {name} ---");
            last_stage = Some(stage);
        }
        let _ = write!(out, "t{t:>3}:");
        for n in dfg.node_ids() {
            let tn = mapping.time(n);
            // Instance (n, i) executes at tn + i*ii.
            if t >= tn && (t - tn).is_multiple_of(ii) {
                let i = (t - tn) / ii;
                if i < iterations {
                    let _ = write!(out, " {}@{}", n, i);
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::map;
    use satmapit_dfg::Op;

    fn mapped_chain() -> (Dfg, Cgra, crate::mapper::MappedLoop) {
        let mut dfg = Dfg::new("chain");
        let a = dfg.add_const(1);
        let b = dfg.add_node(Op::Neg);
        let c = dfg.add_node(Op::Neg);
        dfg.add_edge(a, b, 0);
        dfg.add_edge(b, c, 0);
        let cgra = Cgra::square(2);
        let mapped = map(&dfg, &cgra).result.unwrap();
        (dfg, cgra, mapped)
    }

    #[test]
    fn kernel_program_places_every_node_once() {
        let (dfg, cgra, mapped) = mapped_chain();
        let prog = kernel_program(&dfg, &cgra, &mapped.mapping, &mapped.registers);
        assert_eq!(prog.num_instrs(), dfg.num_nodes());
        assert!(prog.utilization() > 0.0);
        // Every node appears exactly where its placement says.
        for n in dfg.node_ids() {
            let p = mapped.mapping.placement(n);
            let instr = prog.at(p.pe, p.cycle).expect("slot occupied");
            assert_eq!(instr.node, n);
        }
    }

    #[test]
    fn operands_reference_producing_pes_or_registers() {
        let (dfg, cgra, mapped) = mapped_chain();
        let prog = kernel_program(&dfg, &cgra, &mapped.mapping, &mapped.registers);
        for n in dfg.node_ids() {
            let p = mapped.mapping.placement(n);
            let instr = prog.at(p.pe, p.cycle).unwrap();
            assert_eq!(instr.operands.len(), dfg.node(n).op.arity());
            for opnd in &instr.operands {
                let e = dfg.edge(opnd.edge);
                match opnd.src {
                    OperandSrc::Register(r) => {
                        assert!(r < cgra.regs_per_pe());
                        assert_eq!(mapped.mapping.placement(e.src).pe, p.pe);
                    }
                    OperandSrc::NeighborOutput(q) => {
                        assert_eq!(mapped.mapping.placement(e.src).pe, q);
                        assert!(cgra.adjacent_or_same(p.pe, q));
                    }
                }
            }
        }
    }

    #[test]
    fn stages_partition_time() {
        let (dfg, _cgra, mapped) = mapped_chain();
        let iterations = 5;
        let rendered = render_stages(&dfg, &mapped.mapping, iterations);
        assert!(rendered.contains("--- kernel ---"));
        // Prolog appears iff the kernel holds more than one fold.
        if mapped.mapping.folds > 1 {
            assert!(rendered.contains("--- prolog ---"));
        }
        // Every instance node@iter appears exactly once.
        for n in dfg.node_ids() {
            for i in 0..iterations {
                let needle = format!(" {}@{}", n, i);
                let count = rendered.matches(&needle).count();
                assert_eq!(count, 1, "instance {needle} in\n{rendered}");
            }
        }
    }

    #[test]
    fn display_renders_grid() {
        let (dfg, cgra, mapped) = mapped_chain();
        let prog = kernel_program(&dfg, &cgra, &mapped.mapping, &mapped.registers);
        let s = prog.to_string();
        assert!(s.contains("kernel (II="));
        assert!(s.contains("c0:"));
    }
}
