//! Independent mapping validator.
//!
//! The validator re-checks every architectural and scheduling rule from
//! first principles, *without* trusting the SAT encoder: slot exclusivity,
//! interconnect adjacency, dependency timing windows, output-register
//! lifetime, and the memory policy. Every mapping returned by the mapper —
//! and by the baselines — must pass this check.

use crate::mapping::{Mapping, TransferKind};
use satmapit_cgra::Cgra;
use satmapit_dfg::{Dfg, EdgeId, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A violated mapping rule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Violation {
    /// `placements`/`transfers` lengths disagree with the DFG.
    ShapeMismatch,
    /// A node's kernel cycle is not in `0..ii`.
    CycleOutOfRange {
        /// Offending node.
        node: NodeId,
    },
    /// Two nodes occupy the same `(pe, kernel cycle)` slot.
    SlotConflict {
        /// First node.
        a: NodeId,
        /// Second node.
        b: NodeId,
    },
    /// A node is placed on a PE that cannot execute its op.
    MemoryPolicy {
        /// Offending node.
        node: NodeId,
    },
    /// Producer and consumer of an edge are neither co-located nor
    /// neighbours.
    NotAdjacent {
        /// Offending edge.
        edge: EdgeId,
    },
    /// The dependency latency `Δ = t_d - t_s + dist·II` is outside
    /// `1..=II`.
    DeltaOutOfRange {
        /// Offending edge.
        edge: EdgeId,
        /// The offending latency.
        delta: i64,
    },
    /// A cross-PE transfer's output register is overwritten before the
    /// consumer reads it.
    OutputOverwritten {
        /// Offending edge.
        edge: EdgeId,
        /// The node that clobbers the producer's output register.
        by: NodeId,
    },
    /// The recorded transfer kind contradicts the placements.
    WrongTransferKind {
        /// Offending edge.
        edge: EdgeId,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::ShapeMismatch => write!(f, "mapping shape disagrees with DFG"),
            Violation::CycleOutOfRange { node } => {
                write!(f, "node {node} scheduled outside the kernel")
            }
            Violation::SlotConflict { a, b } => {
                write!(f, "nodes {a} and {b} share a (PE, cycle) slot")
            }
            Violation::MemoryPolicy { node } => {
                write!(f, "node {node} placed on a PE that cannot run its op")
            }
            Violation::NotAdjacent { edge } => {
                write!(f, "edge {edge:?} spans non-adjacent PEs")
            }
            Violation::DeltaOutOfRange { edge, delta } => {
                write!(f, "edge {edge:?} has latency {delta} outside 1..=II")
            }
            Violation::OutputOverwritten { edge, by } => {
                write!(f, "edge {edge:?}: output register clobbered by {by}")
            }
            Violation::WrongTransferKind { edge } => {
                write!(f, "edge {edge:?} has an inconsistent transfer kind")
            }
        }
    }
}

/// Validates `mapping` against the DFG and architecture.
///
/// # Errors
///
/// Returns *all* violations found (empty vector never returned as error).
pub fn validate_mapping(dfg: &Dfg, cgra: &Cgra, mapping: &Mapping) -> Result<(), Vec<Violation>> {
    let mut violations = Vec::new();
    if mapping.placements.len() != dfg.num_nodes()
        || mapping.transfers.len() != dfg.num_edges()
        || mapping.ii == 0
    {
        return Err(vec![Violation::ShapeMismatch]);
    }
    let ii = mapping.ii;

    for n in dfg.node_ids() {
        let p = mapping.placement(n);
        if p.cycle >= ii {
            violations.push(Violation::CycleOutOfRange { node: n });
        }
        if !cgra.supports_op(p.pe, dfg.node(n).op) {
            violations.push(Violation::MemoryPolicy { node: n });
        }
    }

    // Slot exclusivity.
    for a in dfg.node_ids() {
        for b in dfg.node_ids() {
            if b <= a {
                continue;
            }
            let pa = mapping.placement(a);
            let pb = mapping.placement(b);
            if pa.pe == pb.pe && pa.cycle % ii == pb.cycle % ii {
                violations.push(Violation::SlotConflict { a, b });
            }
        }
    }

    // Dependencies.
    for (eid, e) in dfg.edges() {
        let ps = mapping.placement(e.src);
        let pd = mapping.placement(e.dst);
        let same = ps.pe == pd.pe;
        if !same && !cgra.adjacent_or_same(ps.pe, pd.pe) {
            violations.push(Violation::NotAdjacent { edge: eid });
            continue;
        }
        let delta = mapping.edge_delta(dfg, eid);
        if delta < 1 || delta > i64::from(ii) {
            violations.push(Violation::DeltaOutOfRange { edge: eid, delta });
            continue;
        }
        let expected = if same {
            TransferKind::SamePeRegister
        } else {
            TransferKind::NeighborOutput
        };
        if mapping.transfer(eid) != expected {
            violations.push(Violation::WrongTransferKind { edge: eid });
        }
        if !same {
            // Output-register non-overwrite: no node on the producer's PE
            // at kernel slots strictly between production and consumption.
            let ts = i64::from(mapping.time(e.src));
            for k in 1..delta {
                let slot = ((ts + k) % i64::from(ii)) as u32;
                for m in dfg.node_ids() {
                    if m == e.src {
                        continue;
                    }
                    let pm = mapping.placement(m);
                    if pm.pe == ps.pe && pm.cycle == slot {
                        violations.push(Violation::OutputOverwritten { edge: eid, by: m });
                    }
                }
            }
        }
    }

    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::Placement;
    use satmapit_cgra::PeId;
    use satmapit_dfg::Op;

    fn pair_dfg() -> Dfg {
        let mut dfg = Dfg::new("pair");
        let a = dfg.add_const(1);
        let b = dfg.add_node(Op::Neg);
        dfg.add_edge(a, b, 0);
        dfg
    }

    fn place(pe: u16, cycle: u32, fold: u32) -> Placement {
        Placement {
            pe: PeId(pe),
            cycle,
            fold,
        }
    }

    #[test]
    fn accepts_a_good_mapping() {
        let dfg = pair_dfg();
        let cgra = Cgra::square(2);
        let mapping = Mapping {
            ii: 2,
            folds: 1,
            placements: vec![place(0, 0, 0), place(1, 1, 0)],
            transfers: vec![TransferKind::NeighborOutput],
        };
        assert!(validate_mapping(&dfg, &cgra, &mapping).is_ok());
    }

    #[test]
    fn rejects_slot_conflicts() {
        let mut dfg = Dfg::new("two");
        let _ = dfg.add_const(1);
        let _ = dfg.add_const(2);
        let cgra = Cgra::square(2);
        let mapping = Mapping {
            ii: 1,
            folds: 1,
            placements: vec![place(0, 0, 0), place(0, 0, 0)],
            transfers: vec![],
        };
        let vs = validate_mapping(&dfg, &cgra, &mapping).unwrap_err();
        assert!(vs
            .iter()
            .any(|v| matches!(v, Violation::SlotConflict { .. })));
    }

    #[test]
    fn rejects_non_adjacent_dependency() {
        let dfg = pair_dfg();
        let cgra = Cgra::square(2);
        // PE 0 (0,0) and PE 3 (1,1) are diagonal: not adjacent in Mesh4.
        let mapping = Mapping {
            ii: 2,
            folds: 1,
            placements: vec![place(0, 0, 0), place(3, 1, 0)],
            transfers: vec![TransferKind::NeighborOutput],
        };
        let vs = validate_mapping(&dfg, &cgra, &mapping).unwrap_err();
        assert!(vs
            .iter()
            .any(|v| matches!(v, Violation::NotAdjacent { .. })));
    }

    #[test]
    fn rejects_bad_latency() {
        let dfg = pair_dfg();
        let cgra = Cgra::square(2);
        // Consumer scheduled at the same time as the producer: Δ = 0.
        let mapping = Mapping {
            ii: 2,
            folds: 1,
            placements: vec![place(0, 0, 0), place(1, 0, 0)],
            transfers: vec![TransferKind::NeighborOutput],
        };
        let vs = validate_mapping(&dfg, &cgra, &mapping).unwrap_err();
        assert!(vs
            .iter()
            .any(|v| matches!(v, Violation::DeltaOutOfRange { delta: 0, .. })));
    }

    #[test]
    fn rejects_overwritten_output_register() {
        // a on PE0@t0 feeds c on PE1@t2 (Δ=2), but b executes on PE0@t1,
        // clobbering a's output register before c reads it.
        let mut dfg = Dfg::new("clobber");
        let a = dfg.add_const(1);
        let b = dfg.add_const(2);
        let c = dfg.add_node(Op::Neg);
        dfg.add_edge(a, c, 0);
        let _ = b;
        let cgra = Cgra::square(2);
        let mapping = Mapping {
            ii: 3,
            folds: 1,
            placements: vec![place(0, 0, 0), place(0, 1, 0), place(1, 2, 0)],
            transfers: vec![TransferKind::NeighborOutput],
        };
        let vs = validate_mapping(&dfg, &cgra, &mapping).unwrap_err();
        assert!(vs
            .iter()
            .any(|v| matches!(v, Violation::OutputOverwritten { .. })));
    }

    #[test]
    fn rejects_wrong_transfer_kind() {
        let dfg = pair_dfg();
        let cgra = Cgra::square(2);
        let mapping = Mapping {
            ii: 2,
            folds: 1,
            placements: vec![place(0, 0, 0), place(1, 1, 0)],
            transfers: vec![TransferKind::SamePeRegister],
        };
        let vs = validate_mapping(&dfg, &cgra, &mapping).unwrap_err();
        assert!(vs
            .iter()
            .any(|v| matches!(v, Violation::WrongTransferKind { .. })));
    }

    #[test]
    fn rejects_shape_mismatch() {
        let dfg = pair_dfg();
        let cgra = Cgra::square(2);
        let mapping = Mapping {
            ii: 1,
            folds: 1,
            placements: vec![place(0, 0, 0)],
            transfers: vec![],
        };
        assert_eq!(
            validate_mapping(&dfg, &cgra, &mapping),
            Err(vec![Violation::ShapeMismatch])
        );
    }

    #[test]
    fn back_edge_latency_accepts_wraparound() {
        // acc -> acc with distance 1: Δ = II, always legal on one PE.
        let mut dfg = Dfg::new("acc");
        let c = dfg.add_const(1);
        let acc = dfg.add_node(Op::Add);
        dfg.add_edge(c, acc, 0);
        dfg.add_back_edge(acc, acc, 1, 1, 0);
        let cgra = Cgra::square(2);
        let mapping = Mapping {
            ii: 2,
            folds: 1,
            placements: vec![place(0, 0, 0), place(0, 1, 0)],
            transfers: vec![TransferKind::SamePeRegister, TransferKind::SamePeRegister],
        };
        assert!(validate_mapping(&dfg, &cgra, &mapping).is_ok());
    }
}
