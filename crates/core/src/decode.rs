//! Turning a SAT model back into a [`Mapping`].

use crate::mapping::{Mapping, Placement, TransferKind};
use crate::varmap::VarMap;
use satmapit_dfg::{Dfg, NodeId};
use satmapit_sat::Var;
use satmapit_schedule::Kms;
use std::fmt;

/// Decodes the placement variables of a satisfying `model`.
///
/// Only the first `varmap.num_vars()` entries of the model are read
/// (auxiliary variables are ignored). Transfer kinds are derived from the
/// placements: same-PE dependencies go through the register file,
/// cross-PE dependencies through the producer's output register.
///
/// # Errors
///
/// Fails if the model does not set exactly one placement per node — which
/// would indicate an encoder bug, since C1 forbids it.
pub fn decode_model(
    dfg: &Dfg,
    kms: &Kms,
    varmap: &VarMap,
    model: &[bool],
) -> Result<Mapping, DecodeError> {
    let mut placements: Vec<Option<Placement>> = vec![None; dfg.num_nodes()];
    for (idx, &set) in model.iter().enumerate().take(varmap.num_vars()) {
        if !set {
            continue;
        }
        let (node, pos, pe) = varmap.decode(Var::new(idx as u32));
        let slot = placements
            .get_mut(node.index())
            .expect("decoded node in range");
        if slot.is_some() {
            return Err(DecodeError::MultiplePlacements { node });
        }
        *slot = Some(Placement {
            pe,
            cycle: pos.cycle,
            fold: pos.fold,
        });
    }
    let mut out = Vec::with_capacity(dfg.num_nodes());
    for (i, p) in placements.into_iter().enumerate() {
        match p {
            Some(p) => out.push(p),
            None => {
                return Err(DecodeError::MissingPlacement {
                    node: NodeId(i as u32),
                })
            }
        }
    }
    let transfers = dfg
        .edges()
        .map(|(_, e)| {
            if out[e.src.index()].pe == out[e.dst.index()].pe {
                TransferKind::SamePeRegister
            } else {
                TransferKind::NeighborOutput
            }
        })
        .collect();
    Ok(Mapping {
        ii: kms.ii(),
        folds: kms.folds(),
        placements: out,
        transfers,
    })
}

/// Model-decoding failures (indicate an encoder/solver bug).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// A node has two true placement literals.
    MultiplePlacements {
        /// The over-placed node.
        node: NodeId,
    },
    /// A node has no true placement literal.
    MissingPlacement {
        /// The unplaced node.
        node: NodeId,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::MultiplePlacements { node } => {
                write!(f, "model places node {node} more than once")
            }
            DecodeError::MissingPlacement { node } => {
                write!(f, "model leaves node {node} unplaced")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::encode;
    use satmapit_cgra::Cgra;
    use satmapit_dfg::Op;
    use satmapit_sat::encode::AmoEncoding;
    use satmapit_sat::{SolveResult, Solver};
    use satmapit_schedule::MobilitySchedule;

    #[test]
    fn decode_of_solved_instance_is_consistent() {
        let mut dfg = Dfg::new("pair");
        let a = dfg.add_const(1);
        let b = dfg.add_node(Op::Neg);
        dfg.add_edge(a, b, 0);
        let cgra = Cgra::square(2);
        let ms = MobilitySchedule::compute(&dfg).unwrap();
        let kms = Kms::build(&ms, 1);
        let enc = encode(&dfg, &cgra, &kms, AmoEncoding::Auto).unwrap();
        let mut solver = Solver::from_cnf(&enc.formula);
        assert_eq!(solver.solve(), SolveResult::Sat);
        let mapping = decode_model(&dfg, &kms, &enc.varmap, solver.model().unwrap()).unwrap();
        assert_eq!(mapping.ii, 1);
        assert_eq!(mapping.placements.len(), 2);
        assert_eq!(mapping.transfers.len(), 1);
        // The dependency must be adjacent-or-same.
        let pa = mapping.placement(a);
        let pb = mapping.placement(b);
        assert!(cgra.adjacent_or_same(pa.pe, pb.pe));
    }

    #[test]
    fn corrupted_model_detected() {
        let mut dfg = Dfg::new("single");
        let _ = dfg.add_const(1);
        let cgra = Cgra::square(2);
        let ms = MobilitySchedule::compute(&dfg).unwrap();
        let kms = Kms::build(&ms, 1);
        let enc = encode(&dfg, &cgra, &kms, AmoEncoding::Auto).unwrap();
        // All-false model: missing placement.
        let model = vec![false; enc.formula.num_vars()];
        assert!(matches!(
            decode_model(&dfg, &kms, &enc.varmap, &model),
            Err(DecodeError::MissingPlacement { .. })
        ));
        // All-true model: multiple placements.
        let model = vec![true; enc.formula.num_vars()];
        assert!(matches!(
            decode_model(&dfg, &kms, &enc.varmap, &model),
            Err(DecodeError::MultiplePlacements { .. })
        ));
    }
}
