//! Incremental solving of the II ladder.
//!
//! The paper's loop (Fig. 3) re-encodes and re-solves the whole KMS
//! formula from scratch at every candidate II, discarding everything the
//! solver learned about *why* the previous II failed. This module keeps
//! one live [`Solver`] across the ladder instead:
//!
//! * an **II-invariant prefix** is installed once, as permanent clauses:
//!   one `on(n, p)` variable per node × allowed PE, exactly-one per node,
//!   and PE-level adjacency implications per dependency (`src` and `dst`
//!   must sit on the same or neighbouring PEs at *every* II). These
//!   clauses — and any learned clause derived from them alone — stay
//!   valid for the whole ladder;
//! * each candidate II contributes a **gated delta**: the full per-II
//!   encoding (C1–C4, plus any register-allocation cuts) lives in an
//!   assumption-gated clause group ([`Solver::new_group`]) that is
//!   activated only for that rung's solves and retired before the next
//!   rung solves (deferred so the ladder's final rung skips the sweep) —
//!   its clauses and every learned clause that depended on them are
//!   swept, feeding the clause arena's garbage collector, and its
//!   variables are masked out of branching
//!   ([`Solver::set_decision_var`]);
//! * an **UNSAT core** that does not mention the rung's activation
//!   literal proves the contradiction lives in the prefix alone — every
//!   II is infeasible, and the remaining rungs are skipped without
//!   solving ([`AttemptReport::proven_unmappable`]).
//!
//! Because the prefix shares no variables with any per-II delta, its
//! verdict is a per-session constant; [`crate::Mapper::prepare`]
//! pre-solves it once so that one-shot [`PreparedMapper::attempt_ii`]
//! calls — and the parallel II-race in `satmapit-engine`, whose rungs
//! solve concurrently and cannot share one solver — get the
//! unmappability signal without carrying any of the gated machinery.
//!
//! Soundness: the prefix only states facts true of every valid mapping at
//! every II (each node executes on exactly one PE; dependent nodes are
//! same-or-adjacent), so adding it never changes satisfiability at any
//! II. The clause-group soundness argument (learnt clauses derived from a
//! group always carry its negated activation literal) lives in the
//! `satmapit-sat` module docs. The deltas are deliberately *not*
//! channelled to the prefix variables — every channeling variant measured
//! slower across the 11-kernel suite than letting the prefix act purely
//! through top-level propagation and core analysis; see `attempt_gated`.

use crate::encoder::{EncodeError, EncodeStats};
use crate::mapper::{
    AttemptOutcome, AttemptReport, IiAttempt, MapFailure, MappedLoop, PreparedMapper,
};
use crate::{decode_model, validate_mapping};
use satmapit_cgra::{Cgra, PeId};
use satmapit_dfg::Dfg;
use satmapit_sat::encode::{exactly_one, AmoEncoding};
use satmapit_sat::{
    CnfFormula, Lit, SolveLimits, SolveResult, Solver, SolverStats, StopReason, Var,
};
use satmapit_schedule::Kms;
use std::time::Instant;

/// The installed II-invariant prefix: the per-node allowed-PE lists
/// (identical, by construction, to the ones every per-II
/// [`crate::VarMap`] computes). The `on(n, p)` variables themselves live
/// only inside the solver — the per-II deltas never reference them (see
/// `attempt_gated` on why channeling lost its ablation).
#[derive(Debug)]
pub(crate) struct PePrefix {
    /// Per node, the PEs that may execute it (memory-policy filtered),
    /// in the same order as `VarMap::allowed_pes`.
    allowed: Vec<Vec<PeId>>,
}

/// Installs the II-invariant PE-level prefix into `solver` (permanent,
/// ungated clauses) and returns the variable table.
///
/// # Errors
///
/// Fails with [`EncodeError::NoPeForOp`] when some node has no PE able to
/// execute it — the same structural condition every per-II encode reports.
pub(crate) fn install_prefix(
    solver: &mut Solver,
    dfg: &Dfg,
    cgra: &Cgra,
) -> Result<PePrefix, EncodeError> {
    let base = solver.num_vars() as u32;
    let mut formula = CnfFormula::new();
    let mut offsets = Vec::with_capacity(dfg.num_nodes());
    let mut allowed: Vec<Vec<PeId>> = Vec::with_capacity(dfg.num_nodes());
    for n in dfg.node_ids() {
        let pes = cgra.supported_pes(dfg.node(n).op);
        if pes.is_empty() {
            return Err(EncodeError::NoPeForOp { node: n });
        }
        offsets.push(formula.num_vars() as u32);
        let _ = formula.new_vars(pes.len());
        allowed.push(pes);
    }
    // Formula-local literal (offset applied when copying into solver).
    let on =
        |node: usize, pe_idx: usize| -> Lit { Var::new(offsets[node] + pe_idx as u32).positive() };

    // Every node executes on exactly one PE (true at every II).
    for n in dfg.node_ids() {
        let lits: Vec<Lit> = (0..allowed[n.index()].len())
            .map(|j| on(n.index(), j))
            .collect();
        exactly_one(&mut formula, &lits, AmoEncoding::Auto);
    }

    // Every dependency is a same-PE register transfer or a neighbour
    // output-register transfer, at every II: on(s, p) → ⋁ on(d, q) over
    // q ∈ {p} ∪ N(p), and symmetrically for the consumer side.
    let num_pes = cgra.num_pes();
    let adjacent = cgra.adjacency_matrix();
    let reach = |a: PeId, b: PeId| a == b || adjacent[a.index() * num_pes + b.index()];
    for (_eid, edge) in dfg.edges() {
        if edge.src == edge.dst {
            continue; // trivially same PE
        }
        for (here, there) in [(edge.src, edge.dst), (edge.dst, edge.src)] {
            for (j, &p) in allowed[here.index()].iter().enumerate() {
                let mut clause = vec![!on(here.index(), j)];
                for (k, &q) in allowed[there.index()].iter().enumerate() {
                    if reach(p, q) {
                        clause.push(on(there.index(), k));
                    }
                }
                formula.add_clause(&clause);
            }
        }
    }

    solver.ensure_vars(base as usize + formula.num_vars());
    let mut shifted: Vec<Lit> = Vec::new();
    for clause in formula.iter() {
        shifted.clear();
        shifted.extend(clause.iter().map(|l| offset_lit(*l, base)));
        solver.add_clause(&shifted);
    }
    // Prefix variables are propagation-only: the per-II deltas are not
    // channelled to them (see `attempt_gated`), so branching on them
    // could only wander through placement-irrelevant assignments.
    for v in base..solver.num_vars() as u32 {
        solver.set_decision_var(Var::new(v), false);
    }
    Ok(PePrefix { allowed })
}

fn offset_lit(l: Lit, base: u32) -> Lit {
    Lit::new(Var::new(l.var().index() as u32 + base), l.is_positive())
}

/// One gated rung: the attempt's result plus the activation literal of
/// the clause group it used and the variable block it allocated. The
/// handle is returned even when the attempt itself failed (timeout,
/// internal error), so the persistent caller can always retire the group
/// and mask the dead variables out of future branching — an abandoned
/// rung must not leak its encoding into later solves.
pub(crate) struct GatedAttempt {
    pub(crate) result: Result<AttemptReport, MapFailure>,
    pub(crate) gate: Lit,
    pub(crate) delta_vars: std::ops::Range<u32>,
    /// The rung's variable table, kept for the phase/activity transfer
    /// into the next rung (see [`RungMemory`]).
    pub(crate) varmap: crate::varmap::VarMap,
}

/// Heuristic memory of the most recently settled rung: its variable table
/// plus the solver-variable offset its delta block started at. Used to
/// seed the next rung's saved phases and VSIDS activities
/// ([`Solver::on_rung_advance`]) from semantically corresponding
/// variables.
pub(crate) struct RungMemory {
    varmap: crate::varmap::VarMap,
    base: u32,
}

/// How strongly a new rung's variables inherit the previous rung's VSIDS
/// activity (1.0 = verbatim, 0.0 = phases only). Measured across the
/// 2x2/3x3 ladder ablations, carrying the activity is what closes the
/// 3x3 incremental-vs-scratch gap (phases alone regress ~20 %); scales in
/// [0.25, 2] are indistinguishable within noise, so the transfer is
/// verbatim.
const RUNG_ACTIVITY_SCALE: f64 = 1.0;

/// The `(from, to)` variable pairs connecting the previous rung's delta
/// block to the new one: same node, same unfolded schedule slot
/// (`fold * II + cycle` — the II-invariant time axis), same PE. Adjacent
/// rungs share most of their slots, so coverage is high; slots only one
/// side has are simply left cold.
fn rung_transfer_pairs(
    prev: &RungMemory,
    cur: &crate::varmap::VarMap,
    cur_base: u32,
) -> Vec<(Var, Var)> {
    let prev_ii = u64::from(prev.varmap.ii());
    let mut old: std::collections::HashMap<(u32, u64, u32), u32> =
        std::collections::HashMap::with_capacity(prev.varmap.num_vars());
    for i in 0..prev.varmap.num_vars() {
        let (n, pos, pe) = prev.varmap.decode(Var::new(i as u32));
        let t = u64::from(pos.fold) * prev_ii + u64::from(pos.cycle);
        old.insert(
            (n.index() as u32, t, pe.index() as u32),
            prev.base + i as u32,
        );
    }
    let cur_ii = u64::from(cur.ii());
    let mut pairs = Vec::with_capacity(cur.num_vars());
    for i in 0..cur.num_vars() {
        let (n, pos, pe) = cur.decode(Var::new(i as u32));
        let t = u64::from(pos.fold) * cur_ii + u64::from(pos.cycle);
        if let Some(&from) = old.get(&(n.index() as u32, t, pe.index() as u32)) {
            pairs.push((Var::new(from), Var::new(cur_base + i as u32)));
        }
    }
    pairs
}

fn stats_delta(now: &SolverStats, before: &SolverStats) -> SolverStats {
    SolverStats {
        decisions: now.decisions - before.decisions,
        propagations: now.propagations - before.propagations,
        conflicts: now.conflicts - before.conflicts,
        restarts: now.restarts - before.restarts,
        gc_runs: now.gc_runs - before.gc_runs,
        lits_reclaimed: now.lits_reclaimed - before.lits_reclaimed,
        shared_exported: now.shared_exported - before.shared_exported,
        shared_imported: now.shared_imported - before.shared_imported,
        shared_dropped: now.shared_dropped - before.shared_dropped,
        // Gauges / whole-solver counters stay absolute.
        learnt_clauses: now.learnt_clauses,
        removed_clauses: now.removed_clauses,
        added_clauses: now.added_clauses,
        arena_wasted: now.arena_wasted,
        arena_words: now.arena_words,
    }
}

/// Attempts candidate `ii` on `solver` using the gated formulation: the
/// per-II encoding is appended as a fresh clause group, solved under its
/// activation literal, and register-allocation cuts are added to the same
/// group. The group is *not* retired here — the caller ([`IiLadder`])
/// retires it once the rung is settled, success or failure.
///
/// # Errors
///
/// `Err` is only returned for failures *before* the clause group exists
/// (a structural encoding failure); everything after that — including
/// [`MapFailure::Timeout`] — lands in [`GatedAttempt::result`] so the
/// group handle is never lost.
pub(crate) fn attempt_gated(
    prepared: &PreparedMapper<'_>,
    solver: &mut Solver,
    prefix: &PePrefix,
    prev_rung: Option<&RungMemory>,
    ii: u32,
    limits: &SolveLimits,
) -> Result<GatedAttempt, MapFailure> {
    let t_ii = Instant::now();
    let config = &prepared.config;
    let kms = Kms::build_with_slack(&prepared.ms, ii, config.slack.slack(ii));
    let options = crate::encoder::EncodeOptions {
        amo: config.amo,
        register_pressure: config.register_pressure,
    };
    let enc = crate::encoder::encode_with_options(prepared.dfg, prepared.cgra, &kms, options)
        .map_err(MapFailure::Structural)?;

    let base = solver.num_vars() as u32;
    solver.ensure_vars(base as usize + enc.formula.num_vars());
    let gate = solver.new_group();
    let delta_vars = base..solver.num_vars() as u32;
    let mut shifted: Vec<Lit> = Vec::new();
    for clause in enc.formula.iter() {
        shifted.clear();
        shifted.extend(clause.iter().map(|l| offset_lit(*l, base)));
        solver.add_clause_in_group(gate, &shifted);
    }
    // The delta is deliberately NOT channelled to the prefix `on`
    // variables: an ablation across the 11-kernel suite showed every
    // channeling variant (x → on binaries, the abstraction-direction
    // on → ⋁x form, decidable or propagation-only prefix) slows the
    // per-rung search down — the prefix's accumulated VSIDS activity and
    // the extra clauses perturb the placement search far more than the
    // PE-level pruning returns. The prefix still earns its keep through
    // the failed-assumption-core analysis: when it is contradictory on
    // its own (install-time propagation finds this), every rung's solve
    // returns `Unsat` with an empty core and the ladder stops.
    debug_assert!(prepared
        .dfg
        .node_ids()
        .all(|n| enc.varmap.allowed_pes(n) == &prefix.allowed[n.index()][..]));

    // Rung-aware heuristic hygiene: seed this rung's saved phases and
    // VSIDS activities from the previous rung's semantically
    // corresponding variables before the first solve.
    if config.rung_transfer {
        if let Some(prev) = prev_rung {
            let pairs = rung_transfer_pairs(prev, &enc.varmap, base);
            solver.on_rung_advance(&pairs, RUNG_ACTIVITY_SCALE);
        }
    }

    let result = solve_rung(prepared, solver, &enc, &kms, gate, base, limits, t_ii);
    Ok(GatedAttempt {
        result,
        gate,
        delta_vars,
        varmap: enc.varmap,
    })
}

/// The solve / decode / register-allocate loop of one gated rung.
#[allow(clippy::too_many_arguments)] // internal plumbing of one rung
fn solve_rung(
    prepared: &PreparedMapper<'_>,
    solver: &mut Solver,
    enc: &crate::encoder::Encoded,
    kms: &Kms,
    gate: Lit,
    base: u32,
    limits: &SolveLimits,
    t_ii: Instant,
) -> Result<AttemptReport, MapFailure> {
    let config = &prepared.config;
    let ii = kms.ii();
    let mut shifted: Vec<Lit> = Vec::new();
    let stats_before = solver.stats().clone();
    let make_attempt = |outcome: AttemptOutcome,
                        solver_stats: Option<SolverStats>,
                        cuts: u32,
                        encode_stats: EncodeStats| IiAttempt {
        ii,
        encode_stats,
        outcome,
        solver_stats,
        ra_cuts: cuts,
        elapsed: t_ii.elapsed(),
    };

    let mut cuts = 0u32;
    let mut last_ra_error = None;
    loop {
        let solve_result = solver.solve_limited(&[gate], limits);
        match solve_result {
            SolveResult::Sat => {
                let model = solver.model().expect("SAT result has a model");
                let delta_model = &model[base as usize..];
                let mapping = decode_model(prepared.dfg, kms, &enc.varmap, delta_model)
                    .map_err(|e| MapFailure::Internal(e.to_string()))?;
                if let Err(violations) = validate_mapping(prepared.dfg, prepared.cgra, &mapping) {
                    return Err(MapFailure::Internal(format!(
                        "decoded mapping failed validation: {violations:?}"
                    )));
                }
                match crate::regs::allocate_registers(
                    prepared.dfg,
                    prepared.cgra,
                    &mapping,
                    config.regalloc_budget,
                ) {
                    Ok(registers) => {
                        let stats = stats_delta(solver.stats(), &stats_before);
                        return Ok(AttemptReport {
                            attempt: make_attempt(
                                AttemptOutcome::Mapped,
                                Some(stats),
                                cuts,
                                enc.stats.clone(),
                            ),
                            mapped: Some(MappedLoop {
                                mapping,
                                registers,
                                mii: prepared.mii,
                            }),
                            proven_unmappable: false,
                        });
                    }
                    Err(e) if cuts < config.ra_cuts => {
                        let delta_model = delta_model.to_vec();
                        let cut = prepared.ra_cut_clause(&enc.varmap, &delta_model, &mapping, e.pe);
                        debug_assert!(!cut.is_empty());
                        shifted.clear();
                        shifted.extend(cut.iter().map(|l| offset_lit(*l, base)));
                        solver.add_clause_in_group(gate, &shifted);
                        cuts += 1;
                        last_ra_error = Some(e);
                        continue;
                    }
                    Err(e) => {
                        let stats = stats_delta(solver.stats(), &stats_before);
                        return Ok(AttemptReport {
                            attempt: make_attempt(
                                AttemptOutcome::RegAllocFailed(e),
                                Some(stats),
                                cuts,
                                enc.stats.clone(),
                            ),
                            mapped: None,
                            proven_unmappable: false,
                        });
                    }
                }
            }
            SolveResult::Unsat => {
                // An empty failed-assumption core means the contradiction
                // does not involve this rung's clause group: the permanent
                // prefix is already unsatisfiable, so *no* II can map.
                let proven_unmappable = solver.final_conflict().is_empty();
                let outcome = match last_ra_error {
                    Some(e) if cuts > 0 => AttemptOutcome::RegAllocFailed(e),
                    _ => AttemptOutcome::Unsat,
                };
                let stats = stats_delta(solver.stats(), &stats_before);
                return Ok(AttemptReport {
                    attempt: make_attempt(outcome, Some(stats), cuts, enc.stats.clone()),
                    mapped: None,
                    proven_unmappable,
                });
            }
            SolveResult::Unknown(StopReason::Timeout) => {
                return Err(MapFailure::Timeout { at_ii: ii });
            }
            SolveResult::Unknown(reason @ (StopReason::ConflictLimit | StopReason::Cancelled)) => {
                let stats = stats_delta(solver.stats(), &stats_before);
                return Ok(AttemptReport {
                    attempt: make_attempt(
                        AttemptOutcome::SolverBudget(reason),
                        Some(stats),
                        cuts,
                        enc.stats.clone(),
                    ),
                    mapped: None,
                    proven_unmappable: false,
                });
            }
        }
    }
}

/// An incremental II ladder: one live solver answers every candidate II
/// of a [`PreparedMapper`] session in sequence, carrying learned clauses
/// across rungs and retiring each rung's clause group once it is settled.
///
/// Obtained from [`PreparedMapper::ladder`]; used automatically by
/// [`crate::Mapper::run`] when [`crate::MapperConfig::incremental`] is set
/// (the default).
///
/// ```
/// use satmapit_cgra::Cgra;
/// use satmapit_core::Mapper;
/// use satmapit_dfg::{Dfg, Op};
/// use satmapit_sat::SolveLimits;
///
/// let mut dfg = Dfg::new("rec");
/// let a = dfg.add_node(Op::Neg);
/// let b = dfg.add_node(Op::Neg);
/// dfg.add_edge(a, b, 0);
/// dfg.add_back_edge(b, a, 0, 1, 0);
///
/// let cgra = Cgra::square(1);
/// let mapper = Mapper::new(&dfg, &cgra);
/// let prepared = mapper.prepare().unwrap();
/// let mut ladder = prepared.ladder().unwrap();
/// // II=1 is infeasible (2 nodes, 1 PE); II=2 maps.
/// let r1 = ladder.attempt_ii(1, &SolveLimits::none()).unwrap();
/// assert!(r1.mapped.is_none());
/// let r2 = ladder.attempt_ii(2, &SolveLimits::none()).unwrap();
/// assert!(r2.mapped.is_some());
/// assert_eq!(ladder.proven_lower_bound(), 2);
/// ```
pub struct IiLadder<'p, 'a> {
    prepared: &'p PreparedMapper<'a>,
    solver: Solver,
    prefix: PePrefix,
    unmappable: bool,
    proven_lower_bound: u32,
    /// Heuristic memory of the previous rung, feeding the phase/activity
    /// transfer into the next one (see [`rung_transfer_pairs`]).
    last_rung: Option<RungMemory>,
    /// The settled-but-not-yet-retired rung (activation literal + delta
    /// variable block). Retirement is deferred to the start of the next
    /// attempt so the ladder's *final* rung — after which the ladder is
    /// dropped — never pays for a sweep and collection nothing consumes.
    pending_retire: Option<(Lit, std::ops::Range<u32>)>,
}

impl std::fmt::Debug for IiLadder<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IiLadder")
            .field("unmappable", &self.unmappable)
            .field("proven_lower_bound", &self.proven_lower_bound)
            .finish_non_exhaustive()
    }
}

impl<'p, 'a> IiLadder<'p, 'a> {
    pub(crate) fn open(prepared: &'p PreparedMapper<'a>) -> Result<IiLadder<'p, 'a>, EncodeError> {
        let mut solver = Solver::with_options(&prepared.config.solver);
        let prefix = install_prefix(&mut solver, prepared.dfg, prepared.cgra)?;
        let solver_ok = solver.is_ok();
        Ok(IiLadder {
            prepared,
            solver,
            prefix,
            // A contradictory prefix is known before any rung runs (the
            // install above, or the one in `prepare`, already hit it).
            unmappable: !solver_ok,
            proven_lower_bound: prepared.start_ii(),
            last_rung: None,
            pending_retire: None,
        })
    }

    /// Retires the previously settled rung, if one is queued: asserts its
    /// activation literal off (sweeping the group's clauses and every
    /// learnt clause derived from them — the sweep that feeds the clause
    /// arena's garbage collector) and masks its dead variables out of
    /// branching so later rungs do not waste decisions enumerating them.
    fn retire_pending(&mut self) {
        if let Some((gate, delta_vars)) = self.pending_retire.take() {
            self.solver.retire_group(gate);
            for v in delta_vars {
                self.solver
                    .set_decision_var(satmapit_sat::Var::new(v), false);
            }
        }
    }

    /// The live solver's cumulative effort counters — including the
    /// clause-arena occupancy gauges (`arena_words` / `arena_wasted`) and
    /// GC counters, which is what the `solver_bench` waste measurements
    /// read after a full ladder.
    pub fn solver_stats(&self) -> &SolverStats {
        self.solver.stats()
    }

    /// `true` once some rung's UNSAT core avoided its clause group: every
    /// candidate II is infeasible and further attempts are pointless (they
    /// return synthetic `Unsat` reports without solving).
    pub fn proven_unmappable(&self) -> bool {
        self.unmappable
    }

    /// The smallest candidate II not yet *proven* infeasible by this
    /// ladder: rungs below it were answered `Unsat` contiguously from the
    /// session's start II. [`u32::MAX`] once the whole ladder is proven
    /// unmappable.
    pub fn proven_lower_bound(&self) -> u32 {
        if self.unmappable {
            u32::MAX
        } else {
            self.proven_lower_bound
        }
    }

    /// Attempts one candidate II on the shared solver. Same contract as
    /// [`PreparedMapper::attempt_ii`], plus: the rung's clause group is
    /// queued for retirement (performed at the start of the next attempt
    /// — see `retire_pending`), and a prefix-only UNSAT core marks the
    /// whole ladder unmappable.
    pub fn attempt_ii(
        &mut self,
        ii: u32,
        limits: &SolveLimits,
    ) -> Result<AttemptReport, MapFailure> {
        if !satmapit_obs::trace::enabled() {
            return self.attempt_ii_inner(ii, limits);
        }
        let start_us = satmapit_obs::trace::now_us();
        let result = self.attempt_ii_inner(ii, limits);
        crate::mapper::trace_rung_attempt(ii, start_us, &result);
        result
    }

    fn attempt_ii_inner(
        &mut self,
        ii: u32,
        limits: &SolveLimits,
    ) -> Result<AttemptReport, MapFailure> {
        let config = &self.prepared.config;
        if ii == 0 || ii > config.max_ii {
            return Err(MapFailure::InvalidIi {
                ii,
                max_ii: config.max_ii,
            });
        }
        let t_ii = Instant::now();
        if self.unmappable {
            // Already proven at an earlier rung; answer without solving.
            return Ok(AttemptReport {
                attempt: IiAttempt {
                    ii,
                    encode_stats: EncodeStats::default(),
                    outcome: AttemptOutcome::Unsat,
                    solver_stats: None,
                    ra_cuts: 0,
                    elapsed: t_ii.elapsed(),
                },
                mapped: None,
                proven_unmappable: true,
            });
        }
        if limits.stop_requested() {
            return Ok(AttemptReport {
                attempt: IiAttempt {
                    ii,
                    encode_stats: EncodeStats::default(),
                    outcome: AttemptOutcome::SolverBudget(StopReason::Cancelled),
                    solver_stats: None,
                    ra_cuts: 0,
                    elapsed: t_ii.elapsed(),
                },
                mapped: None,
                proven_unmappable: false,
            });
        }
        // Retire the *previous* rung now, not the current one at exit:
        // deferring the sweep (and the arena collection it feeds) to the
        // start of the next attempt means a ladder that stops — because
        // the rung mapped, timed out, or proved unmappability — never
        // pays for a retirement whose cleanliness nothing will consume.
        // The deferred group is inert in the meantime (its activation
        // literal is simply never assumed again), so solve-time state is
        // identical to eager retirement.
        self.retire_pending();
        let gated = attempt_gated(
            self.prepared,
            &mut self.solver,
            &self.prefix,
            self.last_rung.as_ref(),
            ii,
            limits,
        )?;
        // Queue this rung for retirement whatever its result — an
        // abandoned rung (timeout, internal failure) must not leak its
        // encoding into the next solve, and `retire_pending` runs before
        // that solve. The rung's saved phases and activities survive in
        // the solver's per-variable arrays; its variable table feeds the
        // next rung's phase/activity transfer.
        self.pending_retire = Some((gated.gate, gated.delta_vars.clone()));
        self.last_rung = Some(RungMemory {
            varmap: gated.varmap,
            base: gated.delta_vars.start,
        });
        let report = gated.result?;
        if report.proven_unmappable {
            self.unmappable = true;
        } else if report.attempt.outcome == AttemptOutcome::Unsat && ii == self.proven_lower_bound {
            self.proven_lower_bound = ii + 1;
        }
        Ok(report)
    }
}
