//! Routing extension for the SAT mapper.
//!
//! The paper lists the absence of routing as SAT-MapIt's one limitation
//! (§V: on `sha`/5×5 the SoA reaches II=2 by inserting a routing node).
//! This module implements that future-work item: iteratively insert
//! identity route ops on the most constraining edges and re-run the exact
//! mapper, keeping the best II found.

use crate::mapper::{MapOutcome, Mapper, MapperConfig};
use satmapit_cgra::Cgra;
use satmapit_dfg::transform::{insert_route, route_candidates};
use satmapit_dfg::Dfg;
use std::time::Instant;

/// Result of [`map_with_routing`].
#[derive(Debug)]
pub struct RoutedOutcome {
    /// The DFG that was mapped (original, or route-augmented; original
    /// node ids are preserved).
    pub dfg: Dfg,
    /// The mapping outcome for that DFG.
    pub outcome: MapOutcome,
    /// Number of route nodes inserted.
    pub routes: u32,
}

impl RoutedOutcome {
    /// The achieved II, if mapped.
    pub fn ii(&self) -> Option<u32> {
        self.outcome.ii()
    }
}

/// Maps `dfg`, then retries with up to `max_routes` inserted routing
/// nodes, returning the variant with the lowest II (ties prefer fewer
/// routes). The per-call `config.timeout` budget is shared across all
/// variants.
pub fn map_with_routing(
    dfg: &Dfg,
    cgra: &Cgra,
    config: &MapperConfig,
    max_routes: u32,
) -> RoutedOutcome {
    let t0 = Instant::now();
    let base_outcome = Mapper::new(dfg, cgra).with_config(config.clone()).run();
    let mut best = RoutedOutcome {
        dfg: dfg.clone(),
        outcome: base_outcome,
        routes: 0,
    };

    let mut current = dfg.clone();
    for r in 1..=max_routes {
        if let Some(total) = config.timeout {
            if t0.elapsed() >= total {
                break;
            }
        }
        let cands = route_candidates(&current);
        let Some(&edge) = cands.first() else { break };
        current = insert_route(&current, edge);
        // Once the plain mapping succeeded, deeper searches only need to
        // beat the incumbent: cap the II accordingly.
        let mut cfg = config.clone();
        if let Some(best_ii) = best.ii() {
            cfg.max_ii = cfg.max_ii.min(best_ii.saturating_sub(1).max(1));
        }
        if let Some(total) = config.timeout {
            cfg.timeout = Some(total.saturating_sub(t0.elapsed()));
        }
        let outcome = Mapper::new(&current, cgra).with_config(cfg).run();
        let improves = match (outcome.ii(), best.ii()) {
            (Some(new), Some(old)) => new < old,
            (Some(_), None) => true,
            _ => false,
        };
        if improves {
            best = RoutedOutcome {
                dfg: current.clone(),
                outcome,
                routes: r,
            };
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use satmapit_dfg::Op;

    #[test]
    fn routing_never_worsens_the_result() {
        let kernel_like = {
            let mut dfg = Dfg::new("mix");
            let a = dfg.add_const(1);
            let b = dfg.add_node(Op::Neg);
            let c = dfg.add_node(Op::Neg);
            let d = dfg.add_node(Op::Add);
            dfg.add_edge(a, b, 0);
            dfg.add_edge(a, c, 0);
            dfg.add_edge(b, d, 0);
            dfg.add_edge(c, d, 1);
            dfg
        };
        let cgra = Cgra::square(2);
        let config = MapperConfig {
            max_ii: 10,
            ..MapperConfig::default()
        };
        let plain = Mapper::new(&kernel_like, &cgra)
            .with_config(config.clone())
            .run();
        let routed = map_with_routing(&kernel_like, &cgra, &config, 2);
        assert!(routed.ii().unwrap() <= plain.ii().unwrap());
    }

    #[test]
    fn routed_result_validates_and_counts_routes() {
        // Deep chain with a far reuse: `head` is consumed again at depth 5,
        // so a plain mapping needs II >= 5; one route can halve the reuse
        // distance.
        let mut dfg = Dfg::new("deep-reuse");
        let head = dfg.add_const(7);
        let mut prev = head;
        for _ in 0..4 {
            let n = dfg.add_node(Op::Neg);
            dfg.add_edge(prev, n, 0);
            prev = n;
        }
        let tail = dfg.add_node(Op::Add);
        dfg.add_edge(prev, tail, 0);
        dfg.add_edge(head, tail, 1); // Δ(head→tail) = 5 at schedule depth
        let cgra = Cgra::square(3);
        let config = MapperConfig {
            max_ii: 12,
            ..MapperConfig::default()
        };
        let plain_ii = Mapper::new(&dfg, &cgra)
            .with_config(config.clone())
            .run()
            .ii()
            .unwrap();
        let routed = map_with_routing(&dfg, &cgra, &config, 3);
        let routed_ii = routed.ii().unwrap();
        assert!(routed_ii <= plain_ii);
        if routed.routes > 0 {
            assert!(routed.dfg.num_nodes() > dfg.num_nodes());
            let mapped = routed.outcome.result.as_ref().unwrap();
            assert!(crate::validate_mapping(&routed.dfg, &cgra, &mapped.mapping).is_ok());
        }
        // The route should genuinely help here: Δ(head→tail)=5 forces
        // II>=5 plain, while a split brings it down.
        assert!(
            routed_ii < plain_ii,
            "expected routing to win: plain {plain_ii}, routed {routed_ii}"
        );
    }
}
