//! The iterative mapping loop (paper Fig. 3): starting at MII, encode the
//! KMS constraints, solve, register-allocate, and increase II on failure.

use crate::decode::decode_model;
use crate::encoder::{EncodeError, EncodeStats};
use crate::mapping::{Mapping, TransferKind};
use crate::regs::allocate_registers;
use crate::validate::validate_mapping;
use satmapit_cgra::Cgra;
use satmapit_dfg::{Dfg, DfgError};
use satmapit_regalloc::{RegAllocError, RegAllocation};
use satmapit_sat::encode::AmoEncoding;
use satmapit_sat::{SolveLimits, SolveResult, Solver, SolverOptions, SolverStats, StopReason};
use satmapit_schedule::{mii, Kms, MobilitySchedule};
use std::fmt;
use std::time::{Duration, Instant};

/// How far beyond its ALAP a node's mobility window is extended when the
/// KMS is built (see [`Kms::build_with_slack`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SlackPolicy {
    /// The paper's strict windows (`[asap, alap]`). Shallow, wide DFGs can
    /// be unmappable at every II under this policy.
    Zero,
    /// Extend every window by a fixed number of cycles.
    Fixed(u32),
    /// Extend by `II - 1`, so every node can reach every kernel cycle in
    /// some fold (the default; restores completeness of the II search).
    #[default]
    FullWheel,
}

impl SlackPolicy {
    /// The slack in cycles for a candidate `ii`.
    ///
    /// `ii == 0` is not a meaningful candidate; `FullWheel` saturates to 0
    /// there instead of underflowing (callers reject II = 0 before any
    /// KMS is built — see [`PreparedMapper::attempt_ii`]).
    pub fn slack(self, ii: u32) -> u32 {
        match self {
            SlackPolicy::Zero => 0,
            SlackPolicy::Fixed(s) => s,
            SlackPolicy::FullWheel => ii.saturating_sub(1),
        }
    }
}

/// Configuration of the iterative mapper.
#[derive(Debug, Clone)]
pub struct MapperConfig {
    /// Give up once II exceeds this cap (the paper terminates at II = 50).
    pub max_ii: u32,
    /// Overall wall-clock budget (the paper's experiments use 4000 s).
    pub timeout: Option<Duration>,
    /// At-most-one encoding used for C1/C2.
    pub amo: AmoEncoding,
    /// Optional per-II conflict budget; exhausting it skips to the next II
    /// (off by default — it trades optimality for time).
    pub max_conflicts_per_ii: Option<u64>,
    /// Step budget for the exact register-allocation colouring.
    pub regalloc_budget: u64,
    /// Start the search at this II instead of the computed MII.
    pub start_ii: Option<u32>,
    /// Mobility-window extension policy.
    pub slack: SlackPolicy,
    /// When register allocation fails, forbid the failing PE's exact
    /// configuration with a blocking clause and re-solve the same II (up
    /// to this many cuts) before falling back to II++ (paper Fig. 3).
    /// The cut is sound: register demand on a PE is fully determined by
    /// the nodes placed on it, so only genuinely infeasible
    /// configurations are excluded. `0` reproduces the paper's plain
    /// "II++ on RA failure" behaviour.
    pub ra_cuts: u32,
    /// Encode register-file capacity (C4) directly in the SAT formulation
    /// (extension over the paper; see
    /// [`crate::encoder::EncodeOptions::register_pressure`]).
    pub register_pressure: bool,
    /// Solver tunables (restart scale, phase seed). The defaults reproduce
    /// the canonical solver; `satmapit-engine` races variations of these
    /// in its portfolio mode.
    pub solver: SolverOptions,
    /// Solve the II ladder incrementally (the default): every attempt
    /// carries an II-invariant PE-level prefix whose learned clauses and
    /// UNSAT cores transfer across candidate IIs, the sequential search
    /// keeps one live solver for the whole ladder (see
    /// [`PreparedMapper::ladder`]), and an UNSAT core that does not touch
    /// the per-II clause group proves the loop unmappable at *every* II,
    /// letting the remaining rungs be skipped without solving. `false`
    /// reproduces the paper's scratch loop exactly: each II re-encodes and
    /// re-solves from nothing. Whenever the search is complete — no
    /// [`MapperConfig::max_conflicts_per_ii`] budget and no exhausted
    /// register-allocation retry loop — both modes return the same best
    /// II (pinned by `tests/engine_agreement.rs`). Under giveup budgets
    /// the two modes may abandon different rungs, exactly as two
    /// differently-seeded scratch runs may.
    pub incremental: bool,
    /// Rung-aware heuristic transfer (incremental ladders only, default
    /// on): when the ladder advances from II to the next candidate, the
    /// new rung's variables inherit the saved phases and VSIDS
    /// activities of the previous rung's semantically corresponding
    /// variables — same node, same unfolded schedule slot, same PE. Answer-preserving: it only steers the search order, like
    /// a phase seed. `false` starts every rung's heuristics cold.
    pub rung_transfer: bool,
}

impl Default for MapperConfig {
    fn default() -> MapperConfig {
        MapperConfig {
            max_ii: 50,
            timeout: None,
            amo: AmoEncoding::Auto,
            max_conflicts_per_ii: None,
            regalloc_budget: 1_000_000,
            start_ii: None,
            slack: SlackPolicy::FullWheel,
            ra_cuts: 200,
            register_pressure: true,
            solver: SolverOptions::default(),
            incremental: true,
            rung_transfer: true,
        }
    }
}

/// What happened at one candidate II.
#[derive(Debug, Clone)]
pub struct IiAttempt {
    /// The candidate II.
    pub ii: u32,
    /// Encoded instance sizes.
    pub encode_stats: EncodeStats,
    /// Outcome of this attempt.
    pub outcome: AttemptOutcome,
    /// Solver effort (when the solver ran).
    pub solver_stats: Option<SolverStats>,
    /// Register-allocation blocking cuts added at this II.
    pub ra_cuts: u32,
    /// Wall-clock time spent on this II.
    pub elapsed: Duration,
}

/// Per-II outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttemptOutcome {
    /// A mapping was found and register-allocated.
    Mapped,
    /// SAT, but register allocation failed (paper Fig. 3's second loop).
    RegAllocFailed(RegAllocError),
    /// Proven unsatisfiable at this II.
    Unsat,
    /// Solver budget exhausted (conflict budget skips to the next II).
    SolverBudget(StopReason),
}

/// Terminal mapping failures.
#[derive(Debug, Clone, PartialEq)]
pub enum MapFailure {
    /// The input DFG is malformed.
    InvalidDfg(DfgError),
    /// No II can map this DFG on this architecture (see [`EncodeError`]).
    Structural(EncodeError),
    /// The wall-clock budget expired (a "red ✕" in the paper's Fig. 6).
    Timeout {
        /// The II being attempted when time ran out.
        at_ii: u32,
    },
    /// II climbed past the cap without a mapping (a "black ✕" in Fig. 6).
    IiCapReached {
        /// The configured cap.
        cap: u32,
    },
    /// A candidate II outside the valid range was requested (0, or above
    /// the configured cap). The iterative drivers never produce this; it
    /// guards direct [`PreparedMapper::attempt_ii`] callers against the
    /// `II - 1` underflow a zero II would otherwise hit.
    InvalidIi {
        /// The rejected candidate.
        ii: u32,
        /// The configured cap it must not exceed.
        max_ii: u32,
    },
    /// Internal consistency failure: the decoded mapping did not validate
    /// (indicates an encoder bug; never expected).
    Internal(String),
}

impl fmt::Display for MapFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapFailure::InvalidDfg(e) => write!(f, "invalid DFG: {e}"),
            MapFailure::Structural(e) => write!(f, "structurally unmappable: {e}"),
            MapFailure::Timeout { at_ii } => write!(f, "timeout while attempting II={at_ii}"),
            MapFailure::IiCapReached { cap } => write!(f, "no mapping up to II cap {cap}"),
            MapFailure::InvalidIi { ii, max_ii } => {
                write!(f, "candidate II {ii} outside the valid range 1..={max_ii}")
            }
            MapFailure::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for MapFailure {}

/// A successful mapping with its register allocation.
#[derive(Debug, Clone)]
pub struct MappedLoop {
    /// The placement/schedule.
    pub mapping: Mapping,
    /// Register assignment for register-file transfers.
    pub registers: RegAllocation,
    /// The MII lower bound the search started from.
    pub mii: u32,
}

impl MappedLoop {
    /// The achieved initiation interval.
    pub fn ii(&self) -> u32 {
        self.mapping.ii
    }
}

/// Full mapping report: result plus the per-II trace.
#[derive(Debug, Clone)]
pub struct MapOutcome {
    /// Success or terminal failure.
    pub result: Result<MappedLoop, MapFailure>,
    /// One entry per II tried, in order.
    pub attempts: Vec<IiAttempt>,
    /// Total wall-clock time.
    pub elapsed: Duration,
}

impl MapOutcome {
    /// The achieved II, if mapping succeeded.
    pub fn ii(&self) -> Option<u32> {
        self.result.as_ref().ok().map(MappedLoop::ii)
    }
}

/// The SAT-MapIt mapper.
///
/// ```
/// use satmapit_core::Mapper;
/// use satmapit_cgra::Cgra;
/// use satmapit_dfg::{Dfg, Op};
///
/// let mut dfg = Dfg::new("pair");
/// let a = dfg.add_const(1);
/// let b = dfg.add_node(Op::Neg);
/// dfg.add_edge(a, b, 0);
///
/// let cgra = Cgra::square(2);
/// let outcome = Mapper::new(&dfg, &cgra).run();
/// assert_eq!(outcome.ii(), Some(1));
/// ```
#[derive(Debug)]
pub struct Mapper<'a> {
    dfg: &'a Dfg,
    cgra: &'a Cgra,
    config: MapperConfig,
}

impl<'a> Mapper<'a> {
    /// Creates a mapper with the default configuration.
    pub fn new(dfg: &'a Dfg, cgra: &'a Cgra) -> Mapper<'a> {
        Mapper {
            dfg,
            cgra,
            config: MapperConfig::default(),
        }
    }

    /// Replaces the configuration.
    pub fn with_config(mut self, config: MapperConfig) -> Mapper<'a> {
        self.config = config;
        self
    }

    /// Sets the wall-clock budget.
    pub fn with_timeout(mut self, timeout: Duration) -> Mapper<'a> {
        self.config.timeout = Some(timeout);
        self
    }

    /// Validates the DFG and precomputes the mobility schedule and MII,
    /// returning a session that can attempt candidate IIs individually.
    ///
    /// This is the reusable core shared by the sequential [`Mapper::run`]
    /// loop and the parallel II-race in `satmapit-engine`.
    pub fn prepare(&self) -> Result<PreparedMapper<'a>, MapFailure> {
        self.dfg.validate().map_err(MapFailure::InvalidDfg)?;
        let ms = MobilitySchedule::compute(self.dfg).expect("validated above");
        let Some(mii_v) = mii(self.dfg, self.cgra) else {
            // Memory operations with zero memory-capable PEs: the same
            // structural condition the encoder reports per node.
            let node = self
                .dfg
                .node_ids()
                .find(|&n| self.dfg.node(n).op.is_memory())
                .expect("res_mii is only None when memory ops exist");
            return Err(MapFailure::Structural(EncodeError::NoPeForOp { node }));
        };
        Ok(PreparedMapper {
            dfg: self.dfg,
            cgra: self.cgra,
            config: self.config.clone(),
            ms,
            mii: mii_v,
            prefix_unsat: std::sync::OnceLock::new(),
        })
    }

    /// Runs the iterative search of paper Fig. 3.
    pub fn run(&self) -> MapOutcome {
        if !satmapit_obs::trace::enabled() {
            return self.run_inner();
        }
        let mut span = satmapit_obs::trace::Span::begin(
            satmapit_obs::trace::Category::Ladder,
            &format!("ladder {}", self.dfg.name()),
        );
        let outcome = self.run_inner();
        span.arg("rungs", outcome.attempts.len() as i64);
        match &outcome.result {
            Ok(mapped) => {
                span.arg_str("status", "mapped");
                span.arg("ii", i64::from(mapped.mapping.ii));
            }
            Err(failure) => span.arg_str("status", failure_label(failure)),
        }
        outcome
    }

    fn run_inner(&self) -> MapOutcome {
        let t0 = Instant::now();
        let deadline = self.config.timeout.map(|d| t0 + d);
        let mut attempts = Vec::new();

        let prepared = match self.prepare() {
            Ok(p) => p,
            Err(e) => {
                return MapOutcome {
                    result: Err(e),
                    attempts,
                    elapsed: t0.elapsed(),
                };
            }
        };

        // Incremental mode keeps one live solver for the whole ladder:
        // learned clauses carry across candidate IIs and an UNSAT core
        // confined to the II-invariant prefix ends the search immediately.
        let mut ladder = if self.config.incremental {
            match prepared.ladder() {
                Ok(l) => Some(l),
                Err(e) => {
                    return MapOutcome {
                        result: Err(e),
                        attempts,
                        elapsed: t0.elapsed(),
                    };
                }
            }
        } else {
            None
        };

        let mut ii = prepared.start_ii();
        while ii <= self.config.max_ii {
            if let Some(dl) = deadline {
                if Instant::now() >= dl {
                    return MapOutcome {
                        result: Err(MapFailure::Timeout { at_ii: ii }),
                        attempts,
                        elapsed: t0.elapsed(),
                    };
                }
            }
            let mut limits = SolveLimits::none();
            if let Some(dl) = deadline {
                limits = limits.with_deadline(dl);
            }
            if let Some(c) = self.config.max_conflicts_per_ii {
                limits = limits.with_max_conflicts(c);
            }
            let attempt_result = match &mut ladder {
                Some(ladder) => ladder.attempt_ii(ii, &limits),
                None => prepared.attempt_ii(ii, &limits),
            };
            match attempt_result {
                Err(e) => {
                    return MapOutcome {
                        result: Err(e),
                        attempts,
                        elapsed: t0.elapsed(),
                    };
                }
                Ok(report) => {
                    let mapped = report.mapped;
                    let unmappable = report.proven_unmappable;
                    attempts.push(report.attempt);
                    if let Some(m) = mapped {
                        return MapOutcome {
                            result: Ok(m),
                            attempts,
                            elapsed: t0.elapsed(),
                        };
                    }
                    if unmappable {
                        // The UNSAT core avoided the per-II group: no II
                        // can map. Skip the remaining rungs; the answer is
                        // exactly what the scratch ladder would grind out.
                        return MapOutcome {
                            result: Err(MapFailure::IiCapReached {
                                cap: self.config.max_ii,
                            }),
                            attempts,
                            elapsed: t0.elapsed(),
                        };
                    }
                }
            }
            ii += 1;
        }
        MapOutcome {
            result: Err(MapFailure::IiCapReached {
                cap: self.config.max_ii,
            }),
            attempts,
            elapsed: t0.elapsed(),
        }
    }
}

/// What one [`PreparedMapper::attempt_ii`] call produced.
#[derive(Debug, Clone)]
pub struct AttemptReport {
    /// The attempt trace entry (outcome, solver effort, timings).
    pub attempt: IiAttempt,
    /// The mapping, present iff `attempt.outcome == AttemptOutcome::Mapped`.
    pub mapped: Option<MappedLoop>,
    /// `true` when the UNSAT core of this attempt did not touch the per-II
    /// clause group: the contradiction lives entirely in the II-invariant
    /// PE-level prefix, so **every** candidate II is infeasible and the
    /// remaining ladder rungs can be skipped without solving. Only the
    /// incremental formulation ([`MapperConfig::incremental`]) can set
    /// this; the scratch path always reports `false`.
    pub proven_unmappable: bool,
}

impl AttemptReport {
    /// `true` when this II is settled: it either mapped or was proven /
    /// declared unmappable (UNSAT, register-allocation giveup, conflict
    /// budget). Cancelled attempts are *not* definitive — the candidate II
    /// was abandoned, not answered.
    pub fn is_definitive(&self) -> bool {
        !matches!(
            self.attempt.outcome,
            AttemptOutcome::SolverBudget(StopReason::Cancelled)
        )
    }
}

/// Short trace label for a terminal failure.
pub(crate) fn failure_label(failure: &MapFailure) -> &'static str {
    match failure {
        MapFailure::InvalidDfg(_) => "invalid_dfg",
        MapFailure::Structural(_) => "structural",
        MapFailure::Timeout { .. } => "timeout",
        MapFailure::IiCapReached { .. } => "ii_cap_reached",
        MapFailure::InvalidIi { .. } => "invalid_ii",
        MapFailure::Internal(_) => "internal",
    }
}

/// Records the `rung` span for one finished II attempt — outcome plus
/// the solver-effort deltas (conflicts / propagations / restarts / GC /
/// sharing) — and, when those deltas are nonzero, companion `gc` and
/// `share` instants so the categories are filterable on the timeline.
/// Shared by the one-shot [`PreparedMapper::attempt_ii`], the
/// incremental [`crate::ladder::IiLadder::attempt_ii`], and out-of-crate
/// [`crate::backend::Backend`] implementations (so every backend's rungs
/// render identically on the timeline). One atomic load when tracing is
/// off.
pub fn trace_rung_attempt(ii: u32, start_us: u64, result: &Result<AttemptReport, MapFailure>) {
    use satmapit_obs::trace::{self, ArgValue, Category};
    if !trace::enabled() {
        return;
    }
    let end_us = trace::now_us();
    let mut args: Vec<(&'static str, ArgValue)> = vec![("ii", ArgValue::Int(i64::from(ii)))];
    let outcome = match result {
        Ok(report) => match &report.attempt.outcome {
            AttemptOutcome::Mapped => "mapped",
            AttemptOutcome::RegAllocFailed(_) => "regalloc_failed",
            AttemptOutcome::Unsat if report.proven_unmappable => "unsat_prefix",
            AttemptOutcome::Unsat => "unsat",
            AttemptOutcome::SolverBudget(StopReason::ConflictLimit) => "conflict_limit",
            AttemptOutcome::SolverBudget(StopReason::Cancelled) => "cancelled",
            AttemptOutcome::SolverBudget(StopReason::Timeout) => "timeout",
        },
        Err(failure) => failure_label(failure),
    };
    args.push(("outcome", ArgValue::Str(outcome.to_string())));
    let stats = match result {
        Ok(report) => {
            args.push(("ra_cuts", ArgValue::Int(i64::from(report.attempt.ra_cuts))));
            report.attempt.solver_stats.as_ref()
        }
        Err(_) => None,
    };
    if let Some(stats) = stats {
        for (key, value) in [
            ("conflicts", stats.conflicts),
            ("propagations", stats.propagations),
            ("decisions", stats.decisions),
            ("restarts", stats.restarts),
            ("gc_runs", stats.gc_runs),
            ("lits_reclaimed", stats.lits_reclaimed),
            ("shared_exported", stats.shared_exported),
            ("shared_imported", stats.shared_imported),
        ] {
            args.push((key, ArgValue::Int(value as i64)));
        }
    }
    let dur_us = end_us.saturating_sub(start_us);
    trace::complete(
        Category::Rung,
        &format!("rung ii={ii}"),
        start_us,
        dur_us,
        args,
    );
    if let Some(stats) = stats {
        if stats.gc_runs > 0 {
            trace::complete(
                Category::Gc,
                &format!("gc ii={ii}"),
                end_us,
                0,
                vec![
                    ("gc_runs", ArgValue::Int(stats.gc_runs as i64)),
                    ("lits_reclaimed", ArgValue::Int(stats.lits_reclaimed as i64)),
                ],
            );
        }
        if stats.shared_exported + stats.shared_imported + stats.shared_dropped > 0 {
            trace::complete(
                Category::Share,
                &format!("share ii={ii}"),
                end_us,
                0,
                vec![
                    ("exported", ArgValue::Int(stats.shared_exported as i64)),
                    ("imported", ArgValue::Int(stats.shared_imported as i64)),
                    ("dropped", ArgValue::Int(stats.shared_dropped as i64)),
                ],
            );
        }
    }
}

/// A validated mapping session: the DFG's mobility schedule and MII are
/// computed once, after which any candidate II can be attempted — from one
/// thread or many (it is `Sync`; each attempt builds its own solver).
///
/// ```
/// use satmapit_cgra::Cgra;
/// use satmapit_core::Mapper;
/// use satmapit_dfg::{Dfg, Op};
/// use satmapit_sat::SolveLimits;
///
/// let mut dfg = Dfg::new("pair");
/// let a = dfg.add_const(1);
/// let b = dfg.add_node(Op::Neg);
/// dfg.add_edge(a, b, 0);
/// let cgra = Cgra::square(2);
///
/// let mapper = Mapper::new(&dfg, &cgra);
/// let prepared = mapper.prepare().unwrap();
/// let report = prepared.attempt_ii(prepared.start_ii(), &SolveLimits::none()).unwrap();
/// assert!(report.mapped.is_some());
/// ```
#[derive(Debug, Clone)]
pub struct PreparedMapper<'a> {
    pub(crate) dfg: &'a Dfg,
    pub(crate) cgra: &'a Cgra,
    pub(crate) config: MapperConfig,
    pub(crate) ms: MobilitySchedule,
    pub(crate) mii: u32,
    /// The lazily pre-solved verdict of the II-invariant PE-level prefix
    /// (queried under incremental mode only): `true` means no II can map.
    /// Lazy so the sequential ladder — which installs the prefix in its
    /// own live solver anyway — never pays for a second build; the
    /// one-shot race path probes it once and shares the cached verdict
    /// with every cloned portfolio variant.
    pub(crate) prefix_unsat: std::sync::OnceLock<bool>,
}

impl<'a> PreparedMapper<'a> {
    /// The MII lower bound (`max(ResMII, RecMII)`).
    pub fn mii(&self) -> u32 {
        self.mii
    }

    /// `true` when the loop is proven unmappable at *every* II: the
    /// II-invariant PE-level prefix is contradictory. Computed on first
    /// use (and only under [`MapperConfig::incremental`] — the paper's
    /// scratch loop must grind the ladder itself); it shares no variables
    /// with any per-II delta, so the verdict is a per-session constant.
    /// Drivers can skip the whole ladder.
    pub fn proven_unmappable(&self) -> bool {
        self.config.incremental
            && *self.prefix_unsat.get_or_init(|| {
                let mut probe = Solver::new();
                crate::ladder::install_prefix(&mut probe, self.dfg, self.cgra).is_ok()
                    && !probe.is_ok()
            })
    }

    /// The first II the search considers (configured start or MII).
    pub fn start_ii(&self) -> u32 {
        self.config.start_ii.unwrap_or(self.mii).max(1)
    }

    /// The configuration this session attempts IIs under.
    pub fn config(&self) -> &MapperConfig {
        &self.config
    }

    /// Replaces the configuration (e.g. a portfolio variant's solver
    /// options). The DFG/CGRA and precomputed schedule are reused.
    pub fn with_config(mut self, config: MapperConfig) -> PreparedMapper<'a> {
        self.config = config;
        self
    }

    /// Opens an incremental II ladder over this session: one live solver
    /// answers every candidate II, carrying learned clauses (and the
    /// II-invariant PE-level prefix) across rungs. See
    /// [`crate::ladder::IiLadder`].
    ///
    /// # Errors
    ///
    /// Fails with [`MapFailure::Structural`] when some node has no PE able
    /// to execute it (the same condition every per-II encode would hit).
    pub fn ladder(&self) -> Result<crate::ladder::IiLadder<'_, 'a>, MapFailure> {
        crate::ladder::IiLadder::open(self).map_err(MapFailure::Structural)
    }

    /// Attempts one candidate II: encode, solve (with register-allocation
    /// cuts), decode, validate, allocate registers.
    ///
    /// Candidate IIs must lie in `1..=max_ii`; anything else is rejected
    /// with [`MapFailure::InvalidIi`] (II = 0 has no kernel and used to
    /// underflow the `FullWheel` slack computation).
    ///
    /// Terminal conditions become `Err`: an out-of-range II, a structural
    /// encoding failure, an internal consistency failure, or the
    /// wall-clock deadline in `limits` expiring ([`MapFailure::Timeout`]).
    /// Everything else — including a cooperative cancellation via
    /// `limits.stop`, reported as
    /// `AttemptOutcome::SolverBudget(StopReason::Cancelled)` — is an `Ok`
    /// report.
    ///
    /// Under [`MapperConfig::incremental`] (the default), preparation
    /// pre-solved the II-invariant PE-level prefix of [`crate::ladder`];
    /// if it is contradictory, the attempt answers `Unsat` with
    /// [`AttemptReport::proven_unmappable`] set *without building a
    /// formula* — every II is infeasible. (The prefix shares no variables
    /// with any per-II encoding, so per-attempt core analysis could never
    /// say more than this precomputed verdict; the persistent
    /// [`PreparedMapper::ladder`] derives the same fact through its
    /// failed-assumption cores.)
    pub fn attempt_ii(&self, ii: u32, limits: &SolveLimits) -> Result<AttemptReport, MapFailure> {
        if !satmapit_obs::trace::enabled() {
            return self.attempt_ii_inner(ii, limits);
        }
        let start_us = satmapit_obs::trace::now_us();
        let result = self.attempt_ii_inner(ii, limits);
        trace_rung_attempt(ii, start_us, &result);
        result
    }

    fn attempt_ii_inner(&self, ii: u32, limits: &SolveLimits) -> Result<AttemptReport, MapFailure> {
        if ii == 0 || ii > self.config.max_ii {
            return Err(MapFailure::InvalidIi {
                ii,
                max_ii: self.config.max_ii,
            });
        }
        let t_ii = Instant::now();
        // An already-raised stop flag makes the whole attempt moot; bail
        // before paying for the KMS fold and the CNF encoding (the solver
        // checks again before searching, covering the encode window).
        if limits.stop_requested() {
            return Ok(AttemptReport {
                attempt: IiAttempt {
                    ii,
                    encode_stats: EncodeStats::default(),
                    outcome: AttemptOutcome::SolverBudget(StopReason::Cancelled),
                    solver_stats: None,
                    ra_cuts: 0,
                    elapsed: t_ii.elapsed(),
                },
                mapped: None,
                proven_unmappable: false,
            });
        }
        if self.proven_unmappable() {
            return Ok(AttemptReport {
                attempt: IiAttempt {
                    ii,
                    encode_stats: EncodeStats::default(),
                    outcome: AttemptOutcome::Unsat,
                    solver_stats: None,
                    ra_cuts: 0,
                    elapsed: t_ii.elapsed(),
                },
                mapped: None,
                proven_unmappable: true,
            });
        }
        let kms = Kms::build_with_slack(&self.ms, ii, self.config.slack.slack(ii));
        let options = crate::encoder::EncodeOptions {
            amo: self.config.amo,
            register_pressure: self.config.register_pressure,
        };
        let enc = crate::encoder::encode_with_options(self.dfg, self.cgra, &kms, options)
            .map_err(MapFailure::Structural)?;
        let mut solver = Solver::from_cnf_with(&enc.formula, &self.config.solver);
        // Portfolio learnt-clause sharing: the engine's race hands each
        // sibling a handle through the limits; connect it under the
        // compatibility class of the exact CNF this attempt encoded, so
        // only siblings with an identical formula (same II, same AMO
        // encoding, same variable numbering) exchange clauses. The
        // register-allocation cuts added below automatically disable this
        // solver's exports (they are local clauses); imports stay sound.
        if let Some(share) = &limits.share {
            let class = satmapit_sat::formula_class(&enc.formula);
            solver.connect_share(share.clone(), class);
        }
        // Solve at this II; on register-allocation failure, cut the
        // failing PE's configuration and re-solve (warm solver).
        let mut cuts = 0u32;
        let mut last_ra_error = None;
        loop {
            let solve_result = solver.solve_limited(&[], limits);
            match solve_result {
                SolveResult::Sat => {
                    let model = solver.model().expect("SAT result has a model");
                    let mapping = decode_model(self.dfg, &kms, &enc.varmap, model)
                        .map_err(|e| MapFailure::Internal(e.to_string()))?;
                    if let Err(violations) = validate_mapping(self.dfg, self.cgra, &mapping) {
                        return Err(MapFailure::Internal(format!(
                            "decoded mapping failed validation: {violations:?}"
                        )));
                    }
                    match allocate_registers(
                        self.dfg,
                        self.cgra,
                        &mapping,
                        self.config.regalloc_budget,
                    ) {
                        Ok(registers) => {
                            return Ok(AttemptReport {
                                attempt: IiAttempt {
                                    ii,
                                    encode_stats: enc.stats,
                                    outcome: AttemptOutcome::Mapped,
                                    solver_stats: Some(solver.stats().clone()),
                                    ra_cuts: cuts,
                                    elapsed: t_ii.elapsed(),
                                },
                                mapped: Some(MappedLoop {
                                    mapping,
                                    registers,
                                    mii: self.mii,
                                }),
                                proven_unmappable: false,
                            });
                        }
                        Err(e) if cuts < self.config.ra_cuts => {
                            let model = solver.model().expect("model").to_vec();
                            let clause = self.ra_cut_clause(&enc.varmap, &model, &mapping, e.pe);
                            debug_assert!(!clause.is_empty());
                            solver.add_clause(&clause);
                            cuts += 1;
                            last_ra_error = Some(e);
                            continue;
                        }
                        Err(e) => {
                            return Ok(AttemptReport {
                                attempt: IiAttempt {
                                    ii,
                                    encode_stats: enc.stats,
                                    outcome: AttemptOutcome::RegAllocFailed(e),
                                    solver_stats: Some(solver.stats().clone()),
                                    ra_cuts: cuts,
                                    elapsed: t_ii.elapsed(),
                                },
                                mapped: None,
                                proven_unmappable: false,
                            });
                        }
                    }
                }
                SolveResult::Unsat => {
                    // With cuts this means: no register-allocatable
                    // mapping exists at this II.
                    let outcome = match last_ra_error {
                        Some(e) if cuts > 0 => AttemptOutcome::RegAllocFailed(e),
                        _ => AttemptOutcome::Unsat,
                    };
                    return Ok(AttemptReport {
                        attempt: IiAttempt {
                            ii,
                            encode_stats: enc.stats,
                            outcome,
                            solver_stats: Some(solver.stats().clone()),
                            ra_cuts: cuts,
                            elapsed: t_ii.elapsed(),
                        },
                        mapped: None,
                        proven_unmappable: false,
                    });
                }
                SolveResult::Unknown(StopReason::Timeout) => {
                    return Err(MapFailure::Timeout { at_ii: ii });
                }
                SolveResult::Unknown(
                    reason @ (StopReason::ConflictLimit | StopReason::Cancelled),
                ) => {
                    return Ok(AttemptReport {
                        attempt: IiAttempt {
                            ii,
                            encode_stats: enc.stats,
                            outcome: AttemptOutcome::SolverBudget(reason),
                            solver_stats: Some(solver.stats().clone()),
                            ra_cuts: cuts,
                            elapsed: t_ii.elapsed(),
                        },
                        mapped: None,
                        proven_unmappable: false,
                    });
                }
            }
        }
    }

    /// Builds a blocking clause after a register-allocation failure on
    /// `failed_pe`.
    ///
    /// Preferred cut: a minimal witness of infeasibility — `regs + 1`
    /// mutually-overlapping live ranges (a clique in the PE's circular-arc
    /// interference graph), blocked via the producers *and* the consumers
    /// that pin each lifetime. Whenever those placements co-occur the PE
    /// provably needs more registers than it has, so the cut never removes
    /// a feasible solution. Fallback: block the PE's whole configuration
    /// (register demand on a PE is fully determined by the nodes placed on
    /// it — also sound, just weaker).
    pub(crate) fn ra_cut_clause(
        &self,
        varmap: &crate::varmap::VarMap,
        model: &[bool],
        mapping: &Mapping,
        failed_pe: usize,
    ) -> Vec<satmapit_sat::Lit> {
        use satmapit_graphs::arcs::{interference_graph, CyclicArc};
        use satmapit_graphs::clique::clique_of_size;

        // True placement literal per node.
        let mut lit_of = vec![None; self.dfg.num_nodes()];
        #[allow(clippy::needless_range_loop)] // idx doubles as the variable id
        for idx in 0..varmap.num_vars() {
            if model[idx] {
                let (node, _, _) = varmap.decode(satmapit_sat::Var::new(idx as u32));
                lit_of[node.index()] = Some(satmapit_sat::Var::new(idx as u32).positive());
            }
        }

        let per_pe = crate::regs::live_values(self.dfg, self.cgra, mapping);
        let values = &per_pe[failed_pe];
        let ii = mapping.ii;
        let arcs: Vec<CyclicArc> = values.iter().map(|v| v.arc(ii)).collect();
        let graph = interference_graph(&arcs);
        let want = usize::from(self.cgra.regs_per_pe()) + 1;
        let result = clique_of_size(&graph, want, 50_000);

        let mut cut_nodes: Vec<usize> = Vec::new();
        if result.clique.len() >= want {
            for &vi in &result.clique {
                let producer = values[vi].id as usize;
                cut_nodes.push(producer);
                // The same-PE consumer realizing the value's span.
                let pnode = satmapit_dfg::NodeId(producer as u32);
                let mut best: Option<(i64, usize)> = None;
                for eid in self.dfg.out_edges(pnode) {
                    if mapping.transfer(eid) == TransferKind::SamePeRegister {
                        let delta = mapping.edge_delta(self.dfg, eid);
                        let consumer = self.dfg.edge(eid).dst.index();
                        if best.is_none_or(|(d, _)| delta > d) {
                            best = Some((delta, consumer));
                        }
                    }
                }
                if let Some((_, consumer)) = best {
                    cut_nodes.push(consumer);
                }
            }
        } else {
            // Fallback: every node on the failing PE.
            for (n, p) in mapping.iter() {
                if p.pe.index() == failed_pe {
                    cut_nodes.push(n.index());
                }
            }
        }
        cut_nodes.sort_unstable();
        cut_nodes.dedup();
        cut_nodes
            .into_iter()
            .filter_map(|n| lit_of[n].map(|l| !l))
            .collect()
    }
}

/// Maps `dfg` onto `cgra` with the default configuration.
pub fn map(dfg: &Dfg, cgra: &Cgra) -> MapOutcome {
    Mapper::new(dfg, cgra).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use satmapit_dfg::Op;

    fn chain(n: usize) -> Dfg {
        let mut dfg = Dfg::new(format!("chain{n}"));
        let mut prev = dfg.add_const(1);
        for _ in 1..n {
            let next = dfg.add_node(Op::Neg);
            dfg.add_edge(prev, next, 0);
            prev = next;
        }
        dfg
    }

    #[test]
    fn chain_maps_at_mii() {
        let dfg = chain(4);
        let cgra = Cgra::square(2);
        let outcome = map(&dfg, &cgra);
        assert_eq!(outcome.ii(), Some(1));
        let mapped = outcome.result.unwrap();
        assert_eq!(mapped.mii, 1);
        assert!(validate_mapping(&dfg, &cgra, &mapped.mapping).is_ok());
    }

    #[test]
    fn parallel_ops_push_ii_up() {
        // 9 independent constants on 2x2: ResMII = 3.
        let mut dfg = Dfg::new("par9");
        for i in 0..9 {
            let _ = dfg.add_const(i);
        }
        let cgra = Cgra::square(2);
        let outcome = map(&dfg, &cgra);
        assert_eq!(outcome.ii(), Some(3));
        assert_eq!(outcome.attempts.len(), 1, "starts directly at MII=3");
    }

    #[test]
    fn attempts_record_unsat_iis() {
        // A recurrence a->b->c->a on a 1x1: RecMII=3 and everything on one
        // PE. The accumulator cycle forces II=3.
        let mut dfg = Dfg::new("rec");
        let a = dfg.add_node(Op::Neg);
        let b = dfg.add_node(Op::Neg);
        let c = dfg.add_node(Op::Neg);
        dfg.add_edge(a, b, 0);
        dfg.add_edge(b, c, 0);
        dfg.add_back_edge(c, a, 0, 1, 0);
        let cgra = Cgra::square(1);
        let outcome = map(&dfg, &cgra);
        assert_eq!(outcome.ii(), Some(3));
    }

    #[test]
    fn ii_cap_reported() {
        // Fanout that cannot be satisfied on a 1x1 CGRA: a const feeding
        // two consumers is fine (same PE), but a node with a consumer that
        // must read within II while every II is blocked... Use an
        // unmappable case: two parallel chains with a cross dependency
        // needing adjacency on 1 PE is actually fine. Instead use a cap of
        // 0 iterations: max_ii below MII.
        let dfg = chain(5);
        let cgra = Cgra::square(1);
        let config = MapperConfig {
            max_ii: 3, // MII is 5 on a 1x1 (5 nodes, 1 PE)
            ..MapperConfig::default()
        };
        let outcome = Mapper::new(&dfg, &cgra).with_config(config).run();
        assert_eq!(
            outcome.result.unwrap_err(),
            MapFailure::IiCapReached { cap: 3 }
        );
        assert!(outcome.attempts.is_empty(), "MII already exceeds the cap");
    }

    #[test]
    fn invalid_dfg_fails_fast() {
        let mut dfg = Dfg::new("bad");
        let _ = dfg.add_node(Op::Add);
        let cgra = Cgra::square(2);
        let outcome = map(&dfg, &cgra);
        assert!(matches!(outcome.result, Err(MapFailure::InvalidDfg(_))));
    }

    #[test]
    fn structural_failure_reported() {
        let mut dfg = Dfg::new("fib");
        let f = dfg.add_node(Op::Add);
        dfg.add_back_edge(f, f, 0, 1, 1);
        dfg.add_back_edge(f, f, 1, 2, 0);
        let cgra = Cgra::square(2);
        let outcome = map(&dfg, &cgra);
        assert!(matches!(
            outcome.result,
            Err(MapFailure::Structural(EncodeError::SelfEdgeDistance { .. }))
        ));
    }

    #[test]
    fn zero_timeout_reports_timeout() {
        let dfg = chain(6);
        let cgra = Cgra::square(2);
        let outcome = Mapper::new(&dfg, &cgra)
            .with_timeout(Duration::from_secs(0))
            .run();
        assert!(matches!(outcome.result, Err(MapFailure::Timeout { .. })));
    }

    #[test]
    fn start_ii_override() {
        let dfg = chain(3);
        let cgra = Cgra::square(2);
        let config = MapperConfig {
            start_ii: Some(2),
            ..MapperConfig::default()
        };
        let outcome = Mapper::new(&dfg, &cgra).with_config(config).run();
        assert_eq!(outcome.ii(), Some(2), "search starts above MII");
    }

    #[test]
    fn attempt_ii_rejects_out_of_range_candidates() {
        // Satellite regression: II = 0 used to underflow the FullWheel
        // slack (`ii - 1` on u32) and panic; out-of-range IIs are now a
        // proper error for both the scratch and the incremental path.
        let dfg = chain(3);
        let cgra = Cgra::square(2);
        for incremental in [false, true] {
            let config = MapperConfig {
                incremental,
                ..MapperConfig::default()
            };
            let prepared = Mapper::new(&dfg, &cgra)
                .with_config(config)
                .prepare()
                .unwrap();
            assert_eq!(
                prepared.attempt_ii(0, &SolveLimits::none()).unwrap_err(),
                MapFailure::InvalidIi { ii: 0, max_ii: 50 }
            );
            assert_eq!(
                prepared.attempt_ii(51, &SolveLimits::none()).unwrap_err(),
                MapFailure::InvalidIi { ii: 51, max_ii: 50 }
            );
            let mut ladder = prepared.ladder().unwrap();
            assert_eq!(
                ladder.attempt_ii(0, &SolveLimits::none()).unwrap_err(),
                MapFailure::InvalidIi { ii: 0, max_ii: 50 }
            );
        }
    }

    #[test]
    fn incremental_and_scratch_ladders_agree() {
        // The recurrence climbs through UNSAT rungs before mapping; both
        // formulations must settle on the same best II with the same
        // per-II trace.
        let mut dfg = Dfg::new("rec");
        let a = dfg.add_node(Op::Neg);
        let b = dfg.add_node(Op::Neg);
        let c = dfg.add_node(Op::Neg);
        dfg.add_edge(a, b, 0);
        dfg.add_edge(b, c, 0);
        dfg.add_back_edge(c, a, 0, 1, 0);
        let cgra = Cgra::square(1);
        let scratch = Mapper::new(&dfg, &cgra)
            .with_config(MapperConfig {
                incremental: false,
                ..MapperConfig::default()
            })
            .run();
        let incremental = Mapper::new(&dfg, &cgra).run();
        assert_eq!(incremental.ii(), scratch.ii());
        assert_eq!(incremental.ii(), Some(3));
        let scratch_iis: Vec<(u32, AttemptOutcome)> = scratch
            .attempts
            .iter()
            .map(|a| (a.ii, a.outcome.clone()))
            .collect();
        let incr_iis: Vec<(u32, AttemptOutcome)> = incremental
            .attempts
            .iter()
            .map(|a| (a.ii, a.outcome.clone()))
            .collect();
        assert_eq!(scratch_iis, incr_iis);
    }

    #[test]
    fn prefix_core_proves_unmappable_in_one_rung() {
        // Split load/store columns on a 1x4: the load (column 0) feeds the
        // store (column 3) directly, which no II can make adjacent. The
        // scratch ladder grinds every rung to the cap; the incremental
        // ladder proves it from the first rung's UNSAT core.
        use satmapit_cgra::MemoryPolicy;
        let mut dfg = Dfg::new("split");
        let addr = dfg.add_const(0);
        let ld = dfg.add_node(Op::Load);
        dfg.add_edge(addr, ld, 0);
        let st = dfg.add_node(Op::Store);
        dfg.add_edge(addr, st, 0);
        dfg.add_edge(ld, st, 1);
        let cgra = Cgra::new(1, 4).with_memory_policy(MemoryPolicy::SplitLoadStore);

        let prepared = Mapper::new(&dfg, &cgra).prepare().unwrap();
        let report = prepared
            .attempt_ii(prepared.start_ii(), &SolveLimits::none())
            .unwrap();
        assert_eq!(report.attempt.outcome, AttemptOutcome::Unsat);
        assert!(report.proven_unmappable, "core avoids the per-II group");

        let incremental = Mapper::new(&dfg, &cgra).run();
        assert_eq!(
            incremental.result.unwrap_err(),
            MapFailure::IiCapReached { cap: 50 }
        );
        assert_eq!(
            incremental.attempts.len(),
            1,
            "one rung settles the whole ladder"
        );

        // Agreement: the scratch ladder reaches the same verdict the slow
        // way (smaller cap to keep the grind cheap).
        let scratch = Mapper::new(&dfg, &cgra)
            .with_config(MapperConfig {
                incremental: false,
                max_ii: 6,
                ..MapperConfig::default()
            })
            .run();
        assert_eq!(
            scratch.result.unwrap_err(),
            MapFailure::IiCapReached { cap: 6 }
        );
        assert_eq!(scratch.attempts.len(), 6, "every rung ground out");
    }

    #[test]
    fn ladder_tracks_proven_lower_bound() {
        let mut dfg = Dfg::new("rec");
        let a = dfg.add_node(Op::Neg);
        let b = dfg.add_node(Op::Neg);
        let c = dfg.add_node(Op::Neg);
        dfg.add_edge(a, b, 0);
        dfg.add_edge(b, c, 0);
        dfg.add_back_edge(c, a, 0, 1, 0);
        let cgra = Cgra::square(2);
        let config = MapperConfig {
            start_ii: Some(1),
            ..MapperConfig::default()
        };
        let prepared = Mapper::new(&dfg, &cgra)
            .with_config(config)
            .prepare()
            .unwrap();
        let mut ladder = prepared.ladder().unwrap();
        assert_eq!(ladder.proven_lower_bound(), 1);
        for ii in 1..=2 {
            let report = ladder.attempt_ii(ii, &SolveLimits::none()).unwrap();
            assert_eq!(report.attempt.outcome, AttemptOutcome::Unsat, "ii={ii}");
        }
        assert_eq!(ladder.proven_lower_bound(), 3, "IIs 1 and 2 proven out");
        let report = ladder.attempt_ii(3, &SolveLimits::none()).unwrap();
        assert!(report.mapped.is_some());
        assert!(!ladder.proven_unmappable());
    }

    #[test]
    fn register_pressure_forces_higher_ii() {
        // One producer with many long-lived same-PE consumers would exceed
        // 4 registers; on a 1x1 CGRA everything is same-PE. A node feeding
        // 6 consumers on a 1x1: II must reach at least 7 (7 nodes), and all
        // six values... only the producer's value needs a register (span up
        // to 6 <= II=7), so allocation succeeds with 1 register. Make
        // pressure real: 5 producers each feeding a consumer far away.
        let mut dfg = Dfg::new("pressure");
        let regs_needed = 5;
        let mut pairs = Vec::new();
        for _ in 0..regs_needed {
            let p = dfg.add_const(1);
            let c = dfg.add_node(Op::Neg);
            pairs.push((p, c));
        }
        for (p, c) in pairs {
            dfg.add_edge(p, c, 0);
        }
        let cgra = Cgra::square(1).with_regs_per_pe(2);
        let outcome = map(&dfg, &cgra);
        // 10 nodes on 1 PE: MII = 10. With II=10 the solver can schedule
        // producer/consumer adjacently so lifetimes don't overlap much; the
        // search must terminate with a valid allocation either way.
        let mapped = outcome.result.expect("should map");
        assert!(mapped.ii() >= 10);
        assert!(validate_mapping(&dfg, &cgra, &mapped.mapping).is_ok());
    }
}
