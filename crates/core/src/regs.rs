//! Deriving register-file demand from a mapping and running register
//! allocation (paper §IV-D).

use crate::mapping::{Mapping, TransferKind};
use satmapit_cgra::Cgra;
use satmapit_dfg::Dfg;
use satmapit_regalloc::{allocate, LiveValue, RegAllocError, RegAllocation};

/// Collects, per PE, the values that must live in that PE's register file:
/// every node with at least one same-PE consumer. The value's span is the
/// largest latency among its register-file consumers (at most II by the C3
/// constraints; self-dependencies span the full wheel).
pub fn live_values(dfg: &Dfg, cgra: &Cgra, mapping: &Mapping) -> Vec<Vec<LiveValue>> {
    let mut per_pe: Vec<Vec<LiveValue>> = vec![Vec::new(); cgra.num_pes()];
    for n in dfg.node_ids() {
        if !dfg.node(n).op.has_output() {
            continue;
        }
        let mut span: u32 = 0;
        for eid in dfg.out_edges(n) {
            if mapping.transfer(eid) == TransferKind::SamePeRegister {
                let delta = mapping.edge_delta(dfg, eid);
                debug_assert!(delta >= 1 && delta <= i64::from(mapping.ii));
                span = span.max(delta as u32);
            }
        }
        if span > 0 {
            let p = mapping.placement(n);
            per_pe[p.pe.index()].push(LiveValue {
                id: n.0,
                write_time: p.time(mapping.ii),
                span,
            });
        }
    }
    per_pe
}

/// Runs register allocation for `mapping` on `cgra`.
///
/// # Errors
///
/// Propagates the failing PE from the allocator; the mapper responds by
/// increasing II (paper Fig. 3).
pub fn allocate_registers(
    dfg: &Dfg,
    cgra: &Cgra,
    mapping: &Mapping,
    budget: u64,
) -> Result<RegAllocation, RegAllocError> {
    let per_pe = live_values(dfg, cgra, mapping);
    allocate(&per_pe, mapping.ii, cgra.regs_per_pe(), budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::Placement;
    use satmapit_cgra::PeId;
    use satmapit_dfg::Op;

    #[test]
    fn only_same_pe_consumers_create_demand() {
        let mut dfg = Dfg::new("t");
        let a = dfg.add_const(1);
        let b = dfg.add_node(Op::Neg);
        let c = dfg.add_node(Op::Neg);
        dfg.add_edge(a, b, 0); // same PE
        dfg.add_edge(a, c, 0); // cross PE
        let cgra = Cgra::square(2);
        let mapping = Mapping {
            ii: 3,
            folds: 1,
            placements: vec![
                Placement {
                    pe: PeId(0),
                    cycle: 0,
                    fold: 0,
                },
                Placement {
                    pe: PeId(0),
                    cycle: 2,
                    fold: 0,
                },
                Placement {
                    pe: PeId(1),
                    cycle: 1,
                    fold: 0,
                },
            ],
            transfers: vec![TransferKind::SamePeRegister, TransferKind::NeighborOutput],
        };
        let values = live_values(&dfg, &cgra, &mapping);
        assert_eq!(values[0].len(), 1);
        assert_eq!(values[0][0].id, a.0);
        assert_eq!(values[0][0].span, 2);
        assert!(values[1].is_empty());
        let alloc = allocate_registers(&dfg, &cgra, &mapping, 10_000).unwrap();
        assert!(alloc.reg_of(0, a.0).is_some());
    }

    #[test]
    fn accumulator_occupies_full_wheel() {
        let mut dfg = Dfg::new("acc");
        let c = dfg.add_const(1);
        let acc = dfg.add_node(Op::Add);
        dfg.add_edge(c, acc, 0);
        dfg.add_back_edge(acc, acc, 1, 1, 0);
        let cgra = Cgra::square(2);
        let mapping = Mapping {
            ii: 2,
            folds: 1,
            placements: vec![
                Placement {
                    pe: PeId(0),
                    cycle: 0,
                    fold: 0,
                },
                Placement {
                    pe: PeId(0),
                    cycle: 1,
                    fold: 0,
                },
            ],
            transfers: vec![TransferKind::SamePeRegister, TransferKind::SamePeRegister],
        };
        let values = live_values(&dfg, &cgra, &mapping);
        let acc_value = values[0].iter().find(|v| v.id == acc.0).unwrap();
        assert_eq!(acc_value.span, 2, "self-dependency spans the whole II");
    }

    #[test]
    fn stores_never_demand_registers() {
        let mut dfg = Dfg::new("st");
        let a = dfg.add_const(0);
        let v = dfg.add_const(1);
        let st = dfg.add_node(Op::Store);
        dfg.add_edge(a, st, 0);
        dfg.add_edge(v, st, 1);
        let cgra = Cgra::square(2);
        let mapping = Mapping {
            ii: 3,
            folds: 1,
            placements: vec![
                Placement {
                    pe: PeId(0),
                    cycle: 0,
                    fold: 0,
                },
                Placement {
                    pe: PeId(0),
                    cycle: 1,
                    fold: 0,
                },
                Placement {
                    pe: PeId(0),
                    cycle: 2,
                    fold: 0,
                },
            ],
            transfers: vec![TransferKind::SamePeRegister, TransferKind::SamePeRegister],
        };
        let values = live_values(&dfg, &cgra, &mapping);
        assert!(values[0].iter().all(|v| v.id != st.0));
    }
}
