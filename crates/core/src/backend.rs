//! The backend abstraction: "a thing that attempts an II".
//!
//! The engine's II-race, the batch cache and the service tier never
//! cared *how* a candidate II gets answered — only that attempting one
//! under [`SolveLimits`] yields the definitive/indefinite
//! [`AttemptReport`] contract with cooperative cancellation. This trait
//! makes that contract explicit so exact mappers with completely
//! different search profiles (the SAT ladder here, the monomorphism
//! mapper in `satmapit-morph`) can be raced interchangeably — and
//! *against each other*, exchanging infeasibility proofs.
//!
//! ## The contract
//!
//! An implementation is a prepared, immutable mapping session over one
//! `(DFG, CGRA, config)` problem. It must be callable from many threads
//! at once (each attempt owns its scratch state), and every attempt
//! must obey the rules [`PreparedMapper::attempt_ii`] documents:
//!
//! * `Err` only for terminal conditions (invalid II, structural
//!   infeasibility, internal inconsistency, the wall-clock deadline in
//!   `limits` expiring);
//! * everything else is an `Ok` report — including a cooperative
//!   cancellation via `limits.stop`, reported as
//!   `AttemptOutcome::SolverBudget(StopReason::Cancelled)` (the one
//!   non-definitive outcome);
//! * an `AttemptOutcome::Unsat` report is a **proof**: no mapping
//!   exists at that II under the problem semantics (mobility-window
//!   slack, register feasibility). Proofs are what cross-backend races
//!   may exchange as bounds, so a backend must never report `Unsat`
//!   heuristically;
//! * the stop flag and deadline are polled on a bounded cadence
//!   (`satmapit_sat::LIMIT_POLL_INTERVAL` search steps for the in-tree
//!   backends), so cancellation is observed promptly.

use crate::mapper::{AttemptReport, MapFailure, PreparedMapper};
use satmapit_sat::SolveLimits;

/// An exact mapping backend: a prepared session that attempts candidate
/// IIs under [`SolveLimits`]. See the module docs for the contract.
pub trait Backend: Send + Sync {
    /// Stable short identity of the backend ("sat", "morph", …): names
    /// race-trace tracks, per-backend win counters and bench entries.
    fn name(&self) -> &'static str;

    /// The MII lower bound (`max(ResMII, RecMII)`).
    fn mii(&self) -> u32;

    /// The first II the search considers (configured start or MII).
    fn start_ii(&self) -> u32;

    /// `true` when the loop is proven unmappable at *every* II (an
    /// II-invariant contradiction). Drivers skip the whole ladder.
    fn proven_unmappable(&self) -> bool;

    /// Attempts one candidate II under `limits`.
    ///
    /// # Errors
    ///
    /// Terminal conditions only — see the module docs.
    fn attempt_ii(&self, ii: u32, limits: &SolveLimits) -> Result<AttemptReport, MapFailure>;
}

/// The SAT ladder re-hosted behind the [`Backend`] contract (it already
/// satisfied every rule; the impl just delegates to the inherent
/// methods).
impl Backend for PreparedMapper<'_> {
    fn name(&self) -> &'static str {
        "sat"
    }

    fn mii(&self) -> u32 {
        PreparedMapper::mii(self)
    }

    fn start_ii(&self) -> u32 {
        PreparedMapper::start_ii(self)
    }

    fn proven_unmappable(&self) -> bool {
        PreparedMapper::proven_unmappable(self)
    }

    fn attempt_ii(&self, ii: u32, limits: &SolveLimits) -> Result<AttemptReport, MapFailure> {
        PreparedMapper::attempt_ii(self, ii, limits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mapper;
    use satmapit_cgra::Cgra;
    use satmapit_dfg::{Dfg, Op};

    #[test]
    fn sat_backend_answers_through_the_trait() {
        let mut dfg = Dfg::new("pair");
        let a = dfg.add_const(1);
        let b = dfg.add_node(Op::Neg);
        dfg.add_edge(a, b, 0);
        let cgra = Cgra::square(2);
        let prepared = Mapper::new(&dfg, &cgra).prepare().unwrap();
        let backend: &dyn Backend = &prepared;
        assert_eq!(backend.name(), "sat");
        assert_eq!(backend.mii(), 1);
        assert!(!backend.proven_unmappable());
        let report = backend
            .attempt_ii(backend.start_ii(), &SolveLimits::none())
            .unwrap();
        assert!(report.mapped.is_some());
    }
}
