//! The SAT variable space: one variable `x(n, p, c, it)` per candidate
//! placement of node `n` on PE `p` at KMS position `(c, it)` (paper §IV-C).

use satmapit_cgra::{Cgra, PeId};
use satmapit_dfg::{Dfg, NodeId};
use satmapit_sat::{Lit, Var};
use satmapit_schedule::{Kms, KmsPos};

/// Dense bidirectional index between placement candidates and SAT
/// variables.
///
/// Variables are laid out node-major, then position-major, then PE-major:
/// `var(n, k, j) = offset[n] + k * |allowed(n)| + j`, where `allowed(n)` is
/// the set of PEs that may execute `n` (restricted by the memory policy).
#[derive(Debug, Clone)]
pub struct VarMap {
    offsets: Vec<usize>,
    allowed: Vec<Vec<PeId>>,
    entries: Vec<(NodeId, KmsPos, PeId)>,
    /// lits at physical slot `(pe, cycle)`: indexed `pe * ii + cycle`.
    slot_lits: Vec<Vec<Lit>>,
    ii: u32,
    num_pes: usize,
}

impl VarMap {
    /// Builds the variable space for `dfg` on `cgra` folded as `kms`.
    ///
    /// Returns `None` if some node has no PE able to execute it (memory
    /// policy excludes every PE).
    pub fn build(dfg: &Dfg, cgra: &Cgra, kms: &Kms) -> Option<VarMap> {
        let num_pes = cgra.num_pes();
        let ii = kms.ii();
        let mut offsets = Vec::with_capacity(dfg.num_nodes());
        let mut allowed = Vec::with_capacity(dfg.num_nodes());
        let mut entries = Vec::new();
        let mut slot_lits = vec![Vec::new(); num_pes * ii as usize];
        for n in dfg.node_ids() {
            offsets.push(entries.len());
            let pes = cgra.supported_pes(dfg.node(n).op);
            if pes.is_empty() {
                return None;
            }
            for &pos in kms.positions(n) {
                for &pe in &pes {
                    let var = Var::new(entries.len() as u32);
                    entries.push((n, pos, pe));
                    slot_lits[pe.index() * ii as usize + pos.cycle as usize].push(var.positive());
                }
            }
            allowed.push(pes);
        }
        Some(VarMap {
            offsets,
            allowed,
            entries,
            slot_lits,
            ii,
            num_pes,
        })
    }

    /// Total number of placement variables.
    pub fn num_vars(&self) -> usize {
        self.entries.len()
    }

    /// Number of PEs in the target.
    pub fn num_pes(&self) -> usize {
        self.num_pes
    }

    /// The PEs allowed for node `n`.
    pub fn allowed_pes(&self, n: NodeId) -> &[PeId] {
        &self.allowed[n.index()]
    }

    /// The positive literal for `(n, position index, allowed-PE index)`.
    pub fn lit(&self, n: NodeId, pos_idx: usize, pe_idx: usize) -> Lit {
        let width = self.allowed[n.index()].len();
        debug_assert!(pe_idx < width);
        Var::new((self.offsets[n.index()] + pos_idx * width + pe_idx) as u32).positive()
    }

    /// All literals of node `n` (its `L(n)` from the paper).
    pub fn node_lits(&self, n: NodeId) -> Vec<Lit> {
        let width = self.allowed[n.index()].len();
        let count = width * self.positions_len(n);
        (0..count)
            .map(|k| Var::new((self.offsets[n.index()] + k) as u32).positive())
            .collect()
    }

    fn positions_len(&self, n: NodeId) -> usize {
        let next = if n.index() + 1 < self.offsets.len() {
            self.offsets[n.index() + 1]
        } else {
            self.entries.len()
        };
        (next - self.offsets[n.index()]) / self.allowed[n.index()].len()
    }

    /// Decodes a variable back to its `(node, position, pe)` triple.
    pub fn decode(&self, var: Var) -> (NodeId, KmsPos, PeId) {
        self.entries[var.index()]
    }

    /// The literals of all candidates occupying physical slot
    /// `(pe, cycle)` — across all nodes and folds.
    pub fn slot_lits(&self, pe: PeId, cycle: u32) -> &[Lit] {
        &self.slot_lits[pe.index() * self.ii as usize + cycle as usize]
    }

    /// The initiation interval of the underlying KMS.
    pub fn ii(&self) -> u32 {
        self.ii
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use satmapit_cgra::MemoryPolicy;
    use satmapit_dfg::Op;
    use satmapit_schedule::MobilitySchedule;

    fn tiny() -> (Dfg, Cgra) {
        let mut dfg = Dfg::new("t");
        let a = dfg.add_const(1);
        let b = dfg.add_node(Op::Neg);
        dfg.add_edge(a, b, 0);
        (dfg, Cgra::square(2))
    }

    #[test]
    fn var_count_is_positions_times_pes() {
        let (dfg, cgra) = tiny();
        let ms = MobilitySchedule::compute(&dfg).unwrap();
        let kms = Kms::build(&ms, 1);
        let vm = VarMap::build(&dfg, &cgra, &kms).unwrap();
        // Each node: 1 position, 4 PEs.
        assert_eq!(vm.num_vars(), 8);
        assert_eq!(vm.node_lits(NodeId(0)).len(), 4);
    }

    #[test]
    fn decode_round_trips() {
        let (dfg, cgra) = tiny();
        let ms = MobilitySchedule::compute(&dfg).unwrap();
        let kms = Kms::build(&ms, 2);
        let vm = VarMap::build(&dfg, &cgra, &kms).unwrap();
        for n in dfg.node_ids() {
            for (k, &pos) in kms.positions(n).iter().enumerate() {
                for (j, &pe) in vm.allowed_pes(n).iter().enumerate() {
                    let lit = vm.lit(n, k, j);
                    let (dn, dpos, dpe) = vm.decode(lit.var());
                    assert_eq!((dn, dpos, dpe), (n, pos, pe));
                }
            }
        }
    }

    #[test]
    fn slot_lits_partition_variables() {
        let (dfg, cgra) = tiny();
        let ms = MobilitySchedule::compute(&dfg).unwrap();
        let kms = Kms::build(&ms, 2);
        let vm = VarMap::build(&dfg, &cgra, &kms).unwrap();
        let mut total = 0;
        for pe in cgra.pes() {
            for c in 0..kms.ii() {
                total += vm.slot_lits(pe, c).len();
            }
        }
        assert_eq!(total, vm.num_vars());
    }

    #[test]
    fn memory_policy_restricts_allowed_pes() {
        let mut dfg = Dfg::new("m");
        let a = dfg.add_const(0);
        let ld = dfg.add_node(Op::Load);
        dfg.add_edge(a, ld, 0);
        let cgra = Cgra::square(2).with_memory_policy(MemoryPolicy::LeftColumn);
        let ms = MobilitySchedule::compute(&dfg).unwrap();
        let kms = Kms::build(&ms, 1);
        let vm = VarMap::build(&dfg, &cgra, &kms).unwrap();
        assert_eq!(vm.allowed_pes(NodeId(0)).len(), 4, "const anywhere");
        assert_eq!(vm.allowed_pes(ld).len(), 2, "load on left column only");
    }
}
