//! The result of mapping: a placement of every DFG node onto a
//! `(PE, kernel cycle, fold)` triple plus the data-transfer route chosen
//! for every dependency.

use satmapit_cgra::PeId;
use satmapit_dfg::{Dfg, EdgeId, NodeId};
use serde::{Deserialize, Serialize};

/// Where and when a node executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// The processing element.
    pub pe: PeId,
    /// Kernel cycle in `0..ii` (the physical slot in the steady-state
    /// kernel).
    pub cycle: u32,
    /// Fold / iteration label within the kernel mobility schedule.
    pub fold: u32,
}

impl Placement {
    /// The unfolded schedule time `cycle + fold * ii`.
    pub fn time(&self, ii: u32) -> u32 {
        self.cycle + self.fold * ii
    }
}

/// How a dependency's value travels from producer to consumer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransferKind {
    /// Producer and consumer share a PE; the value lives in the PE's
    /// register file (paper Eq. 4). Register allocation assigns the
    /// concrete register.
    SamePeRegister,
    /// Consumer reads the producer's output register from a neighbouring
    /// PE (paper Eq. 5); the output register must not be overwritten in
    /// between.
    NeighborOutput,
}

/// A complete modulo-scheduled mapping of a DFG onto a CGRA.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mapping {
    /// The achieved initiation interval.
    pub ii: u32,
    /// Number of folds in the kernel (iterations in flight).
    pub folds: u32,
    /// Placement per node (indexed by node id).
    pub placements: Vec<Placement>,
    /// Transfer route per edge (indexed by edge id).
    pub transfers: Vec<TransferKind>,
}

impl Mapping {
    /// The placement of node `n`.
    pub fn placement(&self, n: NodeId) -> Placement {
        self.placements[n.index()]
    }

    /// The unfolded schedule time of node `n`.
    pub fn time(&self, n: NodeId) -> u32 {
        self.placements[n.index()].time(self.ii)
    }

    /// The transfer route of edge `e`.
    pub fn transfer(&self, e: EdgeId) -> TransferKind {
        self.transfers[e.index()]
    }

    /// Length of one unfolded iteration's schedule: `max time + 1`.
    pub fn schedule_len(&self) -> u32 {
        self.placements
            .iter()
            .map(|p| p.time(self.ii) + 1)
            .max()
            .unwrap_or(0)
    }

    /// The dependency latency of edge `e` in cycles, counted from producer
    /// instance to consumer instance:
    /// `Δ = t_dst - t_src + distance * II`. A legal mapping has
    /// `1 <= Δ <= II` for every edge.
    pub fn edge_delta(&self, dfg: &Dfg, e: EdgeId) -> i64 {
        let edge = dfg.edge(e);
        let ts = i64::from(self.time(edge.src));
        let td = i64::from(self.time(edge.dst));
        td - ts + i64::from(edge.distance) * i64::from(self.ii)
    }

    /// Iterates `(node, placement)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, Placement)> + '_ {
        self.placements
            .iter()
            .enumerate()
            .map(|(i, &p)| (NodeId(i as u32), p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_time_folds_correctly() {
        let p = Placement {
            pe: PeId(0),
            cycle: 2,
            fold: 1,
        };
        assert_eq!(p.time(3), 5);
        assert_eq!(p.time(4), 6);
    }

    #[test]
    fn schedule_len_and_times() {
        let m = Mapping {
            ii: 2,
            folds: 2,
            placements: vec![
                Placement {
                    pe: PeId(0),
                    cycle: 0,
                    fold: 0,
                },
                Placement {
                    pe: PeId(1),
                    cycle: 1,
                    fold: 1,
                },
            ],
            transfers: vec![],
        };
        assert_eq!(m.time(NodeId(0)), 0);
        assert_eq!(m.time(NodeId(1)), 3);
        assert_eq!(m.schedule_len(), 4);
    }

    #[test]
    fn edge_delta_includes_distance() {
        use satmapit_dfg::Op;
        let mut dfg = Dfg::new("t");
        let a = dfg.add_node(Op::Neg);
        let b = dfg.add_node(Op::Neg);
        dfg.add_edge(a, b, 0);
        dfg.add_back_edge(b, a, 0, 1, 0);
        let m = Mapping {
            ii: 2,
            folds: 1,
            placements: vec![
                Placement {
                    pe: PeId(0),
                    cycle: 0,
                    fold: 0,
                },
                Placement {
                    pe: PeId(1),
                    cycle: 1,
                    fold: 0,
                },
            ],
            transfers: vec![TransferKind::NeighborOutput, TransferKind::NeighborOutput],
        };
        assert_eq!(m.edge_delta(&dfg, EdgeId(0)), 1); // forward a->b
        assert_eq!(m.edge_delta(&dfg, EdgeId(1)), 1); // back b->a: -1 + 2
    }
}
