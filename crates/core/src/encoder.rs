//! CNF generation: the paper's constraint sets C1, C2 and C3 (§IV-C,
//! Eqs. 1–5) over the kernel mobility schedule.
//!
//! * **C1** — every node takes exactly one `(pe, cycle, fold)` placement.
//! * **C2** — at most one node occupies a physical `(pe, kernel-cycle)`
//!   slot, across folds (fold labels share physical slots).
//! * **C3** — for every dependency `s → d` with loop-carried distance
//!   `dist`, the placements must satisfy `1 ≤ Δ ≤ II` with
//!   `Δ = t_d − t_s + dist·II` (Eq. 3 generalized to back-edges), on the
//!   same PE (register-file transfer, Eq. 4) or neighbouring PEs
//!   (output-register transfer, Eq. 5). Output-register transfers
//!   additionally require that no operation executes on the producer's PE
//!   strictly between production and consumption.
//!
//! The paper encodes C3 as a disjunction of conjunctive terms; under C1's
//! exactly-one semantics this is equivalent to the pairwise form used
//! here — per producer literal a *compatibility clause* (`¬vi ∨ w₁ ∨ …`)
//! plus, per cross-PE pair, *non-overwrite guards*
//! (`¬vi ∨ ¬wj ∨ ¬occupied(p_s, c)`), where `occupied(p, c)` is a shared
//! auxiliary monotone indicator of slot occupancy. This avoids one Tseitin
//! auxiliary per term and keeps the formula linear in the number of
//! admissible pairs.

use crate::varmap::VarMap;
use satmapit_cgra::{Cgra, PeId};
use satmapit_dfg::{Dfg, EdgeId, NodeId};
use satmapit_sat::encode::{at_most_one, exactly_one, AmoEncoding};
use satmapit_sat::{CnfFormula, Lit};
use satmapit_schedule::Kms;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Size counters of an encoded instance.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncodeStats {
    /// Placement variables (`x(n,p,c,it)`).
    pub placement_vars: usize,
    /// Total variables including auxiliaries.
    pub total_vars: usize,
    /// Total clauses.
    pub clauses: usize,
    /// Clauses from C1 (exactly-one).
    pub c1_clauses: usize,
    /// Clauses from C2 (slot exclusivity).
    pub c2_clauses: usize,
    /// C3 compatibility clauses.
    pub c3_compat_clauses: usize,
    /// C3 non-overwrite guard clauses.
    pub c3_guard_clauses: usize,
    /// Occupancy auxiliary variables created.
    pub occupancy_vars: usize,
    /// Register-pressure (C4) liveness variables created.
    pub pressure_vars: usize,
    /// Register-pressure (C4) clauses.
    pub pressure_clauses: usize,
}

/// Encoder options.
#[derive(Debug, Clone, Copy)]
pub struct EncodeOptions {
    /// At-most-one strategy for C1/C2.
    pub amo: AmoEncoding,
    /// Emit the C4 register-pressure constraints (an extension over the
    /// paper, which defers all register checking to the post-hoc
    /// allocation): for every PE and kernel cycle, at most `regs_per_pe`
    /// values may be live in the register file. Per-slot capacity is a
    /// sound relaxation of colourability (any allocatable mapping
    /// satisfies it), so completeness is preserved; the rare
    /// capacity-feasible-but-uncolourable mappings are caught by the
    /// allocator and excluded via blocking cuts.
    pub register_pressure: bool,
}

impl Default for EncodeOptions {
    fn default() -> EncodeOptions {
        EncodeOptions {
            amo: AmoEncoding::Auto,
            register_pressure: true,
        }
    }
}

/// A successfully encoded instance.
#[derive(Debug)]
pub struct Encoded {
    /// The CNF formula to hand to the solver.
    pub formula: CnfFormula,
    /// The placement-variable index (for decoding models).
    pub varmap: VarMap,
    /// Size statistics.
    pub stats: EncodeStats,
}

/// Structural encoding failures that no II increase can repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EncodeError {
    /// Some node's op cannot execute on any PE (memory policy).
    NoPeForOp {
        /// The unplaceable node.
        node: NodeId,
    },
    /// A self-dependency with distance ≠ 1: its latency is
    /// `distance · II`, which exceeds II for every II. The architecture
    /// would need rotating registers / modulo variable expansion.
    SelfEdgeDistance {
        /// The offending edge.
        edge: EdgeId,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::NoPeForOp { node } => {
                write!(f, "no PE supports the operation of node {node}")
            }
            EncodeError::SelfEdgeDistance { edge } => {
                write!(
                    f,
                    "self-dependency {edge:?} has distance != 1 (needs rotating registers)"
                )
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Lazily-created occupancy indicators, one per physical `(pe, cycle)`
/// slot: `lit → occupied(p,c)` for every candidate literal at that slot.
struct Occupancy {
    lits: Vec<Option<Lit>>,
    ii: usize,
    created: usize,
}

impl Occupancy {
    fn new(num_pes: usize, ii: u32) -> Occupancy {
        Occupancy {
            lits: vec![None; num_pes * ii as usize],
            ii: ii as usize,
            created: 0,
        }
    }

    fn get(
        &mut self,
        formula: &mut CnfFormula,
        varmap: &VarMap,
        pe: PeId,
        cycle: u32,
        guard_clauses: &mut usize,
    ) -> Lit {
        let idx = pe.index() * self.ii + cycle as usize;
        if let Some(l) = self.lits[idx] {
            return l;
        }
        let o = formula.new_var().positive();
        for &l in varmap.slot_lits(pe, cycle) {
            formula.add_clause(&[!l, o]);
            *guard_clauses += 1;
        }
        self.lits[idx] = Some(o);
        self.created += 1;
        o
    }
}

/// Lazily-created liveness indicators for the register-pressure
/// constraints: `live(n, p, x)` means node `n`'s value occupies a register
/// of PE `p` during kernel cycle `x`.
struct Pressure {
    bases: Vec<Option<u32>>,
    slot_lits: Vec<Vec<Lit>>,
    ii: usize,
    num_pes: usize,
    created: usize,
}

impl Pressure {
    fn new(num_nodes: usize, num_pes: usize, ii: u32) -> Pressure {
        Pressure {
            bases: vec![None; num_nodes * num_pes],
            slot_lits: vec![Vec::new(); num_pes * ii as usize],
            ii: ii as usize,
            num_pes,
            created: 0,
        }
    }

    fn live(&mut self, formula: &mut CnfFormula, n: usize, pe: PeId, x: u32) -> Lit {
        let key = n * self.num_pes + pe.index();
        let base = match self.bases[key] {
            Some(b) => b,
            None => {
                let first = formula.new_vars(self.ii);
                let b = first.index() as u32;
                self.bases[key] = Some(b);
                self.created += self.ii;
                for xx in 0..self.ii {
                    let l = satmapit_sat::Var::new(b + xx as u32).positive();
                    self.slot_lits[pe.index() * self.ii + xx].push(l);
                }
                b
            }
        };
        satmapit_sat::Var::new(base + x).positive()
    }
}

/// Encodes the mapping problem with default options (see
/// [`encode_with_options`]).
///
/// # Errors
///
/// Fails only for II-independent structural reasons ([`EncodeError`]).
pub fn encode(dfg: &Dfg, cgra: &Cgra, kms: &Kms, amo: AmoEncoding) -> Result<Encoded, EncodeError> {
    encode_with_options(
        dfg,
        cgra,
        kms,
        EncodeOptions {
            amo,
            ..EncodeOptions::default()
        },
    )
}

/// Encodes the mapping problem for `dfg` on `cgra` at the II of `kms`.
///
/// # Errors
///
/// Fails only for II-independent structural reasons ([`EncodeError`]);
/// an II that is merely too small produces a formula the solver reports
/// as unsatisfiable.
pub fn encode_with_options(
    dfg: &Dfg,
    cgra: &Cgra,
    kms: &Kms,
    options: EncodeOptions,
) -> Result<Encoded, EncodeError> {
    let amo = options.amo;
    // Structural pre-checks.
    for n in dfg.node_ids() {
        let op = dfg.node(n).op;
        if !cgra.pes().any(|p| cgra.supports_op(p, op)) {
            return Err(EncodeError::NoPeForOp { node: n });
        }
    }
    for (eid, e) in dfg.edges() {
        if e.src == e.dst && e.distance != 1 {
            return Err(EncodeError::SelfEdgeDistance { edge: eid });
        }
    }

    let varmap = VarMap::build(dfg, cgra, kms).expect("per-node PE support checked above");
    let mut formula = CnfFormula::with_vars(varmap.num_vars());
    let mut stats = EncodeStats {
        placement_vars: varmap.num_vars(),
        ..EncodeStats::default()
    };

    let ii = i64::from(kms.ii());

    // Adjacency matrix (excluding self).
    let num_pes = cgra.num_pes();
    let adjacent = cgra.adjacency_matrix();

    // C1: exactly one placement per node.
    for n in dfg.node_ids() {
        let before = formula.num_clauses();
        exactly_one(&mut formula, &varmap.node_lits(n), amo);
        stats.c1_clauses += formula.num_clauses() - before;
    }

    // C2: at most one node per physical slot.
    for pe in cgra.pes() {
        for c in 0..kms.ii() {
            let before = formula.num_clauses();
            let lits = varmap.slot_lits(pe, c).to_vec();
            at_most_one(&mut formula, &lits, amo);
            stats.c2_clauses += formula.num_clauses() - before;
        }
    }

    // C3: dependencies (+ C4 liveness implications where same-PE).
    let mut occupancy = Occupancy::new(num_pes, kms.ii());
    let mut pressure = options
        .register_pressure
        .then(|| Pressure::new(dfg.num_nodes(), num_pes, kms.ii()));
    for (_eid, edge) in dfg.edges() {
        let s = edge.src;
        let d = edge.dst;
        if s == d {
            // distance == 1 (checked above): Δ = II on the same PE — the
            // value lives a full wheel revolution in the register file.
            // Always satisfiable; it occupies one register for the whole
            // wheel, which the pressure constraints account for.
            if let Some(p) = pressure.as_mut() {
                for (ks, _pos_s) in kms.positions(s).iter().enumerate() {
                    for (js, &pe_s) in varmap.allowed_pes(s).to_vec().iter().enumerate() {
                        let vi = varmap.lit(s, ks, js);
                        for x in 0..kms.ii() {
                            let live = p.live(&mut formula, s.index(), pe_s, x);
                            formula.add_clause(&[!vi, live]);
                            stats.pressure_clauses += 1;
                        }
                    }
                }
            }
            continue;
        }
        let s_positions = kms.positions(s).to_vec();
        let d_positions = kms.positions(d).to_vec();
        let s_pes = varmap.allowed_pes(s).to_vec();
        let d_pes = varmap.allowed_pes(d).to_vec();

        for (ks, &pos_s) in s_positions.iter().enumerate() {
            let ts = i64::from(kms.unfolded_time(pos_s));
            for (js, &pe_s) in s_pes.iter().enumerate() {
                let vi = varmap.lit(s, ks, js);
                let mut compat: Vec<Lit> = Vec::new();
                for (kd, &pos_d) in d_positions.iter().enumerate() {
                    let td = i64::from(kms.unfolded_time(pos_d));
                    let delta = td - ts + i64::from(edge.distance) * ii;
                    if delta < 1 || delta > ii {
                        continue;
                    }
                    for (jd, &pe_d) in d_pes.iter().enumerate() {
                        let same = pe_d == pe_s;
                        if same && pos_d.cycle == pos_s.cycle {
                            // Would collide on the slot (Δ == II on the
                            // same PE); C2 forbids it anyway.
                            continue;
                        }
                        if !same && !adjacent[pe_s.index() * num_pes + pe_d.index()] {
                            continue;
                        }
                        let wj = varmap.lit(d, kd, jd);
                        compat.push(wj);
                        if same {
                            // C4: a same-PE transfer keeps the value in the
                            // register file for cycles ts+1 ..= ts+Δ.
                            if let Some(p) = pressure.as_mut() {
                                for k in 1..=delta {
                                    let x = ((ts + k) % ii) as u32;
                                    let live = p.live(&mut formula, s.index(), pe_s, x);
                                    formula.add_clause(&[!vi, !wj, live]);
                                    stats.pressure_clauses += 1;
                                }
                            }
                        }
                        if !same {
                            // Non-overwrite guards for the output-register
                            // path: slots strictly between production and
                            // consumption on the producer's PE must be empty.
                            for k in 1..delta {
                                let slot = ((ts + k) % ii) as u32;
                                let occ = occupancy.get(
                                    &mut formula,
                                    &varmap,
                                    pe_s,
                                    slot,
                                    &mut stats.c3_guard_clauses,
                                );
                                formula.add_clause(&[!vi, !wj, !occ]);
                                stats.c3_guard_clauses += 1;
                            }
                        }
                    }
                }
                let mut clause = Vec::with_capacity(compat.len() + 1);
                clause.push(!vi);
                clause.extend(compat);
                formula.add_clause(&clause);
                stats.c3_compat_clauses += 1;
            }
        }
    }

    // C4 capacity: at most `regs_per_pe` live values per (PE, cycle).
    if let Some(p) = pressure {
        let before = formula.num_clauses();
        for slot in &p.slot_lits {
            satmapit_sat::encode::at_most_k(&mut formula, slot, usize::from(cgra.regs_per_pe()));
        }
        stats.pressure_clauses += formula.num_clauses() - before;
        stats.pressure_vars = p.created;
    }

    stats.occupancy_vars = occupancy.created;
    stats.total_vars = formula.num_vars();
    stats.clauses = formula.num_clauses();

    Ok(Encoded {
        formula,
        varmap,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use satmapit_cgra::MemoryPolicy;
    use satmapit_dfg::Op;
    use satmapit_sat::{SolveResult, Solver};
    use satmapit_schedule::{mii, Kms, MobilitySchedule};

    fn encode_at(dfg: &Dfg, cgra: &Cgra, ii: u32) -> Encoded {
        let ms = MobilitySchedule::compute(dfg).unwrap();
        let kms = Kms::build(&ms, ii);
        encode(dfg, cgra, &kms, AmoEncoding::Auto).unwrap()
    }

    fn solve_at(dfg: &Dfg, cgra: &Cgra, ii: u32) -> SolveResult {
        let enc = encode_at(dfg, cgra, ii);
        Solver::from_cnf(&enc.formula).solve()
    }

    /// Encode with the mapper's default window slack (II - 1).
    fn solve_at_slacked(dfg: &Dfg, cgra: &Cgra, ii: u32) -> SolveResult {
        let ms = MobilitySchedule::compute(dfg).unwrap();
        let kms = Kms::build_with_slack(&ms, ii, ii - 1);
        let enc = encode(dfg, cgra, &kms, AmoEncoding::Auto).unwrap();
        Solver::from_cnf(&enc.formula).solve()
    }

    #[test]
    fn chain_on_2x2_is_sat_at_mii() {
        let mut dfg = Dfg::new("chain");
        let a = dfg.add_const(1);
        let b = dfg.add_node(Op::Neg);
        let c = dfg.add_node(Op::Neg);
        dfg.add_edge(a, b, 0);
        dfg.add_edge(b, c, 0);
        let cgra = Cgra::square(2);
        let start = mii(&dfg, &cgra);
        assert_eq!(start, Some(1));
        assert_eq!(solve_at(&dfg, &cgra, 1), SolveResult::Sat);
    }

    #[test]
    fn too_many_parallel_nodes_unsat_at_small_ii() {
        // 5 independent constants on a 2x2 (4 PEs): II=1 impossible; II=2
        // needs window slack (the constants all sit in MS row 0, so the
        // paper-strict windows keep them pinned to kernel cycle 0).
        let mut dfg = Dfg::new("par5");
        for i in 0..5 {
            let _ = dfg.add_const(i);
        }
        let cgra = Cgra::square(2);
        assert_eq!(solve_at(&dfg, &cgra, 1), SolveResult::Unsat);
        assert_eq!(
            solve_at(&dfg, &cgra, 2),
            SolveResult::Unsat,
            "paper-strict windows pin all constants to cycle 0"
        );
        assert_eq!(solve_at_slacked(&dfg, &cgra, 2), SolveResult::Sat);
    }

    #[test]
    fn one_by_one_serializes_everything() {
        // A 1x1 CGRA runs one op per cycle; a 3-node graph needs II=3, and
        // dependencies must be same-PE register transfers.
        let mut dfg = Dfg::new("chain3");
        let a = dfg.add_const(1);
        let b = dfg.add_node(Op::Neg);
        let c = dfg.add_node(Op::Neg);
        dfg.add_edge(a, b, 0);
        dfg.add_edge(b, c, 0);
        let cgra = Cgra::square(1);
        assert_eq!(solve_at(&dfg, &cgra, 2), SolveResult::Unsat);
        assert_eq!(solve_at(&dfg, &cgra, 3), SolveResult::Sat);
    }

    #[test]
    fn non_adjacent_dependency_forces_ii_growth_or_unsat() {
        // A node with 5 direct consumers: all consumers must be placed on
        // neighbours/same PE. On a 2x2 every PE has only 2 neighbours, so
        // at II=2 with 6 nodes (3 slots used of 8) the fanout is the binding
        // constraint.
        let mut dfg = Dfg::new("fan5");
        let src = dfg.add_const(1);
        for _ in 0..5 {
            let n = dfg.add_node(Op::Neg);
            dfg.add_edge(src, n, 0);
        }
        let cgra = Cgra::square(2);
        // 6 nodes / 4 PEs -> ResMII 2. With strict windows all 5 consumers
        // are pinned to kernel cycle 1 and only 3 PEs are reachable from
        // the producer: UNSAT at any II. With slack, a large II spreads the
        // consumers across cycles.
        let r = solve_at(&dfg, &cgra, 2);
        assert!(matches!(r, SolveResult::Sat | SolveResult::Unsat));
        assert_eq!(solve_at(&dfg, &cgra, 6), SolveResult::Unsat);
        assert_eq!(solve_at_slacked(&dfg, &cgra, 6), SolveResult::Sat);
    }

    #[test]
    fn memory_policy_structural_failure() {
        // A store on an architecture where... every policy allows some PE,
        // so NoPeForOp cannot trigger with built-in policies; instead check
        // that LeftColumn restricts but still encodes.
        let mut dfg = Dfg::new("st");
        let a = dfg.add_const(0);
        let v = dfg.add_const(1);
        let st = dfg.add_node(Op::Store);
        dfg.add_edge(a, st, 0);
        dfg.add_edge(v, st, 1);
        let cgra = Cgra::square(2).with_memory_policy(MemoryPolicy::LeftColumn);
        let enc = encode_at(&dfg, &cgra, 2);
        assert!(enc.stats.placement_vars > 0);
        assert_eq!(Solver::from_cnf(&enc.formula).solve(), SolveResult::Sat);
    }

    #[test]
    fn self_edge_distance_two_rejected() {
        let mut dfg = Dfg::new("fib");
        let f = dfg.add_node(Op::Add);
        dfg.add_back_edge(f, f, 0, 1, 1);
        dfg.add_back_edge(f, f, 1, 2, 0);
        let ms = MobilitySchedule::compute(&dfg).unwrap();
        let kms = Kms::build(&ms, 2);
        let err = encode(&dfg, &Cgra::square(2), &kms, AmoEncoding::Auto).unwrap_err();
        assert!(matches!(err, EncodeError::SelfEdgeDistance { .. }));
    }

    #[test]
    fn accumulator_self_edge_is_free() {
        let mut dfg = Dfg::new("acc");
        let c = dfg.add_const(1);
        let acc = dfg.add_node(Op::Add);
        dfg.add_edge(c, acc, 0);
        dfg.add_back_edge(acc, acc, 1, 1, 0);
        assert_eq!(solve_at(&dfg, &Cgra::square(2), 1), SolveResult::Sat);
    }

    #[test]
    fn recurrence_cycle_respects_rec_mii() {
        // a -> b -> c -> a (dist 1): RecMII = 3; II=2 must be UNSAT even on
        // a large array, II=3 SAT.
        let mut dfg = Dfg::new("rec3");
        let a = dfg.add_node(Op::Neg);
        let b = dfg.add_node(Op::Neg);
        let c = dfg.add_node(Op::Neg);
        dfg.add_edge(a, b, 0);
        dfg.add_edge(b, c, 0);
        dfg.add_back_edge(c, a, 0, 1, 0);
        let cgra = Cgra::square(4);
        assert_eq!(solve_at(&dfg, &cgra, 2), SolveResult::Unsat);
        assert_eq!(solve_at(&dfg, &cgra, 3), SolveResult::Sat);
    }

    #[test]
    fn encode_stats_populated() {
        let mut dfg = Dfg::new("pair");
        let a = dfg.add_const(1);
        let b = dfg.add_node(Op::Neg);
        dfg.add_edge(a, b, 0);
        let enc = encode_at(&dfg, &Cgra::square(2), 1);
        assert!(enc.stats.placement_vars > 0);
        assert!(enc.stats.c1_clauses > 0);
        assert!(enc.stats.c2_clauses > 0);
        assert!(enc.stats.c3_compat_clauses > 0);
        assert_eq!(enc.stats.clauses, enc.formula.num_clauses());
        assert_eq!(enc.stats.total_vars, enc.formula.num_vars());
    }

    #[test]
    fn amo_encodings_agree_on_satisfiability() {
        let mut dfg = Dfg::new("mix");
        let a = dfg.add_const(1);
        let b = dfg.add_node(Op::Neg);
        let c = dfg.add_node(Op::Neg);
        let d = dfg.add_node(Op::Add);
        dfg.add_edge(a, b, 0);
        dfg.add_edge(a, c, 0);
        dfg.add_edge(b, d, 0);
        dfg.add_edge(c, d, 1);
        let cgra = Cgra::square(2);
        let ms = MobilitySchedule::compute(&dfg).unwrap();
        for ii in 1..=3 {
            let kms = Kms::build(&ms, ii);
            let mut results = Vec::new();
            for amo in [
                AmoEncoding::Pairwise,
                AmoEncoding::Sequential,
                AmoEncoding::Auto,
            ] {
                let enc = encode(&dfg, &cgra, &kms, amo).unwrap();
                results.push(Solver::from_cnf(&enc.formula).solve());
            }
            assert_eq!(results[0], results[1], "ii={ii}");
            assert_eq!(results[1], results[2], "ii={ii}");
        }
    }
}
