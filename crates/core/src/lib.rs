//! # satmapit-core
//!
//! The SAT-MapIt mapper (Tirelli, Ferretti, Pozzi — DATE 2023): an exact,
//! SAT-based formulation of the CGRA modulo-scheduling mapping problem.
//!
//! ## Pipeline (paper Fig. 3)
//!
//! 1. compute ASAP/ALAP mobility windows for the loop DFG
//!    (`satmapit-schedule`),
//! 2. start at `II = MII = max(ResMII, RecMII)`,
//! 3. fold the mobility schedule into the **kernel mobility schedule**
//!    ([`satmapit_schedule::Kms`]),
//! 4. [`encoder::encode`] the constraint sets **C1** (exactly-one
//!    placement per node), **C2** (slot exclusivity) and **C3**
//!    (dependency timing/adjacency with register-file and output-register
//!    transfer paths) into CNF,
//! 5. run the CDCL solver (`satmapit-sat`); on UNSAT, increase II and
//!    repeat,
//! 6. on SAT, [`decode_model`] the placements, [`validate_mapping`]
//!    independently, and run register allocation
//!    (`satmapit-regalloc`); a register-allocation failure also
//!    increases II.
//!
//! The end product is a [`MappedLoop`]: placements, transfer routes and
//! register assignments, from which [`codegen`] builds the per-PE kernel
//! program and the prolog/kernel/epilog schedule.
//!
//! ## Example
//!
//! ```
//! use satmapit_cgra::Cgra;
//! use satmapit_core::{codegen, Mapper};
//! use satmapit_dfg::{Dfg, Op};
//!
//! // acc += a[i] style loop body.
//! let mut dfg = Dfg::new("acc");
//! let one = dfg.add_const(1);
//! let i = dfg.add_node(Op::Add);
//! dfg.add_edge(one, i, 0);
//! dfg.add_back_edge(i, i, 1, 1, -1);
//! let x = dfg.add_node(Op::Load);
//! dfg.add_edge(i, x, 0);
//! let acc = dfg.add_node(Op::Add);
//! dfg.add_edge(x, acc, 0);
//! dfg.add_back_edge(acc, acc, 1, 1, 0);
//!
//! let cgra = Cgra::square(2);
//! let outcome = Mapper::new(&dfg, &cgra).run();
//! let mapped = outcome.result.expect("mappable");
//! let program = codegen::kernel_program(&dfg, &cgra, &mapped.mapping, &mapped.registers);
//! assert_eq!(program.num_instrs(), dfg.num_nodes());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod codegen;
mod decode;
pub mod encoder;
pub mod ladder;
mod mapper;
mod mapping;
mod regs;
pub mod routing;
mod validate;
mod varmap;

pub use backend::Backend;
pub use decode::{decode_model, DecodeError};
pub use ladder::IiLadder;
pub use mapper::{
    map, trace_rung_attempt, AttemptOutcome, AttemptReport, IiAttempt, MapFailure, MapOutcome,
    MappedLoop, Mapper, MapperConfig, PreparedMapper, SlackPolicy,
};
pub use mapping::{Mapping, Placement, TransferKind};
pub use regs::{allocate_registers, live_values};
pub use validate::{validate_mapping, Violation};
pub use varmap::VarMap;
