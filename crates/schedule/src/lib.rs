//! # satmapit-schedule
//!
//! Scheduling structures for CGRA modulo scheduling, as defined in
//! SAT-MapIt (DATE 2023, §IV-B):
//!
//! * [`MobilitySchedule`] — ASAP/ALAP windows and the Mobility Schedule
//!   table (paper Fig. 4),
//! * [`Kms`] — the Kernel Mobility Schedule: the mobility schedule folded
//!   by a candidate II, labelling each node occurrence with its kernel
//!   cycle and fold/iteration (paper Fig. 5). Note the paper's figure
//!   numbers iterations by *age* (later unfolded times get lower labels);
//!   we use `fold = time / II`, which is the same structure up to
//!   relabelling,
//! * [`mii`], [`res_mii`], [`rec_mii`] — the initiation-interval lower
//!   bounds that seed the iterative search of Fig. 3.
//!
//! ```
//! use satmapit_dfg::{Dfg, Op};
//! use satmapit_schedule::{Kms, MobilitySchedule};
//!
//! let mut dfg = Dfg::new("pair");
//! let a = dfg.add_const(1);
//! let b = dfg.add_node(Op::Neg);
//! dfg.add_edge(a, b, 0);
//! let ms = MobilitySchedule::compute(&dfg).unwrap();
//! assert_eq!(ms.len(), 2);
//! let kms = Kms::build(&ms, 1);
//! assert_eq!(kms.folds(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod kms;
mod mii;
mod mobility;
#[cfg(test)]
mod testutil;

pub use kms::{Kms, KmsPos};
pub use mii::{mii, rec_mii, res_mii};
pub use mobility::MobilitySchedule;
