//! ASAP / ALAP / Mobility schedules (paper §IV-B, Fig. 4).
//!
//! The mobility schedule records, for each node of the forward DAG, the
//! earliest (`ASAP`) and latest (`ALAP`) cycles it may occupy in a schedule
//! of minimum length. Back-edges (loop-carried dependencies) are ignored at
//! this stage — they are enforced later, by the SAT constraints over the
//! kernel mobility schedule.

use satmapit_dfg::{Dfg, DfgError, NodeId};
use serde::{Deserialize, Serialize};

/// The ASAP/ALAP mobility windows of all nodes of a DFG.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MobilitySchedule {
    asap: Vec<u32>,
    alap: Vec<u32>,
    len: u32,
}

impl MobilitySchedule {
    /// Computes ASAP and ALAP over the forward (distance-0) subgraph, with
    /// the ALAP aligned to the critical-path length.
    ///
    /// # Errors
    ///
    /// Fails if the DFG is invalid (see [`Dfg::validate`]).
    pub fn compute(dfg: &Dfg) -> Result<MobilitySchedule, DfgError> {
        dfg.validate()?;
        let order = dfg.forward_topo_order()?;
        let n = dfg.num_nodes();

        let mut asap = vec![0u32; n];
        for &v in &order {
            for eid in dfg.out_edges(v) {
                let e = dfg.edge(eid);
                if e.distance == 0 {
                    let d = e.dst.index();
                    asap[d] = asap[d].max(asap[v.index()] + 1);
                }
            }
        }
        let len = asap.iter().max().copied().unwrap_or(0) + 1;

        // Height = longest forward path to any sink.
        let mut height = vec![0u32; n];
        for &v in order.iter().rev() {
            for eid in dfg.out_edges(v) {
                let e = dfg.edge(eid);
                if e.distance == 0 {
                    height[v.index()] = height[v.index()].max(height[e.dst.index()] + 1);
                }
            }
        }
        let alap: Vec<u32> = height.iter().map(|&h| len - 1 - h).collect();

        Ok(MobilitySchedule { asap, alap, len })
    }

    /// Earliest cycle of `n`.
    pub fn asap(&self, n: NodeId) -> u32 {
        self.asap[n.index()]
    }

    /// Latest cycle of `n`.
    pub fn alap(&self, n: NodeId) -> u32 {
        self.alap[n.index()]
    }

    /// Mobility (slack) of `n`: `alap - asap`.
    pub fn mobility(&self, n: NodeId) -> u32 {
        self.alap[n.index()] - self.asap[n.index()]
    }

    /// Schedule length (number of time slots, the critical-path length).
    pub fn len(&self) -> u32 {
        self.len
    }

    /// `true` if there are no time slots (empty graphs cannot occur for
    /// validated DFGs, so this is always `false` in practice).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of nodes covered.
    pub fn num_nodes(&self) -> usize {
        self.asap.len()
    }

    /// The nodes whose mobility window contains time slot `t`
    /// (one row of the paper's "MS" table, Fig. 4).
    pub fn slot_nodes(&self, t: u32) -> Vec<NodeId> {
        (0..self.asap.len())
            .filter(|&i| self.asap[i] <= t && t <= self.alap[i])
            .map(|i| NodeId(i as u32))
            .collect()
    }

    /// All rows of the mobility schedule (`rows()[t] == slot_nodes(t)`).
    pub fn rows(&self) -> Vec<Vec<NodeId>> {
        (0..self.len).map(|t| self.slot_nodes(t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::paper_example_dfg;
    use satmapit_dfg::Op;

    #[test]
    fn chain_has_zero_mobility() {
        let mut dfg = Dfg::new("chain");
        let a = dfg.add_const(1);
        let b = dfg.add_node(Op::Neg);
        let c = dfg.add_node(Op::Neg);
        dfg.add_edge(a, b, 0);
        dfg.add_edge(b, c, 0);
        let ms = MobilitySchedule::compute(&dfg).unwrap();
        assert_eq!(ms.len(), 3);
        for n in dfg.node_ids() {
            assert_eq!(ms.mobility(n), 0);
        }
    }

    /// Reproduces the paper's Fig. 4 tables exactly (nodes are 1-based in
    /// the paper; our ids are the paper's minus one).
    #[test]
    fn paper_figure4_asap_alap_ms() {
        let dfg = paper_example_dfg();
        let ms = MobilitySchedule::compute(&dfg).unwrap();
        assert_eq!(ms.len(), 5);

        let paper_asap: [(u32, &[u32]); 5] = [
            (0, &[1, 2, 3, 4]),
            (1, &[5, 7, 10]),
            (2, &[6, 11]),
            (3, &[8]),
            (4, &[9]),
        ];
        for (t, nodes) in paper_asap {
            for &pn in nodes {
                assert_eq!(ms.asap(NodeId(pn - 1)), t, "asap of paper node {pn}");
            }
        }

        let paper_alap: [(u32, &[u32]); 5] = [
            (0, &[3]),
            (1, &[4, 5]),
            (2, &[1, 6, 7]),
            (3, &[2, 8, 10]),
            (4, &[9, 11]),
        ];
        for (t, nodes) in paper_alap {
            for &pn in nodes {
                assert_eq!(ms.alap(NodeId(pn - 1)), t, "alap of paper node {pn}");
            }
        }

        let paper_ms: [(u32, &[u32]); 5] = [
            (0, &[1, 2, 3, 4]),
            (1, &[1, 2, 4, 5, 7, 10]),
            (2, &[1, 2, 6, 7, 10, 11]),
            (3, &[2, 8, 10, 11]),
            (4, &[9, 11]),
        ];
        for (t, nodes) in paper_ms {
            let expected: Vec<NodeId> = nodes.iter().map(|&pn| NodeId(pn - 1)).collect();
            let mut got = ms.slot_nodes(t);
            got.sort();
            assert_eq!(got, expected, "MS row {t}");
        }
    }

    #[test]
    fn every_node_in_exactly_its_window_rows() {
        let dfg = paper_example_dfg();
        let ms = MobilitySchedule::compute(&dfg).unwrap();
        let rows = ms.rows();
        for n in dfg.node_ids() {
            let occurrences = rows.iter().filter(|row| row.contains(&n)).count() as u32;
            assert_eq!(occurrences, ms.mobility(n) + 1);
        }
    }

    #[test]
    fn asap_not_after_alap() {
        let dfg = paper_example_dfg();
        let ms = MobilitySchedule::compute(&dfg).unwrap();
        for n in dfg.node_ids() {
            assert!(ms.asap(n) <= ms.alap(n));
            assert!(ms.alap(n) < ms.len());
        }
    }

    #[test]
    fn invalid_dfg_rejected() {
        let mut dfg = Dfg::new("bad");
        let _ = dfg.add_node(Op::Add);
        assert!(MobilitySchedule::compute(&dfg).is_err());
    }

    #[test]
    fn single_node_graph() {
        let mut dfg = Dfg::new("one");
        let _ = dfg.add_const(7);
        let ms = MobilitySchedule::compute(&dfg).unwrap();
        assert_eq!(ms.len(), 1);
        assert_eq!(ms.slot_nodes(0), vec![NodeId(0)]);
    }
}
