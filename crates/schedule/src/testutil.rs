//! Test helpers: the paper's running-example DFG (Fig. 2a).
//!
//! The canonical, fully-featured version (with ops chosen for simulation)
//! lives in `satmapit-kernels`; this private copy keeps the schedule crate's
//! tests self-contained. Paper node `k` is `NodeId(k-1)` here.

use satmapit_dfg::{Dfg, Op};

/// Builds the running example of the paper (Fig. 2a): 11 nodes whose
/// ASAP/ALAP/MS tables are given in Fig. 4 and whose KMS at II=3 is Fig. 5.
///
/// Forward structure (paper numbering):
/// `3→5→6→8→9`, `4→7→8`, `1→10→11`, `2→11`, plus the loop-carried
/// self-dependence on the accumulator node 9.
pub fn paper_example_dfg() -> Dfg {
    let mut dfg = Dfg::new("paper-example");
    let n1 = dfg.add_const(3); // paper node 1
    let n2 = dfg.add_const(5); // paper node 2
    let n3 = dfg.add_const(7); // paper node 3
    let n4 = dfg.add_const(11); // paper node 4
    let n5 = dfg.add_node_labeled(Op::Neg, 0, "n5"); // 3 -> 5
    let n6 = dfg.add_node_labeled(Op::Not, 0, "n6"); // 5 -> 6
    let n7 = dfg.add_node_labeled(Op::Abs, 0, "n7"); // 4 -> 7
    let n8 = dfg.add_node_labeled(Op::Add, 0, "n8"); // 6,7 -> 8
    let n9 = dfg.add_node_labeled(Op::Add, 0, "n9"); // 8, self -> 9 (acc)
    let n10 = dfg.add_node_labeled(Op::Neg, 0, "n10"); // 1 -> 10
    let n11 = dfg.add_node_labeled(Op::Xor, 0, "n11"); // 10,2 -> 11

    dfg.add_edge(n3, n5, 0);
    dfg.add_edge(n5, n6, 0);
    dfg.add_edge(n4, n7, 0);
    dfg.add_edge(n6, n8, 0);
    dfg.add_edge(n7, n8, 1);
    dfg.add_edge(n8, n9, 0);
    dfg.add_back_edge(n9, n9, 1, 1, 0);
    dfg.add_edge(n1, n10, 0);
    dfg.add_edge(n10, n11, 0);
    dfg.add_edge(n2, n11, 1);

    debug_assert!(dfg.validate().is_ok());
    dfg
}
