//! Lower bounds on the initiation interval: ResMII (resource-limited) and
//! RecMII (recurrence-limited). The mapper's iterative search starts at
//! `MII = max(ResMII, RecMII)`.

use satmapit_cgra::Cgra;
use satmapit_dfg::{Dfg, Op};
use satmapit_graphs::DiGraph;

/// Resource-limited minimum II: with `P` PEs, at most `P` operations can
/// issue per kernel cycle, at most `M` memory operations on the `M`
/// memory-capable PEs, and — for policies with disjoint load/store ports
/// like `MemoryPolicy::SplitLoadStore` — at most `L` loads on the `L`
/// load-capable PEs and `S` stores on the `S` store-capable PEs per
/// cycle. All three are sound lower bounds; the maximum is taken.
///
/// Returns `None` when no finite II exists: the DFG contains a memory
/// operation class the architecture offers no PE for (e.g.
/// `MemoryPolicy::None`). Callers must treat that as "structurally
/// unmappable", not as a numeric bound.
pub fn res_mii(dfg: &Dfg, cgra: &Cgra) -> Option<u32> {
    let nodes = dfg.num_nodes() as u32;
    let pes = cgra.num_pes() as u32;
    let mut bound = nodes.div_ceil(pes);
    let mem_ops = dfg.num_memory_ops() as u32;
    if mem_ops > 0 {
        let mem_pes = cgra.num_memory_pes() as u32;
        if mem_pes == 0 {
            return None;
        }
        bound = bound.max(mem_ops.div_ceil(mem_pes));
        // Per-port-class bounds (strictly tighter when loads and stores
        // are pinned to disjoint PE sets).
        for op in [Op::Load, Op::Store] {
            let ops = dfg.node_ids().filter(|&n| dfg.node(n).op == op).count() as u32;
            if ops == 0 {
                continue;
            }
            let class_pes = cgra.supported_pes(op).len() as u32;
            if class_pes == 0 {
                return None;
            }
            bound = bound.max(ops.div_ceil(class_pes));
        }
    }
    Some(bound.max(1))
}

/// Recurrence-limited minimum II: the smallest `II` such that every
/// dependence cycle satisfies `latency(cycle) <= II * distance(cycle)`.
///
/// With unit latencies this is `max over cycles ⌈len / dist⌉`, computed by
/// searching for the smallest `II` that leaves no positive-weight cycle
/// under edge weights `1 - II * distance`.
pub fn rec_mii(dfg: &Dfg) -> u32 {
    let has_back_edges = dfg.edges().any(|(_, e)| e.is_back_edge());
    if !has_back_edges {
        return 1;
    }
    let mut g = DiGraph::new(dfg.num_nodes());
    let mut dists: Vec<u32> = Vec::with_capacity(dfg.num_edges());
    for (_, e) in dfg.edges() {
        g.add_edge(e.src.index(), e.dst.index());
        dists.push(e.distance);
    }
    // II = num_nodes is always sufficient: any simple cycle has length
    // <= num_nodes and distance >= 1.
    let upper = dfg.num_nodes() as u32;
    for ii in 1..=upper {
        let weights: Vec<i64> = dists
            .iter()
            .map(|&d| 1 - i64::from(ii) * i64::from(d))
            .collect();
        if !g.has_positive_cycle(&weights) {
            return ii;
        }
    }
    upper
}

/// `MII = max(ResMII, RecMII)` — the starting point of the iterative
/// mapping loop (paper Fig. 3).
///
/// `None` propagates the [`res_mii`] "unmappable" signal: the DFG needs
/// memory but the architecture offers none, so no II exists.
pub fn mii(dfg: &Dfg, cgra: &Cgra) -> Option<u32> {
    Some(res_mii(dfg, cgra)?.max(rec_mii(dfg)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::paper_example_dfg;
    use satmapit_cgra::MemoryPolicy;
    use satmapit_dfg::Op;

    #[test]
    fn paper_example_res_mii() {
        let dfg = paper_example_dfg();
        // 11 nodes on 4 PEs -> ceil(11/4) = 3, the paper's kernel II.
        assert_eq!(res_mii(&dfg, &Cgra::square(2)), Some(3));
        assert_eq!(res_mii(&dfg, &Cgra::square(3)), Some(2));
        assert_eq!(res_mii(&dfg, &Cgra::square(4)), Some(1));
    }

    #[test]
    fn rec_mii_without_back_edges_is_one() {
        let mut dfg = Dfg::new("fwd");
        let a = dfg.add_const(1);
        let b = dfg.add_node(Op::Neg);
        dfg.add_edge(a, b, 0);
        assert_eq!(rec_mii(&dfg), 1);
    }

    #[test]
    fn self_accumulator_rec_mii_is_one() {
        // acc = acc + 1: cycle length 1, distance 1.
        let mut dfg = Dfg::new("acc");
        let c = dfg.add_const(1);
        let acc = dfg.add_node(Op::Add);
        dfg.add_edge(c, acc, 0);
        dfg.add_back_edge(acc, acc, 1, 1, 0);
        assert_eq!(rec_mii(&dfg), 1);
    }

    #[test]
    fn long_recurrence_raises_rec_mii() {
        // Cycle a -> b -> c -> a with a single distance-1 back edge:
        // len 3 / dist 1 -> RecMII = 3.
        let mut dfg = Dfg::new("rec3");
        let a = dfg.add_node(Op::Neg);
        let b = dfg.add_node(Op::Neg);
        let c = dfg.add_node(Op::Neg);
        dfg.add_edge(a, b, 0);
        dfg.add_edge(b, c, 0);
        dfg.add_back_edge(c, a, 0, 1, 0);
        assert_eq!(rec_mii(&dfg), 3);
    }

    #[test]
    fn distance_two_halves_rec_mii() {
        // Same 3-cycle but the back edge carries distance 2:
        // ceil(3/2) = 2.
        let mut dfg = Dfg::new("rec3d2");
        let a = dfg.add_node(Op::Neg);
        let b = dfg.add_node(Op::Neg);
        let c = dfg.add_node(Op::Neg);
        dfg.add_edge(a, b, 0);
        dfg.add_edge(b, c, 0);
        dfg.add_back_edge(c, a, 0, 2, 0);
        assert_eq!(rec_mii(&dfg), 2);
    }

    #[test]
    fn mii_is_max_of_bounds() {
        let mut dfg = Dfg::new("both");
        let a = dfg.add_node(Op::Neg);
        let b = dfg.add_node(Op::Neg);
        let c = dfg.add_node(Op::Neg);
        dfg.add_edge(a, b, 0);
        dfg.add_edge(b, c, 0);
        dfg.add_back_edge(c, a, 0, 1, 0);
        // RecMII 3 dominates on a big array; ResMII 3 on 1x1 gives 3 too.
        assert_eq!(mii(&dfg, &Cgra::square(5)), Some(3));
        assert_eq!(mii(&dfg, &Cgra::square(1)), Some(3));
    }

    #[test]
    fn memory_policy_raises_res_mii() {
        // 4 loads on a 2x2 with only the left column (2 PEs) memory-capable.
        let mut dfg = Dfg::new("mem");
        let idx = dfg.add_const(0);
        for _ in 0..4 {
            let ld = dfg.add_node(Op::Load);
            dfg.add_edge(idx, ld, 0);
        }
        let all = Cgra::square(2);
        assert_eq!(res_mii(&dfg, &all), Some(2), "5 nodes / 4 PEs");
        let left = Cgra::square(2).with_memory_policy(MemoryPolicy::LeftColumn);
        assert_eq!(res_mii(&dfg, &left), Some(2), "4 loads / 2 mem PEs");
        // With 8 loads the memory bound dominates.
        let mut dfg8 = Dfg::new("mem8");
        let idx = dfg8.add_const(0);
        for _ in 0..8 {
            let ld = dfg8.add_node(Op::Load);
            dfg8.add_edge(idx, ld, 0);
        }
        assert_eq!(res_mii(&dfg8, &left), Some(4));
    }

    #[test]
    fn paper_example_mii_on_2x2() {
        let dfg = paper_example_dfg();
        assert_eq!(mii(&dfg, &Cgra::square(2)), Some(3));
    }

    #[test]
    fn split_ports_bound_per_class() {
        // 8 loads on a 2x3 split-port mesh: only the 2 column-0 PEs may
        // load, so the true resource bound is ceil(8/2) = 4 — the pooled
        // load+store PE count (4) must not weaken it to 2.
        let mut dfg = Dfg::new("loads8");
        let idx = dfg.add_const(0);
        for _ in 0..8 {
            let ld = dfg.add_node(Op::Load);
            dfg.add_edge(idx, ld, 0);
        }
        let split = Cgra::new(2, 3).with_memory_policy(MemoryPolicy::SplitLoadStore);
        assert_eq!(res_mii(&dfg, &split), Some(4));
    }

    /// Satellite regression: a memory-bearing DFG on an architecture with
    /// zero memory-capable PEs must signal "unmappable", not divide by
    /// zero.
    #[test]
    fn zero_memory_pes_is_unmappable_not_a_panic() {
        let mut dfg = Dfg::new("mem");
        let idx = dfg.add_const(0);
        let ld = dfg.add_node(Op::Load);
        dfg.add_edge(idx, ld, 0);
        let compute_only = Cgra::square(2).with_memory_policy(MemoryPolicy::None);
        assert_eq!(compute_only.num_memory_pes(), 0);
        assert_eq!(res_mii(&dfg, &compute_only), None);
        assert_eq!(mii(&dfg, &compute_only), None);
        // A memory-free DFG is still bounded as usual.
        let mut pure = Dfg::new("pure");
        let a = pure.add_const(1);
        let b = pure.add_node(Op::Neg);
        pure.add_edge(a, b, 0);
        assert_eq!(res_mii(&pure, &compute_only), Some(1));
    }
}
