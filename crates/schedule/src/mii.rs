//! Lower bounds on the initiation interval: ResMII (resource-limited) and
//! RecMII (recurrence-limited). The mapper's iterative search starts at
//! `MII = max(ResMII, RecMII)`.

use satmapit_cgra::Cgra;
use satmapit_dfg::Dfg;
use satmapit_graphs::DiGraph;

/// Resource-limited minimum II: with `P` PEs, at most `P` operations can
/// issue per kernel cycle (and at most `M` memory operations on the `M`
/// memory-capable PEs).
pub fn res_mii(dfg: &Dfg, cgra: &Cgra) -> u32 {
    let nodes = dfg.num_nodes() as u32;
    let pes = cgra.num_pes() as u32;
    let mut bound = nodes.div_ceil(pes);
    let mem_ops = dfg.num_memory_ops() as u32;
    if mem_ops > 0 {
        let mem_pes = cgra.num_memory_pes() as u32;
        bound = bound.max(mem_ops.div_ceil(mem_pes));
    }
    bound.max(1)
}

/// Recurrence-limited minimum II: the smallest `II` such that every
/// dependence cycle satisfies `latency(cycle) <= II * distance(cycle)`.
///
/// With unit latencies this is `max over cycles ⌈len / dist⌉`, computed by
/// searching for the smallest `II` that leaves no positive-weight cycle
/// under edge weights `1 - II * distance`.
pub fn rec_mii(dfg: &Dfg) -> u32 {
    let has_back_edges = dfg.edges().any(|(_, e)| e.is_back_edge());
    if !has_back_edges {
        return 1;
    }
    let mut g = DiGraph::new(dfg.num_nodes());
    let mut dists: Vec<u32> = Vec::with_capacity(dfg.num_edges());
    for (_, e) in dfg.edges() {
        g.add_edge(e.src.index(), e.dst.index());
        dists.push(e.distance);
    }
    // II = num_nodes is always sufficient: any simple cycle has length
    // <= num_nodes and distance >= 1.
    let upper = dfg.num_nodes() as u32;
    for ii in 1..=upper {
        let weights: Vec<i64> = dists
            .iter()
            .map(|&d| 1 - i64::from(ii) * i64::from(d))
            .collect();
        if !g.has_positive_cycle(&weights) {
            return ii;
        }
    }
    upper
}

/// `MII = max(ResMII, RecMII)` — the starting point of the iterative
/// mapping loop (paper Fig. 3).
pub fn mii(dfg: &Dfg, cgra: &Cgra) -> u32 {
    res_mii(dfg, cgra).max(rec_mii(dfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::paper_example_dfg;
    use satmapit_cgra::MemoryPolicy;
    use satmapit_dfg::Op;

    #[test]
    fn paper_example_res_mii() {
        let dfg = paper_example_dfg();
        // 11 nodes on 4 PEs -> ceil(11/4) = 3, the paper's kernel II.
        assert_eq!(res_mii(&dfg, &Cgra::square(2)), 3);
        assert_eq!(res_mii(&dfg, &Cgra::square(3)), 2);
        assert_eq!(res_mii(&dfg, &Cgra::square(4)), 1);
    }

    #[test]
    fn rec_mii_without_back_edges_is_one() {
        let mut dfg = Dfg::new("fwd");
        let a = dfg.add_const(1);
        let b = dfg.add_node(Op::Neg);
        dfg.add_edge(a, b, 0);
        assert_eq!(rec_mii(&dfg), 1);
    }

    #[test]
    fn self_accumulator_rec_mii_is_one() {
        // acc = acc + 1: cycle length 1, distance 1.
        let mut dfg = Dfg::new("acc");
        let c = dfg.add_const(1);
        let acc = dfg.add_node(Op::Add);
        dfg.add_edge(c, acc, 0);
        dfg.add_back_edge(acc, acc, 1, 1, 0);
        assert_eq!(rec_mii(&dfg), 1);
    }

    #[test]
    fn long_recurrence_raises_rec_mii() {
        // Cycle a -> b -> c -> a with a single distance-1 back edge:
        // len 3 / dist 1 -> RecMII = 3.
        let mut dfg = Dfg::new("rec3");
        let a = dfg.add_node(Op::Neg);
        let b = dfg.add_node(Op::Neg);
        let c = dfg.add_node(Op::Neg);
        dfg.add_edge(a, b, 0);
        dfg.add_edge(b, c, 0);
        dfg.add_back_edge(c, a, 0, 1, 0);
        assert_eq!(rec_mii(&dfg), 3);
    }

    #[test]
    fn distance_two_halves_rec_mii() {
        // Same 3-cycle but the back edge carries distance 2:
        // ceil(3/2) = 2.
        let mut dfg = Dfg::new("rec3d2");
        let a = dfg.add_node(Op::Neg);
        let b = dfg.add_node(Op::Neg);
        let c = dfg.add_node(Op::Neg);
        dfg.add_edge(a, b, 0);
        dfg.add_edge(b, c, 0);
        dfg.add_back_edge(c, a, 0, 2, 0);
        assert_eq!(rec_mii(&dfg), 2);
    }

    #[test]
    fn mii_is_max_of_bounds() {
        let mut dfg = Dfg::new("both");
        let a = dfg.add_node(Op::Neg);
        let b = dfg.add_node(Op::Neg);
        let c = dfg.add_node(Op::Neg);
        dfg.add_edge(a, b, 0);
        dfg.add_edge(b, c, 0);
        dfg.add_back_edge(c, a, 0, 1, 0);
        // RecMII 3 dominates on a big array; ResMII 3 on 1x1 gives 3 too.
        assert_eq!(mii(&dfg, &Cgra::square(5)), 3);
        assert_eq!(mii(&dfg, &Cgra::square(1)), 3);
    }

    #[test]
    fn memory_policy_raises_res_mii() {
        // 4 loads on a 2x2 with only the left column (2 PEs) memory-capable.
        let mut dfg = Dfg::new("mem");
        let idx = dfg.add_const(0);
        for _ in 0..4 {
            let ld = dfg.add_node(Op::Load);
            dfg.add_edge(idx, ld, 0);
        }
        let all = Cgra::square(2);
        assert_eq!(res_mii(&dfg, &all), 2, "5 nodes / 4 PEs");
        let left = Cgra::square(2).with_memory_policy(MemoryPolicy::LeftColumn);
        assert_eq!(res_mii(&dfg, &left), 2, "4 loads / 2 mem PEs");
        // With 8 loads the memory bound dominates.
        let mut dfg8 = Dfg::new("mem8");
        let idx = dfg8.add_const(0);
        for _ in 0..8 {
            let ld = dfg8.add_node(Op::Load);
            dfg8.add_edge(idx, ld, 0);
        }
        assert_eq!(res_mii(&dfg8, &left), 4);
    }

    #[test]
    fn paper_example_mii_on_2x2() {
        let dfg = paper_example_dfg();
        assert_eq!(mii(&dfg, &Cgra::square(2)), 3);
    }
}
