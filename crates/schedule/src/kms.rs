//! The Kernel Mobility Schedule (KMS), the paper's central data structure
//! (§IV-B, Fig. 5).
//!
//! For a candidate initiation interval `II`, the mobility schedule of length
//! `L` is folded `⌈L / II⌉` times: a node occupying MS time slot `t` lands
//! at kernel cycle `t mod II` with fold (iteration) label `t / II`. The KMS
//! is "a superset of all possible kernels": any concrete kernel schedule
//! picks exactly one `(cycle, fold)` position per node.

use crate::mobility::MobilitySchedule;
use satmapit_dfg::NodeId;
use serde::{Deserialize, Serialize};

/// One candidate position of a node in the KMS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KmsPos {
    /// Kernel cycle in `0..ii`.
    pub cycle: u32,
    /// Fold (iteration label within the kernel), in `0..folds`.
    pub fold: u32,
}

/// The kernel mobility schedule for a given `II`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Kms {
    ii: u32,
    folds: u32,
    positions: Vec<Vec<KmsPos>>,
}

impl Kms {
    /// Folds the mobility schedule by `ii` with the paper's strict windows
    /// (`[asap, alap]`, no slack).
    ///
    /// # Panics
    ///
    /// Panics if `ii == 0`.
    pub fn build(ms: &MobilitySchedule, ii: u32) -> Kms {
        Kms::build_with_slack(ms, ii, 0)
    }

    /// Folds the mobility schedule by `ii`, extending every node's window
    /// to `[asap, alap + slack]`.
    ///
    /// The paper fixes the schedule length to the critical path, which
    /// makes shallow-but-wide DFGs (many parallel ops, short chains)
    /// unmappable at *any* II: all nodes stay pinned to the same kernel
    /// cycles no matter how far II grows. Extending ALAP by `II - 1`
    /// lets every node reach every kernel cycle in some fold, restoring
    /// completeness of the iterative search while preserving the ASAP
    /// lower bounds. `slack = 0` reproduces the paper's formulation
    /// exactly.
    ///
    /// # Panics
    ///
    /// Panics if `ii == 0`.
    pub fn build_with_slack(ms: &MobilitySchedule, ii: u32, slack: u32) -> Kms {
        assert!(ii > 0, "II must be positive");
        let folds = (ms.len() + slack).div_ceil(ii).max(1);
        let positions = (0..ms.num_nodes())
            .map(|i| {
                let n = NodeId(i as u32);
                (ms.asap(n)..=ms.alap(n) + slack)
                    .map(|t| KmsPos {
                        cycle: t % ii,
                        fold: t / ii,
                    })
                    .collect()
            })
            .collect();
        Kms {
            ii,
            folds,
            positions,
        }
    }

    /// The initiation interval this KMS was folded by.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// Number of folds (iterations coexisting in the kernel).
    pub fn folds(&self) -> u32 {
        self.folds
    }

    /// Number of nodes covered.
    pub fn num_nodes(&self) -> usize {
        self.positions.len()
    }

    /// The candidate positions of node `n` (in increasing unfolded time).
    pub fn positions(&self, n: NodeId) -> &[KmsPos] {
        &self.positions[n.index()]
    }

    /// The unfolded schedule time corresponding to a position:
    /// `cycle + fold * ii`.
    pub fn unfolded_time(&self, pos: KmsPos) -> u32 {
        pos.cycle + pos.fold * self.ii
    }

    /// One row of the KMS table: every `(node, fold)` that may occupy
    /// kernel cycle `c` (Fig. 5's rows).
    pub fn row(&self, c: u32) -> Vec<(NodeId, u32)> {
        let mut out = Vec::new();
        for (i, ps) in self.positions.iter().enumerate() {
            for p in ps {
                if p.cycle == c {
                    out.push((NodeId(i as u32), p.fold));
                }
            }
        }
        out
    }

    /// All rows (`rows()[c] == row(c)`).
    pub fn rows(&self) -> Vec<Vec<(NodeId, u32)>> {
        (0..self.ii).map(|c| self.row(c)).collect()
    }

    /// Total number of `(node, cycle, fold)` placement candidates; the SAT
    /// variable count is this times the number of PEs.
    pub fn num_candidates(&self) -> usize {
        self.positions.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::paper_example_dfg;

    fn paper_kms() -> Kms {
        let dfg = paper_example_dfg();
        let ms = MobilitySchedule::compute(&dfg).unwrap();
        Kms::build(&ms, 3)
    }

    /// Fig. 5: MS of length 5 folded by II=3 gives 2 folds.
    #[test]
    fn paper_fold_count() {
        let kms = paper_kms();
        assert_eq!(kms.ii(), 3);
        assert_eq!(kms.folds(), 2);
    }

    /// Fig. 5's KMS rows: row c = MS row c at fold 0 ∪ MS row c+II at fold 1.
    #[test]
    fn paper_figure5_rows() {
        let kms = paper_kms();
        // (paper node, fold) pairs per kernel cycle.
        let expected: [&[(u32, u32)]; 3] = [
            // cycle 0: MS row0 (it0) + MS row3 (it1)
            &[
                (1, 0),
                (2, 0),
                (3, 0),
                (4, 0),
                (2, 1),
                (8, 1),
                (10, 1),
                (11, 1),
            ],
            // cycle 1: MS row1 (it0) + MS row4 (it1)
            &[
                (1, 0),
                (2, 0),
                (4, 0),
                (5, 0),
                (7, 0),
                (10, 0),
                (9, 1),
                (11, 1),
            ],
            // cycle 2: MS row2 (it0)
            &[(1, 0), (2, 0), (6, 0), (7, 0), (10, 0), (11, 0)],
        ];
        for (c, exp) in expected.iter().enumerate() {
            let mut want: Vec<(NodeId, u32)> =
                exp.iter().map(|&(pn, f)| (NodeId(pn - 1), f)).collect();
            want.sort();
            let mut got = kms.row(c as u32);
            got.sort();
            assert_eq!(got, want, "KMS row {c}");
        }
    }

    #[test]
    fn positions_cover_mobility_window() {
        let dfg = paper_example_dfg();
        let ms = MobilitySchedule::compute(&dfg).unwrap();
        for ii in 1..=6 {
            let kms = Kms::build(&ms, ii);
            for n in dfg.node_ids() {
                let ps = kms.positions(n);
                assert_eq!(ps.len() as u32, ms.mobility(n) + 1, "node {n} ii {ii}");
                for (k, p) in ps.iter().enumerate() {
                    let t = kms.unfolded_time(*p);
                    assert_eq!(t, ms.asap(n) + k as u32);
                    assert!(p.cycle < ii);
                    assert!(p.fold < kms.folds());
                }
            }
        }
    }

    #[test]
    fn row_membership_matches_positions() {
        let kms = paper_kms();
        let rows = kms.rows();
        let total: usize = rows.iter().map(Vec::len).sum();
        assert_eq!(total, kms.num_candidates());
    }

    #[test]
    fn ii_of_one_flattens_everything() {
        let dfg = paper_example_dfg();
        let ms = MobilitySchedule::compute(&dfg).unwrap();
        let kms = Kms::build(&ms, 1);
        assert_eq!(kms.folds(), 5);
        for n in dfg.node_ids() {
            for p in kms.positions(n) {
                assert_eq!(p.cycle, 0);
            }
        }
    }

    #[test]
    fn slack_extends_windows_and_reaches_all_cycles() {
        let dfg = paper_example_dfg();
        let ms = MobilitySchedule::compute(&dfg).unwrap();
        for ii in 2..=4u32 {
            let kms = Kms::build_with_slack(&ms, ii, ii - 1);
            for n in dfg.node_ids() {
                let ps = kms.positions(n);
                assert_eq!(ps.len() as u32, ms.mobility(n) + ii);
                // With slack II-1 every kernel cycle is reachable.
                let mut cycles: Vec<u32> = ps.iter().map(|p| p.cycle).collect();
                cycles.sort_unstable();
                cycles.dedup();
                assert_eq!(cycles.len() as u32, ii, "node {n} ii {ii}");
            }
        }
    }

    #[test]
    fn zero_slack_matches_plain_build() {
        let dfg = paper_example_dfg();
        let ms = MobilitySchedule::compute(&dfg).unwrap();
        for ii in 1..=5 {
            assert_eq!(Kms::build(&ms, ii), Kms::build_with_slack(&ms, ii, 0));
        }
    }

    #[test]
    fn large_ii_single_fold() {
        let dfg = paper_example_dfg();
        let ms = MobilitySchedule::compute(&dfg).unwrap();
        let kms = Kms::build(&ms, 10);
        assert_eq!(kms.folds(), 1);
        for n in dfg.node_ids() {
            for p in kms.positions(n) {
                assert_eq!(p.fold, 0);
                assert_eq!(p.cycle, kms.unfolded_time(*p));
            }
        }
    }
}
