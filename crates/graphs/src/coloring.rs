//! Graph colouring: DSATUR heuristic and exact budgeted k-colouring.
//!
//! Register allocation colours per-PE interference graphs with as many
//! colours as the PE has registers (4 in the paper's architecture).

use crate::ungraph::UnGraph;

/// Outcome of an exact k-colouring attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColoringResult {
    /// A valid colouring with colours in `0..k`.
    Colored(Vec<usize>),
    /// Proven impossible with `k` colours.
    Infeasible,
    /// Search budget exhausted before a decision was reached.
    BudgetExhausted,
}

/// First-fit greedy colouring along the given node order. Always succeeds;
/// returns per-node colours (unbounded palette).
pub fn greedy_coloring(g: &UnGraph, order: &[usize]) -> Vec<usize> {
    let n = g.num_nodes();
    let mut colors = vec![usize::MAX; n];
    for &v in order {
        let mut used: Vec<bool> = vec![false; n + 1];
        for u in g.neighbors(v) {
            if colors[u] != usize::MAX {
                used[colors[u]] = true;
            }
        }
        colors[v] = (0..).find(|&c| !used[c]).expect("palette large enough");
    }
    colors
}

/// DSATUR colouring: picks the most saturated vertex first. Returns
/// per-node colours (unbounded palette); the number of colours used is a
/// good upper bound for the chromatic number.
pub fn dsatur(g: &UnGraph) -> Vec<usize> {
    let n = g.num_nodes();
    let mut colors = vec![usize::MAX; n];
    let mut saturation = vec![0usize; n];
    for _ in 0..n {
        let v = (0..n)
            .filter(|&v| colors[v] == usize::MAX)
            .max_by_key(|&v| (saturation[v], g.degree(v)))
            .expect("uncoloured node exists");
        let mut used = vec![false; n + 1];
        for u in g.neighbors(v) {
            if colors[u] != usize::MAX {
                used[colors[u]] = true;
            }
        }
        let c = (0..).find(|&c| !used[c]).expect("palette large enough");
        colors[v] = c;
        for u in g.neighbors(v) {
            if colors[u] == usize::MAX {
                // Recompute-free approximation: count every newly adjacent
                // colour once. Exact saturation would track colour sets;
                // the approximation only affects tie-breaking quality.
                saturation[u] += 1;
            }
        }
    }
    colors
}

/// Exact backtracking k-colouring with a step budget. Nodes are coloured in
/// most-constrained-first (descending degree) order with forward pruning.
pub fn exact_k_coloring(g: &UnGraph, k: usize, budget: u64) -> ColoringResult {
    let n = g.num_nodes();
    if n == 0 {
        return ColoringResult::Colored(Vec::new());
    }
    // Quick win: if the DSATUR heuristic already fits in k colours, done.
    let heuristic = dsatur(g);
    if heuristic.iter().all(|&c| c < k) {
        return ColoringResult::Colored(heuristic);
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));

    let mut colors = vec![usize::MAX; n];
    let mut steps = 0u64;
    #[allow(clippy::needless_range_loop)] // index loops mirror the recurrence
    fn assign(
        g: &UnGraph,
        order: &[usize],
        pos: usize,
        k: usize,
        colors: &mut Vec<usize>,
        steps: &mut u64,
        budget: u64,
    ) -> Option<bool> {
        if pos == order.len() {
            return Some(true);
        }
        *steps += 1;
        if *steps > budget {
            return None; // budget exhausted
        }
        let v = order[pos];
        let mut used = vec![false; k];
        for u in g.neighbors(v) {
            if colors[u] != usize::MAX && colors[u] < k {
                used[colors[u]] = true;
            }
        }
        // Symmetry breaking: first uncoloured node may only take colours
        // 0..=max_used+1.
        let max_so_far = order[..pos]
            .iter()
            .map(|&u| colors[u])
            .filter(|&c| c != usize::MAX)
            .max()
            .map_or(0, |m| m + 1);
        for c in 0..k.min(max_so_far + 1) {
            if used[c] {
                continue;
            }
            colors[v] = c;
            match assign(g, order, pos + 1, k, colors, steps, budget) {
                Some(true) => return Some(true),
                Some(false) => {}
                None => return None,
            }
        }
        colors[v] = usize::MAX;
        Some(false)
    }

    match assign(g, &order, 0, k, &mut colors, &mut steps, budget) {
        Some(true) => ColoringResult::Colored(colors),
        Some(false) => ColoringResult::Infeasible,
        None => ColoringResult::BudgetExhausted,
    }
}

/// Validates that `colors` is a proper colouring of `g` with palette `0..k`.
pub fn is_valid_coloring(g: &UnGraph, colors: &[usize], k: usize) -> bool {
    if colors.len() != g.num_nodes() {
        return false;
    }
    if colors.iter().any(|&c| c >= k) {
        return false;
    }
    for v in 0..g.num_nodes() {
        for u in g.neighbors(v) {
            if u > v && colors[u] == colors[v] {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> UnGraph {
        let mut g = UnGraph::new(n);
        for v in 0..n {
            g.add_edge(v, (v + 1) % n);
        }
        g
    }

    fn complete(n: usize) -> UnGraph {
        let mut g = UnGraph::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                g.add_edge(u, v);
            }
        }
        g
    }

    #[test]
    fn even_cycle_two_colorable() {
        let g = cycle(8);
        match exact_k_coloring(&g, 2, 100_000) {
            ColoringResult::Colored(c) => assert!(is_valid_coloring(&g, &c, 2)),
            other => panic!("expected colouring, got {other:?}"),
        }
    }

    #[test]
    fn odd_cycle_needs_three() {
        let g = cycle(7);
        assert_eq!(exact_k_coloring(&g, 2, 100_000), ColoringResult::Infeasible);
        match exact_k_coloring(&g, 3, 100_000) {
            ColoringResult::Colored(c) => assert!(is_valid_coloring(&g, &c, 3)),
            other => panic!("expected colouring, got {other:?}"),
        }
    }

    #[test]
    fn complete_graph_chromatic_number() {
        let g = complete(5);
        assert_eq!(exact_k_coloring(&g, 4, 100_000), ColoringResult::Infeasible);
        assert!(matches!(
            exact_k_coloring(&g, 5, 100_000),
            ColoringResult::Colored(_)
        ));
    }

    #[test]
    fn dsatur_valid_and_bounded() {
        let g = cycle(9);
        let c = dsatur(&g);
        let k = c.iter().max().unwrap() + 1;
        assert!(k <= 3);
        assert!(is_valid_coloring(&g, &c, k));
    }

    #[test]
    fn greedy_valid() {
        let g = complete(6);
        let order: Vec<usize> = (0..6).collect();
        let c = greedy_coloring(&g, &order);
        assert!(is_valid_coloring(&g, &c, 6));
    }

    #[test]
    fn empty_graph_coloring() {
        let g = UnGraph::new(0);
        assert_eq!(exact_k_coloring(&g, 1, 10), ColoringResult::Colored(vec![]));
        let g = UnGraph::new(4);
        match exact_k_coloring(&g, 1, 10) {
            ColoringResult::Colored(c) => assert_eq!(c, vec![0, 0, 0, 0]),
            other => panic!("expected colouring, got {other:?}"),
        }
    }

    #[test]
    fn budget_exhaustion() {
        // A graph where DSATUR overshoots so the exact search must run, with
        // a tiny budget: complete(8) needs 8 colours; ask for 7 with budget 1.
        let g2 = complete(8);
        match exact_k_coloring(&g2, 7, 1) {
            ColoringResult::BudgetExhausted | ColoringResult::Infeasible => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn validator_rejects_bad_colorings() {
        let g = cycle(4);
        assert!(!is_valid_coloring(&g, &[0, 0, 1, 1], 2)); // adjacent same colour
        assert!(!is_valid_coloring(&g, &[0, 1], 2)); // wrong length
        assert!(!is_valid_coloring(&g, &[0, 1, 0, 2], 2)); // colour out of range
        assert!(is_valid_coloring(&g, &[0, 1, 0, 1], 2));
    }
}
