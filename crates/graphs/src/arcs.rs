//! Cyclic arcs on a modulo wheel.
//!
//! In a modulo schedule with initiation interval `II`, a value's live range
//! is an arc on the `II`-cycle wheel. Register allocation builds an
//! interference graph from overlapping arcs (a circular-arc graph).

use crate::ungraph::UnGraph;
use serde::{Deserialize, Serialize};

/// A cyclic arc occupying `len` consecutive positions starting at `start`
/// on a wheel of size `wheel` (positions `start, start+1, …, start+len-1`,
/// all modulo `wheel`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CyclicArc {
    /// First occupied position (taken modulo `wheel`).
    pub start: u32,
    /// Number of occupied positions; `len >= wheel` means the full wheel.
    pub len: u32,
    /// Size of the wheel (the initiation interval).
    pub wheel: u32,
}

impl CyclicArc {
    /// Creates an arc; `start` is normalized modulo `wheel`.
    ///
    /// # Panics
    ///
    /// Panics if `wheel == 0`.
    pub fn new(start: u32, len: u32, wheel: u32) -> CyclicArc {
        assert!(wheel > 0, "wheel must be positive");
        CyclicArc {
            start: start % wheel,
            len,
            wheel,
        }
    }

    /// `true` if the arc occupies position `pos` (taken modulo the wheel).
    pub fn covers(&self, pos: u32) -> bool {
        if self.len == 0 {
            return false;
        }
        if self.len >= self.wheel {
            return true;
        }
        let rel = (pos % self.wheel + self.wheel - self.start) % self.wheel;
        rel < self.len
    }

    /// `true` if the two arcs share at least one wheel position.
    ///
    /// # Panics
    ///
    /// Panics if the arcs live on different wheels.
    pub fn overlaps(&self, other: &CyclicArc) -> bool {
        assert_eq!(self.wheel, other.wheel, "arcs on different wheels");
        if self.len == 0 || other.len == 0 {
            return false;
        }
        if self.len >= self.wheel || other.len >= other.wheel {
            return true;
        }
        // other.start inside self, or self.start inside other.
        let d = (other.start + self.wheel - self.start) % self.wheel;
        if d < self.len {
            return true;
        }
        let d = (self.start + self.wheel - other.start) % self.wheel;
        d < other.len
    }
}

/// Builds the interference graph of a set of arcs: nodes are arc indices,
/// edges connect overlapping arcs.
///
/// # Panics
///
/// Panics if arcs live on different wheels.
pub fn interference_graph(arcs: &[CyclicArc]) -> UnGraph {
    let mut g = UnGraph::new(arcs.len());
    for i in 0..arcs.len() {
        for j in (i + 1)..arcs.len() {
            if arcs[i].overlaps(&arcs[j]) {
                g.add_edge(i, j);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_with_wraparound() {
        let arc = CyclicArc::new(4, 3, 6); // covers 4, 5, 0
        assert!(arc.covers(4));
        assert!(arc.covers(5));
        assert!(arc.covers(0));
        assert!(!arc.covers(1));
        assert!(!arc.covers(3));
    }

    #[test]
    fn empty_arc_covers_nothing() {
        let arc = CyclicArc::new(2, 0, 5);
        for p in 0..5 {
            assert!(!arc.covers(p));
        }
        assert!(!arc.overlaps(&CyclicArc::new(0, 5, 5)));
    }

    #[test]
    fn full_wheel_overlaps_everything_nonempty() {
        let full = CyclicArc::new(0, 7, 7);
        let tiny = CyclicArc::new(3, 1, 7);
        assert!(full.overlaps(&tiny));
        assert!(tiny.overlaps(&full));
    }

    #[test]
    fn disjoint_arcs() {
        let a = CyclicArc::new(0, 2, 8); // 0,1
        let b = CyclicArc::new(4, 2, 8); // 4,5
        assert!(!a.overlaps(&b));
        assert!(!b.overlaps(&a));
    }

    #[test]
    fn wraparound_overlap() {
        let a = CyclicArc::new(6, 3, 8); // 6,7,0
        let b = CyclicArc::new(0, 1, 8); // 0
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        let c = CyclicArc::new(1, 2, 8); // 1,2
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn overlap_matches_pointwise_definition() {
        // Exhaustive check on a small wheel: overlap iff some position is
        // covered by both.
        let wheel = 5;
        for s1 in 0..wheel {
            for l1 in 0..=wheel {
                for s2 in 0..wheel {
                    for l2 in 0..=wheel {
                        let a = CyclicArc::new(s1, l1, wheel);
                        let b = CyclicArc::new(s2, l2, wheel);
                        let expected = (0..wheel).any(|p| a.covers(p) && b.covers(p));
                        assert_eq!(a.overlaps(&b), expected, "a={a:?} b={b:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn interference_graph_structure() {
        let arcs = [
            CyclicArc::new(0, 2, 6), // 0,1
            CyclicArc::new(1, 2, 6), // 1,2
            CyclicArc::new(3, 2, 6), // 3,4
        ];
        let g = interference_graph(&arcs);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(1, 2));
    }
}
