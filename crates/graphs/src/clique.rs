//! Maximum-clique search (Bron–Kerbosch with pivoting and bounds).
//!
//! The REGIMap/RAMP family of CGRA mappers reduces placement to finding a
//! clique of size `|DFG|` in a compatibility graph; this module provides the
//! budgeted search those baselines use.

use crate::ungraph::{NodeSet, UnGraph};

/// Outcome of a clique search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliqueResult {
    /// The best clique found (maximum if `complete`).
    pub clique: Vec<usize>,
    /// `true` if the search ran to completion (the clique is provably
    /// maximum / the target is provably unreachable).
    pub complete: bool,
    /// Number of search-tree nodes expanded.
    pub steps: u64,
}

struct Search<'g> {
    g: &'g UnGraph,
    best: Vec<usize>,
    current: Vec<usize>,
    target: Option<usize>,
    budget: u64,
    steps: u64,
    exhausted: bool,
    done: bool,
}

impl<'g> Search<'g> {
    fn expand(&mut self, p: NodeSet, x: NodeSet) {
        if self.done || self.exhausted {
            return;
        }
        self.steps += 1;
        if self.steps > self.budget {
            self.exhausted = true;
            return;
        }
        if p.is_empty() && x.is_empty() {
            if self.current.len() > self.best.len() {
                self.best = self.current.clone();
                if let Some(t) = self.target {
                    if self.best.len() >= t {
                        self.done = true;
                    }
                }
            }
            return;
        }
        // Bound: even taking all of P cannot beat the incumbent.
        if self.current.len() + p.count() <= self.best.len() {
            return;
        }
        // Pivot: vertex of P ∪ X with most neighbours in P.
        let pivot = p
            .iter()
            .chain(x.iter())
            .max_by_key(|&u| p.intersection_count(self.g.row(u)))
            .expect("P ∪ X nonempty");
        let pivot_row = self.g.row(pivot);
        let candidates: Vec<usize> = p
            .iter()
            .filter(|&v| pivot_row[v / 64] >> (v % 64) & 1 == 0)
            .collect();
        let mut p = p;
        let mut x = x;
        for v in candidates {
            if self.done || self.exhausted {
                return;
            }
            let row = self.g.row(v);
            let np = p.intersect_row(row);
            let nx = x.intersect_row(row);
            self.current.push(v);
            self.expand(np, nx);
            self.current.pop();
            p.remove(v);
            x.insert(v);
        }
    }
}

/// Finds a maximum clique, stopping after `budget` search-tree expansions.
///
/// If the budget is exhausted, the best clique found so far is returned with
/// `complete == false`.
pub fn max_clique(g: &UnGraph, budget: u64) -> CliqueResult {
    let words = g.words();
    let mut search = Search {
        g,
        best: Vec::new(),
        current: Vec::new(),
        target: None,
        budget,
        steps: 0,
        exhausted: false,
        done: false,
    };
    search.expand(NodeSet::full(words, g.num_nodes()), NodeSet::empty(words));
    CliqueResult {
        clique: search.best,
        complete: !search.exhausted,
        steps: search.steps,
    }
}

/// Searches for a clique of at least `size` vertices, stopping early as soon
/// as one is found or the budget runs out.
pub fn clique_of_size(g: &UnGraph, size: usize, budget: u64) -> CliqueResult {
    let words = g.words();
    let mut search = Search {
        g,
        best: Vec::new(),
        current: Vec::new(),
        target: Some(size),
        budget,
        steps: 0,
        exhausted: false,
        done: false,
    };
    search.expand(NodeSet::full(words, g.num_nodes()), NodeSet::empty(words));
    CliqueResult {
        clique: search.best,
        complete: !search.exhausted,
        steps: search.steps,
    }
}

/// Checks that `clique` is indeed a clique of `g`.
pub fn is_clique(g: &UnGraph, clique: &[usize]) -> bool {
    for (i, &u) in clique.iter().enumerate() {
        for &v in &clique[i + 1..] {
            if !g.has_edge(u, v) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete_graph(n: usize) -> UnGraph {
        let mut g = UnGraph::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                g.add_edge(u, v);
            }
        }
        g
    }

    #[test]
    fn clique_of_complete_graph() {
        let g = complete_graph(7);
        let r = max_clique(&g, 1_000_000);
        assert!(r.complete);
        assert_eq!(r.clique.len(), 7);
        assert!(is_clique(&g, &r.clique));
    }

    #[test]
    fn triangle_in_path() {
        // Path 0-1-2-3 has max clique 2.
        let mut g = UnGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        let r = max_clique(&g, 1_000_000);
        assert!(r.complete);
        assert_eq!(r.clique.len(), 2);
    }

    #[test]
    fn planted_clique_is_found() {
        // 20 nodes, plant K6 on {2,5,8,11,14,17} plus light noise.
        let mut g = UnGraph::new(20);
        let planted = [2usize, 5, 8, 11, 14, 17];
        for (i, &u) in planted.iter().enumerate() {
            for &v in &planted[i + 1..] {
                g.add_edge(u, v);
            }
        }
        g.add_edge(0, 1);
        g.add_edge(3, 4);
        g.add_edge(6, 9);
        let r = max_clique(&g, 1_000_000);
        assert!(r.complete);
        let mut clique = r.clique;
        clique.sort_unstable();
        assert_eq!(clique, planted);
    }

    #[test]
    fn target_size_early_exit() {
        let g = complete_graph(30);
        let r = clique_of_size(&g, 5, 1_000_000);
        assert!(r.clique.len() >= 5);
        assert!(is_clique(&g, &r.clique));
    }

    #[test]
    fn budget_exhaustion_reported() {
        let g = complete_graph(40);
        let r = max_clique(&g, 3);
        assert!(!r.complete);
    }

    #[test]
    fn empty_graph() {
        let g = UnGraph::new(0);
        let r = max_clique(&g, 100);
        assert!(r.complete);
        assert!(r.clique.is_empty());

        let g = UnGraph::new(3); // no edges
        let r = max_clique(&g, 100);
        assert!(r.complete);
        assert_eq!(r.clique.len(), 1, "isolated vertex is a clique");
    }

    #[test]
    fn unreachable_target_completes() {
        let mut g = UnGraph::new(4);
        g.add_edge(0, 1);
        let r = clique_of_size(&g, 3, 1_000_000);
        assert!(r.complete);
        assert!(r.clique.len() < 3);
    }
}
