//! Undirected graphs backed by adjacency bitsets, sized for the clique and
//! colouring searches used in CGRA placement and register allocation.

use serde::{Deserialize, Serialize};

/// An undirected simple graph over dense node indices `0..n`, with
/// bitset adjacency rows for fast set intersection.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnGraph {
    n: usize,
    words: usize,
    adj: Vec<u64>,
}

impl UnGraph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> UnGraph {
        let words = n.div_ceil(64);
        UnGraph {
            n,
            words,
            adj: vec![0; words * n],
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        (0..self.n).map(|v| self.degree(v)).sum::<usize>() / 2
    }

    /// Words per adjacency row (crate-internal).
    pub(crate) fn words(&self) -> usize {
        self.words
    }

    /// Adds the undirected edge `{u, v}`. Self-loops are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(u < self.n && v < self.n, "edge ({u},{v}) out of range");
        if u == v {
            return;
        }
        self.adj[u * self.words + v / 64] |= 1u64 << (v % 64);
        self.adj[v * self.words + u / 64] |= 1u64 << (u % 64);
    }

    /// `true` if `{u, v}` is an edge.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj[u * self.words + v / 64] >> (v % 64) & 1 == 1
    }

    /// The adjacency bitset row of `v`.
    pub(crate) fn row(&self, v: usize) -> &[u64] {
        &self.adj[v * self.words..(v + 1) * self.words]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.row(v).iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over the neighbours of `v` in increasing order.
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = usize> + '_ {
        let row = self.row(v);
        row.iter().enumerate().flat_map(|(wi, &word)| BitIter {
            word,
            base: wi * 64,
        })
    }

    /// A degeneracy ordering (repeatedly remove a minimum-degree node);
    /// useful as a branching order for clique search.
    pub fn degeneracy_order(&self) -> Vec<usize> {
        let mut deg: Vec<usize> = (0..self.n).map(|v| self.degree(v)).collect();
        let mut removed = vec![false; self.n];
        let mut order = Vec::with_capacity(self.n);
        for _ in 0..self.n {
            let v = (0..self.n)
                .filter(|&v| !removed[v])
                .min_by_key(|&v| deg[v])
                .expect("nodes remain");
            removed[v] = true;
            order.push(v);
            for u in self.neighbors(v) {
                if !removed[u] {
                    deg[u] -= 1;
                }
            }
        }
        order
    }
}

struct BitIter {
    word: u64,
    base: usize,
}

impl Iterator for BitIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            return None;
        }
        let tz = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some(self.base + tz)
    }
}

/// A heap-allocated bitset over node indices, aligned with an [`UnGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct NodeSet {
    pub bits: Vec<u64>,
}

impl NodeSet {
    pub fn empty(words: usize) -> NodeSet {
        NodeSet {
            bits: vec![0; words],
        }
    }

    pub fn full(words: usize, n: usize) -> NodeSet {
        let mut bits = vec![u64::MAX; words];
        let rem = n % 64;
        if rem != 0 && words > 0 {
            bits[words - 1] = (1u64 << rem) - 1;
        }
        if n == 0 {
            bits.iter_mut().for_each(|w| *w = 0);
        }
        NodeSet { bits }
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub fn contains(&self, v: usize) -> bool {
        self.bits[v / 64] >> (v % 64) & 1 == 1
    }

    pub fn insert(&mut self, v: usize) {
        self.bits[v / 64] |= 1u64 << (v % 64);
    }

    pub fn remove(&mut self, v: usize) {
        self.bits[v / 64] &= !(1u64 << (v % 64));
    }

    pub fn count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    pub fn intersect_row(&self, row: &[u64]) -> NodeSet {
        NodeSet {
            bits: self.bits.iter().zip(row).map(|(a, b)| a & b).collect(),
        }
    }

    pub fn intersection_count(&self, row: &[u64]) -> usize {
        self.bits
            .iter()
            .zip(row)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits
            .iter()
            .enumerate()
            .flat_map(|(wi, &word)| BitIter {
                word,
                base: wi * 64,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_and_degrees() {
        let mut g = UnGraph::new(5);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 2);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert!(!g.has_edge(0, 3));
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(0).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn self_loops_ignored() {
        let mut g = UnGraph::new(2);
        g.add_edge(0, 0);
        assert_eq!(g.num_edges(), 0);
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn works_past_64_nodes() {
        let mut g = UnGraph::new(130);
        g.add_edge(0, 129);
        g.add_edge(64, 65);
        assert!(g.has_edge(129, 0));
        assert!(g.has_edge(65, 64));
        assert_eq!(g.neighbors(129).collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn degeneracy_order_is_permutation() {
        let mut g = UnGraph::new(6);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(3, 4);
        let mut order = g.degeneracy_order();
        order.sort_unstable();
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn nodeset_operations() {
        let mut s = NodeSet::empty(2);
        s.insert(3);
        s.insert(70);
        assert!(s.contains(3) && s.contains(70));
        assert_eq!(s.count(), 2);
        s.remove(3);
        assert!(!s.contains(3));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![70]);

        let full = NodeSet::full(2, 70);
        assert_eq!(full.count(), 70);
        assert!(full.contains(69));
        assert!(!full.contains(70));
    }
}
