//! # satmapit-graphs
//!
//! Graph-algorithm substrate for the SAT-MapIt reproduction:
//!
//! * [`DiGraph`] — directed multigraphs with topological sort, iterative
//!   Tarjan SCC, DAG levelization and positive-cycle detection (the RecMII
//!   computation of modulo scheduling reduces to the latter),
//! * [`UnGraph`] — bitset-adjacency undirected graphs,
//! * [`clique`] — budgeted Bron–Kerbosch maximum-clique search, the engine
//!   behind REGIMap/RAMP-style placement baselines,
//! * [`coloring`] — DSATUR and exact budgeted k-colouring for register
//!   allocation,
//! * [`arcs`] — cyclic live-range arcs on the II wheel and their
//!   interference graphs.
//!
//! ```
//! use satmapit_graphs::{clique, UnGraph};
//!
//! let mut g = UnGraph::new(4);
//! g.add_edge(0, 1);
//! g.add_edge(1, 2);
//! g.add_edge(0, 2);
//! let result = clique::max_clique(&g, 10_000);
//! assert_eq!(result.clique.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arcs;
pub mod clique;
pub mod coloring;
mod digraph;
mod ungraph;

pub use digraph::DiGraph;
pub use ungraph::UnGraph;
