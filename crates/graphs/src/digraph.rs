//! Directed graphs: topological ordering, strongly connected components,
//! DAG levelization, and positive-cycle detection (used for RecMII).

use serde::{Deserialize, Serialize};

/// A directed multigraph over dense node indices `0..n`.
///
/// Parallel edges are allowed and keep distinct edge indices, which matters
/// for per-edge weights (e.g. modulo-scheduling distances).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DiGraph {
    n: usize,
    edges: Vec<(usize, usize)>,
    succs: Vec<Vec<usize>>,
    preds: Vec<Vec<usize>>,
}

impl DiGraph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> DiGraph {
        DiGraph {
            n,
            edges: Vec::new(),
            succs: vec![Vec::new(); n],
            preds: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds edge `u → v` and returns its index.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize) -> usize {
        assert!(u < self.n && v < self.n, "edge ({u},{v}) out of range");
        let idx = self.edges.len();
        self.edges.push((u, v));
        self.succs[u].push(idx);
        self.preds[v].push(idx);
        idx
    }

    /// The endpoints of edge `e`.
    pub fn edge(&self, e: usize) -> (usize, usize) {
        self.edges[e]
    }

    /// Outgoing edge indices of `u`.
    pub fn out_edges(&self, u: usize) -> &[usize] {
        &self.succs[u]
    }

    /// Incoming edge indices of `v`.
    pub fn in_edges(&self, v: usize) -> &[usize] {
        &self.preds[v]
    }

    /// Successor nodes of `u` (with multiplicity).
    pub fn successors(&self, u: usize) -> impl Iterator<Item = usize> + '_ {
        self.succs[u].iter().map(move |&e| self.edges[e].1)
    }

    /// Predecessor nodes of `v` (with multiplicity).
    pub fn predecessors(&self, v: usize) -> impl Iterator<Item = usize> + '_ {
        self.preds[v].iter().map(move |&e| self.edges[e].0)
    }

    /// Kahn topological sort. Returns `None` if the graph has a cycle.
    pub fn topo_sort(&self) -> Option<Vec<usize>> {
        let mut indeg: Vec<usize> = (0..self.n).map(|v| self.preds[v].len()).collect();
        let mut queue: Vec<usize> = (0..self.n).filter(|&v| indeg[v] == 0).collect();
        let mut order = Vec::with_capacity(self.n);
        while let Some(v) = queue.pop() {
            order.push(v);
            for &e in &self.succs[v] {
                let w = self.edges[e].1;
                indeg[w] -= 1;
                if indeg[w] == 0 {
                    queue.push(w);
                }
            }
        }
        (order.len() == self.n).then_some(order)
    }

    /// ASAP levels of a DAG: `level[v] = max(level[pred]) + 1`, sources at 0.
    /// Returns `None` if the graph has a cycle.
    pub fn dag_levels(&self) -> Option<Vec<u32>> {
        let order = self.topo_sort()?;
        let mut level = vec![0u32; self.n];
        for &v in &order {
            for &e in &self.succs[v] {
                let w = self.edges[e].1;
                level[w] = level[w].max(level[v] + 1);
            }
        }
        Some(level)
    }

    /// Strongly connected components (iterative Tarjan). Components are
    /// returned in reverse topological order of the condensation.
    pub fn tarjan_scc(&self) -> Vec<Vec<usize>> {
        const UNVISITED: usize = usize::MAX;
        let mut index = vec![UNVISITED; self.n];
        let mut lowlink = vec![0usize; self.n];
        let mut on_stack = vec![false; self.n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut components: Vec<Vec<usize>> = Vec::new();

        // Iterative DFS frame: (node, next successor position).
        let mut call_stack: Vec<(usize, usize)> = Vec::new();
        for start in 0..self.n {
            if index[start] != UNVISITED {
                continue;
            }
            call_stack.push((start, 0));
            index[start] = next_index;
            lowlink[start] = next_index;
            next_index += 1;
            stack.push(start);
            on_stack[start] = true;

            while let Some(&mut (v, ref mut pos)) = call_stack.last_mut() {
                if *pos < self.succs[v].len() {
                    let e = self.succs[v][*pos];
                    *pos += 1;
                    let w = self.edges[e].1;
                    if index[w] == UNVISITED {
                        index[w] = next_index;
                        lowlink[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        call_stack.push((w, 0));
                    } else if on_stack[w] {
                        lowlink[v] = lowlink[v].min(index[w]);
                    }
                } else {
                    call_stack.pop();
                    if let Some(&(parent, _)) = call_stack.last() {
                        lowlink[parent] = lowlink[parent].min(lowlink[v]);
                    }
                    if lowlink[v] == index[v] {
                        let mut component = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            component.push(w);
                            if w == v {
                                break;
                            }
                        }
                        components.push(component);
                    }
                }
            }
        }
        components
    }

    /// Detects whether any cycle has strictly positive total weight, with
    /// `weights[e]` the weight of edge `e` (Bellman–Ford on a virtual
    /// super-source in max-plus algebra).
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != self.num_edges()`.
    pub fn has_positive_cycle(&self, weights: &[i64]) -> bool {
        assert_eq!(weights.len(), self.edges.len());
        let mut dist = vec![0i64; self.n];
        for round in 0..=self.n {
            let mut changed = false;
            for (e, &(u, v)) in self.edges.iter().enumerate() {
                let cand = dist[u].saturating_add(weights[e]);
                if cand > dist[v] {
                    dist[v] = cand;
                    changed = true;
                }
            }
            if !changed {
                return false;
            }
            if round == self.n {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        g
    }

    #[test]
    fn topo_sort_dag() {
        let g = diamond();
        let order = g.topo_sort().unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; 4];
            for (i, &v) in order.iter().enumerate() {
                p[v] = i;
            }
            p
        };
        assert!(pos[0] < pos[1] && pos[0] < pos[2]);
        assert!(pos[1] < pos[3] && pos[2] < pos[3]);
    }

    #[test]
    fn topo_sort_detects_cycle() {
        let mut g = diamond();
        g.add_edge(3, 0);
        assert!(g.topo_sort().is_none());
        assert!(g.dag_levels().is_none());
    }

    #[test]
    fn dag_levels_are_longest_paths() {
        let g = diamond();
        assert_eq!(g.dag_levels().unwrap(), vec![0, 1, 1, 2]);
    }

    #[test]
    fn scc_partitions_nodes() {
        // Two SCCs: {0,1,2} cycle and {3}.
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        g.add_edge(2, 3);
        let mut sccs = g.tarjan_scc();
        for c in &mut sccs {
            c.sort_unstable();
        }
        sccs.sort();
        assert_eq!(sccs, vec![vec![0, 1, 2], vec![3]]);
    }

    #[test]
    fn scc_reverse_topological_order() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        let sccs = g.tarjan_scc();
        // Sinks come first in Tarjan output.
        assert_eq!(sccs, vec![vec![2], vec![1], vec![0]]);
    }

    #[test]
    fn positive_cycle_detection() {
        let mut g = DiGraph::new(3);
        let e0 = g.add_edge(0, 1);
        let e1 = g.add_edge(1, 2);
        let e2 = g.add_edge(2, 0);
        let mut w = vec![0i64; 3];
        w[e0] = 1;
        w[e1] = 1;
        w[e2] = -2;
        assert!(
            !g.has_positive_cycle(&w),
            "zero-weight cycle is not positive"
        );
        w[e2] = -1;
        assert!(g.has_positive_cycle(&w));
        w[e2] = -5;
        assert!(!g.has_positive_cycle(&w));
    }

    #[test]
    fn parallel_edges_are_distinct() {
        let mut g = DiGraph::new(2);
        let a = g.add_edge(0, 1);
        let b = g.add_edge(0, 1);
        assert_ne!(a, b);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.successors(0).count(), 2);
    }

    #[test]
    fn self_loop_positive_cycle() {
        let mut g = DiGraph::new(1);
        g.add_edge(0, 0);
        assert!(g.has_positive_cycle(&[1]));
        assert!(!g.has_positive_cycle(&[0]));
        assert!(!g.has_positive_cycle(&[-1]));
    }
}
