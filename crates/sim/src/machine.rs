//! The physical machine model: PEs with one output register and a small
//! register file, executing the full unfolded modulo schedule
//! (prolog + kernel repetitions + epilog) cycle by cycle.
//!
//! Execution semantics:
//!
//! * at each global cycle, every PE whose kernel slot is occupied executes
//!   the instruction instance whose iteration is in range;
//! * operand reads (register file, neighbour output registers, memory)
//!   observe the *start-of-cycle* state;
//! * results are written to the PE's output register (always), to the
//!   allocated register-file register (if any), and to memory (stores) at
//!   the *end* of the cycle;
//! * loop-carried operands of warm-up iterations (`i < distance`) read the
//!   edge's declared init value, modelling pre-loaded live-ins.
//!
//! Constraint set C2 guarantees the unfolded timeline is conflict-free
//! (two instances on one PE at one cycle would share a kernel slot); the
//! simulator still checks and reports violations.

use satmapit_cgra::Cgra;
use satmapit_core::codegen::{kernel_program, Instr, OperandSrc};
use satmapit_core::{validate_mapping, Mapping, Violation};
use satmapit_dfg::interp::{wrap_addr, StoreEvent};
use satmapit_dfg::{Dfg, NodeId, Op};
use satmapit_regalloc::RegAllocation;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Result of simulating a mapped loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// `values[i][n]` — value produced by node `n` in iteration `i`.
    pub values: Vec<Vec<i64>>,
    /// Final memory contents.
    pub memory: Vec<i64>,
    /// All stores in execution order.
    pub stores: Vec<StoreEvent>,
    /// Total simulated cycles.
    pub cycles: u32,
}

/// Simulation failures.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The mapping failed validation; simulating it would read garbage.
    InvalidMapping(Vec<Violation>),
    /// The DFG has memory ops but no memory was provided.
    EmptyMemory,
    /// Two instruction instances collided on one PE (cannot happen for
    /// validated mappings; indicates an internal inconsistency).
    PeConflict {
        /// PE index.
        pe: usize,
        /// Global cycle.
        time: u32,
    },
    /// A register-file operand had no allocated register.
    MissingRegister {
        /// Consuming node.
        node: NodeId,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidMapping(vs) => write!(f, "invalid mapping ({} violations)", vs.len()),
            SimError::EmptyMemory => write!(f, "memory ops present but memory is empty"),
            SimError::PeConflict { pe, time } => {
                write!(f, "two instances on PE {pe} at cycle {time}")
            }
            SimError::MissingRegister { node } => {
                write!(f, "node {node} reads an unallocated register")
            }
        }
    }
}

impl std::error::Error for SimError {}

struct PendingWrite {
    pe: usize,
    out: i64,
    reg: Option<(u8, i64)>,
}

/// Simulates `iterations` iterations of the mapped loop on the physical
/// machine.
///
/// # Errors
///
/// See [`SimError`].
#[allow(clippy::needless_range_loop)] // PE/slot grids are indexed in lockstep
pub fn simulate(
    dfg: &Dfg,
    cgra: &Cgra,
    mapping: &Mapping,
    regs: &RegAllocation,
    mut memory: Vec<i64>,
    iterations: u32,
) -> Result<SimResult, SimError> {
    if let Err(vs) = validate_mapping(dfg, cgra, mapping) {
        return Err(SimError::InvalidMapping(vs));
    }
    if dfg.num_memory_ops() > 0 && memory.is_empty() {
        return Err(SimError::EmptyMemory);
    }
    let program = kernel_program(dfg, cgra, mapping, regs);
    let ii = mapping.ii;
    let num_pes = cgra.num_pes();
    let total = if iterations == 0 {
        0
    } else {
        mapping.schedule_len() + (iterations - 1) * ii
    };

    let mut out = vec![0i64; num_pes];
    let mut rf = vec![vec![0i64; cgra.regs_per_pe() as usize]; num_pes];
    let mut values = vec![vec![0i64; dfg.num_nodes()]; iterations as usize];
    let mut stores = Vec::new();

    for t in 0..total {
        let slot = t % ii;
        let mut reg_writes: Vec<PendingWrite> = Vec::new();
        let mut mem_writes: Vec<(usize, i64)> = Vec::new();
        let mut executed_on = vec![false; num_pes];

        for pe in 0..num_pes {
            let Some(instr) = program.grid[pe][slot as usize].as_ref() else {
                continue;
            };
            let t_n = mapping.time(instr.node);
            if t < t_n || !(t - t_n).is_multiple_of(ii) {
                continue;
            }
            let i = (t - t_n) / ii;
            if i >= iterations {
                continue;
            }
            if executed_on[pe] {
                return Err(SimError::PeConflict { pe, time: t });
            }
            executed_on[pe] = true;

            let operands = read_operands(dfg, instr, i, pe, &out, &rf)?;
            let value = match instr.op {
                Op::Load => {
                    let addr = wrap_addr(operands[0], memory.len());
                    memory[addr]
                }
                Op::Store => {
                    let addr = wrap_addr(operands[0], memory.len());
                    let v = operands[1];
                    mem_writes.push((addr, v));
                    stores.push(StoreEvent {
                        iteration: i,
                        node: instr.node,
                        addr,
                        value: v,
                    });
                    v
                }
                op => op.eval_pure(instr.imm, &operands),
            };
            values[i as usize][instr.node.index()] = value;
            reg_writes.push(PendingWrite {
                pe,
                out: value,
                reg: instr.dest_reg.map(|r| (r, value)),
            });
        }

        // End of cycle: commit writes.
        for w in reg_writes {
            out[w.pe] = w.out;
            if let Some((r, v)) = w.reg {
                rf[w.pe][r as usize] = v;
            }
        }
        for (addr, v) in mem_writes {
            memory[addr] = v;
        }
    }

    Ok(SimResult {
        values,
        memory,
        stores,
        cycles: total,
    })
}

fn read_operands(
    dfg: &Dfg,
    instr: &Instr,
    iteration: u32,
    pe: usize,
    out: &[i64],
    rf: &[Vec<i64>],
) -> Result<Vec<i64>, SimError> {
    let mut operands = Vec::with_capacity(instr.operands.len());
    for opnd in &instr.operands {
        let e = dfg.edge(opnd.edge);
        let v = if iteration < e.distance {
            // Warm-up: the producing instance predates the loop; read the
            // architecturally pre-loaded live-in.
            e.init
        } else {
            match opnd.src {
                OperandSrc::Register(r) => {
                    let row = &rf[pe];
                    *row.get(r as usize)
                        .ok_or(SimError::MissingRegister { node: instr.node })?
                }
                OperandSrc::NeighborOutput(q) => out[q.index()],
            }
        };
        operands.push(v);
    }
    Ok(operands)
}

#[cfg(test)]
mod tests {
    use super::*;
    use satmapit_core::map;
    use satmapit_dfg::Op;

    fn run_mapped(dfg: &Dfg, cgra: &Cgra, memory: Vec<i64>, iterations: u32) -> SimResult {
        let mapped = map(dfg, cgra).result.expect("mappable");
        simulate(
            dfg,
            cgra,
            &mapped.mapping,
            &mapped.registers,
            memory,
            iterations,
        )
        .unwrap()
    }

    #[test]
    fn accumulator_matches_closed_form() {
        let mut dfg = Dfg::new("acc");
        let c = dfg.add_const(2);
        let acc = dfg.add_node(Op::Add);
        dfg.add_edge(c, acc, 0);
        dfg.add_back_edge(acc, acc, 1, 1, 10);
        let cgra = Cgra::square(2);
        let r = run_mapped(&dfg, &cgra, vec![], 6);
        let accs: Vec<i64> = r.values.iter().map(|row| row[acc.index()]).collect();
        assert_eq!(accs, vec![12, 14, 16, 18, 20, 22]);
    }

    #[test]
    fn streaming_store_writes_memory() {
        let mut dfg = Dfg::new("stream");
        let one = dfg.add_const(1);
        let i = dfg.add_node(Op::Add);
        dfg.add_edge(one, i, 0);
        dfg.add_back_edge(i, i, 1, 1, -1);
        let three = dfg.add_const(3);
        let prod = dfg.add_node(Op::Mul);
        dfg.add_edge(i, prod, 0);
        dfg.add_edge(three, prod, 1);
        let st = dfg.add_node(Op::Store);
        dfg.add_edge(i, st, 0);
        dfg.add_edge(prod, st, 1);
        let cgra = Cgra::square(2);
        let r = run_mapped(&dfg, &cgra, vec![0; 8], 5);
        assert_eq!(&r.memory[..5], &[0, 3, 6, 9, 12]);
        assert_eq!(r.stores.len(), 5);
    }

    #[test]
    fn zero_iterations_is_a_noop() {
        let mut dfg = Dfg::new("one");
        let _ = dfg.add_const(5);
        let cgra = Cgra::square(2);
        let r = run_mapped(&dfg, &cgra, vec![], 0);
        assert_eq!(r.cycles, 0);
        assert!(r.values.is_empty());
    }

    #[test]
    fn invalid_mapping_rejected() {
        use satmapit_core::{Mapping, Placement, TransferKind};
        let mut dfg = Dfg::new("pair");
        let a = dfg.add_const(1);
        let b = dfg.add_node(Op::Neg);
        dfg.add_edge(a, b, 0);
        let cgra = Cgra::square(2);
        let bad = Mapping {
            ii: 1,
            folds: 1,
            placements: vec![
                Placement {
                    pe: satmapit_cgra::PeId(0),
                    cycle: 0,
                    fold: 0,
                },
                Placement {
                    pe: satmapit_cgra::PeId(3),
                    cycle: 0,
                    fold: 0,
                },
            ],
            transfers: vec![TransferKind::NeighborOutput],
        };
        let err = simulate(&dfg, &cgra, &bad, &RegAllocation::default(), vec![], 2).unwrap_err();
        assert!(matches!(err, SimError::InvalidMapping(_)));
    }

    #[test]
    fn memory_required() {
        let mut dfg = Dfg::new("ld");
        let a = dfg.add_const(0);
        let ld = dfg.add_node(Op::Load);
        dfg.add_edge(a, ld, 0);
        let cgra = Cgra::square(2);
        let mapped = map(&dfg, &cgra).result.unwrap();
        let err = simulate(&dfg, &cgra, &mapped.mapping, &mapped.registers, vec![], 1).unwrap_err();
        assert_eq!(err, SimError::EmptyMemory);
    }

    #[test]
    fn deep_pipeline_on_one_pe() {
        // Everything serialized on a 1x1 array: register-file transfers
        // only; checks RF read/write timing over many iterations.
        let mut dfg = Dfg::new("serial");
        let c = dfg.add_const(3);
        let a = dfg.add_node(Op::Add); // a = 3 + a_prev
        dfg.add_edge(c, a, 0);
        dfg.add_back_edge(a, a, 1, 1, 1);
        let b = dfg.add_node(Op::Mul); // b = a * 2
        let two = dfg.add_const(2);
        dfg.add_edge(a, b, 0);
        dfg.add_edge(two, b, 1);
        let cgra = Cgra::square(1);
        let r = run_mapped(&dfg, &cgra, vec![], 4);
        let exp_a = [4i64, 7, 10, 13];
        let exp_b: Vec<i64> = exp_a.iter().map(|v| v * 2).collect();
        for (i, row) in r.values.iter().enumerate() {
            assert_eq!(row[a.index()], exp_a[i]);
            assert_eq!(row[b.index()], exp_b[i]);
        }
    }
}
