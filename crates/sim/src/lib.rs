//! # satmapit-sim
//!
//! Cycle-level functional simulator for mapped CGRA loops, plus
//! end-to-end equivalence checking against the sequential reference
//! interpreter.
//!
//! The SAT-MapIt paper validates mappings structurally (constraints +
//! register allocation). This crate goes one step further and *executes*
//! the mapped program on a physical machine model — output registers,
//! per-PE register files, neighbour reads, shared data memory — across
//! the full prolog/kernel/epilog timeline, then compares every produced
//! value against `satmapit_dfg::interp`. A mapping whose constraint system
//! were subtly wrong (a missed overwrite, a mis-timed read) would compute
//! different values and fail [`verify_mapping`].
//!
//! ```
//! use satmapit_cgra::Cgra;
//! use satmapit_core::map;
//! use satmapit_dfg::{Dfg, Op};
//! use satmapit_sim::verify_mapping;
//!
//! // acc += 2 with acc0 = 10
//! let mut dfg = Dfg::new("acc");
//! let c = dfg.add_const(2);
//! let acc = dfg.add_node(Op::Add);
//! dfg.add_edge(c, acc, 0);
//! dfg.add_back_edge(acc, acc, 1, 1, 10);
//!
//! let cgra = Cgra::square(2);
//! let mapped = map(&dfg, &cgra).result.unwrap();
//! let sim = verify_mapping(&dfg, &cgra, &mapped, vec![], 4).unwrap();
//! assert_eq!(sim.values[3][acc.index()], 18);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod machine;
mod verify;

pub use machine::{simulate, SimError, SimResult};
pub use verify::{verify_mapping, Mismatch, VerifyError};
