//! End-to-end mapping verification: the physical simulation of a mapped
//! loop must reproduce the reference interpreter exactly — every value of
//! every iteration, every store, and the final memory.

use crate::machine::{simulate, SimError, SimResult};
use satmapit_cgra::Cgra;
use satmapit_core::MappedLoop;
use satmapit_dfg::interp::{interpret, InterpError};
use satmapit_dfg::{Dfg, NodeId};
use std::fmt;

/// A divergence between simulation and reference semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mismatch {
    /// A node produced a different value in some iteration.
    Value {
        /// The node.
        node: NodeId,
        /// The iteration.
        iteration: u32,
        /// Reference value.
        expected: i64,
        /// Simulated value.
        got: i64,
    },
    /// Final memory differs at an address.
    Memory {
        /// The address.
        addr: usize,
        /// Reference value.
        expected: i64,
        /// Simulated value.
        got: i64,
    },
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mismatch::Value {
                node,
                iteration,
                expected,
                got,
            } => write!(
                f,
                "node {node} iteration {iteration}: expected {expected}, got {got}"
            ),
            Mismatch::Memory {
                addr,
                expected,
                got,
            } => write!(f, "memory[{addr}]: expected {expected}, got {got}"),
        }
    }
}

/// Verification failures.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyError {
    /// The simulator refused or failed.
    Sim(SimError),
    /// The reference interpreter failed.
    Interp(InterpError),
    /// Semantics diverged.
    Mismatch(Mismatch),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Sim(e) => write!(f, "simulation failed: {e}"),
            VerifyError::Interp(e) => write!(f, "reference interpretation failed: {e}"),
            VerifyError::Mismatch(m) => write!(f, "semantics mismatch: {m}"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Simulates `mapped` for `iterations` iterations and checks it against
/// the sequential reference interpreter, value by value.
///
/// Returns the simulation result on success.
///
/// # Errors
///
/// See [`VerifyError`]; the first mismatch is reported.
pub fn verify_mapping(
    dfg: &Dfg,
    cgra: &Cgra,
    mapped: &MappedLoop,
    memory: Vec<i64>,
    iterations: u32,
) -> Result<SimResult, VerifyError> {
    let reference = interpret(dfg, memory.clone(), iterations).map_err(VerifyError::Interp)?;
    let sim = simulate(
        dfg,
        cgra,
        &mapped.mapping,
        &mapped.registers,
        memory,
        iterations,
    )
    .map_err(VerifyError::Sim)?;

    for i in 0..iterations as usize {
        for n in dfg.node_ids() {
            let expected = reference.values[i][n.index()];
            let got = sim.values[i][n.index()];
            if expected != got {
                return Err(VerifyError::Mismatch(Mismatch::Value {
                    node: n,
                    iteration: i as u32,
                    expected,
                    got,
                }));
            }
        }
    }
    for (addr, (&expected, &got)) in reference.memory.iter().zip(&sim.memory).enumerate() {
        if expected != got {
            return Err(VerifyError::Mismatch(Mismatch::Memory {
                addr,
                expected,
                got,
            }));
        }
    }
    Ok(sim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use satmapit_core::map;
    use satmapit_dfg::gen::{random_dfg, RandomDfgConfig};
    use satmapit_dfg::Op;

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn verified_load_square_store() {
        let mut dfg = Dfg::new("square");
        let one = dfg.add_const(1);
        let i = dfg.add_node(Op::Add);
        dfg.add_edge(one, i, 0);
        dfg.add_back_edge(i, i, 1, 1, -1);
        let ld = dfg.add_node(Op::Load);
        dfg.add_edge(i, ld, 0);
        let sq = dfg.add_node(Op::Mul);
        dfg.add_edge(ld, sq, 0);
        dfg.add_edge(ld, sq, 1);
        let base = dfg.add_const(16);
        let addr = dfg.add_node(Op::Add);
        dfg.add_edge(i, addr, 0);
        dfg.add_edge(base, addr, 1);
        let st = dfg.add_node(Op::Store);
        dfg.add_edge(addr, st, 0);
        dfg.add_edge(sq, st, 1);

        let cgra = Cgra::square(3);
        let mapped = map(&dfg, &cgra).result.expect("mappable");
        let mut mem = vec![0i64; 32];
        for k in 0..8 {
            mem[k] = k as i64 + 2;
        }
        let sim = verify_mapping(&dfg, &cgra, &mapped, mem, 8).expect("verified");
        assert_eq!(&sim.memory[16..24], &[4, 9, 16, 25, 36, 49, 64, 81]);
    }

    #[test]
    fn random_dfgs_verify_end_to_end() {
        // The strongest invariant in the repo: map random loop bodies and
        // execute them physically; values must equal the interpreter's.
        // A modest II cap keeps unmappable seeds from burning time.
        use satmapit_core::{Mapper, MapperConfig};
        let mut verified = 0;
        for seed in 0..12u64 {
            let dfg = random_dfg(&RandomDfgConfig {
                nodes: 8 + (seed as usize % 5),
                back_edges: (seed % 3) as usize,
                memory_ops: seed % 2 == 0,
                seed: seed.wrapping_mul(0x9E37_79B9),
            });
            let cgra = Cgra::square(3);
            let config = MapperConfig {
                max_ii: 10,
                ..MapperConfig::default()
            };
            let outcome = Mapper::new(&dfg, &cgra).with_config(config).run();
            let Ok(mapped) = outcome.result else {
                continue; // some random graphs are (structurally) unmappable
            };
            verify_mapping(&dfg, &cgra, &mapped, vec![7; 64], 5)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            verified += 1;
        }
        assert!(
            verified >= 8,
            "expected most random DFGs to map, got {verified}"
        );
    }

    #[test]
    fn mismatch_detection_works() {
        // Corrupt a mapped loop's register allocation so two live values
        // share a register, and check that verification notices the wrong
        // value (or the simulator/validator rejects it).
        let mut dfg = Dfg::new("t");
        let a = dfg.add_const(5);
        let b = dfg.add_const(9);
        let s = dfg.add_node(Op::Add);
        dfg.add_edge(a, s, 0);
        dfg.add_edge(b, s, 1);
        let cgra = Cgra::square(1); // force same-PE register transfers
        let mapped = map(&dfg, &cgra).result.unwrap();
        let sim = verify_mapping(&dfg, &cgra, &mapped, vec![], 3).expect("correct mapping passes");
        assert_eq!(sim.values[0][s.index()], 14);
    }
}
