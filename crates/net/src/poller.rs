//! A safe, level-triggered wrapper around the `epoll` readiness API.
//!
//! The poller maps descriptors to caller-chosen [`Token`]s; `wait`
//! translates kernel events back into `(Token, readable, writable,
//! hangup)` triples. Level-triggered mode is deliberate: combined with
//! per-connection ring buffers it needs no readiness bookkeeping — if
//! data is left unread the next `wait` reports the descriptor again.

use crate::sys;
use std::io;
use std::os::fd::{AsFd, OwnedFd};

/// An opaque per-registration identifier, echoed back in [`Event`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub u64);

/// Which readiness directions a registration subscribes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };

    fn bits(self) -> u32 {
        let mut events = sys::EPOLLRDHUP;
        if self.readable {
            events |= sys::EPOLLIN;
        }
        if self.writable {
            events |= sys::EPOLLOUT;
        }
        events
    }
}

/// One readiness notification out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    pub token: Token,
    pub readable: bool,
    pub writable: bool,
    /// Peer closed or the descriptor errored; the connection should be
    /// drained and dropped.
    pub hangup: bool,
}

/// The epoll instance. Registered descriptors are borrowed at call
/// sites; the poller itself owns only the epoll descriptor.
pub struct Poller {
    epfd: OwnedFd,
    events: Vec<sys::EpollEvent>,
}

/// How many kernel events one `wait` call can surface. More simply
/// arrive on the next iteration — level-triggered epoll re-reports
/// anything still ready.
const WAIT_BATCH: usize = 256;

impl Poller {
    /// Creates a new epoll instance (close-on-exec).
    ///
    /// # Errors
    ///
    /// Propagates `epoll_create1` failure.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            epfd: sys::epoll_create()?,
            events: vec![sys::EpollEvent { events: 0, data: 0 }; WAIT_BATCH],
        })
    }

    /// Registers `fd` under `token` with the given interest.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure (e.g. the fd is already
    /// registered).
    pub fn add(&self, fd: impl AsFd, token: Token, interest: Interest) -> io::Result<()> {
        sys::epoll_ctl_op(
            self.epfd.as_fd(),
            sys::EPOLL_CTL_ADD,
            fd.as_fd(),
            interest.bits(),
            token.0,
        )
    }

    /// Changes the interest set of an already-registered descriptor.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure (e.g. the fd was never added).
    pub fn modify(&self, fd: impl AsFd, token: Token, interest: Interest) -> io::Result<()> {
        sys::epoll_ctl_op(
            self.epfd.as_fd(),
            sys::EPOLL_CTL_MOD,
            fd.as_fd(),
            interest.bits(),
            token.0,
        )
    }

    /// Removes a descriptor from the interest set. Dropping a
    /// registered descriptor also removes it implicitly; explicit
    /// removal keeps the sequencing obvious.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure.
    pub fn delete(&self, fd: impl AsFd) -> io::Result<()> {
        sys::epoll_ctl_op(self.epfd.as_fd(), sys::EPOLL_CTL_DEL, fd.as_fd(), 0, 0)
    }

    /// Blocks until at least one registered descriptor is ready (or
    /// the timeout elapses; `None` blocks indefinitely) and appends
    /// the readiness events to `out`.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_wait` failure. `EINTR` is retried internally.
    pub fn wait(
        &mut self,
        out: &mut Vec<Event>,
        timeout: Option<std::time::Duration>,
    ) -> io::Result<()> {
        let timeout_ms = match timeout {
            None => -1,
            Some(d) => i32::try_from(d.as_millis()).unwrap_or(i32::MAX),
        };
        let n = sys::epoll_wait_into(self.epfd.as_fd(), &mut self.events, timeout_ms)?;
        for ev in &self.events[..n] {
            // Copy out of the packed struct before touching the
            // fields (direct references into packed data are UB).
            let bits = { ev.events };
            let data = { ev.data };
            out.push(Event {
                token: Token(data),
                readable: bits & sys::EPOLLIN != 0,
                writable: bits & sys::EPOLLOUT != 0,
                hangup: bits & (sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::time::Duration;

    #[test]
    fn readiness_on_a_loopback_pair() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller.add(&server, Token(7), Interest::READ).unwrap();

        // Nothing written yet: a zero timeout reports no events.
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(0)))
            .unwrap();
        assert!(events.iter().all(|e| e.token != Token(7) || !e.readable));

        client.write_all(b"ping\n").unwrap();
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(2000)))
            .unwrap();
        let ev = events.iter().find(|e| e.token == Token(7)).expect("event");
        assert!(ev.readable);

        // Level-triggered: unread data is re-reported.
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(2000)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == Token(7) && e.readable));

        // Peer close surfaces as hangup (alongside readability).
        drop(client);
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(2000)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == Token(7) && e.hangup));

        poller.delete(&server).unwrap();
    }

    #[test]
    fn modify_switches_interest_to_writable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        drop(client);

        let mut poller = Poller::new().unwrap();
        poller.add(&server, Token(1), Interest::READ).unwrap();
        poller.modify(&server, Token(1), Interest::BOTH).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(2000)))
            .unwrap();
        // An idle, connected socket is immediately writable.
        assert!(events.iter().any(|e| e.token == Token(1) && e.writable));
    }
}
