//! Cross-thread wakeup for the event loop, backed by an `eventfd`.
//!
//! The loop registers the waker's descriptor with its [`Poller`]; any
//! thread may call [`Waker::wake`] and the loop's `epoll_wait`
//! returns. This replaces the old daemon's shutdown hack of opening a
//! TCP connection to itself just to unblock `accept`.
//!
//! [`Poller`]: crate::poller::Poller

use crate::sys;
use std::fs::File;
use std::io::{self, Read, Write};
use std::os::fd::{AsFd, BorrowedFd};
use std::sync::Arc;

/// A cloneable wakeup handle. All clones share one eventfd; waking an
/// already-woken waker is harmless (the counter saturates, the loop
/// drains it once).
#[derive(Clone)]
pub struct Waker {
    // eventfd reads/writes are plain 8-byte file I/O, so after the
    // FFI creation call the descriptor lives inside a `File` and all
    // I/O is safe std code. `&File` is Read + Write, so no lock is
    // needed for concurrent wakes.
    file: Arc<File>,
}

impl Waker {
    /// Creates a new eventfd-backed waker (non-blocking,
    /// close-on-exec).
    ///
    /// # Errors
    ///
    /// Propagates `eventfd` creation failure.
    pub fn new() -> io::Result<Waker> {
        let fd = sys::eventfd_create()?;
        Ok(Waker {
            file: Arc::new(File::from(fd)),
        })
    }

    /// The descriptor to register with a poller (readable when woken).
    pub fn as_fd(&self) -> BorrowedFd<'_> {
        self.file.as_fd()
    }

    /// Signals the event loop. Callable from any thread, any number of
    /// times; wakes coalesce.
    ///
    /// # Errors
    ///
    /// Propagates the write failure. `WouldBlock` (counter saturated
    /// at `u64::MAX - 1`) is treated as success — the loop is already
    /// as woken as it can get.
    pub fn wake(&self) -> io::Result<()> {
        match (&*self.file).write_all(&1u64.to_ne_bytes()) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Clears the pending wake count so the descriptor stops reading
    /// as ready. The loop calls this once per wakeup event.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        // A failed read means the counter was already zero
        // (WouldBlock) — nothing to clear.
        let _ = (&*self.file).read(&mut buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poller::{Interest, Poller, Token};
    use std::time::Duration;

    #[test]
    fn wake_makes_the_poller_return() {
        let waker = Waker::new().unwrap();
        let mut poller = Poller::new().unwrap();
        poller.add(waker.as_fd(), Token(0), Interest::READ).unwrap();

        // Quiet waker: zero-timeout wait sees nothing.
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(0)))
            .unwrap();
        assert!(events.is_empty());

        // A wake from another thread is observed.
        let remote = waker.clone();
        let t = std::thread::spawn(move || remote.wake().unwrap());
        poller
            .wait(&mut events, Some(Duration::from_millis(2000)))
            .unwrap();
        t.join().unwrap();
        assert!(events.iter().any(|e| e.token == Token(0) && e.readable));

        // Draining clears readiness; double-drain is harmless.
        waker.drain();
        waker.drain();
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(0)))
            .unwrap();
        assert!(events.is_empty());

        // Coalesced wakes drain in one call.
        waker.wake().unwrap();
        waker.wake().unwrap();
        waker.drain();
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(0)))
            .unwrap();
        assert!(events.is_empty());
    }
}
