// lint: allow(unsafe-gate) -- epoll/eventfd need two FFI calls; unsafe is confined to src/sys.rs and denied everywhere else
#![deny(unsafe_code)]
//! `satmapit-net`: a dependency-free non-blocking transport substrate.
//!
//! The service daemon used to run thread-per-connection over blocking
//! `std::net` with a 100 ms read-timeout poll per client. That shape
//! caps concurrency at the thread budget and forces a
//! `TcpStream::connect(self)` hack to unblock the accept loop at
//! shutdown. This crate provides the pieces for a single-threaded
//! readiness event loop instead:
//!
//! - [`Poller`]: a thin wrapper over Linux `epoll` (level-triggered),
//!   mapping readiness to caller-chosen [`Token`]s.
//! - [`Waker`]: an `eventfd`-backed cross-thread wakeup. Worker threads
//!   call [`Waker::wake`] and the loop's `epoll_wait` returns — no
//!   self-connect, no timeout polling.
//! - [`Ring`]: a growable byte ring buffer used per connection for both
//!   inbound and outbound data.
//! - [`LineConn`]: a non-blocking `TcpStream` plus read/write rings and
//!   newline framing with a configurable line-length cap.
//!
//! Everything here is `std`-only. The two syscalls Rust's standard
//! library does not expose (`epoll*`, `eventfd`) live behind a minimal
//! FFI shim in the private `sys` module; the rest of the crate —
//! and every caller — is `#![deny(unsafe_code)]` safe Rust operating
//! on `OwnedFd`s.

mod sys;

pub mod conn;
pub mod poller;
pub mod ring;
pub mod waker;

pub use conn::{LineConn, LineError};
pub use poller::{Event, Interest, Poller, Token};
pub use ring::Ring;
pub use waker::Waker;
