//! A non-blocking, line-framed connection: a `TcpStream` plus one
//! [`Ring`] per direction and newline framing with a hard line-length
//! cap.
//!
//! The cap closes the memory-DoS hole the old blocking daemon had: a
//! client streaming bytes with no `\n` used to grow the request buffer
//! without bound. Here the partial line is bounded — once it exceeds
//! the cap, [`LineConn::read_lines`] reports [`LineError::TooLong`]
//! and the server answers with an error and closes.

use crate::ring::Ring;
use std::io::{self, Write};
use std::net::TcpStream;

/// How many bytes one `read_lines` call is willing to pull off the
/// socket per ring-fill step. Complete lines are extracted between
/// steps, so pipelined traffic is processed incrementally instead of
/// ballooning the read ring.
const READ_QUANTUM: usize = 64 * 1024;

/// Why reading lines off a connection stopped.
#[derive(Debug)]
pub enum LineError {
    /// A single request line exceeded the configured cap; the caller
    /// should answer with an error and close the connection.
    TooLong {
        /// The configured maximum line length in bytes.
        limit: usize,
    },
    /// The socket failed.
    Io(io::Error),
}

impl From<io::Error> for LineError {
    fn from(e: io::Error) -> LineError {
        LineError::Io(e)
    }
}

impl std::fmt::Display for LineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LineError::TooLong { limit } => {
                write!(f, "request line exceeds {limit} bytes")
            }
            LineError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

/// A non-blocking connection with buffered, line-framed I/O.
pub struct LineConn {
    stream: TcpStream,
    read: Ring,
    write: Ring,
    max_line: usize,
    eof: bool,
}

impl LineConn {
    /// Wraps `stream`, switching it to non-blocking mode. `max_line`
    /// bounds a single request line (exclusive of the newline).
    ///
    /// # Errors
    ///
    /// Propagates `set_nonblocking` failure.
    pub fn new(stream: TcpStream, max_line: usize) -> io::Result<LineConn> {
        stream.set_nonblocking(true)?;
        Ok(LineConn {
            stream,
            read: Ring::new(),
            write: Ring::new(),
            max_line,
            eof: false,
        })
    }

    /// The underlying socket, for poller registration.
    #[must_use]
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// True once the peer has half-closed and all buffered lines have
    /// been surfaced.
    #[must_use]
    pub fn saw_eof(&self) -> bool {
        self.eof
    }

    /// Drains the socket, appending every complete line (without its
    /// `\n`) to `out`. Returns `true` when the peer has closed its
    /// writing side (EOF). Call on every readable event.
    ///
    /// # Errors
    ///
    /// [`LineError::TooLong`] when a partial line outgrows the cap;
    /// [`LineError::Io`] on socket failure. Either way the connection
    /// is unusable for further reads.
    pub fn read_lines(&mut self, out: &mut Vec<Vec<u8>>) -> Result<bool, LineError> {
        loop {
            while let Some(line) = self.read.take_until(b'\n') {
                out.push(line);
            }
            // Whatever remains is a partial line; enforce the cap on
            // it (the `>` leaves room for exactly max_line bytes plus
            // the yet-to-arrive newline).
            if self.read.len() > self.max_line {
                return Err(LineError::TooLong {
                    limit: self.max_line,
                });
            }
            if self.eof {
                return Ok(true);
            }
            let limit = self.read.len() + READ_QUANTUM;
            satmapit_faults::check("net.read")?;
            let (n, eof) = self.read.fill_from(&mut self.stream, limit)?;
            if eof {
                self.eof = true;
            }
            if n == 0 && !eof {
                return Ok(false);
            }
        }
    }

    /// Queues response bytes for delivery; call [`LineConn::flush`]
    /// (and subscribe to writability while `wants_write`) afterwards.
    pub fn queue(&mut self, bytes: &[u8]) {
        self.write.push_slice(bytes);
    }

    /// Number of queued-but-unsent response bytes.
    #[must_use]
    pub fn pending_out(&self) -> usize {
        self.write.len()
    }

    /// True while queued response bytes remain unsent — the caller
    /// should keep EPOLLOUT interest registered.
    #[must_use]
    pub fn wants_write(&self) -> bool {
        !self.write.is_empty()
    }

    /// Pushes queued bytes to the socket until it would block or the
    /// queue empties.
    ///
    /// # Errors
    ///
    /// Propagates socket write failure (e.g. peer reset).
    pub fn flush(&mut self) -> io::Result<()> {
        satmapit_faults::check("net.write")?;
        self.write.drain_to(&mut self.stream)?;
        if self.write.is_empty() {
            self.stream.flush()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    fn read_all_lines(conn: &mut LineConn) -> (Vec<Vec<u8>>, bool) {
        let mut lines = Vec::new();
        let mut eof = false;
        // Poll-free test loop: retry until the bytes arrive.
        for _ in 0..500 {
            eof = conn.read_lines(&mut lines).unwrap();
            if !lines.is_empty() || eof {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        (lines, eof)
    }

    #[test]
    fn frames_pipelined_lines_and_eof() {
        let (mut client, server) = pair();
        let mut conn = LineConn::new(server, 1024).unwrap();
        client.write_all(b"one\ntwo\nthree\n").unwrap();
        let (lines, _) = read_all_lines(&mut conn);
        assert_eq!(
            lines,
            vec![b"one".to_vec(), b"two".to_vec(), b"three".to_vec()]
        );
        drop(client);
        let mut more = Vec::new();
        let mut eof = false;
        for _ in 0..500 {
            eof = conn.read_lines(&mut more).unwrap();
            if eof {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert!(eof);
        assert!(more.is_empty());
    }

    #[test]
    fn a_newline_free_firehose_trips_the_cap() {
        let (mut client, server) = pair();
        let mut conn = LineConn::new(server, 4096).unwrap();
        let blob = vec![b'x'; 64 * 1024];
        let writer = std::thread::spawn(move || {
            // Ignore errors: the server may close while we stream.
            for _ in 0..8 {
                if client.write_all(&blob).is_err() {
                    break;
                }
            }
        });
        let mut lines = Vec::new();
        let mut tripped = false;
        for _ in 0..500 {
            match conn.read_lines(&mut lines) {
                Err(LineError::TooLong { limit }) => {
                    assert_eq!(limit, 4096);
                    tripped = true;
                    break;
                }
                Ok(true) => break,
                Ok(false) => std::thread::sleep(std::time::Duration::from_millis(2)),
                Err(LineError::Io(e)) => panic!("unexpected io error: {e}"),
            }
        }
        assert!(tripped, "oversized line did not trip the cap");
        assert!(lines.is_empty());
        drop(conn);
        writer.join().unwrap();
    }

    #[test]
    fn queued_bytes_flush_to_the_peer() {
        let (client, server) = pair();
        let mut conn = LineConn::new(server, 1024).unwrap();
        conn.queue(b"{\"ok\":true}\n");
        assert!(conn.wants_write());
        while conn.wants_write() {
            conn.flush().unwrap();
        }
        let mut reader = std::io::BufReader::new(client);
        let mut line = String::new();
        std::io::BufRead::read_line(&mut reader, &mut line).unwrap();
        assert_eq!(line, "{\"ok\":true}\n");
    }

    #[test]
    fn a_line_exactly_at_the_cap_is_accepted() {
        let (mut client, server) = pair();
        let mut conn = LineConn::new(server, 8).unwrap();
        client.write_all(b"12345678\n").unwrap();
        let (lines, _) = read_all_lines(&mut conn);
        assert_eq!(lines, vec![b"12345678".to_vec()]);
    }
}
