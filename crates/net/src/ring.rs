//! A growable byte ring buffer.
//!
//! One ring sits on each side of every connection: the read ring
//! accumulates bytes off the socket until a full frame is present, the
//! write ring holds response bytes until the socket accepts them.
//! Storage wraps around a power-of-two capacity and doubles when full,
//! so sustained pipelining never reallocates per request and a burst
//! larger than the current capacity still succeeds.

use std::io::{self, Read, Write};

/// Initial capacity of a fresh ring; small because most connections
/// exchange short JSON lines.
const INITIAL_CAPACITY: usize = 4096;

/// A FIFO byte buffer with wrap-around storage.
pub struct Ring {
    buf: Box<[u8]>,
    /// Index of the first unread byte.
    head: usize,
    /// Number of unread bytes.
    len: usize,
}

impl Default for Ring {
    fn default() -> Ring {
        Ring::new()
    }
}

impl Ring {
    /// An empty ring with the default capacity.
    #[must_use]
    pub fn new() -> Ring {
        Ring {
            buf: vec![0; INITIAL_CAPACITY].into_boxed_slice(),
            head: 0,
            len: 0,
        }
    }

    /// Number of buffered (unread) bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no bytes are buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The two contiguous readable regions, in FIFO order. The second
    /// is empty unless the data currently wraps.
    #[must_use]
    pub fn as_slices(&self) -> (&[u8], &[u8]) {
        let cap = self.buf.len();
        let first_len = self.len.min(cap - self.head);
        let first = &self.buf[self.head..self.head + first_len];
        let second = &self.buf[..self.len - first_len];
        (first, second)
    }

    /// Ensures space for `extra` more bytes, doubling capacity as
    /// needed and linearizing the contents on reallocation.
    fn reserve(&mut self, extra: usize) {
        let needed = self.len + extra;
        if needed <= self.buf.len() {
            return;
        }
        let mut cap = self.buf.len().max(1);
        while cap < needed {
            cap *= 2;
        }
        let mut next = vec![0; cap].into_boxed_slice();
        let (a, b) = self.as_slices();
        next[..a.len()].copy_from_slice(a);
        next[a.len()..a.len() + b.len()].copy_from_slice(b);
        self.buf = next;
        self.head = 0;
    }

    /// Appends `data`, growing if necessary.
    pub fn push_slice(&mut self, data: &[u8]) {
        self.reserve(data.len());
        let cap = self.buf.len();
        let tail = (self.head + self.len) % cap;
        let first_len = data.len().min(cap - tail);
        self.buf[tail..tail + first_len].copy_from_slice(&data[..first_len]);
        self.buf[..data.len() - first_len].copy_from_slice(&data[first_len..]);
        self.len += data.len();
    }

    /// Pops up to `out.len()` bytes into `out`; returns how many.
    pub fn pop_into(&mut self, out: &mut [u8]) -> usize {
        let take = out.len().min(self.len);
        let (a, b) = self.as_slices();
        let from_a = take.min(a.len());
        out[..from_a].copy_from_slice(&a[..from_a]);
        out[from_a..take].copy_from_slice(&b[..take - from_a]);
        self.consume(take);
        take
    }

    /// Discards the first `n` buffered bytes.
    pub fn consume(&mut self, n: usize) {
        debug_assert!(n <= self.len);
        self.head = (self.head + n) % self.buf.len();
        self.len -= n;
        if self.len == 0 {
            self.head = 0;
        }
    }

    /// Index (relative to the FIFO front) of the first occurrence of
    /// `byte`, if buffered.
    #[must_use]
    pub fn find(&self, byte: u8) -> Option<usize> {
        let (a, b) = self.as_slices();
        if let Some(i) = a.iter().position(|&x| x == byte) {
            return Some(i);
        }
        b.iter().position(|&x| x == byte).map(|i| a.len() + i)
    }

    /// Pops bytes up to and including the first `delim`, returning the
    /// frame without the delimiter. `None` when no delimiter is
    /// buffered yet.
    pub fn take_until(&mut self, delim: u8) -> Option<Vec<u8>> {
        let at = self.find(delim)?;
        let mut frame = vec![0; at];
        let took = self.pop_into(&mut frame);
        debug_assert_eq!(took, at);
        self.consume(1);
        Some(frame)
    }

    /// Reads from `src` (typically a non-blocking socket) until it
    /// would block, reaches EOF, or `limit` buffered bytes is hit.
    /// Returns `(bytes_read, saw_eof)`.
    ///
    /// # Errors
    ///
    /// Propagates read errors other than `WouldBlock`/`Interrupted`.
    pub fn fill_from(&mut self, src: &mut impl Read, limit: usize) -> io::Result<(usize, bool)> {
        let mut total = 0;
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if self.len >= limit {
                return Ok((total, false));
            }
            let want = chunk.len().min(limit - self.len);
            match src.read(&mut chunk[..want]) {
                Ok(0) => return Ok((total, true)),
                Ok(n) => {
                    self.push_slice(&chunk[..n]);
                    total += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok((total, false)),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Writes buffered bytes to `dst` (typically a non-blocking
    /// socket) until it would block or the ring empties. Returns the
    /// number of bytes written.
    ///
    /// # Errors
    ///
    /// Propagates write errors other than `WouldBlock`/`Interrupted`.
    pub fn drain_to(&mut self, dst: &mut impl Write) -> io::Result<usize> {
        let mut total = 0;
        while !self.is_empty() {
            let (a, _) = self.as_slices();
            match dst.write(a) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.consume(n);
                    total += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_survives_wraparound_and_growth() {
        let mut ring = Ring::new();
        // Force many wraps with interleaved push/pop at awkward sizes.
        let mut expected = Vec::new();
        let mut popped = Vec::new();
        let mut next: u8 = 0;
        for round in 0..200 {
            let push = 37 + (round % 61);
            let chunk: Vec<u8> = (0..push)
                .map(|_| {
                    next = next.wrapping_add(1);
                    next
                })
                .collect();
            expected.extend_from_slice(&chunk);
            ring.push_slice(&chunk);
            let mut out = vec![0; 23 + (round % 29)];
            let n = ring.pop_into(&mut out);
            popped.extend_from_slice(&out[..n]);
        }
        let mut rest = vec![0; ring.len()];
        let n = ring.pop_into(&mut rest);
        popped.extend_from_slice(&rest[..n]);
        assert_eq!(popped, expected);
        assert!(ring.is_empty());
    }

    #[test]
    fn growth_preserves_wrapped_contents() {
        let mut ring = Ring::new();
        ring.push_slice(&vec![1u8; INITIAL_CAPACITY - 10]);
        let mut scratch = vec![0; INITIAL_CAPACITY - 100];
        ring.pop_into(&mut scratch);
        // Head is now deep into the buffer; this push wraps, the next
        // one grows.
        ring.push_slice(&[2u8; 50]);
        ring.push_slice(&vec![3u8; INITIAL_CAPACITY]);
        let mut out = vec![0; ring.len()];
        ring.pop_into(&mut out);
        assert_eq!(&out[..90], &[1u8; 90][..]);
        assert_eq!(&out[90..140], &[2u8; 50][..]);
        assert_eq!(&out[140..], &[3u8; INITIAL_CAPACITY][..]);
    }

    #[test]
    fn take_until_frames_lines() {
        let mut ring = Ring::new();
        ring.push_slice(b"alpha\nbeta");
        assert_eq!(ring.take_until(b'\n').unwrap(), b"alpha");
        assert_eq!(ring.take_until(b'\n'), None);
        ring.push_slice(b"\n\n");
        assert_eq!(ring.take_until(b'\n').unwrap(), b"beta");
        assert_eq!(ring.take_until(b'\n').unwrap(), b"");
        assert!(ring.is_empty());
    }

    #[test]
    fn find_spans_the_wrap_point() {
        let mut ring = Ring::new();
        ring.push_slice(&vec![b'x'; INITIAL_CAPACITY - 4]);
        let mut scratch = vec![0; INITIAL_CAPACITY - 12];
        ring.pop_into(&mut scratch);
        // 8 bytes buffered near the end; the newline lands after the
        // wrap.
        ring.push_slice(b"abc\ndef");
        assert_eq!(ring.find(b'\n'), Some(8 + 3));
        let line = ring.take_until(b'\n').unwrap();
        assert_eq!(&line[8..], b"abc");
    }

    #[test]
    fn fill_from_respects_the_limit() {
        let mut ring = Ring::new();
        let data = vec![7u8; 1000];
        let mut src = io::Cursor::new(data);
        let (n, eof) = ring.fill_from(&mut src, 64).unwrap();
        assert_eq!(n, 64);
        assert!(!eof);
        assert_eq!(ring.len(), 64);
        let (n, eof) = ring.fill_from(&mut src, usize::MAX).unwrap();
        assert_eq!(n, 936);
        assert!(eof);
    }

    #[test]
    fn drain_to_writes_everything_to_a_willing_sink() {
        let mut ring = Ring::new();
        ring.push_slice(b"hello world");
        let mut sink = Vec::new();
        let n = ring.drain_to(&mut sink).unwrap();
        assert_eq!(n, 11);
        assert_eq!(sink, b"hello world");
        assert!(ring.is_empty());
    }
}
