//! The one unsafe corner of the crate: FFI declarations for the two
//! kernel interfaces `std` does not expose — `epoll` and `eventfd` —
//! plus thin safe wrappers that immediately convert raw descriptors
//! into [`OwnedFd`] so lifetimes and close-on-drop are handled by the
//! standard library from there on.
//!
//! The symbols are provided by the C library every Rust binary on
//! Linux already links; no external crate is involved.
#![allow(unsafe_code)]

use std::ffi::{c_int, c_uint};
use std::io;
use std::os::fd::{AsRawFd, BorrowedFd, FromRawFd, OwnedFd};

/// Mirrors the kernel's `struct epoll_event`. On x86-64 the kernel ABI
/// packs the struct (no padding between `events` and `data`), which is
/// what `#[repr(C, packed)]` reproduces.
#[repr(C, packed)]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;

pub const EPOLL_CTL_ADD: c_int = 1;
pub const EPOLL_CTL_DEL: c_int = 2;
pub const EPOLL_CTL_MOD: c_int = 3;

const EPOLL_CLOEXEC: c_int = 0x8_0000;
const EFD_CLOEXEC: c_int = 0x8_0000;
const EFD_NONBLOCK: c_int = 0x800;

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
}

/// Converts a raw return value into `io::Result`, capturing `errno`
/// on failure.
fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// `epoll_create1(EPOLL_CLOEXEC)` returning an owned descriptor.
pub fn epoll_create() -> io::Result<OwnedFd> {
    let fd = cvt(
        // SAFETY: epoll_create1 takes no pointers; a non-negative
        // return is a freshly created descriptor we alone own.
        unsafe { epoll_create1(EPOLL_CLOEXEC) },
    )?;
    // SAFETY: `fd` was just returned by the kernel and is not owned by
    // any other handle.
    Ok(unsafe { OwnedFd::from_raw_fd(fd) })
}

/// `eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)` returning an owned
/// descriptor. Reads and writes on it go through `std::fs::File`
/// (see `waker.rs`) — only creation needs FFI.
pub fn eventfd_create() -> io::Result<OwnedFd> {
    let fd = cvt(
        // SAFETY: eventfd takes no pointers; a non-negative return is
        // a freshly created descriptor we alone own.
        unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) },
    )?;
    // SAFETY: `fd` was just returned by the kernel and is not owned by
    // any other handle.
    Ok(unsafe { OwnedFd::from_raw_fd(fd) })
}

/// `epoll_ctl` with ADD/MOD/DEL. `event` is ignored by the kernel for
/// DEL (passing a valid pointer keeps pre-2.6.9 kernels happy and
/// costs nothing).
pub fn epoll_ctl_op(
    epfd: BorrowedFd<'_>,
    op: c_int,
    fd: BorrowedFd<'_>,
    events: u32,
    data: u64,
) -> io::Result<()> {
    let mut ev = EpollEvent { events, data };
    cvt(
        // SAFETY: both descriptors are live for the duration of the
        // call (borrowed), and `ev` is a valid, initialized struct
        // that outlives the call.
        unsafe { epoll_ctl(epfd.as_raw_fd(), op, fd.as_raw_fd(), &mut ev) },
    )?;
    Ok(())
}

/// `epoll_wait` filling `buf`; returns the number of ready events.
/// A negative `timeout_ms` blocks indefinitely.
pub fn epoll_wait_into(
    epfd: BorrowedFd<'_>,
    buf: &mut [EpollEvent],
    timeout_ms: i32,
) -> io::Result<usize> {
    let max = c_int::try_from(buf.len()).unwrap_or(c_int::MAX);
    loop {
        let ret =
            // SAFETY: `buf` is a valid writable region of `max`
            // `EpollEvent`s and the descriptor is live (borrowed).
            unsafe { epoll_wait(epfd.as_raw_fd(), buf.as_mut_ptr(), max, timeout_ms) };
        match cvt(ret) {
            Ok(n) => return Ok(n as usize),
            // A signal delivery interrupts the wait; retrying is the
            // only sensible policy for an event loop.
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}
