//! Reference interpreter: executes a loop DFG sequentially, iteration by
//! iteration. This defines the ground-truth semantics that any CGRA mapping
//! of the same DFG must reproduce (checked by `satmapit-sim`).

use crate::graph::{Dfg, DfgError, NodeId};
use crate::op::Op;
use serde::{Deserialize, Serialize};

/// A recorded store: which node stored what where, on which iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreEvent {
    /// Iteration index.
    pub iteration: u32,
    /// The storing node.
    pub node: NodeId,
    /// Target address (already wrapped into the memory size).
    pub addr: usize,
    /// Stored value.
    pub value: i64,
}

/// Result of interpreting a DFG for a number of iterations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterpResult {
    /// `values[i][n]` = value produced by node `n` on iteration `i`
    /// (stores record the stored value).
    pub values: Vec<Vec<i64>>,
    /// Final memory contents.
    pub memory: Vec<i64>,
    /// All stores in program order.
    pub stores: Vec<StoreEvent>,
}

/// Interprets `dfg` for `iterations` iterations against `memory`.
///
/// Addresses are wrapped into `memory.len()` (Euclidean modulo), so any
/// address expression is legal; graphs with memory ops require a non-empty
/// memory.
///
/// # Errors
///
/// Fails if the DFG does not [`Dfg::validate`], or if memory ops exist but
/// `memory` is empty.
pub fn interpret(
    dfg: &Dfg,
    mut memory: Vec<i64>,
    iterations: u32,
) -> Result<InterpResult, InterpError> {
    dfg.validate().map_err(InterpError::InvalidDfg)?;
    if dfg.num_memory_ops() > 0 && memory.is_empty() {
        return Err(InterpError::EmptyMemory);
    }
    let order = dfg.forward_topo_order().map_err(InterpError::InvalidDfg)?;
    let n = dfg.num_nodes();
    let mut values: Vec<Vec<i64>> = Vec::with_capacity(iterations as usize);
    let mut stores = Vec::new();

    // Pre-compute per-node input edges sorted by operand slot.
    let in_edges: Vec<Vec<crate::graph::EdgeId>> =
        dfg.node_ids().map(|id| dfg.in_edges(id)).collect();

    for i in 0..iterations {
        let mut row = vec![0i64; n];
        for &node_id in &order {
            let node = dfg.node(node_id);
            let mut operands = Vec::with_capacity(node.op.arity());
            for &eid in &in_edges[node_id.index()] {
                let e = dfg.edge(eid);
                let v = if e.distance == 0 {
                    row[e.src.index()]
                } else if i >= e.distance {
                    values[(i - e.distance) as usize][e.src.index()]
                } else {
                    e.init
                };
                operands.push(v);
            }
            let value = match node.op {
                Op::Load => {
                    let addr = wrap_addr(operands[0], memory.len());
                    memory[addr]
                }
                Op::Store => {
                    let addr = wrap_addr(operands[0], memory.len());
                    let value = operands[1];
                    memory[addr] = value;
                    stores.push(StoreEvent {
                        iteration: i,
                        node: node_id,
                        addr,
                        value,
                    });
                    value
                }
                op => op.eval_pure(node.imm, &operands),
            };
            row[node_id.index()] = value;
        }
        values.push(row);
    }

    Ok(InterpResult {
        values,
        memory,
        stores,
    })
}

/// Wraps a signed address into a memory of the given size.
pub fn wrap_addr(addr: i64, size: usize) -> usize {
    debug_assert!(size > 0);
    (addr.rem_euclid(size as i64)) as usize
}

/// Errors produced by [`interpret`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// The graph failed validation.
    InvalidDfg(DfgError),
    /// The graph has memory ops but no memory was provided.
    EmptyMemory,
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::InvalidDfg(e) => write!(f, "invalid dfg: {e}"),
            InterpError::EmptyMemory => write!(f, "graph has memory ops but memory is empty"),
        }
    }
}

impl std::error::Error for InterpError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Dfg;

    /// acc_{i} = acc_{i-1} + 2, acc_{-1} = 10.
    #[test]
    fn accumulator_recurrence() {
        let mut dfg = Dfg::new("acc");
        let c = dfg.add_const(2);
        let acc = dfg.add_node(Op::Add);
        dfg.add_edge(c, acc, 0);
        dfg.add_back_edge(acc, acc, 1, 1, 10);
        let r = interpret(&dfg, vec![], 5).unwrap();
        let accs: Vec<i64> = r.values.iter().map(|row| row[acc.index()]).collect();
        assert_eq!(accs, vec![12, 14, 16, 18, 20]);
    }

    /// Induction variable + streaming store: out[i] = i * 3.
    #[test]
    fn streaming_store() {
        let mut dfg = Dfg::new("stream");
        let one = dfg.add_const(1);
        let i = dfg.add_node(Op::Add); // i = i_prev + 1, init -1 => 0,1,2,...
        dfg.add_edge(one, i, 0);
        dfg.add_back_edge(i, i, 1, 1, -1);
        let three = dfg.add_const(3);
        let prod = dfg.add_node(Op::Mul);
        dfg.add_edge(i, prod, 0);
        dfg.add_edge(three, prod, 1);
        let st = dfg.add_node(Op::Store);
        dfg.add_edge(i, st, 0);
        dfg.add_edge(prod, st, 1);

        let r = interpret(&dfg, vec![0; 8], 4).unwrap();
        assert_eq!(&r.memory[..4], &[0, 3, 6, 9]);
        assert_eq!(r.stores.len(), 4);
        assert_eq!(r.stores[2].addr, 2);
        assert_eq!(r.stores[2].value, 6);
    }

    /// Load-compute-store round trip: out[i] = in[i] * in[i].
    #[test]
    fn load_square_store() {
        let mut dfg = Dfg::new("square");
        let one = dfg.add_const(1);
        let i = dfg.add_node(Op::Add);
        dfg.add_edge(one, i, 0);
        dfg.add_back_edge(i, i, 1, 1, -1);
        let ld = dfg.add_node(Op::Load);
        dfg.add_edge(i, ld, 0);
        let sq = dfg.add_node(Op::Mul);
        dfg.add_edge(ld, sq, 0);
        dfg.add_edge(ld, sq, 1);
        let base = dfg.add_const(8);
        let addr = dfg.add_node(Op::Add);
        dfg.add_edge(i, addr, 0);
        dfg.add_edge(base, addr, 1);
        let st = dfg.add_node(Op::Store);
        dfg.add_edge(addr, st, 0);
        dfg.add_edge(sq, st, 1);

        let mut mem = vec![0i64; 16];
        mem[..4].copy_from_slice(&[2, 3, 4, 5]);
        let r = interpret(&dfg, mem, 4).unwrap();
        assert_eq!(&r.memory[8..12], &[4, 9, 16, 25]);
    }

    #[test]
    fn distance_two_recurrence() {
        // fib-like: f_i = f_{i-1} + f_{i-2}. Each back-edge has a single
        // init consumed by *all* its warm-up iterations, so the dist-2
        // operand reads 0 for both i=0 and i=1.
        let mut dfg = Dfg::new("fib");
        let f = dfg.add_node(Op::Add);
        dfg.add_back_edge(f, f, 0, 1, 1);
        dfg.add_back_edge(f, f, 1, 2, 0);
        let r = interpret(&dfg, vec![], 6).unwrap();
        let fs: Vec<i64> = r.values.iter().map(|row| row[f.index()]).collect();
        // f0 = 1+0, f1 = f0+0, f2 = f1+f0, ...
        assert_eq!(fs, vec![1, 1, 2, 3, 5, 8]);
    }

    #[test]
    fn memory_required_when_memory_ops_exist() {
        let mut dfg = Dfg::new("t");
        let a = dfg.add_const(0);
        let ld = dfg.add_node(Op::Load);
        dfg.add_edge(a, ld, 0);
        assert_eq!(interpret(&dfg, vec![], 1), Err(InterpError::EmptyMemory));
    }

    #[test]
    fn invalid_graph_rejected() {
        let mut dfg = Dfg::new("t");
        let _ = dfg.add_node(Op::Add); // operands missing
        assert!(matches!(
            interpret(&dfg, vec![], 1),
            Err(InterpError::InvalidDfg(_))
        ));
    }

    #[test]
    fn negative_addresses_wrap() {
        assert_eq!(wrap_addr(-1, 8), 7);
        assert_eq!(wrap_addr(-9, 8), 7);
        assert_eq!(wrap_addr(8, 8), 0);
    }

    #[test]
    fn zero_iterations() {
        let mut dfg = Dfg::new("t");
        let _ = dfg.add_const(1);
        let r = interpret(&dfg, vec![], 0).unwrap();
        assert!(r.values.is_empty());
        assert!(r.stores.is_empty());
    }
}
