//! Seeded random DFG generation for property tests and stress workloads.
//!
//! Generation is self-contained (xorshift PRNG) so every crate in the
//! workspace can build reproducible random loop bodies without extra
//! dependencies.

use crate::graph::{Dfg, NodeId};
use crate::op::Op;

/// Parameters for [`random_dfg`].
#[derive(Debug, Clone)]
pub struct RandomDfgConfig {
    /// Number of operation nodes (constants added as needed are extra).
    pub nodes: usize,
    /// Number of loop-carried (distance 1–2) dependencies to plant.
    pub back_edges: usize,
    /// Whether to include loads/stores.
    pub memory_ops: bool,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for RandomDfgConfig {
    fn default() -> RandomDfgConfig {
        RandomDfgConfig {
            nodes: 12,
            back_edges: 1,
            memory_ops: false,
            seed: 0xC0FFEE,
        }
    }
}

/// A tiny xorshift64* PRNG; deterministic across platforms.
#[derive(Debug, Clone)]
pub struct XorShift(u64);

impl XorShift {
    /// Creates a PRNG from a seed (zero is remapped).
    pub fn new(seed: u64) -> XorShift {
        XorShift(if seed == 0 { 0x9E3779B97F4A7C15 } else { seed })
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform boolean with probability `num/denom`.
    pub fn chance(&mut self, num: u32, denom: u32) -> bool {
        (self.next_u64() % u64::from(denom)) < u64::from(num)
    }
}

const VALUE_OPS: &[Op] = &[
    Op::Add,
    Op::Sub,
    Op::Mul,
    Op::And,
    Op::Or,
    Op::Xor,
    Op::Shl,
    Op::Shr,
    Op::Min,
    Op::Max,
    Op::Lt,
    Op::Ge,
    Op::Neg,
    Op::Abs,
    Op::Not,
    Op::Select,
];

/// Generates a random, *valid* loop DFG (passes [`Dfg::validate`]).
///
/// The construction is layered: every operand of node `k` is driven either
/// by an earlier node (intra-iteration) or, for planted back-edges, by any
/// value-producing node at distance 1 or 2. Constants are inserted to seed
/// the first layer.
pub fn random_dfg(config: &RandomDfgConfig) -> Dfg {
    let mut rng = XorShift::new(config.seed);
    let mut dfg = Dfg::new(format!("random-{}", config.seed));

    // Seed constants so early nodes have producers.
    let c0 = dfg.add_const(rng.next_u64() as i64 % 97);
    let c1 = dfg.add_const(rng.next_u64() as i64 % 89 + 1);
    let mut producers: Vec<NodeId> = vec![c0, c1];

    // Deferred back-edge slots: (consumer, operand slot, distance).
    let mut deferred: Vec<(NodeId, u8, u32)> = Vec::new();
    let mut back_budget = config.back_edges;

    let n_ops = config.nodes.max(1);
    for k in 0..n_ops {
        let is_last_quarter = k * 4 >= n_ops * 3;
        let op = if config.memory_ops && is_last_quarter && rng.chance(1, 4) {
            if rng.chance(1, 2) {
                Op::Load
            } else {
                Op::Store
            }
        } else {
            VALUE_OPS[rng.below(VALUE_OPS.len())]
        };
        let id = dfg.add_node(op);
        for slot in 0..op.arity() as u8 {
            if back_budget > 0 && rng.chance(1, 5) {
                let distance = if rng.chance(1, 4) { 2 } else { 1 };
                deferred.push((id, slot, distance));
                back_budget -= 1;
            } else {
                let src = producers[rng.below(producers.len())];
                dfg.add_edge(src, id, slot);
            }
        }
        if op.has_output() {
            producers.push(id);
        }
    }

    // Resolve deferred back-edges against the full producer set.
    for (dst, slot, distance) in deferred {
        let src = producers[rng.below(producers.len())];
        let init = rng.next_u64() as i64 % 13;
        dfg.add_back_edge(src, dst, slot, distance, init);
    }

    debug_assert!(dfg.validate().is_ok(), "generator produced invalid DFG");
    dfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_graphs_are_valid() {
        for seed in 0..50 {
            for &memory_ops in &[false, true] {
                let config = RandomDfgConfig {
                    nodes: 4 + (seed as usize % 20),
                    back_edges: seed as usize % 4,
                    memory_ops,
                    seed,
                };
                let dfg = random_dfg(&config);
                assert!(dfg.validate().is_ok(), "seed {seed} mem {memory_ops}");
                assert!(dfg.num_nodes() >= config.nodes);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let config = RandomDfgConfig::default();
        let a = random_dfg(&config);
        let b = random_dfg(&config);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_dfg(&RandomDfgConfig {
            seed: 1,
            ..RandomDfgConfig::default()
        });
        let b = random_dfg(&RandomDfgConfig {
            seed: 2,
            ..RandomDfgConfig::default()
        });
        assert_ne!(a, b);
    }

    #[test]
    fn back_edges_planted() {
        let dfg = random_dfg(&RandomDfgConfig {
            nodes: 30,
            back_edges: 5,
            memory_ops: false,
            seed: 42,
        });
        let planted = dfg.edges().filter(|(_, e)| e.is_back_edge()).count();
        assert!(planted >= 1, "expected at least one back-edge");
    }

    #[test]
    fn xorshift_is_reproducible() {
        let mut a = XorShift::new(7);
        let mut b = XorShift::new(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // below() stays in range
        for bound in 1..20 {
            assert!(a.below(bound) < bound);
        }
    }

    #[test]
    fn generated_graphs_interpret() {
        for seed in 0..10 {
            let dfg = random_dfg(&RandomDfgConfig {
                nodes: 10,
                back_edges: 2,
                memory_ops: true,
                seed,
            });
            let r = crate::interp::interpret(&dfg, vec![1; 64], 4).unwrap();
            assert_eq!(r.values.len(), 4);
        }
    }
}
