//! The data-flow graph structure: nodes, dependency edges, loop-carried
//! back-edges, validation, and structural queries.

use crate::op::Op;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a DFG node (dense index).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Dense index for array addressing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a DFG edge (dense index).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// Dense index for array addressing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A DFG node: one operation of the loop body.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    /// The operation.
    pub op: Op,
    /// Immediate payload (the value of `Const` nodes; ignored otherwise).
    pub imm: i64,
    /// Human-readable label for dumps and DOT export.
    pub label: String,
}

/// A dependency edge `src → dst` feeding operand slot `operand` of `dst`.
///
/// `distance == 0` is an intra-iteration dependency; `distance >= 1` is a
/// loop-carried dependency: iteration `i` of `dst` consumes the value
/// produced by iteration `i - distance` of `src`, and iterations
/// `i < distance` consume `init` instead (the pre-loop live-in).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    /// Producing node.
    pub src: NodeId,
    /// Consuming node.
    pub dst: NodeId,
    /// Operand position at the consumer (0-based).
    pub operand: u8,
    /// Loop-carried distance in iterations (0 = same iteration).
    pub distance: u32,
    /// Live-in value consumed by iterations `i < distance`.
    pub init: i64,
}

impl Edge {
    /// `true` for loop-carried (back) edges.
    pub fn is_back_edge(&self) -> bool {
        self.distance > 0
    }
}

/// A loop-body data-flow graph.
///
/// ```
/// use satmapit_dfg::{Dfg, Op};
/// let mut dfg = Dfg::new("acc");
/// let c = dfg.add_const(1);
/// let acc = dfg.add_node(Op::Add);
/// dfg.add_edge(c, acc, 0);
/// dfg.add_back_edge(acc, acc, 1, 1, 0); // acc += 1 each iteration
/// dfg.validate().unwrap();
/// assert_eq!(dfg.num_nodes(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dfg {
    name: String,
    nodes: Vec<Node>,
    edges: Vec<Edge>,
}

impl Dfg {
    /// Creates an empty DFG with the given name.
    pub fn new(name: impl Into<String>) -> Dfg {
        Dfg {
            name: name.into(),
            nodes: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// The benchmark/loop name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges (including back-edges).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds a node with the default label `<op><index>`.
    pub fn add_node(&mut self, op: Op) -> NodeId {
        let label = format!("{op}{}", self.nodes.len());
        self.add_node_labeled(op, 0, label)
    }

    /// Adds a `Const` node producing `value`.
    pub fn add_const(&mut self, value: i64) -> NodeId {
        let label = format!("c{}", self.nodes.len());
        self.add_node_labeled(Op::Const, value, label)
    }

    /// Adds a node with an explicit immediate and label.
    pub fn add_node_labeled(&mut self, op: Op, imm: i64, label: impl Into<String>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            op,
            imm,
            label: label.into(),
        });
        id
    }

    /// Adds an intra-iteration dependency feeding operand slot `operand`.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, operand: u8) -> EdgeId {
        self.push_edge(Edge {
            src,
            dst,
            operand,
            distance: 0,
            init: 0,
        })
    }

    /// Adds a loop-carried dependency with the given `distance >= 1` and
    /// pre-loop live-in `init`.
    pub fn add_back_edge(
        &mut self,
        src: NodeId,
        dst: NodeId,
        operand: u8,
        distance: u32,
        init: i64,
    ) -> EdgeId {
        self.push_edge(Edge {
            src,
            dst,
            operand,
            distance,
            init,
        })
    }

    fn push_edge(&mut self, edge: Edge) -> EdgeId {
        assert!(
            edge.src.index() < self.nodes.len() && edge.dst.index() < self.nodes.len(),
            "edge endpoints out of range"
        );
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(edge);
        id
    }

    /// The node payload.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The edge payload.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// Iterates over node ids in index order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterates over edge ids in index order.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Iterates over all edges.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &Edge)> {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (EdgeId(i as u32), e))
    }

    /// Incoming edges of `n`, sorted by operand slot.
    pub fn in_edges(&self, n: NodeId) -> Vec<EdgeId> {
        let mut ids: Vec<EdgeId> = self
            .edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.dst == n)
            .map(|(i, _)| EdgeId(i as u32))
            .collect();
        ids.sort_by_key(|&e| self.edges[e.index()].operand);
        ids
    }

    /// Outgoing edges of `n`.
    pub fn out_edges(&self, n: NodeId) -> Vec<EdgeId> {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.src == n)
            .map(|(i, _)| EdgeId(i as u32))
            .collect()
    }

    /// Number of memory operations (loads + stores).
    pub fn num_memory_ops(&self) -> usize {
        self.nodes.iter().filter(|n| n.op.is_memory()).count()
    }

    /// A topological order of the forward (distance-0) subgraph.
    ///
    /// # Errors
    ///
    /// Fails with [`DfgError::ForwardCycle`] if intra-iteration dependencies
    /// form a cycle.
    pub fn forward_topo_order(&self) -> Result<Vec<NodeId>, DfgError> {
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        for e in &self.edges {
            if e.distance == 0 {
                indeg[e.dst.index()] += 1;
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(v) = queue.pop() {
            order.push(NodeId(v as u32));
            for e in &self.edges {
                if e.distance == 0 && e.src.index() == v {
                    let w = e.dst.index();
                    indeg[w] -= 1;
                    if indeg[w] == 0 {
                        queue.push(w);
                    }
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            Err(DfgError::ForwardCycle)
        }
    }

    /// Structural validation; see [`DfgError`] for the invariants checked.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), DfgError> {
        if self.nodes.is_empty() {
            return Err(DfgError::Empty);
        }
        for (i, e) in self.edges.iter().enumerate() {
            if e.src.index() >= self.nodes.len() || e.dst.index() >= self.nodes.len() {
                return Err(DfgError::DanglingEdge(EdgeId(i as u32)));
            }
            if !self.nodes[e.src.index()].op.has_output() {
                return Err(DfgError::SourceHasNoOutput(EdgeId(i as u32)));
            }
            let arity = self.nodes[e.dst.index()].op.arity();
            if (e.operand as usize) >= arity {
                return Err(DfgError::OperandOutOfRange(EdgeId(i as u32)));
            }
        }
        // Every operand slot filled exactly once.
        for (ni, node) in self.nodes.iter().enumerate() {
            let id = NodeId(ni as u32);
            let mut filled = vec![0usize; node.op.arity()];
            for e in &self.edges {
                if e.dst == id {
                    filled[e.operand as usize] += 1;
                }
            }
            for (slot, &count) in filled.iter().enumerate() {
                if count == 0 {
                    return Err(DfgError::MissingOperand { node: id, slot });
                }
                if count > 1 {
                    return Err(DfgError::DuplicateOperand { node: id, slot });
                }
            }
        }
        self.forward_topo_order()?;
        Ok(())
    }
}

/// Violations detected by [`Dfg::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfgError {
    /// The graph has no nodes.
    Empty,
    /// An edge references a node out of range.
    DanglingEdge(EdgeId),
    /// An edge's source op produces no value (e.g. a store feeding a node).
    SourceHasNoOutput(EdgeId),
    /// An edge targets an operand slot beyond the consumer's arity.
    OperandOutOfRange(EdgeId),
    /// An operand slot of a node has no incoming edge.
    MissingOperand {
        /// Consumer node.
        node: NodeId,
        /// Unfilled slot.
        slot: usize,
    },
    /// An operand slot of a node has several incoming edges.
    DuplicateOperand {
        /// Consumer node.
        node: NodeId,
        /// Multiply-driven slot.
        slot: usize,
    },
    /// Intra-iteration dependencies form a cycle.
    ForwardCycle,
}

impl fmt::Display for DfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfgError::Empty => write!(f, "graph has no nodes"),
            DfgError::DanglingEdge(e) => write!(f, "edge {e:?} references missing node"),
            DfgError::SourceHasNoOutput(e) => {
                write!(f, "edge {e:?} originates from a node without output")
            }
            DfgError::OperandOutOfRange(e) => {
                write!(f, "edge {e:?} targets an operand slot beyond arity")
            }
            DfgError::MissingOperand { node, slot } => {
                write!(f, "operand {slot} of {node} is undriven")
            }
            DfgError::DuplicateOperand { node, slot } => {
                write!(f, "operand {slot} of {node} is driven more than once")
            }
            DfgError::ForwardCycle => {
                write!(f, "intra-iteration dependencies form a cycle")
            }
        }
    }
}

impl std::error::Error for DfgError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_dfg() -> Dfg {
        let mut dfg = Dfg::new("t");
        let a = dfg.add_const(1);
        let b = dfg.add_const(2);
        let s = dfg.add_node(Op::Add);
        dfg.add_edge(a, s, 0);
        dfg.add_edge(b, s, 1);
        dfg
    }

    #[test]
    fn valid_simple_graph() {
        let dfg = simple_dfg();
        assert!(dfg.validate().is_ok());
        assert_eq!(dfg.num_nodes(), 3);
        assert_eq!(dfg.num_edges(), 2);
    }

    #[test]
    fn in_edges_sorted_by_operand() {
        let dfg = simple_dfg();
        let s = NodeId(2);
        let ins = dfg.in_edges(s);
        assert_eq!(ins.len(), 2);
        assert_eq!(dfg.edge(ins[0]).operand, 0);
        assert_eq!(dfg.edge(ins[1]).operand, 1);
    }

    #[test]
    fn missing_operand_detected() {
        let mut dfg = Dfg::new("t");
        let a = dfg.add_const(1);
        let s = dfg.add_node(Op::Add);
        dfg.add_edge(a, s, 0);
        assert_eq!(
            dfg.validate(),
            Err(DfgError::MissingOperand { node: s, slot: 1 })
        );
    }

    #[test]
    fn duplicate_operand_detected() {
        let mut dfg = Dfg::new("t");
        let a = dfg.add_const(1);
        let s = dfg.add_node(Op::Neg);
        dfg.add_edge(a, s, 0);
        dfg.add_edge(a, s, 0);
        assert_eq!(
            dfg.validate(),
            Err(DfgError::DuplicateOperand { node: s, slot: 0 })
        );
    }

    #[test]
    fn operand_out_of_range_detected() {
        let mut dfg = Dfg::new("t");
        let a = dfg.add_const(1);
        let s = dfg.add_node(Op::Neg);
        dfg.add_edge(a, s, 1);
        assert_eq!(dfg.validate(), Err(DfgError::OperandOutOfRange(EdgeId(0))));
    }

    #[test]
    fn store_cannot_feed() {
        let mut dfg = Dfg::new("t");
        let a = dfg.add_const(0);
        let v = dfg.add_const(7);
        let st = dfg.add_node(Op::Store);
        dfg.add_edge(a, st, 0);
        dfg.add_edge(v, st, 1);
        let sink = dfg.add_node(Op::Neg);
        dfg.add_edge(st, sink, 0);
        assert_eq!(dfg.validate(), Err(DfgError::SourceHasNoOutput(EdgeId(2))));
    }

    #[test]
    fn forward_cycle_detected_but_back_edge_ok() {
        let mut dfg = Dfg::new("t");
        let a = dfg.add_node(Op::Neg);
        let b = dfg.add_node(Op::Neg);
        dfg.add_edge(a, b, 0);
        dfg.add_back_edge(b, a, 0, 1, 0);
        assert!(dfg.validate().is_ok(), "cycle through back-edge is legal");

        let mut dfg2 = Dfg::new("t");
        let a = dfg2.add_node(Op::Neg);
        let b = dfg2.add_node(Op::Neg);
        dfg2.add_edge(a, b, 0);
        dfg2.add_edge(b, a, 0);
        assert_eq!(dfg2.validate(), Err(DfgError::ForwardCycle));
    }

    #[test]
    fn empty_graph_rejected() {
        let dfg = Dfg::new("t");
        assert_eq!(dfg.validate(), Err(DfgError::Empty));
    }

    #[test]
    fn topo_order_respects_forward_edges() {
        let dfg = simple_dfg();
        let order = dfg.forward_topo_order().unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; 3];
            for (i, n) in order.iter().enumerate() {
                p[n.index()] = i;
            }
            p
        };
        assert!(pos[0] < pos[2]);
        assert!(pos[1] < pos[2]);
    }

    #[test]
    fn clone_preserves_structure() {
        let dfg = simple_dfg();
        let copy = dfg.clone();
        assert_eq!(copy, dfg);
        assert_eq!(copy.name(), "t");
    }
}
