//! Graphviz DOT export for visual inspection of DFGs.

use crate::graph::Dfg;
use std::fmt::Write as _;

/// Renders the DFG in Graphviz DOT syntax. Back-edges are drawn dashed and
/// annotated with their loop-carried distance.
///
/// ```
/// use satmapit_dfg::{Dfg, Op, dot::to_dot};
/// let mut dfg = Dfg::new("demo");
/// let a = dfg.add_const(1);
/// let n = dfg.add_node(Op::Neg);
/// dfg.add_edge(a, n, 0);
/// let dot = to_dot(&dfg);
/// assert!(dot.contains("digraph"));
/// ```
pub fn to_dot(dfg: &Dfg) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", dfg.name());
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=circle, fontsize=10];");
    for id in dfg.node_ids() {
        let node = dfg.node(id);
        let extra = if node.op == crate::op::Op::Const {
            format!("={}", node.imm)
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\\n{}{}\"];",
            id.0, id.0, node.label, extra
        );
    }
    for (_, e) in dfg.edges() {
        if e.is_back_edge() {
            let _ = writeln!(
                out,
                "  n{} -> n{} [style=dashed, label=\"d={} op{}\"];",
                e.src.0, e.dst.0, e.distance, e.operand
            );
        } else {
            let _ = writeln!(
                out,
                "  n{} -> n{} [label=\"op{}\"];",
                e.src.0, e.dst.0, e.operand
            );
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Dfg;
    use crate::op::Op;

    #[test]
    fn dot_contains_nodes_and_edges() {
        let mut dfg = Dfg::new("demo");
        let a = dfg.add_const(5);
        let b = dfg.add_node(Op::Neg);
        dfg.add_edge(a, b, 0);
        dfg.add_back_edge(b, b, 0, 1, 0); // not wellformed, but dot doesn't care
        let dot = to_dot(&dfg);
        assert!(dot.contains("digraph \"demo\""));
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("=5"));
    }
}
