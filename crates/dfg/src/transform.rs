//! Semantics-preserving DFG transformations used by mappers and
//! experiments: explicit routing nodes and loop unrolling.

use crate::graph::{Dfg, EdgeId, NodeId};
use crate::op::Op;

/// Rewrites edge `eid` (`s → d`) into `s → route → d`.
///
/// The route op is the identity; the original loop-carried distance and
/// init move onto the `route → d` leg, so warm-up behaviour is unchanged.
/// Pre-existing node ids are preserved (the route is appended), which lets
/// callers compare interpreter traces of the original nodes directly.
///
/// # Panics
///
/// Panics if `eid` is out of range.
pub fn insert_route(dfg: &Dfg, eid: EdgeId) -> Dfg {
    let mut out = Dfg::new(dfg.name().to_string());
    for n in dfg.node_ids() {
        let node = dfg.node(n);
        out.add_node_labeled(node.op, node.imm, node.label.clone());
    }
    let target = *dfg.edge(eid);
    for (id, e) in dfg.edges() {
        if id == eid {
            continue;
        }
        if e.distance == 0 {
            out.add_edge(e.src, e.dst, e.operand);
        } else {
            out.add_back_edge(e.src, e.dst, e.operand, e.distance, e.init);
        }
    }
    let route = out.add_node_labeled(Op::Route, 0, format!("route{}", eid.index()));
    out.add_edge(target.src, route, 0);
    if target.distance == 0 {
        out.add_edge(route, target.dst, target.operand);
    } else {
        out.add_back_edge(
            route,
            target.dst,
            target.operand,
            target.distance,
            target.init,
        );
    }
    out
}

/// Ranks edges by how much they constrain mapping: high-fanout sources
/// first. These are the edges routing relieves first.
pub fn route_candidates(dfg: &Dfg) -> Vec<EdgeId> {
    let mut edges: Vec<EdgeId> = dfg
        .edges()
        .filter(|(_, e)| e.src != e.dst)
        .map(|(id, _)| id)
        .collect();
    edges.sort_by_key(|&id| {
        let e = dfg.edge(id);
        std::cmp::Reverse(dfg.out_edges(e.src).len())
    });
    edges
}

/// Unrolls the loop body `factor` times.
///
/// Copy `k` of node `n` gets id `k * N + n` (copy-major). Iteration `I` of
/// the unrolled loop executes original iterations `I*factor + k` for
/// `k = 0..factor`; loop-carried edges are rewired accordingly:
/// the consumer copy `k` of a distance-`d` edge reads producer copy
/// `(k - d).rem_euclid(factor)` at unrolled distance
/// `(d - k + k') / factor`.
///
/// # Panics
///
/// Panics if `factor == 0`.
pub fn unroll(dfg: &Dfg, factor: u32) -> Dfg {
    assert!(factor > 0, "unroll factor must be positive");
    if factor == 1 {
        return dfg.clone();
    }
    let n = dfg.num_nodes() as u32;
    let f = factor as i64;
    let mut out = Dfg::new(format!("{}-x{}", dfg.name(), factor));
    for k in 0..factor {
        for id in dfg.node_ids() {
            let node = dfg.node(id);
            out.add_node_labeled(node.op, node.imm, format!("{}#{}", node.label, k));
        }
    }
    let copy = |k: u32, id: NodeId| NodeId(k * n + id.0);
    for (_, e) in dfg.edges() {
        for k in 0..factor {
            if e.distance == 0 {
                out.add_edge(copy(k, e.src), copy(k, e.dst), e.operand);
            } else {
                let d = i64::from(e.distance);
                let kk = (i64::from(k) - d).rem_euclid(f);
                let new_dist = (d - i64::from(k) + kk) / f;
                debug_assert!(new_dist >= 0);
                if new_dist == 0 {
                    out.add_edge(copy(kk as u32, e.src), copy(k, e.dst), e.operand);
                } else {
                    out.add_back_edge(
                        copy(kk as u32, e.src),
                        copy(k, e.dst),
                        e.operand,
                        new_dist as u32,
                        e.init,
                    );
                }
            }
        }
    }
    debug_assert!(out.validate().is_ok(), "unroll produced invalid DFG");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::interpret;

    fn acc_loop() -> Dfg {
        // acc += i; i = i + 1
        let mut dfg = Dfg::new("acc");
        let one = dfg.add_const(1);
        let i = dfg.add_node(Op::Add);
        dfg.add_edge(one, i, 0);
        dfg.add_back_edge(i, i, 1, 1, -1);
        let acc = dfg.add_node(Op::Add);
        dfg.add_edge(i, acc, 0);
        dfg.add_back_edge(acc, acc, 1, 1, 0);
        dfg
    }

    #[test]
    fn route_preserves_semantics_on_every_edge() {
        let dfg = acc_loop();
        let reference = interpret(&dfg, vec![], 6).unwrap();
        for (eid, _) in dfg.edges().collect::<Vec<_>>() {
            let routed = insert_route(&dfg, eid);
            routed.validate().unwrap();
            let r = interpret(&routed, vec![], 6).unwrap();
            for node in dfg.node_ids() {
                for i in 0..6 {
                    assert_eq!(
                        reference.values[i][node.index()],
                        r.values[i][node.index()],
                        "{eid:?} {node} iter {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn unroll_matches_original_semantics() {
        let dfg = acc_loop();
        let n = dfg.num_nodes();
        for factor in [2u32, 3, 4] {
            let unrolled = unroll(&dfg, factor);
            assert_eq!(unrolled.num_nodes(), n * factor as usize);
            unrolled.validate().unwrap();
            let iters = 4u32;
            let reference = interpret(&dfg, vec![], iters * factor).unwrap();
            let r = interpret(&unrolled, vec![], iters).unwrap();
            for big_iter in 0..iters {
                for k in 0..factor {
                    for node in dfg.node_ids() {
                        let orig_iter = (big_iter * factor + k) as usize;
                        let unrolled_node = (k as usize) * n + node.index();
                        assert_eq!(
                            reference.values[orig_iter][node.index()],
                            r.values[big_iter as usize][unrolled_node],
                            "factor {factor} iter {big_iter} copy {k} node {node}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn unroll_with_memory_matches() {
        // Streaming store: out[i] = i * 3.
        let mut dfg = Dfg::new("stream");
        let one = dfg.add_const(1);
        let i = dfg.add_node(Op::Add);
        dfg.add_edge(one, i, 0);
        dfg.add_back_edge(i, i, 1, 1, -1);
        let three = dfg.add_const(3);
        let v = dfg.add_node(Op::Mul);
        dfg.add_edge(i, v, 0);
        dfg.add_edge(three, v, 1);
        let st = dfg.add_node(Op::Store);
        dfg.add_edge(i, st, 0);
        dfg.add_edge(v, st, 1);

        let unrolled = unroll(&dfg, 2);
        let a = interpret(&dfg, vec![0; 16], 8).unwrap();
        let b = interpret(&unrolled, vec![0; 16], 4).unwrap();
        assert_eq!(a.memory, b.memory);
    }

    #[test]
    fn unroll_factor_one_is_identity() {
        let dfg = acc_loop();
        assert_eq!(unroll(&dfg, 1), dfg);
    }

    #[test]
    fn distance_two_unrolls_correctly() {
        // v_i = v_{i-2} + 1 over a distance-2 back edge.
        let mut dfg = Dfg::new("d2");
        let one = dfg.add_const(1);
        let v = dfg.add_node(Op::Add);
        dfg.add_edge(one, v, 0);
        dfg.add_back_edge(v, v, 1, 2, 10);
        let unrolled = unroll(&dfg, 2);
        unrolled.validate().unwrap();
        // After x2 unrolling, both copies carry distance-1 self edges.
        let back: Vec<_> = unrolled.edges().filter(|(_, e)| e.is_back_edge()).collect();
        assert_eq!(back.len(), 2);
        assert!(back.iter().all(|(_, e)| e.distance == 1));
        let a = interpret(&dfg, vec![], 8).unwrap();
        let b = interpret(&unrolled, vec![], 4).unwrap();
        let n = dfg.num_nodes();
        for big in 0..4usize {
            for k in 0..2usize {
                assert_eq!(
                    a.values[big * 2 + k][v.index()],
                    b.values[big][k * n + v.index()]
                );
            }
        }
    }

    #[test]
    fn candidates_prefer_high_fanout() {
        let mut dfg = Dfg::new("fan");
        let hub = dfg.add_const(1);
        let a = dfg.add_node(Op::Neg);
        let b = dfg.add_node(Op::Neg);
        let c = dfg.add_node(Op::Neg);
        dfg.add_edge(hub, a, 0);
        dfg.add_edge(hub, b, 0);
        dfg.add_edge(a, c, 0);
        let cands = route_candidates(&dfg);
        assert_eq!(dfg.edge(cands[0]).src, hub);
    }
}
