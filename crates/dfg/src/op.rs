//! Operation set of the data-flow graph.
//!
//! The op repertoire models a generic CGRA ALU: integer arithmetic, logic,
//! shifts/rotates, comparisons, select, and memory access. All arithmetic is
//! 64-bit two's-complement wrapping, matching a fixed-width datapath.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An instruction/operation executed by a DFG node (one PE slot when mapped).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// Produces the node's immediate value; no operands.
    Const,
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Division; division by zero yields 0 (hardware-defined).
    Div,
    /// Remainder; remainder by zero yields 0.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Bitwise not (unary).
    Not,
    /// Arithmetic negation (unary).
    Neg,
    /// Absolute value (unary, wrapping at `i64::MIN`).
    Abs,
    /// Shift left by `rhs & 63`.
    Shl,
    /// Logical shift right by `rhs & 63`.
    Shr,
    /// Rotate right (64-bit) by `rhs & 63`.
    Ror,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Equality comparison, produces 0/1.
    Eq,
    /// Inequality comparison, produces 0/1.
    Ne,
    /// Signed less-than, produces 0/1.
    Lt,
    /// Signed less-or-equal, produces 0/1.
    Le,
    /// Signed greater-than, produces 0/1.
    Gt,
    /// Signed greater-or-equal, produces 0/1.
    Ge,
    /// `select(cond, a, b)`: `a` if `cond != 0` else `b` (ternary).
    Select,
    /// Memory load from address operand.
    Load,
    /// Memory store: operands `(addr, value)`; produces the stored value
    /// (so traces can be compared) but has no data consumers in wellformed
    /// graphs by convention.
    Store,
    /// Identity/forwarding op used as an explicit routing node.
    Route,
}

impl Op {
    /// Number of data operands the op consumes.
    pub fn arity(self) -> usize {
        match self {
            Op::Const => 0,
            Op::Not | Op::Neg | Op::Abs | Op::Load | Op::Route => 1,
            Op::Select => 3,
            _ => 2,
        }
    }

    /// `true` if the op defines a value usable by consumers.
    pub fn has_output(self) -> bool {
        !matches!(self, Op::Store)
    }

    /// `true` for memory operations (loads and stores), which may be
    /// restricted to memory-capable PEs by the architecture.
    pub fn is_memory(self) -> bool {
        matches!(self, Op::Load | Op::Store)
    }

    /// Evaluates the pure (non-memory) semantics of this op.
    ///
    /// # Panics
    ///
    /// Panics if `operands.len() != self.arity()` or if called on a memory
    /// op (their semantics need the memory, see the interpreter).
    pub fn eval_pure(self, imm: i64, operands: &[i64]) -> i64 {
        assert_eq!(operands.len(), self.arity(), "arity mismatch for {self}");
        assert!(!self.is_memory(), "memory ops need an interpreter");
        let a = *operands.first().unwrap_or(&0);
        let b = *operands.get(1).unwrap_or(&0);
        match self {
            Op::Const => imm,
            Op::Add => a.wrapping_add(b),
            Op::Sub => a.wrapping_sub(b),
            Op::Mul => a.wrapping_mul(b),
            Op::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            Op::Rem => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_rem(b)
                }
            }
            Op::And => a & b,
            Op::Or => a | b,
            Op::Xor => a ^ b,
            Op::Not => !a,
            Op::Neg => a.wrapping_neg(),
            Op::Abs => a.wrapping_abs(),
            Op::Shl => a.wrapping_shl((b & 63) as u32),
            Op::Shr => ((a as u64) >> (b & 63)) as i64,
            Op::Ror => (a as u64).rotate_right((b & 63) as u32) as i64,
            Op::Min => a.min(b),
            Op::Max => a.max(b),
            Op::Eq => i64::from(a == b),
            Op::Ne => i64::from(a != b),
            Op::Lt => i64::from(a < b),
            Op::Le => i64::from(a <= b),
            Op::Gt => i64::from(a > b),
            Op::Ge => i64::from(a >= b),
            Op::Select => {
                let c = operands[2];
                if a != 0 {
                    b
                } else {
                    c
                }
            }
            Op::Load | Op::Store => unreachable!(),
            Op::Route => a,
        }
    }

    /// All ops, for enumeration in tests and generators.
    pub fn all() -> &'static [Op] {
        &[
            Op::Const,
            Op::Add,
            Op::Sub,
            Op::Mul,
            Op::Div,
            Op::Rem,
            Op::And,
            Op::Or,
            Op::Xor,
            Op::Not,
            Op::Neg,
            Op::Abs,
            Op::Shl,
            Op::Shr,
            Op::Ror,
            Op::Min,
            Op::Max,
            Op::Eq,
            Op::Ne,
            Op::Lt,
            Op::Le,
            Op::Gt,
            Op::Ge,
            Op::Select,
            Op::Load,
            Op::Store,
            Op::Route,
        ]
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Op::Const => "const",
            Op::Add => "add",
            Op::Sub => "sub",
            Op::Mul => "mul",
            Op::Div => "div",
            Op::Rem => "rem",
            Op::And => "and",
            Op::Or => "or",
            Op::Xor => "xor",
            Op::Not => "not",
            Op::Neg => "neg",
            Op::Abs => "abs",
            Op::Shl => "shl",
            Op::Shr => "shr",
            Op::Ror => "ror",
            Op::Min => "min",
            Op::Max => "max",
            Op::Eq => "eq",
            Op::Ne => "ne",
            Op::Lt => "lt",
            Op::Le => "le",
            Op::Gt => "gt",
            Op::Ge => "ge",
            Op::Select => "select",
            Op::Load => "load",
            Op::Store => "store",
            Op::Route => "route",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_consistency() {
        for &op in Op::all() {
            assert!(op.arity() <= 3);
            if op == Op::Const {
                assert_eq!(op.arity(), 0);
            }
        }
    }

    #[test]
    fn arithmetic_semantics() {
        assert_eq!(Op::Add.eval_pure(0, &[2, 3]), 5);
        assert_eq!(Op::Sub.eval_pure(0, &[2, 3]), -1);
        assert_eq!(Op::Mul.eval_pure(0, &[4, 5]), 20);
        assert_eq!(Op::Div.eval_pure(0, &[7, 2]), 3);
        assert_eq!(Op::Div.eval_pure(0, &[7, 0]), 0, "div-by-zero defined as 0");
        assert_eq!(Op::Rem.eval_pure(0, &[7, 0]), 0);
        assert_eq!(Op::Add.eval_pure(0, &[i64::MAX, 1]), i64::MIN, "wrapping");
        assert_eq!(
            Op::Div.eval_pure(0, &[i64::MIN, -1]),
            i64::MIN,
            "wrapping div"
        );
    }

    #[test]
    fn logic_and_shift_semantics() {
        assert_eq!(Op::And.eval_pure(0, &[0b1100, 0b1010]), 0b1000);
        assert_eq!(Op::Or.eval_pure(0, &[0b1100, 0b1010]), 0b1110);
        assert_eq!(Op::Xor.eval_pure(0, &[0b1100, 0b1010]), 0b0110);
        assert_eq!(Op::Not.eval_pure(0, &[0]), -1);
        assert_eq!(Op::Shl.eval_pure(0, &[1, 4]), 16);
        assert_eq!(Op::Shr.eval_pure(0, &[-1, 63]), 1, "logical shift");
        assert_eq!(Op::Shl.eval_pure(0, &[1, 64]), 1, "shift masks to 6 bits");
        assert_eq!(Op::Ror.eval_pure(0, &[1, 1]), i64::MIN);
    }

    #[test]
    fn comparison_semantics() {
        assert_eq!(Op::Lt.eval_pure(0, &[1, 2]), 1);
        assert_eq!(Op::Lt.eval_pure(0, &[2, 1]), 0);
        assert_eq!(Op::Ge.eval_pure(0, &[2, 2]), 1);
        assert_eq!(Op::Eq.eval_pure(0, &[5, 5]), 1);
        assert_eq!(Op::Ne.eval_pure(0, &[5, 5]), 0);
    }

    #[test]
    fn select_and_minmax() {
        assert_eq!(Op::Select.eval_pure(0, &[1, 10, 20]), 10);
        assert_eq!(Op::Select.eval_pure(0, &[0, 10, 20]), 20);
        assert_eq!(Op::Min.eval_pure(0, &[-3, 4]), -3);
        assert_eq!(Op::Max.eval_pure(0, &[-3, 4]), 4);
        assert_eq!(Op::Abs.eval_pure(0, &[-3]), 3);
        assert_eq!(Op::Neg.eval_pure(0, &[3]), -3);
    }

    #[test]
    fn const_and_route() {
        assert_eq!(Op::Const.eval_pure(42, &[]), 42);
        assert_eq!(Op::Route.eval_pure(0, &[17]), 17);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_is_enforced() {
        Op::Add.eval_pure(0, &[1]);
    }

    #[test]
    #[should_panic(expected = "memory ops")]
    fn memory_ops_rejected_in_pure_eval() {
        Op::Load.eval_pure(0, &[0]);
    }
}
