//! # satmapit-dfg
//!
//! Data-flow graph intermediate representation for loop bodies, the input
//! language of the SAT-MapIt CGRA mapper (DATE 2023, §III-A).
//!
//! A [`Dfg`] is a directed graph whose nodes are operations ([`Op`]) and
//! whose edges are data dependencies. Loop-carried dependencies are
//! *back-edges* carrying a `distance` (how many iterations apart producer
//! and consumer are) and an `init` value (the pre-loop live-in consumed by
//! the first `distance` iterations).
//!
//! The paper extracts DFGs from pragma-annotated C loops via LLVM; this
//! reproduction models the same loop bodies directly in the IR (see the
//! `satmapit-kernels` crate) — the mapper only ever consumes the graph.
//!
//! Besides the IR, the crate provides:
//!
//! * [`interp`] — a sequential reference interpreter defining loop
//!   semantics (ground truth for mapping validation),
//! * [`dot`] — Graphviz export,
//! * [`gen`] — seeded random-DFG generation for property tests.
//!
//! ## Example: a multiply-accumulate loop
//!
//! ```
//! use satmapit_dfg::{Dfg, Op, interp::interpret};
//!
//! let mut dfg = Dfg::new("mac");
//! let one = dfg.add_const(1);
//! let i = dfg.add_node(Op::Add);            // induction variable
//! dfg.add_edge(one, i, 0);
//! dfg.add_back_edge(i, i, 1, 1, -1);        // i starts at 0
//! let x = dfg.add_node(Op::Load);           // x = a[i]
//! dfg.add_edge(i, x, 0);
//! let acc = dfg.add_node(Op::Add);          // acc += x
//! dfg.add_edge(x, acc, 0);
//! dfg.add_back_edge(acc, acc, 1, 1, 0);
//!
//! let memory = vec![10, 20, 30, 40];
//! let result = interpret(&dfg, memory, 4).unwrap();
//! assert_eq!(result.values[3][acc.index()], 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dot;
pub mod gen;
mod graph;
pub mod interp;
mod op;
pub mod transform;

pub use graph::{Dfg, DfgError, Edge, EdgeId, Node, NodeId};
pub use op::Op;
