//! Garbage-collection correctness: random interleavings of clause adds,
//! clause-group lifecycles, solves and *forced* arena collections must be
//! indistinguishable — verdict for verdict — from a GC-free reference
//! solver, and every artifact (models, failed-assumption cores) must keep
//! its documented contract.
//!
//! The subject solver runs with automatic GC enabled *and* gets
//! `collect_garbage()` forced at random script points (including mid-run
//! positions where watch lists are saturated with lazy-removal leftovers);
//! the reference solver runs the identical script with
//! `SolverOptions { gc: false, .. }` and never collects. Models are
//! validated against an externally maintained copy of the formula, not
//! against the solvers' own bookkeeping.

use proptest::prelude::*;
use satmapit_sat::{Lit, SolveResult, Solver, SolverOptions, Var};

const NUM_VARS: usize = 10;

/// One step of a solver script; `clause` and `pick` are interpreted per
/// op kind (see `run_script`).
type ScriptOp = (usize, Vec<(usize, bool)>, usize);

fn op_strategy() -> impl Strategy<Value = ScriptOp> {
    (
        0..6usize,
        proptest::collection::vec((0..NUM_VARS, any::<bool>()), 1..=4),
        0..16usize,
    )
}

/// The externally tracked ground truth: every clause the solvers hold
/// (group clauses stored in their gated `C ∨ ¬g` form, retirements as
/// `¬g` units), plus the live activation literals.
#[derive(Default)]
struct Mirror {
    clauses: Vec<Vec<Lit>>,
    live_gates: Vec<Lit>,
}

impl Mirror {
    fn eval(&self, model: &[bool]) -> bool {
        self.clauses.iter().all(|clause| {
            clause
                .iter()
                .any(|l| model[l.var().index()] == l.is_positive())
        })
    }
}

fn lits_of(spec: &[(usize, bool)]) -> Vec<Lit> {
    spec.iter()
        .map(|&(v, pol)| Lit::new(Var::new(v as u32), pol))
        .collect()
}

/// Replays `script` on both solvers, checking agreement and contracts at
/// every solve. Returns an error description on the first divergence.
fn run_script(script: &[ScriptOp]) -> Result<(), String> {
    let mut subject = Solver::new(); // automatic GC on (the default)
    let mut reference = Solver::with_options(&SolverOptions {
        gc: false,
        ..SolverOptions::default()
    });
    for _ in 0..NUM_VARS {
        let _ = subject.new_var();
        let _ = reference.new_var();
    }
    let mut mirror = Mirror::default();
    let mut solves = 0u32;

    let check_solve = |subject: &mut Solver,
                       reference: &mut Solver,
                       mirror: &Mirror,
                       assumptions: &[Lit]|
     -> Result<(), String> {
        let rs = subject.solve_with_assumptions(assumptions);
        let rr = reference.solve_with_assumptions(assumptions);
        if rs != rr {
            return Err(format!(
                "verdicts diverged under {assumptions:?}: gc={rs:?} reference={rr:?}"
            ));
        }
        match rs {
            SolveResult::Sat => {
                for (who, solver) in [("gc", &*subject), ("reference", &*reference)] {
                    let model = solver.model().expect("SAT carries a model");
                    if !mirror.eval(model) {
                        return Err(format!("{who} model violates the formula"));
                    }
                    for &a in assumptions {
                        if model[a.var().index()] != a.is_positive() {
                            return Err(format!("{who} model violates assumption {a:?}"));
                        }
                    }
                }
            }
            SolveResult::Unsat => {
                // The final_conflict contract: every core element is the
                // negation of one of the assumptions.
                for (who, solver) in [("gc", &*subject), ("reference", &*reference)] {
                    for &l in solver.final_conflict() {
                        if !assumptions.contains(&!l) {
                            return Err(format!(
                                "{who} core element {l:?} is not a negated assumption"
                            ));
                        }
                    }
                }
            }
            SolveResult::Unknown(_) => unreachable!("no limits were set"),
        }
        Ok(())
    };

    for (kind, clause_spec, pick) in script {
        match kind {
            0 => {
                let lits = lits_of(clause_spec);
                subject.add_clause(&lits);
                reference.add_clause(&lits);
                mirror.clauses.push(lits);
            }
            1 if mirror.live_gates.len() < 4 => {
                let gs = subject.new_group();
                let gr = reference.new_group();
                assert_eq!(gs, gr, "identical scripts allocate identical vars");
                mirror.live_gates.push(gs);
            }
            2 if !mirror.live_gates.is_empty() => {
                let g = mirror.live_gates[pick % mirror.live_gates.len()];
                let lits = lits_of(clause_spec);
                subject.add_clause_in_group(g, &lits);
                reference.add_clause_in_group(g, &lits);
                let mut gated = lits;
                gated.push(!g);
                mirror.clauses.push(gated);
            }
            3 => {
                // Assume a bitmask-chosen subset of the live gates.
                let assumptions: Vec<Lit> = mirror
                    .live_gates
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| pick & (1 << i) != 0)
                    .map(|(_, &g)| g)
                    .collect();
                check_solve(&mut subject, &mut reference, &mirror, &assumptions)?;
                solves += 1;
            }
            4 if !mirror.live_gates.is_empty() => {
                let g = mirror.live_gates.remove(pick % mirror.live_gates.len());
                subject.retire_group(g);
                reference.retire_group(g);
                mirror.clauses.push(vec![!g]);
            }
            5 => {
                // Forced collection on the subject only — the reference
                // must never compact.
                subject.collect_garbage();
            }
            _ => {}
        }
    }
    // Closing solves: all live gates on, then none.
    let gates = mirror.live_gates.clone();
    check_solve(&mut subject, &mut reference, &mirror, &gates)?;
    check_solve(&mut subject, &mut reference, &mirror, &[])?;
    let _ = solves;
    assert_eq!(
        reference.stats().gc_runs,
        0,
        "reference solver must never collect"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn gc_is_invisible_to_verdicts(script in proptest::collection::vec(op_strategy(), 1..40)) {
        if let Err(msg) = run_script(&script) {
            prop_assert!(false, "{}", msg);
        }
    }
}

/// Deterministic end-to-end sweep: a long sequence of gated pigeonhole
/// generations (each retired after its verdict) must keep verdicts exact
/// while automatic GC actually fires and bounds the arena waste.
#[test]
#[allow(clippy::needless_range_loop)] // pigeonhole matrices read best indexed
fn retirement_heavy_ladder_triggers_gc_and_stays_sound() {
    let mut s = Solver::new();
    let holes = 5;
    let pigeons = holes + 1;
    let vars: Vec<Vec<Lit>> = (0..pigeons)
        .map(|_| (0..holes).map(|_| s.new_var().positive()).collect())
        .collect();
    for generation in 0..40 {
        let g = s.new_group();
        for p in 0..pigeons {
            s.add_clause_in_group(g, &vars[p].clone());
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    s.add_clause_in_group(g, &[!vars[p1][h], !vars[p2][h]]);
                }
            }
        }
        assert_eq!(
            s.solve_with_assumptions(&[g]),
            SolveResult::Unsat,
            "generation {generation}"
        );
        assert!(
            s.final_conflict().contains(&!g),
            "the gated pigeonhole is what is contradictory"
        );
        assert!(s.retire_group(g));
    }
    let stats = s.stats();
    assert!(stats.gc_runs > 0, "40 retired generations must trigger GC");
    assert!(stats.lits_reclaimed > 0);
    assert!(
        stats.arena_wasted * 4 <= stats.arena_words.max(1),
        "post-sweep waste must stay bounded: {} of {} words dead",
        stats.arena_wasted,
        stats.arena_words
    );
    // And the solver is still fully functional.
    assert_eq!(s.solve(), SolveResult::Sat);
}
