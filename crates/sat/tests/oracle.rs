//! Property tests: the CDCL solver must agree with the exhaustive oracle on
//! random small formulas, and produce genuine models when satisfiable.

use proptest::prelude::*;
use satmapit_sat::brute::solve_exhaustive;
use satmapit_sat::{CnfFormula, Lit, SolveResult, Solver, Var};

/// Strategy: a random CNF over up to `max_vars` variables.
fn cnf_strategy(max_vars: usize, max_clauses: usize) -> impl Strategy<Value = CnfFormula> {
    (1..=max_vars).prop_flat_map(move |nv| {
        let clause = proptest::collection::vec((0..nv, any::<bool>()), 1..=4);
        proptest::collection::vec(clause, 0..=max_clauses).prop_map(move |clauses| {
            let mut f = CnfFormula::with_vars(nv);
            for c in clauses {
                let lits: Vec<Lit> = c
                    .into_iter()
                    .map(|(v, pol)| Lit::new(Var::new(v as u32), pol))
                    .collect();
                f.add_clause(&lits);
            }
            f
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn solver_matches_oracle(f in cnf_strategy(10, 40)) {
        let oracle = solve_exhaustive(&f).unwrap();
        let mut solver = Solver::from_cnf(&f);
        let result = solver.solve();
        match oracle {
            Some(_) => {
                prop_assert_eq!(result, SolveResult::Sat);
                let model = solver.model().unwrap();
                prop_assert!(f.eval(model), "reported model does not satisfy formula");
            }
            None => prop_assert_eq!(result, SolveResult::Unsat),
        }
    }

    #[test]
    fn assumptions_consistent_with_added_units(f in cnf_strategy(8, 24), polarities in proptest::collection::vec(any::<bool>(), 8)) {
        // Solving F under assumptions A must equal solving F ∧ A.
        let nv = f.num_vars();
        let assumptions: Vec<Lit> = (0..nv.min(3))
            .map(|i| Lit::new(Var::new(i as u32), polarities[i]))
            .collect();

        let mut with_assumptions = Solver::from_cnf(&f);
        let r1 = with_assumptions.solve_with_assumptions(&assumptions);

        let mut with_units = f.clone();
        for &a in &assumptions {
            with_units.add_clause(&[a]);
        }
        let oracle = solve_exhaustive(&with_units).unwrap();
        match oracle {
            Some(_) => prop_assert_eq!(r1, SolveResult::Sat),
            None => prop_assert_eq!(r1, SolveResult::Unsat),
        }
        if r1 == SolveResult::Sat {
            let model = with_assumptions.model().unwrap();
            prop_assert!(with_units.eval(model));
        }
    }

    #[test]
    fn dimacs_round_trip_preserves_formula(f in cnf_strategy(12, 30)) {
        let mut buf = Vec::new();
        f.write_dimacs(&mut buf).unwrap();
        let parsed = CnfFormula::parse_dimacs(buf.as_slice()).unwrap();
        prop_assert_eq!(parsed.num_clauses(), f.num_clauses());
        // Satisfiability must be preserved.
        let a = solve_exhaustive(&f).unwrap().is_some();
        let b = solve_exhaustive(&parsed).unwrap().is_some();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn incremental_solving_matches_monolithic(f in cnf_strategy(9, 20), extra in cnf_strategy(9, 10)) {
        // Add f, solve, then add extra clauses (over the same var ids) and
        // re-solve: result must match solving the union from scratch.
        let nv = f.num_vars().max(extra.num_vars());
        let mut solver = Solver::new();
        solver.ensure_vars(nv);
        for c in f.iter() { solver.add_clause(c); }
        let _ = solver.solve();
        for c in extra.iter() { solver.add_clause(c); }
        let r = solver.solve();

        let mut union = CnfFormula::with_vars(nv);
        for c in f.iter() { union.add_clause(c); }
        for c in extra.iter() { union.add_clause(c); }
        let oracle = solve_exhaustive(&union).unwrap();
        match oracle {
            Some(_) => prop_assert_eq!(r, SolveResult::Sat),
            None => prop_assert_eq!(r, SolveResult::Unsat),
        }
    }
}
