//! Solver-independent CNF container and DIMACS serialization.

use crate::types::{Lit, Var};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::{BufRead, Write};

/// A formula in conjunctive normal form: a variable pool plus a clause list.
///
/// `CnfFormula` is the hand-off type between constraint *generation* (see
/// `satmapit-core`) and constraint *solving* ([`crate::Solver`]). It imposes
/// no invariants beyond literals referring to allocated variables, which is
/// checked on insertion.
///
/// ```
/// use satmapit_sat::{CnfFormula, Solver, SolveResult};
/// let mut f = CnfFormula::new();
/// let a = f.new_var().positive();
/// let b = f.new_var().positive();
/// f.add_clause(&[a, b]);
/// f.add_clause(&[!a]);
/// let mut solver = Solver::from_cnf(&f);
/// assert_eq!(solver.solve(), SolveResult::Sat);
/// assert!(solver.model().unwrap()[b.var().index()]);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CnfFormula {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
}

impl CnfFormula {
    /// Creates an empty formula with no variables.
    pub fn new() -> CnfFormula {
        CnfFormula::default()
    }

    /// Creates an empty formula with `n` pre-allocated variables.
    pub fn with_vars(n: usize) -> CnfFormula {
        CnfFormula {
            num_vars: n,
            clauses: Vec::new(),
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::new(self.num_vars as u32);
        self.num_vars += 1;
        v
    }

    /// Allocates `n` fresh variables and returns the first one.
    pub fn new_vars(&mut self, n: usize) -> Var {
        let first = Var::new(self.num_vars as u32);
        self.num_vars += n;
        first
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Total number of literal occurrences across all clauses.
    pub fn num_literals(&self) -> usize {
        self.clauses.iter().map(Vec::len).sum()
    }

    /// Adds a clause (a disjunction of literals).
    ///
    /// The empty clause is representable and makes the formula unsatisfiable.
    ///
    /// # Panics
    ///
    /// Panics if a literal refers to a variable that was never allocated.
    pub fn add_clause(&mut self, lits: &[Lit]) {
        for lit in lits {
            assert!(
                lit.var().index() < self.num_vars,
                "literal {lit} out of range: formula has {} vars",
                self.num_vars
            );
        }
        self.clauses.push(lits.to_vec());
    }

    /// Iterates over the clauses.
    pub fn iter(&self) -> impl Iterator<Item = &[Lit]> {
        self.clauses.iter().map(Vec::as_slice)
    }

    /// Evaluates the formula under a complete assignment
    /// (`assignment[v.index()]` is the value of variable `v`).
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() < self.num_vars()`.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        assert!(assignment.len() >= self.num_vars);
        self.clauses.iter().all(|clause| {
            clause
                .iter()
                .any(|lit| assignment[lit.var().index()] == lit.is_positive())
        })
    }

    /// Serializes in DIMACS CNF format.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `writer`.
    pub fn write_dimacs<W: Write>(&self, mut writer: W) -> std::io::Result<()> {
        writeln!(writer, "p cnf {} {}", self.num_vars, self.clauses.len())?;
        for clause in &self.clauses {
            for lit in clause {
                write!(writer, "{} ", lit.to_dimacs())?;
            }
            writeln!(writer, "0")?;
        }
        Ok(())
    }

    /// Parses a DIMACS CNF file. Comment lines (`c ...`) are skipped; the
    /// problem line is optional (variables are grown on demand).
    ///
    /// # Errors
    ///
    /// Returns [`ParseDimacsError`] on malformed input or I/O failure.
    pub fn parse_dimacs<R: BufRead>(reader: R) -> Result<CnfFormula, ParseDimacsError> {
        let mut formula = CnfFormula::new();
        let mut current: Vec<Lit> = Vec::new();
        for (lineno, line) in reader.lines().enumerate() {
            let line = line.map_err(|e| ParseDimacsError {
                line: lineno + 1,
                kind: ParseDimacsErrorKind::Io(e.to_string()),
            })?;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('c') || trimmed.starts_with('%') {
                continue;
            }
            if trimmed.starts_with('p') {
                let mut parts = trimmed.split_whitespace().skip(2);
                if let Some(nv) = parts.next() {
                    let nv: usize = nv.parse().map_err(|_| ParseDimacsError {
                        line: lineno + 1,
                        kind: ParseDimacsErrorKind::BadHeader,
                    })?;
                    if nv > formula.num_vars {
                        formula.num_vars = nv;
                    }
                }
                continue;
            }
            for tok in trimmed.split_whitespace() {
                let value: i64 = tok.parse().map_err(|_| ParseDimacsError {
                    line: lineno + 1,
                    kind: ParseDimacsErrorKind::BadLiteral(tok.to_string()),
                })?;
                match Lit::from_dimacs(value) {
                    Some(lit) => {
                        if lit.var().index() >= formula.num_vars {
                            formula.num_vars = lit.var().index() + 1;
                        }
                        current.push(lit);
                    }
                    None => {
                        formula.clauses.push(std::mem::take(&mut current));
                    }
                }
            }
        }
        if !current.is_empty() {
            formula.clauses.push(current);
        }
        Ok(formula)
    }
}

/// Error produced by [`CnfFormula::parse_dimacs`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDimacsError {
    /// 1-based line number of the offending input line.
    pub line: usize,
    /// What went wrong.
    pub kind: ParseDimacsErrorKind,
}

/// Failure category for [`ParseDimacsError`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseDimacsErrorKind {
    /// Malformed `p cnf` header.
    BadHeader,
    /// Token was not a valid integer literal.
    BadLiteral(String),
    /// Underlying I/O failure.
    Io(String),
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ParseDimacsErrorKind::BadHeader => {
                write!(f, "malformed problem header on line {}", self.line)
            }
            ParseDimacsErrorKind::BadLiteral(tok) => {
                write!(f, "invalid literal `{tok}` on line {}", self.line)
            }
            ParseDimacsErrorKind::Io(e) => write!(f, "i/o error on line {}: {e}", self.line),
        }
    }
}

impl std::error::Error for ParseDimacsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_eval() {
        let mut f = CnfFormula::new();
        let a = f.new_var();
        let b = f.new_var();
        f.add_clause(&[a.positive(), b.positive()]);
        f.add_clause(&[a.negative(), b.negative()]);
        assert_eq!(f.num_vars(), 2);
        assert_eq!(f.num_clauses(), 2);
        assert!(f.eval(&[true, false]));
        assert!(f.eval(&[false, true]));
        assert!(!f.eval(&[true, true]));
        assert!(!f.eval(&[false, false]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_literal_panics() {
        let mut f = CnfFormula::new();
        f.add_clause(&[Var::new(0).positive()]);
    }

    #[test]
    fn empty_clause_falsifies() {
        let mut f = CnfFormula::new();
        let _ = f.new_var();
        f.add_clause(&[]);
        assert!(!f.eval(&[true]));
    }

    #[test]
    fn dimacs_round_trip() {
        let mut f = CnfFormula::new();
        let a = f.new_var();
        let b = f.new_var();
        let c = f.new_var();
        f.add_clause(&[a.positive(), b.negative()]);
        f.add_clause(&[c.positive()]);
        f.add_clause(&[a.negative(), b.positive(), c.negative()]);

        let mut buf = Vec::new();
        f.write_dimacs(&mut buf).unwrap();
        let parsed = CnfFormula::parse_dimacs(buf.as_slice()).unwrap();
        assert_eq!(parsed, f);
    }

    #[test]
    fn dimacs_parses_comments_and_header() {
        let text = "c a comment\np cnf 3 2\n1 -2 0\n3 0\n";
        let f = CnfFormula::parse_dimacs(text.as_bytes()).unwrap();
        assert_eq!(f.num_vars(), 3);
        assert_eq!(f.num_clauses(), 2);
    }

    #[test]
    fn dimacs_rejects_garbage() {
        let text = "1 x 0\n";
        let err = CnfFormula::parse_dimacs(text.as_bytes()).unwrap_err();
        assert_eq!(err.line, 1);
        assert!(matches!(err.kind, ParseDimacsErrorKind::BadLiteral(_)));
    }

    #[test]
    fn new_vars_bulk_allocation() {
        let mut f = CnfFormula::new();
        let first = f.new_vars(5);
        assert_eq!(first.index(), 0);
        assert_eq!(f.num_vars(), 5);
        let next = f.new_var();
        assert_eq!(next.index(), 5);
    }
}
