//! A conflict-driven clause-learning (CDCL) SAT solver.
//!
//! Feature set: two-literal watching, VSIDS branching with phase saving,
//! first-UIP conflict analysis with self-subsumption minimization, Luby
//! restarts, activity/LBD-based learnt-clause database reduction,
//! solving under assumptions with final-conflict extraction, assumption-
//! gated clause groups for incremental solving, and conflict/time budgets
//! that make the solver interruptible (required by the mapping timeout
//! semantics of the experiments).
//!
//! # Clause groups and the activation-literal lifecycle
//!
//! Incremental callers (the II ladder in `satmapit-core`) keep one solver
//! alive across a sequence of related solves so learned clauses carry
//! over. Clauses that are only valid for one solve in the sequence are
//! *gated* behind an activation literal:
//!
//! 1. [`Solver::new_group`] allocates a fresh activation literal `g`.
//! 2. [`Solver::add_clause_in_group`] adds each group clause `C` as
//!    `C ∨ ¬g` — inert until `g` is assumed.
//! 3. [`Solver::solve_limited`] is called with `g` among the assumptions,
//!    which switches the group on for that call only.
//! 4. Once the group's question is answered, [`Solver::retire_group`]
//!    asserts `¬g` at the top level, permanently satisfying (and
//!    physically deleting, where safe) the group's clauses *and* every
//!    learnt clause that depended on them.
//!
//! The scheme is sound because conflict analysis only resolves on clauses:
//! any learnt clause whose derivation used a clause of group `g` must
//! itself contain `¬g` (the only way to eliminate `¬g` by resolution would
//! be a clause containing `g` positively, and none exists). Learnt clauses
//! *without* any activation literal are therefore implied by the permanent
//! clauses alone and remain valid for every future solve — that carry-over
//! is the entire point of keeping the solver alive.
//!
//! # The `final_conflict` contract
//!
//! After [`SolveResult::Unsat`] from an assumption-based solve,
//! [`Solver::final_conflict`] returns the *failed assumption core*: a
//! subset of the assumptions, negated, whose conjunction with the
//! permanent clauses is already contradictory. Two cases matter to
//! incremental callers:
//!
//! * the core **contains** `¬g` for an assumed activation literal `g` —
//!   the contradiction needs the group, i.e. only this solve's gated
//!   question was refuted;
//! * the core is **empty** (equivalently, [`Solver::is_ok`] may have
//!   become `false`) — the permanent clauses are contradictory on their
//!   own, so every future solve will be `Unsat` no matter which groups
//!   are activated. `satmapit-core` uses exactly this distinction to
//!   prove "no II can ever map" from a single rung of the ladder.

use crate::arena::{ClauseArena, ClauseRef};
use crate::cnf::CnfFormula;
use crate::heap::ActivityHeap;
use crate::luby::luby;
use crate::share::ShareHandle;
use crate::types::{LBool, Lit, Var};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const VAR_ACT_DECAY: f64 = 1.0 / 0.95;
const CLA_ACT_DECAY: f64 = 1.0 / 0.999;
const DEFAULT_RESTART_BASE: u64 = 100;

/// Arena garbage collection triggers once at least this fraction of the
/// arena (in words) is occupied by deleted records…
const GC_WASTE_DENOMINATOR: u64 = 5; // i.e. wasted ≥ 20 % of the arena
/// …and at least this many words are wasted (collecting a tiny arena is
/// pure overhead — 1024 words is 4 KiB, roughly one L1 load's worth of
/// compaction).
const GC_MIN_WASTE_WORDS: u64 = 1 << 10;

/// How many search steps (decisions + conflicts) pass between polls of the
/// stop flag and the wall-clock deadline. Both limits share this single
/// cadence: the previous split (stop every 1024 *decisions*, deadline
/// every 256 *conflicts*) let propagation-heavy solves with few decisions
/// overrun a cancellation by seconds.
pub const LIMIT_POLL_INTERVAL: u64 = 64;

#[derive(Debug, Clone, Copy)]
struct Watcher {
    clause: ClauseRef,
    blocker: Lit,
}

/// Counters describing solver effort; useful for the paper's runtime tables
/// and the ablation benchmarks.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SolverStats {
    /// Number of branching decisions.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of conflicts analyzed.
    pub conflicts: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Learnt clauses currently retained.
    pub learnt_clauses: u64,
    /// Learnt clauses removed by database reduction.
    pub removed_clauses: u64,
    /// Problem clauses added (after top-level simplification).
    pub added_clauses: u64,
    /// Clause-arena garbage collections performed (compaction runs).
    pub gc_runs: u64,
    /// Literal slots reclaimed by arena garbage collection.
    pub lits_reclaimed: u64,
    /// Arena words currently occupied by deleted, unswept clause records —
    /// a gauge, not a counter (0 right after a collection).
    pub arena_wasted: u64,
    /// Total arena words currently allocated (live + wasted) — a gauge.
    pub arena_words: u64,
    /// Learnt clauses this solver published to its portfolio share pool
    /// (0 without a connected [`ShareHandle`]).
    pub shared_exported: u64,
    /// Clauses imported from portfolio siblings at restart boundaries.
    pub shared_imported: u64,
    /// Ring evictions this solver's exports caused in the share pool
    /// (clauses overwritten before every sibling could read them).
    pub shared_dropped: u64,
}

/// Resource budget for a single [`Solver::solve_limited`] call.
#[derive(Debug, Clone, Default)]
pub struct SolveLimits {
    /// Abort after this many conflicts (counted per call).
    pub max_conflicts: Option<u64>,
    /// Abort once `Instant::now()` passes this deadline.
    pub deadline: Option<Instant>,
    /// Cooperative cancellation: abort as soon as the flag reads `true`.
    /// Another thread may set it at any time (e.g. because a sibling in a
    /// portfolio or II-race already produced an answer); the solver polls
    /// it (together with the deadline) at every restart and on a uniform
    /// cadence of [`LIMIT_POLL_INTERVAL`] search steps — decisions *and*
    /// conflicts both count — so cancellation is observed promptly even in
    /// propagation-heavy solves that rarely branch.
    pub stop: Option<Arc<AtomicBool>>,
    /// Learnt-clause sharing with portfolio siblings. Pure transport: the
    /// handle only takes effect once a caller wires it into the solver
    /// with [`Solver::connect_share`] (the mapper's `attempt_ii` does
    /// this, tagging the connection with the compatibility class of the
    /// formula it encoded — see [`crate::share`]).
    pub share: Option<ShareHandle>,
}

impl SolveLimits {
    /// No limits: run to completion.
    pub fn none() -> SolveLimits {
        SolveLimits::default()
    }

    /// Limits with a conflict cap.
    pub fn with_max_conflicts(mut self, n: u64) -> SolveLimits {
        self.max_conflicts = Some(n);
        self
    }

    /// Limits with a wall-clock timeout from now.
    pub fn with_timeout(mut self, d: Duration) -> SolveLimits {
        self.deadline = Some(Instant::now() + d);
        self
    }

    /// Limits with an absolute deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> SolveLimits {
        self.deadline = Some(deadline);
        self
    }

    /// Limits with a cooperative stop flag (shared with other threads).
    pub fn with_stop_flag(mut self, stop: Arc<AtomicBool>) -> SolveLimits {
        self.stop = Some(stop);
        self
    }

    /// Limits carrying a learnt-clause share handle (see
    /// [`SolveLimits::share`]).
    pub fn with_share(mut self, share: ShareHandle) -> SolveLimits {
        self.share = Some(share);
        self
    }

    /// `true` once the stop flag has been raised.
    pub fn stop_requested(&self) -> bool {
        self.stop
            .as_ref()
            // ordering: cooperative cancel latch polled at restart
            // boundaries; a stale read only delays the abort one poll,
            // no data is published through the flag.
            .is_some_and(|s| s.load(Ordering::Relaxed))
    }

    /// The first exceeded limit, if any (stop flag, then deadline).
    fn exceeded(&self) -> Option<StopReason> {
        if self.stop_requested() {
            return Some(StopReason::Cancelled);
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(StopReason::Timeout);
            }
        }
        None
    }
}

/// Why a [`SolveResult::Unknown`] was returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// The per-call conflict budget was exhausted.
    ConflictLimit,
    /// The wall-clock deadline passed.
    Timeout,
    /// The cooperative stop flag was raised by another thread.
    Cancelled,
}

/// Outcome of a solve call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveResult {
    /// A model was found; retrieve it with [`Solver::model`].
    Sat,
    /// The formula is unsatisfiable (under the given assumptions, if any);
    /// see [`Solver::final_conflict`] for the failed assumption core.
    Unsat,
    /// The budget ran out before an answer was derived.
    Unknown(StopReason),
}

enum SearchOutcome {
    Sat,
    Unsat,
    Restart,
    Stop(StopReason),
}

/// Tunables that diversify solver behaviour without affecting soundness —
/// the knobs a portfolio races (see `satmapit-engine`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolverOptions {
    /// Base of the Luby restart sequence, in conflicts (default 100).
    /// Smaller values restart aggressively; larger ones search deeper.
    pub restart_base: u64,
    /// When set, initial phase polarity is drawn pseudo-randomly from this
    /// seed instead of defaulting to `false`, steering the first descent
    /// into a different part of the assignment space per seed.
    pub phase_seed: Option<u64>,
    /// Automatic clause-arena garbage collection (default on). Collection
    /// preserves the formula exactly, but compacting the watch lists can
    /// reorder propagation and therefore steer the search to a different
    /// (equally valid) model — which is why the knob lives here with the
    /// other answer-preserving diversification knobs. Forced collections
    /// via [`Solver::collect_garbage`] ignore this flag.
    pub gc: bool,
}

impl Default for SolverOptions {
    fn default() -> SolverOptions {
        SolverOptions {
            restart_base: DEFAULT_RESTART_BASE,
            phase_seed: None,
            gc: true,
        }
    }
}

/// The CDCL solver.
///
/// ```
/// use satmapit_sat::{Solver, SolveResult};
/// let mut s = Solver::new();
/// let a = s.new_var().positive();
/// let b = s.new_var().positive();
/// s.add_clause(&[a, b]);
/// s.add_clause(&[!a, b]);
/// s.add_clause(&[a, !b]);
/// assert_eq!(s.solve(), SolveResult::Sat);
/// let m = s.model().unwrap();
/// assert!(m[a.var().index()] && m[b.var().index()]);
/// ```
#[derive(Debug)]
pub struct Solver {
    /// Flat clause storage; every `ClauseRef` below points into it (see
    /// the `arena` module docs for the record layout and GC contract).
    ca: ClauseArena,
    learnt_idxs: Vec<ClauseRef>,
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<LBool>,
    decision: Vec<bool>,
    polarity: Vec<bool>,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    order: ActivityHeap,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    reason: Vec<ClauseRef>,
    level: Vec<u32>,
    seen: Vec<bool>,
    ok: bool,
    model: Option<Vec<bool>>,
    conflict_core: Vec<Lit>,
    stats: SolverStats,
    next_reduce: u64,
    reduce_count: u64,
    restart_base: u64,
    phase_rng: Option<u64>,
    gc_enabled: bool,
    /// Live clause groups: activation variable index → member clause
    /// refs (see the module docs on the activation-literal lifecycle).
    groups: std::collections::HashMap<u32, Vec<ClauseRef>>,
    /// `is_activation[v]` marks variables allocated by [`Solver::new_group`]
    /// (live *or* retired): clauses mentioning them are gated and must not
    /// be exported to portfolio siblings (see [`crate::share`]).
    is_activation: Vec<bool>,
    /// `true` once any activation variable exists — lets the export hot
    /// path skip the per-literal guard scan entirely for scratch solvers.
    any_activation: bool,
    /// Learnt-clause exchange with portfolio siblings, once connected.
    share: Option<ShareConn>,
}

/// A live share connection (see [`Solver::connect_share`]).
#[derive(Debug)]
struct ShareConn {
    handle: ShareHandle,
    /// Compatibility class of the formula this solver was loaded with.
    class: u64,
    /// Exports stop permanently once the solver adds any clause beyond
    /// the class formula (e.g. register-allocation cuts): lemmas derived
    /// after that point are no longer implied by what siblings share.
    /// Imports stay on — receiving sound clauses is always safe.
    export_ok: bool,
}

impl Default for Solver {
    fn default() -> Solver {
        Solver::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Solver {
        Solver {
            ca: ClauseArena::new(),
            learnt_idxs: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            decision: Vec::new(),
            polarity: Vec::new(),
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            order: ActivityHeap::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            reason: Vec::new(),
            level: Vec::new(),
            seen: Vec::new(),
            ok: true,
            model: None,
            conflict_core: Vec::new(),
            stats: SolverStats::default(),
            next_reduce: 4000,
            reduce_count: 0,
            restart_base: DEFAULT_RESTART_BASE,
            phase_rng: None,
            gc_enabled: true,
            groups: std::collections::HashMap::new(),
            is_activation: Vec::new(),
            any_activation: false,
            share: None,
        }
    }

    /// Creates an empty solver with the given portfolio options.
    pub fn with_options(options: &SolverOptions) -> Solver {
        let mut solver = Solver::new();
        solver.restart_base = options.restart_base.max(1);
        // Only seed 0 is remapped (the xorshift zero fixed point); all
        // other seeds stay distinct.
        solver.phase_rng = options.phase_seed.map(|s| s.max(1));
        solver.gc_enabled = options.gc;
        solver
    }

    /// Creates a solver pre-loaded with `formula`.
    pub fn from_cnf(formula: &CnfFormula) -> Solver {
        Solver::from_cnf_with(formula, &SolverOptions::default())
    }

    /// Creates a solver pre-loaded with `formula` using the given options.
    pub fn from_cnf_with(formula: &CnfFormula, options: &SolverOptions) -> Solver {
        let mut solver = Solver::with_options(options);
        solver.ensure_vars(formula.num_vars());
        for clause in formula.iter() {
            solver.add_clause(clause);
        }
        solver
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::new(self.assigns.len() as u32);
        let phase = match &mut self.phase_rng {
            Some(state) => {
                // xorshift64: a stable pseudo-random initial polarity.
                *state ^= *state << 13;
                *state ^= *state >> 7;
                *state ^= *state << 17;
                *state & 1 == 1
            }
            None => false,
        };
        self.assigns.push(LBool::Undef);
        self.decision.push(true);
        self.polarity.push(phase);
        self.activity.push(0.0);
        self.reason.push(ClauseRef::NONE);
        self.level.push(0);
        self.seen.push(false);
        self.is_activation.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.insert(v.index() as u32, &self.activity);
        v
    }

    /// Grows the variable pool so that at least `n` variables exist.
    pub fn ensure_vars(&mut self, n: usize) {
        while self.assigns.len() < n {
            self.new_var();
        }
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// `false` once the clause set has been proven unsatisfiable at the top
    /// level (adding further clauses has no effect).
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    /// Effort counters accumulated so far.
    pub fn stats(&self) -> &SolverStats {
        &self.stats
    }

    /// Adds a clause. Must be called at decision level 0 (i.e. not from
    /// within a solve callback). Returns `false` if the formula became
    /// trivially unsatisfiable.
    ///
    /// Tautologies are dropped, duplicate literals merged, and literals
    /// already false at the top level removed.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        self.add_clause_tracked(lits).0
    }

    /// [`Solver::add_clause`] that also reports the ref of the clause it
    /// allocated, when the clause survived simplification as a real
    /// (2+-literal) clause.
    fn add_clause_tracked(&mut self, lits: &[Lit]) -> (bool, Option<ClauseRef>) {
        self.add_clause_vec(lits.to_vec())
    }

    /// [`Solver::add_clause_tracked`] over an owned buffer — the gated
    /// path ([`Solver::add_clause_in_group`]) builds its `C ∨ ¬g` clause
    /// once and hands it over instead of paying a second copy per clause
    /// (group deltas are added in the hundreds of thousands per
    /// incremental rung).
    fn add_clause_vec(&mut self, mut ls: Vec<Lit>) -> (bool, Option<ClauseRef>) {
        debug_assert_eq!(self.decision_level(), 0);
        if !self.ok {
            return (false, None);
        }
        // Any clause added after a share connection was opened is local to
        // this solver (e.g. a register-allocation cut): later learnt
        // clauses may depend on it, so exporting them to siblings — which
        // only share the original formula — would be unsound.
        if let Some(conn) = &mut self.share {
            conn.export_ok = false;
        }
        for l in &ls {
            assert!(
                l.var().index() < self.num_vars(),
                "literal {l} out of range ({} vars)",
                self.num_vars()
            );
        }
        ls.sort_unstable();
        ls.dedup();
        // Tautology / top-level simplification.
        let mut simplified: Vec<Lit> = Vec::with_capacity(ls.len());
        let mut i = 0;
        while i < ls.len() {
            let l = ls[i];
            if i + 1 < ls.len() && ls[i + 1] == !l {
                return (true, None); // tautology: l and ¬l adjacent after sort
            }
            match self.lit_value(l) {
                LBool::True => return (true, None), // already satisfied
                LBool::False => {}                  // drop falsified literal
                LBool::Undef => simplified.push(l),
            }
            i += 1;
        }
        match simplified.len() {
            0 => {
                self.ok = false;
                (false, None)
            }
            1 => {
                self.unchecked_enqueue(simplified[0], ClauseRef::NONE);
                if self.propagate().is_some() {
                    self.ok = false;
                    (false, None)
                } else {
                    (true, None)
                }
            }
            _ => {
                let ci = self.alloc_clause(&simplified, false, 0);
                self.attach_clause(ci);
                self.stats.added_clauses += 1;
                (true, Some(ci))
            }
        }
    }

    // ----------------------------------------------------------------- //
    // Clause groups (incremental solving)
    // ----------------------------------------------------------------- //

    /// Opens a clause group: allocates a fresh *activation literal* `g`.
    ///
    /// Clauses added to the group via [`Solver::add_clause_in_group`] are
    /// inert unless `g` is passed as an assumption to
    /// [`Solver::solve_limited`]. See the module docs for the full
    /// lifecycle and soundness argument.
    pub fn new_group(&mut self) -> Lit {
        let g = self.new_var();
        self.is_activation[g.index()] = true;
        self.any_activation = true;
        g.positive()
    }

    /// Adds `lits` to the group of activation literal `group`: the stored
    /// clause is `lits ∨ ¬group`, so it only constrains solves that assume
    /// `group`. Returns `false` if the formula became trivially
    /// unsatisfiable (which can only happen through non-group clauses).
    pub fn add_clause_in_group(&mut self, group: Lit, lits: &[Lit]) -> bool {
        debug_assert!(
            group.is_positive(),
            "activation literals are positive by convention"
        );
        let mut gated = Vec::with_capacity(lits.len() + 1);
        gated.extend_from_slice(lits);
        gated.push(!group);
        let (ok, allocated) = self.add_clause_vec(gated);
        if let Some(ci) = allocated {
            // Keep ¬group out of the watched positions (0 and 1) when the
            // clause has enough other literals: every group clause carries
            // ¬group, so watching it would pile the whole group onto one
            // watch list and make each rung's opening `assume(group)`
            // propagation visit every such clause just to move its watch.
            // Any two literals are a valid watch pair at add time (all
            // Undef), so demoting ¬group is free.
            let len = self.ca.len(ci);
            if len > 2 {
                for i in 0..2 {
                    if self.ca.lit(ci, i) == !group {
                        let old = self.ca.lit(ci, i);
                        let new = self.ca.lit(ci, len - 1);
                        self.ca.swap_lits(ci, i, len - 1);
                        self.rewatch(ci, old, new);
                    }
                }
            }
            self.groups
                .entry(group.var().index() as u32)
                .or_default()
                .push(ci);
        }
        ok
    }

    /// Repoints the watcher of `ci` that watched `old` to watch `new`
    /// instead (both literals belong to `ci`; `new` now sits in a watched
    /// position). Used right after allocation, while the clause's watch
    /// lists are still hot.
    fn rewatch(&mut self, ci: ClauseRef, old: Lit, new: Lit) {
        let ws = &mut self.watches[(!old).code()];
        let at = ws
            .iter()
            .position(|w| w.clause == ci)
            .expect("freshly attached clause is watched");
        let blocker = ws[at].blocker;
        ws.swap_remove(at);
        self.watches[(!new).code()].push(Watcher {
            clause: ci,
            blocker,
        });
    }

    /// Retires a clause group: asserts `¬group` at the top level, which
    /// permanently satisfies every clause of the group and every learnt
    /// clause derived from it, and physically deletes those that are safe
    /// to drop (clauses currently acting as the reason of a top-level
    /// implication are kept — they are satisfied and harmless).
    ///
    /// Must be called at decision level 0 (i.e. between solves). Returns
    /// `false` if the formula is (or became) unsatisfiable at the top
    /// level, mirroring [`Solver::add_clause`].
    pub fn retire_group(&mut self, group: Lit) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        let members = self
            .groups
            .remove(&(group.var().index() as u32))
            .unwrap_or_default();
        let ok = self.add_clause(&[!group]);
        for ci in members {
            if self.ca.is_deleted(ci) || self.is_locked(ci) {
                continue;
            }
            // Deletion is a header-bit flip; the watchers pointing at the
            // record are dropped lazily by propagation (or at the next
            // collection, whichever dereferences them first).
            self.ca.delete(ci);
        }
        // Learnt clauses that depended on the group all contain ¬group
        // (see the module docs); they are satisfied now and can go.
        let gone = !group;
        let sweep: Vec<ClauseRef> = self
            .learnt_idxs
            .iter()
            .copied()
            .filter(|&ci| {
                !self.ca.is_deleted(ci) && self.ca.contains(ci, gone) && !self.is_locked(ci)
            })
            .collect();
        for ci in sweep {
            self.ca.delete(ci);
            self.stats.removed_clauses += 1;
            self.stats.learnt_clauses -= 1;
        }
        self.learnt_idxs.retain(|&ci| !self.ca.is_deleted(ci));
        self.sync_arena_gauges();
        self.maybe_collect();
        ok
    }

    /// Solves without assumptions or limits.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_limited(&[], &SolveLimits::none())
    }

    /// Solves under the given assumption literals.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.solve_limited(assumptions, &SolveLimits::none())
    }

    /// Solves under assumptions with a resource budget.
    pub fn solve_limited(&mut self, assumptions: &[Lit], limits: &SolveLimits) -> SolveResult {
        self.model = None;
        self.conflict_core.clear();
        if !self.ok {
            return SolveResult::Unsat;
        }
        debug_assert_eq!(self.decision_level(), 0);
        if self.propagate().is_some() {
            self.ok = false;
            return SolveResult::Unsat;
        }
        // Pick up everything siblings published since the last solve (or
        // restart) before searching. An import can already close the case:
        // the empty final conflict below is correct — the permanent set is
        // contradictory independent of any assumptions.
        self.import_shared();
        if !self.ok {
            return SolveResult::Unsat;
        }
        let start_conflicts = self.stats.conflicts;
        let mut restarts = 0u64;
        loop {
            if let Some(reason) = limits.exceeded() {
                self.cancel_until(0);
                return SolveResult::Unknown(reason);
            }
            if let Some(max) = limits.max_conflicts {
                if self.stats.conflicts - start_conflicts >= max {
                    self.cancel_until(0);
                    return SolveResult::Unknown(StopReason::ConflictLimit);
                }
            }
            let budget = luby(restarts) * self.restart_base;
            let outcome = self.search(budget, assumptions, limits, start_conflicts);
            match outcome {
                SearchOutcome::Sat => {
                    self.cancel_until(0);
                    return SolveResult::Sat;
                }
                SearchOutcome::Unsat => {
                    self.cancel_until(0);
                    return SolveResult::Unsat;
                }
                SearchOutcome::Stop(reason) => {
                    self.cancel_until(0);
                    return SolveResult::Unknown(reason);
                }
                SearchOutcome::Restart => {
                    self.cancel_until(0);
                    restarts += 1;
                    self.stats.restarts += 1;
                    // Restart boundary: back at level 0, inject sibling
                    // clauses before the next descent.
                    self.import_shared();
                    if !self.ok {
                        return SolveResult::Unsat;
                    }
                }
            }
        }
    }

    /// The satisfying assignment found by the last successful solve, indexed
    /// by variable index.
    pub fn model(&self) -> Option<&[bool]> {
        self.model.as_deref()
    }

    /// Value of `lit` in the current model.
    pub fn model_value(&self, lit: Lit) -> Option<bool> {
        self.model
            .as_ref()
            .map(|m| m[lit.var().index()] == lit.is_positive())
    }

    /// After an assumption-based `Unsat`, the subset of assumptions that was
    /// proven contradictory (negated), MiniSat's "final conflict".
    ///
    /// Contract (see also the module docs):
    ///
    /// * only meaningful immediately after [`SolveResult::Unsat`]; the
    ///   buffer is cleared at the start of every solve call;
    /// * every element is the negation of one of the assumptions passed to
    ///   that solve call (a *core*, not necessarily minimal);
    /// * an **empty** slice means the permanent clause set is contradictory
    ///   without any assumptions — every future solve returns `Unsat`
    ///   regardless of assumptions or clause groups.
    pub fn final_conflict(&self) -> &[Lit] {
        &self.conflict_core
    }

    // ----------------------------------------------------------------- //
    // Internals
    // ----------------------------------------------------------------- //

    fn alloc_clause(&mut self, lits: &[Lit], learnt: bool, lbd: u32) -> ClauseRef {
        let ci = self.ca.alloc(lits, learnt, lbd);
        if learnt {
            self.learnt_idxs.push(ci);
            self.stats.learnt_clauses += 1;
        }
        self.sync_arena_gauges();
        ci
    }

    fn attach_clause(&mut self, ci: ClauseRef) {
        debug_assert!(self.ca.len(ci) >= 2);
        let l0 = self.ca.lit(ci, 0);
        let l1 = self.ca.lit(ci, 1);
        self.watches[(!l0).code()].push(Watcher {
            clause: ci,
            blocker: l1,
        });
        self.watches[(!l1).code()].push(Watcher {
            clause: ci,
            blocker: l0,
        });
    }

    fn lit_value(&self, l: Lit) -> LBool {
        let v = self.assigns[l.var().index()];
        if l.is_positive() {
            v
        } else {
            v.negate()
        }
    }

    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    fn new_decision_level(&mut self) {
        self.trail_lim.push(self.trail.len());
    }

    fn unchecked_enqueue(&mut self, l: Lit, reason: ClauseRef) {
        debug_assert_eq!(self.lit_value(l), LBool::Undef);
        let v = l.var().index();
        self.assigns[v] = LBool::from_bool(l.is_positive());
        self.level[v] = self.decision_level() as u32;
        self.reason[v] = reason;
        self.trail.push(l);
    }

    fn cancel_until(&mut self, target_level: usize) {
        if self.decision_level() <= target_level {
            return;
        }
        let bound = self.trail_lim[target_level];
        for i in (bound..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var().index();
            self.polarity[v] = self.assigns[v] == LBool::True;
            self.assigns[v] = LBool::Undef;
            self.reason[v] = ClauseRef::NONE;
            if self.decision[v] {
                self.order.insert(v as u32, &self.activity);
            }
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(target_level);
        self.qhead = bound;
    }

    /// Unit propagation. Returns the ref of a conflicting clause, if any.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let not_p = !p;
            let mut ws = std::mem::take(&mut self.watches[p.code()]);
            let mut i = 0;
            let mut j = 0;
            'watchers: while i < ws.len() {
                let w = ws[i];
                i += 1;
                if self.lit_value(w.blocker) == LBool::True {
                    ws[j] = w;
                    j += 1;
                    continue;
                }
                let ci = w.clause;
                // Lazy watcher removal: a deleted clause's watcher is
                // dropped (not copied to `j`) the first time propagation
                // dereferences it — no eager O(watchlist) detach scans.
                if self.ca.is_deleted(ci) {
                    continue;
                }
                if self.ca.lit(ci, 0) == not_p {
                    self.ca.swap_lits(ci, 0, 1);
                }
                debug_assert_eq!(self.ca.lit(ci, 1), not_p);
                let first = self.ca.lit(ci, 0);
                if first != w.blocker && self.lit_value(first) == LBool::True {
                    ws[j] = Watcher {
                        clause: ci,
                        blocker: first,
                    };
                    j += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let len = self.ca.len(ci);
                for k in 2..len {
                    let lk = self.ca.lit(ci, k);
                    if self.lit_value(lk) != LBool::False {
                        self.ca.swap_lits(ci, 1, k);
                        let new_watch = self.ca.lit(ci, 1);
                        debug_assert_ne!((!new_watch).code(), p.code());
                        self.watches[(!new_watch).code()].push(Watcher {
                            clause: ci,
                            blocker: first,
                        });
                        continue 'watchers;
                    }
                }
                // Clause is unit or conflicting under the current assignment.
                ws[j] = Watcher {
                    clause: ci,
                    blocker: first,
                };
                j += 1;
                if self.lit_value(first) == LBool::False {
                    // Conflict: restore remaining watchers and bail out.
                    while i < ws.len() {
                        ws[j] = ws[i];
                        j += 1;
                        i += 1;
                    }
                    ws.truncate(j);
                    self.watches[p.code()] = ws;
                    self.qhead = self.trail.len();
                    return Some(ci);
                }
                self.unchecked_enqueue(first, ci);
            }
            ws.truncate(j);
            self.watches[p.code()] = ws;
        }
        None
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.bumped(v.index() as u32, &self.activity);
    }

    fn bump_clause(&mut self, ci: ClauseRef) {
        let act = self.ca.activity(ci) + self.cla_inc as f32;
        self.ca.set_activity(ci, act);
        if act > 1e20 {
            for k in 0..self.learnt_idxs.len() {
                let idx = self.learnt_idxs[k];
                self.ca.set_activity(idx, self.ca.activity(idx) * 1e-20);
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first), the backtrack level, and the clause's LBD.
    fn analyze(&mut self, mut confl: ClauseRef) -> (Vec<Lit>, usize, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::from_code(0)];
        let mut path_c: i32 = 0;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        loop {
            debug_assert_ne!(confl, ClauseRef::NONE);
            if self.ca.is_learnt(confl) {
                self.bump_clause(confl);
            }
            let start = usize::from(p.is_some());
            for k in start..self.ca.len(confl) {
                let q = self.ca.lit(confl, k);
                let vi = q.var().index();
                if !self.seen[vi] && self.level[vi] > 0 {
                    self.bump_var(q.var());
                    self.seen[vi] = true;
                    if self.level[vi] as usize >= self.decision_level() {
                        path_c += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find the next trail literal participating in the conflict.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            confl = self.reason[pl.var().index()];
            self.seen[pl.var().index()] = false;
            path_c -= 1;
            p = Some(pl);
            if path_c <= 0 {
                break;
            }
        }
        learnt[0] = !p.expect("conflict analysis visited at least one literal");

        // Self-subsumption minimization: a literal is redundant if all
        // antecedents of its reason are already in the clause (or level 0).
        let original: Vec<Lit> = learnt[1..].to_vec();
        let mut kept: Vec<Lit> = Vec::with_capacity(learnt.len());
        kept.push(learnt[0]);
        'lits: for &q in &original {
            let r = self.reason[q.var().index()];
            if r == ClauseRef::NONE {
                kept.push(q);
                continue;
            }
            for k in 0..self.ca.len(r) {
                let a = self.ca.lit(r, k);
                if a.var() == q.var() {
                    continue;
                }
                let vi = a.var().index();
                if !self.seen[vi] && self.level[vi] > 0 {
                    kept.push(q);
                    continue 'lits;
                }
            }
            // redundant: dropped
        }
        for &q in &original {
            self.seen[q.var().index()] = false;
        }
        let mut learnt = kept;

        // Compute backtrack level; move the highest-level remaining literal
        // to position 1 so it can be watched.
        let bt_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()] as usize
        };

        // LBD: number of distinct decision levels in the clause.
        let mut levels: Vec<u32> = learnt.iter().map(|l| self.level[l.var().index()]).collect();
        levels.sort_unstable();
        levels.dedup();
        let lbd = levels.len() as u32;

        (learnt, bt_level, lbd)
    }

    /// Computes the subset of assumptions responsible for forcing `p` false
    /// (called when an assumption literal is already falsified).
    fn analyze_final(&mut self, p: Lit) {
        self.conflict_core.clear();
        self.conflict_core.push(p);
        if self.decision_level() == 0 {
            return;
        }
        self.seen[p.var().index()] = true;
        let bottom = self.trail_lim[0];
        for i in (bottom..self.trail.len()).rev() {
            let x = self.trail[i];
            let vi = x.var().index();
            if !self.seen[vi] {
                continue;
            }
            let r = self.reason[vi];
            if r == ClauseRef::NONE {
                if self.level[vi] > 0 {
                    self.conflict_core.push(!x);
                }
            } else {
                for k in 0..self.ca.len(r) {
                    let l = self.ca.lit(r, k);
                    if l.var() != x.var() && self.level[l.var().index()] > 0 {
                        self.seen[l.var().index()] = true;
                    }
                }
            }
            self.seen[vi] = false;
        }
        self.seen[p.var().index()] = false;
    }

    fn reduce_db(&mut self) {
        // Sort learnt clauses: glue clauses (lbd <= 3) and locked clauses are
        // kept; the least active half of the rest is removed.
        let mut candidates: Vec<ClauseRef> = Vec::new();
        for &ci in &self.learnt_idxs {
            if self.ca.is_deleted(ci) || self.ca.lbd(ci) <= 3 || self.ca.len(ci) <= 2 {
                continue;
            }
            if self.is_locked(ci) {
                continue;
            }
            candidates.push(ci);
        }
        candidates.sort_by(|&a, &b| {
            self.ca
                .activity(a)
                .partial_cmp(&self.ca.activity(b))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let remove_n = candidates.len() / 2;
        for &ci in candidates.iter().take(remove_n) {
            self.ca.delete(ci);
            self.stats.removed_clauses += 1;
            self.stats.learnt_clauses -= 1;
        }
        self.learnt_idxs.retain(|&ci| !self.ca.is_deleted(ci));
        self.reduce_count += 1;
        self.next_reduce = self.stats.conflicts + 2000 + 500 * self.reduce_count;
        self.sync_arena_gauges();
        self.maybe_collect();
    }

    fn is_locked(&self, ci: ClauseRef) -> bool {
        let l0 = self.ca.lit(ci, 0);
        self.lit_value(l0) == LBool::True && self.reason[l0.var().index()] == ci
    }

    /// Keeps the arena occupancy gauges in [`SolverStats`] current.
    fn sync_arena_gauges(&mut self) {
        self.stats.arena_wasted = self.ca.wasted_words();
        self.stats.arena_words = self.ca.words();
    }

    /// Runs the mark-compact collector when automatic GC is enabled and
    /// the wasted fraction crossed the trigger (≥ 1/[`GC_WASTE_DENOMINATOR`]
    /// of the arena and at least [`GC_MIN_WASTE_WORDS`] words).
    fn maybe_collect(&mut self) {
        let wasted = self.ca.wasted_words();
        if self.gc_enabled
            && wasted >= GC_MIN_WASTE_WORDS
            && wasted * GC_WASTE_DENOMINATOR >= self.ca.words()
        {
            self.collect_garbage();
        }
    }

    /// Forces a clause-arena garbage collection: compacts every live
    /// clause into a fresh contiguous buffer and remaps the watch lists, the
    /// `reason` pointers of the current trail, the learnt-clause index and
    /// the live group membership lists. Safe at any decision level (the
    /// solver invokes it automatically after [`Solver::retire_group`]
    /// sweeps and learnt-DB reductions once the waste trigger is crossed,
    /// regardless of search depth); watchers of deleted clauses — the
    /// lazy-removal leftovers — are dropped rather than remapped.
    ///
    /// Ignores the [`SolverOptions::gc`] switch (that only disables the
    /// *automatic* trigger), which is what lets tests and benches force
    /// collections deterministically.
    pub fn collect_garbage(&mut self) {
        let sweep = self.ca.collect();
        let remap = &sweep.remap;
        for ws in &mut self.watches {
            ws.retain_mut(|w| match remap.remap(w.clause) {
                Some(nc) => {
                    w.clause = nc;
                    true
                }
                None => false,
            });
        }
        for t in 0..self.trail.len() {
            let v = self.trail[t].var().index();
            let r = self.reason[v];
            if r != ClauseRef::NONE {
                self.reason[v] = remap
                    .remap(r)
                    .expect("reason clauses are locked and never deleted");
            }
        }
        for ci in &mut self.learnt_idxs {
            *ci = remap
                .remap(*ci)
                .expect("deleted learnt refs are dropped before collection");
        }
        for members in self.groups.values_mut() {
            members.retain_mut(|ci| match remap.remap(*ci) {
                Some(nc) => {
                    *ci = nc;
                    true
                }
                None => false,
            });
        }
        self.stats.gc_runs += 1;
        self.stats.lits_reclaimed += sweep.lits_reclaimed;
        // Hand the spent forwarding table back so the next collection
        // reuses its allocation instead of mapping a fresh buffer.
        self.ca.recycle(sweep.remap);
        self.sync_arena_gauges();
    }

    /// Rung-aware heuristic hygiene for incremental sessions: when an II
    /// ladder advances to its next rung, the caller passes `(from, to)`
    /// variable pairs connecting semantically corresponding variables of
    /// the retired and the fresh rung (same node, same unfolded schedule
    /// slot, same PE — see `satmapit-core`'s ladder). For every pair the
    /// saved phase of `from` is copied to `to`, and — when
    /// `activity_scale > 0` — `to`'s VSIDS activity is seeded at
    /// `activity_scale` times `from`'s, so the new rung starts its search
    /// where the previous rung's heuristic state left off instead of from
    /// a cold, uniform zero. A scale of `0.0` transfers phases only.
    ///
    /// Sound by construction: phases and activities only steer the search
    /// order, never the verdict.
    pub fn on_rung_advance(&mut self, transfers: &[(Var, Var)], activity_scale: f64) {
        for &(from, to) in transfers {
            let f = from.index();
            let t = to.index();
            self.polarity[t] = self.polarity[f];
            if activity_scale > 0.0 {
                self.activity[t] = self.activity[f] * activity_scale;
            }
        }
        if activity_scale > 0.0 && !transfers.is_empty() {
            // Seeded activities may violate the heap order of queued
            // variables; one O(n) heapify restores it.
            self.order.rebuild(&self.activity);
        }
    }

    // ----------------------------------------------------------------- //
    // Portfolio learnt-clause sharing (see the `share` module docs)
    // ----------------------------------------------------------------- //

    /// Connects this solver to a portfolio share pool.
    ///
    /// `class` must be the compatibility class of the formula currently
    /// loaded (callers compute it with [`crate::share::formula_class`]
    /// over the CNF they fed the solver): imports only accept clauses of
    /// the same class, which fences off siblings whose encodings allocate
    /// variables differently. After connecting:
    ///
    /// * every conflict whose learnt clause passes the handle's LBD/size
    ///   thresholds — and carries no group activation literal — is
    ///   published to the pool;
    /// * at every restart boundary (and at the start of each solve call)
    ///   the solver drains clauses published by its siblings and injects
    ///   them as ordinary learnt arena records, subject to the usual
    ///   learnt-database reduction.
    ///
    /// Adding any clause after connecting (register-allocation cuts,
    /// group retirements) permanently disables *exports* — see
    /// [`crate::share`] for the soundness argument. Connecting again
    /// replaces the previous connection.
    pub fn connect_share(&mut self, handle: ShareHandle, class: u64) {
        self.share = Some(ShareConn {
            handle,
            class,
            export_ok: true,
        });
    }

    /// Publishes a freshly learnt clause to the share pool when a
    /// connection is live, exports are still sound, the clause passes the
    /// thresholds, and it is guard-free.
    fn maybe_export(&mut self, learnt: &[Lit], lbd: u32) {
        let Some(conn) = &self.share else {
            return;
        };
        if !conn.export_ok || lbd > conn.handle.lbd_max() || learnt.len() > conn.handle.max_len() {
            return;
        }
        if self.any_activation && learnt.iter().any(|l| self.is_activation[l.var().index()]) {
            return; // gated lemma: only valid with this solver's groups
        }
        let dropped = conn.handle.export(conn.class, lbd, learnt);
        self.stats.shared_exported += 1;
        self.stats.shared_dropped += dropped;
    }

    /// Drains the share pool and injects every new sibling clause as a
    /// learnt arena record. Must be called at decision level 0 (solve
    /// start and restart boundaries). May discover top-level
    /// unsatisfiability (`self.ok` turns false).
    fn import_shared(&mut self) {
        let Some(conn) = &self.share else {
            return;
        };
        debug_assert_eq!(self.decision_level(), 0);
        let handle = conn.handle.clone();
        let class = conn.class;
        let mut batch: Vec<(u32, std::sync::Arc<[Lit]>)> = Vec::new();
        handle.import(class, &mut batch);
        for (lbd, lits) in batch {
            if !self.ok {
                break;
            }
            // Same class means same variable space, but stay defensive:
            // a clause mentioning an unknown variable is dropped, not
            // trusted.
            if lits.iter().any(|l| l.var().index() >= self.num_vars()) {
                continue;
            }
            self.stats.shared_imported += 1;
            self.add_imported_clause(&lits, lbd);
        }
    }

    /// Installs one imported clause as a learnt record: simplified
    /// against the top level, enqueued if unit, attached if longer.
    /// Mirrors [`Solver::add_clause_vec`] except the clause is stored as
    /// *learnt* (so database reduction can evict it) and is never
    /// re-exported or counted as a problem clause.
    fn add_imported_clause(&mut self, lits: &[Lit], lbd: u32) {
        debug_assert_eq!(self.decision_level(), 0);
        let mut ls: Vec<Lit> = lits.to_vec();
        ls.sort_unstable();
        ls.dedup();
        let mut simplified: Vec<Lit> = Vec::with_capacity(ls.len());
        for (i, &l) in ls.iter().enumerate() {
            if i + 1 < ls.len() && ls[i + 1] == !l {
                return; // tautology (defensive; conflicts never learn these)
            }
            match self.lit_value(l) {
                LBool::True => return, // already satisfied at the top level
                LBool::False => {}     // falsified literal dropped
                LBool::Undef => simplified.push(l),
            }
        }
        match simplified.len() {
            0 => self.ok = false,
            1 => {
                self.unchecked_enqueue(simplified[0], ClauseRef::NONE);
                if self.propagate().is_some() {
                    self.ok = false;
                }
            }
            _ => {
                let lbd = lbd.clamp(1, simplified.len() as u32);
                let ci = self.alloc_clause(&simplified, true, lbd);
                self.attach_clause(ci);
            }
        }
    }

    /// Excludes `var` from (or re-admits it to) branching decisions.
    ///
    /// A non-decision variable is still assigned by unit propagation, but
    /// the search never branches on it and a model may leave it
    /// unassigned (it reads as `false` in [`Solver::model`]). The caller
    /// must guarantee that every live clause mentioning the variable is
    /// satisfiable without deciding it — the intended use is variables of
    /// a retired clause group ([`Solver::retire_group`]), whose clauses
    /// are all permanently satisfied. Branching on thousands of such dead
    /// variables is pure waste; the incremental II ladder in
    /// `satmapit-core` masks each rung's variables out once the rung is
    /// settled.
    pub fn set_decision_var(&mut self, var: Var, decide: bool) {
        let i = var.index();
        let was = std::mem::replace(&mut self.decision[i], decide);
        if decide && !was && self.assigns[i] == LBool::Undef {
            self.order.insert(i as u32, &self.activity);
        }
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        loop {
            let v = self.order.pop_max(&self.activity)?;
            if self.assigns[v as usize] == LBool::Undef && self.decision[v as usize] {
                return Some(Lit::new(Var::new(v), self.polarity[v as usize]));
            }
        }
    }

    fn extract_model(&mut self) {
        self.model = Some(self.assigns.iter().map(|&a| a == LBool::True).collect());
    }

    fn search(
        &mut self,
        nof_conflicts: u64,
        assumptions: &[Lit],
        limits: &SolveLimits,
        start_conflicts: u64,
    ) -> SearchOutcome {
        let mut conflict_c: u64 = 0;
        let mut steps: u64 = 0;
        loop {
            // Uniform limit polling: every LIMIT_POLL_INTERVAL search steps
            // (a step is a decision or a conflict), check the stop flag and
            // the deadline together. Decisions and conflicts both advance
            // the counter, so neither a propagation-heavy solve (few
            // decisions) nor a conflict-free descent (few conflicts) can
            // stretch the gap between polls.
            steps += 1;
            if steps.is_multiple_of(LIMIT_POLL_INTERVAL) {
                if let Some(reason) = limits.exceeded() {
                    return SearchOutcome::Stop(reason);
                }
            }
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflict_c += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SearchOutcome::Unsat;
                }
                if self.decision_level() <= assumptions.len() {
                    // Conflict at or below the assumption levels: the
                    // assumptions themselves are inconsistent.
                    // Analyze to learn, but if the backjump target is within
                    // the assumptions we must re-establish them afterwards,
                    // which the outer loop handles via restart semantics.
                }
                let (learnt, bt_level, lbd) = self.analyze(confl);
                self.maybe_export(&learnt, lbd);
                let bt_level = bt_level.min(self.decision_level() - 1);
                self.cancel_until(bt_level);
                if learnt.len() == 1 {
                    if self.lit_value(learnt[0]) == LBool::Undef {
                        self.unchecked_enqueue(learnt[0], ClauseRef::NONE);
                    } else if self.lit_value(learnt[0]) == LBool::False {
                        self.ok = false;
                        return SearchOutcome::Unsat;
                    }
                } else {
                    let ci = self.alloc_clause(&learnt, true, lbd);
                    self.attach_clause(ci);
                    let l0 = self.ca.lit(ci, 0);
                    debug_assert_eq!(self.lit_value(l0), LBool::Undef);
                    self.unchecked_enqueue(l0, ci);
                }
                self.var_inc *= VAR_ACT_DECAY;
                self.cla_inc *= CLA_ACT_DECAY;
            } else {
                // No conflict.
                if conflict_c >= nof_conflicts {
                    return SearchOutcome::Restart;
                }
                if let Some(max) = limits.max_conflicts {
                    if self.stats.conflicts - start_conflicts >= max {
                        return SearchOutcome::Stop(StopReason::ConflictLimit);
                    }
                }
                if self.stats.conflicts >= self.next_reduce {
                    self.reduce_db();
                }
                // Establish assumptions as pseudo-decisions.
                let mut next: Option<Lit> = None;
                while self.decision_level() < assumptions.len() {
                    let p = assumptions[self.decision_level()];
                    match self.lit_value(p) {
                        LBool::True => self.new_decision_level(),
                        LBool::False => {
                            self.analyze_final(!p);
                            return SearchOutcome::Unsat;
                        }
                        LBool::Undef => {
                            next = Some(p);
                            break;
                        }
                    }
                }
                let decision = match next {
                    Some(p) => p,
                    None => match self.pick_branch() {
                        Some(p) => p,
                        None => {
                            self.extract_model();
                            return SearchOutcome::Sat;
                        }
                    },
                };
                self.stats.decisions += 1;
                self.new_decision_level();
                self.unchecked_enqueue(decision, ClauseRef::NONE);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::needless_range_loop)] // pigeonhole matrices read best indexed

    use super::*;

    fn lit(s: &mut Solver) -> Lit {
        s.new_var().positive()
    }

    #[test]
    fn trivially_sat() {
        let mut s = Solver::new();
        let a = lit(&mut s);
        s.add_clause(&[a]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(a), Some(true));
    }

    #[test]
    fn trivially_unsat() {
        let mut s = Solver::new();
        let a = lit(&mut s);
        s.add_clause(&[a]);
        assert!(!s.add_clause(&[!a]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        let _ = s.new_var();
        assert!(!s.add_clause(&[]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn implication_chain_propagates() {
        let mut s = Solver::new();
        let xs: Vec<Lit> = (0..50).map(|_| lit(&mut s)).collect();
        s.add_clause(&[xs[0]]);
        for w in xs.windows(2) {
            s.add_clause(&[!w[0], w[1]]);
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        for &x in &xs {
            assert_eq!(s.model_value(x), Some(true));
        }
    }

    /// Pigeonhole principle PHP(n+1, n): unsatisfiable, requires real search.
    fn pigeonhole(holes: usize) -> Solver {
        let pigeons = holes + 1;
        let mut s = Solver::new();
        let mut var = vec![vec![Lit::from_code(0); holes]; pigeons];
        for p in 0..pigeons {
            for h in 0..holes {
                var[p][h] = s.new_var().positive();
            }
        }
        for p in 0..pigeons {
            let clause: Vec<Lit> = (0..holes).map(|h| var[p][h]).collect();
            s.add_clause(&clause);
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    s.add_clause(&[!var[p1][h], !var[p2][h]]);
                }
            }
        }
        s
    }

    #[test]
    fn pigeonhole_unsat() {
        for holes in 2..=6 {
            let mut s = pigeonhole(holes);
            assert_eq!(
                s.solve(),
                SolveResult::Unsat,
                "PHP({},{})",
                holes + 1,
                holes
            );
        }
    }

    #[test]
    fn pigeonhole_exact_fit_sat() {
        // n pigeons, n holes: satisfiable.
        let holes = 5;
        let mut s = Solver::new();
        let mut var = vec![vec![Lit::from_code(0); holes]; holes];
        for p in 0..holes {
            for h in 0..holes {
                var[p][h] = s.new_var().positive();
            }
        }
        for p in 0..holes {
            let clause: Vec<Lit> = (0..holes).map(|h| var[p][h]).collect();
            s.add_clause(&clause);
        }
        for h in 0..holes {
            for p1 in 0..holes {
                for p2 in (p1 + 1)..holes {
                    s.add_clause(&[!var[p1][h], !var[p2][h]]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        // Verify it is a perfect matching.
        for h in 0..holes {
            let count = (0..holes)
                .filter(|&p| s.model_value(var[p][h]) == Some(true))
                .count();
            assert!(count <= 1);
        }
    }

    #[test]
    fn assumptions_flip_result() {
        let mut s = Solver::new();
        let a = lit(&mut s);
        let b = lit(&mut s);
        s.add_clause(&[a, b]);
        assert_eq!(s.solve_with_assumptions(&[!a]), SolveResult::Sat);
        assert_eq!(s.model_value(b), Some(true));
        assert_eq!(s.solve_with_assumptions(&[!a, !b]), SolveResult::Unsat);
        let core = s.final_conflict().to_vec();
        assert!(!core.is_empty());
        // Solver remains usable and consistent afterwards.
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn conflict_budget_yields_unknown() {
        let mut s = pigeonhole(8);
        let limits = SolveLimits::none().with_max_conflicts(10);
        let r = s.solve_limited(&[], &limits);
        assert_eq!(r, SolveResult::Unknown(StopReason::ConflictLimit));
        // And with a large budget it still finishes.
        let r = s.solve_limited(&[], &SolveLimits::none().with_max_conflicts(10_000_000));
        assert_eq!(r, SolveResult::Unsat);
    }

    #[test]
    fn timeout_deadline_in_past_stops() {
        let mut s = pigeonhole(9);
        let limits = SolveLimits {
            max_conflicts: None,
            deadline: Some(Instant::now()),
            stop: None,
            share: None,
        };
        // The check happens every 256 conflicts, so this returns quickly.
        let r = s.solve_limited(&[], &limits);
        assert!(matches!(
            r,
            SolveResult::Unknown(StopReason::Timeout) | SolveResult::Unsat
        ));
    }

    #[test]
    fn already_cancelled_flag_returns_without_searching() {
        let mut s = pigeonhole(9);
        let stop = Arc::new(AtomicBool::new(true));
        let limits = SolveLimits::none().with_stop_flag(stop);
        let r = s.solve_limited(&[], &limits);
        assert_eq!(r, SolveResult::Unknown(StopReason::Cancelled));
        assert_eq!(s.stats().decisions, 0, "no search may happen");
        assert_eq!(s.stats().conflicts, 0);
        // The solver remains usable once the flag is lowered.
        let r = s.solve_limited(&[], &SolveLimits::none());
        assert_eq!(r, SolveResult::Unsat);
    }

    #[test]
    fn parked_solver_observes_stop_flag_promptly() {
        // PHP(12,11) takes far longer than the test budget; a cooperative
        // cancel must pull the solver out of the search mid-flight.
        let stop = Arc::new(AtomicBool::new(false));
        let limits = SolveLimits::none().with_stop_flag(Arc::clone(&stop));
        let handle = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(50));
                stop.store(true, Ordering::Relaxed);
            })
        };
        let mut s = pigeonhole(11);
        let t0 = Instant::now();
        let r = s.solve_limited(&[], &limits);
        handle.join().unwrap();
        assert_eq!(r, SolveResult::Unknown(StopReason::Cancelled));
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "cancellation took {:?}",
            t0.elapsed()
        );
        assert!(s.stats().conflicts > 0, "the solver was mid-search");
    }

    #[test]
    fn cancelled_solver_stays_consistent() {
        // Cancel, lower the flag, re-solve: the result must match a fresh
        // solver's (learnt clauses are sound, so state carries over).
        let stop = Arc::new(AtomicBool::new(false));
        let mut s = pigeonhole(6);
        let limits = SolveLimits::none()
            .with_stop_flag(Arc::clone(&stop))
            .with_max_conflicts(40);
        let r = s.solve_limited(&[], &limits);
        assert_eq!(r, SolveResult::Unknown(StopReason::ConflictLimit));
        stop.store(true, Ordering::Relaxed);
        let r = s.solve_limited(&[], &limits);
        assert_eq!(r, SolveResult::Unknown(StopReason::Cancelled));
        stop.store(false, Ordering::Relaxed);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn portfolio_options_do_not_change_answers() {
        let mut sat_formula = crate::cnf::CnfFormula::new();
        let lits: Vec<Lit> = (0..6).map(|_| sat_formula.new_var().positive()).collect();
        for w in lits.windows(2) {
            sat_formula.add_clause(&[!w[0], w[1]]);
        }
        sat_formula.add_clause(&[lits[0]]);
        for (base, seed) in [(25u64, Some(1u64)), (400, Some(0xDEAD)), (100, None)] {
            let options = SolverOptions {
                restart_base: base,
                phase_seed: seed,
                ..SolverOptions::default()
            };
            let mut s = Solver::from_cnf_with(&sat_formula, &options);
            assert_eq!(s.solve(), SolveResult::Sat, "base={base} seed={seed:?}");

            let mut s2 = Solver::with_options(&options);
            let l = s2.new_var().positive();
            s2.add_clause(&[l]);
            s2.add_clause(&[!l]);
            assert_eq!(s2.solve(), SolveResult::Unsat, "base={base} seed={seed:?}");
        }
    }

    #[test]
    fn phase_seed_perturbs_first_model() {
        // Unconstrained variables: default phase yields all-false; a seeded
        // phase should flip at least one of 64 variables.
        let mut plain = Solver::new();
        let mut seeded = Solver::with_options(&SolverOptions {
            restart_base: 100,
            phase_seed: Some(0x5EED),
            ..SolverOptions::default()
        });
        for _ in 0..64 {
            let _ = plain.new_var();
            let _ = seeded.new_var();
        }
        assert_eq!(plain.solve(), SolveResult::Sat);
        assert_eq!(seeded.solve(), SolveResult::Sat);
        let m0 = plain.model().unwrap().to_vec();
        let m1 = seeded.model().unwrap().to_vec();
        assert!(m0.iter().all(|&b| !b));
        assert_ne!(m0, m1, "seeded phases should differ somewhere");
    }

    #[test]
    fn group_clauses_only_bind_under_their_assumption() {
        let mut s = Solver::new();
        let a = lit(&mut s);
        let g = s.new_group();
        s.add_clause_in_group(g, &[a]);
        // Without the assumption the group is inert.
        assert_eq!(s.solve(), SolveResult::Sat);
        // Under the assumption it forces `a`.
        assert_eq!(s.solve_with_assumptions(&[g]), SolveResult::Sat);
        assert_eq!(s.model_value(a), Some(true));
    }

    #[test]
    fn contradictory_group_cores_name_the_group() {
        let mut s = Solver::new();
        let a = lit(&mut s);
        let g = s.new_group();
        s.add_clause_in_group(g, &[a]);
        s.add_clause_in_group(g, &[!a]);
        assert_eq!(s.solve_with_assumptions(&[g]), SolveResult::Unsat);
        assert!(
            s.final_conflict().contains(&!g),
            "core must name the contradictory group, got {:?}",
            s.final_conflict()
        );
        // The rest of the formula is untouched: retiring the group leaves a
        // satisfiable solver, and the activation literal is now pinned off.
        assert!(s.retire_group(g));
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(g), Some(false));
    }

    #[test]
    fn permanent_unsat_yields_empty_core_under_assumptions() {
        let mut s = Solver::new();
        let a = lit(&mut s);
        let g = s.new_group();
        s.add_clause_in_group(g, &[a]);
        s.add_clause(&[a]);
        assert!(!s.add_clause(&[!a]), "permanent clauses contradict");
        assert_eq!(s.solve_with_assumptions(&[g]), SolveResult::Unsat);
        assert!(
            s.final_conflict().is_empty(),
            "UNSAT independent of assumptions must produce an empty core"
        );
    }

    #[test]
    fn retirement_sweeps_group_and_dependent_learnt_clauses() {
        // A gated pigeonhole: all problem clauses live in one group, so
        // every learnt clause depends on it and must vanish on retirement.
        let holes = 4;
        let pigeons = holes + 1;
        let mut s = Solver::new();
        let mut var = vec![vec![Lit::from_code(0); holes]; pigeons];
        for p in 0..pigeons {
            for h in 0..holes {
                var[p][h] = s.new_var().positive();
            }
        }
        let g = s.new_group();
        for p in 0..pigeons {
            let clause: Vec<Lit> = (0..holes).map(|h| var[p][h]).collect();
            s.add_clause_in_group(g, &clause);
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    s.add_clause_in_group(g, &[!var[p1][h], !var[p2][h]]);
                }
            }
        }
        assert_eq!(s.solve_with_assumptions(&[g]), SolveResult::Unsat);
        assert!(s.final_conflict().contains(&!g));
        assert!(s.retire_group(g));
        assert_eq!(
            s.stats().learnt_clauses,
            0,
            "all learnt clauses depended on the retired group"
        );
        // The solver stays fully usable: a fresh group can pose a new
        // (satisfiable) question over the same variables.
        let g2 = s.new_group();
        s.add_clause_in_group(g2, &[var[0][0]]);
        assert_eq!(s.solve_with_assumptions(&[g2]), SolveResult::Sat);
        assert_eq!(s.model_value(var[0][0]), Some(true));
    }

    #[test]
    fn learnt_clauses_survive_across_group_generations() {
        // Permanent clauses encode an implication chain; a group adds a
        // contradiction at the end. The UNSAT proof learns chain facts that
        // outlive the group and speed up (or at least do not disturb) the
        // next generation.
        let mut s = Solver::new();
        let xs: Vec<Lit> = (0..30).map(|_| lit(&mut s)).collect();
        for w in xs.windows(2) {
            s.add_clause(&[!w[0], w[1]]);
        }
        let g1 = s.new_group();
        s.add_clause_in_group(g1, &[xs[0]]);
        s.add_clause_in_group(g1, &[!xs[29]]);
        assert_eq!(s.solve_with_assumptions(&[g1]), SolveResult::Unsat);
        assert!(s.retire_group(g1));
        let g2 = s.new_group();
        s.add_clause_in_group(g2, &[xs[0]]);
        assert_eq!(s.solve_with_assumptions(&[g2]), SolveResult::Sat);
        for &x in &xs {
            assert_eq!(s.model_value(x), Some(true));
        }
    }

    /// Satellite regression: both the stop flag and the deadline are polled
    /// on the uniform step cadence, so observed cancellation latency stays
    /// bounded even mid-search (the old code polled the stop flag only
    /// every 1024 decisions and the deadline only every 256 conflicts).
    #[test]
    fn cancellation_latency_is_bounded() {
        // Deadline path.
        let mut s = pigeonhole(11);
        let limits = SolveLimits::none().with_timeout(Duration::from_millis(50));
        let t0 = Instant::now();
        let r = s.solve_limited(&[], &limits);
        assert_eq!(r, SolveResult::Unknown(StopReason::Timeout));
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "deadline overrun: {:?}",
            t0.elapsed()
        );

        // Stop-flag path, raised mid-flight by another thread.
        let stop = Arc::new(AtomicBool::new(false));
        let limits = SolveLimits::none().with_stop_flag(Arc::clone(&stop));
        let handle = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(50));
                stop.store(true, Ordering::Relaxed);
            })
        };
        let mut s = pigeonhole(11);
        let t0 = Instant::now();
        let r = s.solve_limited(&[], &limits);
        handle.join().unwrap();
        assert_eq!(r, SolveResult::Unknown(StopReason::Cancelled));
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "cancellation latency: {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn incremental_add_between_solves() {
        let mut s = Solver::new();
        let a = lit(&mut s);
        let b = lit(&mut s);
        let c = lit(&mut s);
        s.add_clause(&[a, b, c]);
        assert_eq!(s.solve(), SolveResult::Sat);
        s.add_clause(&[!a]);
        s.add_clause(&[!b]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(c), Some(true));
        s.add_clause(&[!c]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn duplicate_and_tautological_clauses() {
        let mut s = Solver::new();
        let a = lit(&mut s);
        let b = lit(&mut s);
        s.add_clause(&[a, a, b]);
        s.add_clause(&[a, !a]); // tautology, dropped
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn stats_are_populated() {
        let mut s = pigeonhole(5);
        s.solve();
        assert!(s.stats().conflicts > 0);
        assert!(s.stats().decisions > 0);
        assert!(s.stats().propagations > 0);
    }

    /// PHP(n+1, n) as a reusable CNF, for the sharing tests below.
    fn pigeonhole_cnf(holes: usize) -> crate::cnf::CnfFormula {
        let pigeons = holes + 1;
        let mut f = crate::cnf::CnfFormula::new();
        let mut var = vec![vec![Lit::from_code(0); holes]; pigeons];
        for p in 0..pigeons {
            for h in 0..holes {
                var[p][h] = f.new_var().positive();
            }
        }
        for p in 0..pigeons {
            let clause: Vec<Lit> = (0..holes).map(|h| var[p][h]).collect();
            f.add_clause(&clause);
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    f.add_clause(&[!var[p1][h], !var[p2][h]]);
                }
            }
        }
        f
    }

    #[test]
    fn sibling_clauses_transfer_through_the_share_pool() {
        use crate::share::{formula_class, ShareHandle, SharePool};
        let formula = pigeonhole_cnf(6);
        let class = formula_class(&formula);
        let pool = Arc::new(SharePool::new(4096));

        // Sibling A solves first and publishes its short lemmas.
        let mut a = Solver::from_cnf(&formula);
        a.connect_share(ShareHandle::new(Arc::clone(&pool), 0, 6, 32), class);
        assert_eq!(a.solve(), SolveResult::Unsat);
        assert!(
            a.stats().shared_exported > 0,
            "an UNSAT grind must export lemmas, stats: {:?}",
            a.stats()
        );
        assert_eq!(a.stats().shared_imported, 0, "no sibling published yet");

        // Sibling B imports them at its first solve and must reach the
        // same verdict (imports are sound, they can only speed it up).
        let mut b = Solver::from_cnf(&formula);
        b.connect_share(ShareHandle::new(Arc::clone(&pool), 1, 6, 32), class);
        assert_eq!(b.solve(), SolveResult::Unsat);
        assert!(
            b.stats().shared_imported > 0,
            "sibling clauses must arrive, stats: {:?}",
            b.stats()
        );
    }

    #[test]
    fn imports_of_a_foreign_class_are_rejected() {
        use crate::share::{formula_class, ShareHandle, SharePool};
        let formula = pigeonhole_cnf(5);
        let pool = Arc::new(SharePool::new(1024));
        let mut a = Solver::from_cnf(&formula);
        a.connect_share(
            ShareHandle::new(Arc::clone(&pool), 0, 6, 32),
            formula_class(&formula),
        );
        assert_eq!(a.solve(), SolveResult::Unsat);
        assert!(a.stats().shared_exported > 0);

        // B's formula differs (one extra variable): different class, so
        // nothing crosses even though the pool is full of A's clauses.
        let mut bigger = pigeonhole_cnf(5);
        let _ = bigger.new_var();
        let mut b = Solver::from_cnf(&bigger);
        b.connect_share(
            ShareHandle::new(Arc::clone(&pool), 1, 6, 32),
            formula_class(&bigger),
        );
        assert_eq!(b.solve(), SolveResult::Unsat);
        assert_eq!(b.stats().shared_imported, 0, "class fence must hold");
    }

    #[test]
    fn gated_lemmas_are_never_exported() {
        use crate::share::{formula_class, ShareHandle, SharePool};
        // All problem clauses live in a group, so every learnt clause
        // carries ¬g and must be filtered (the safe-v1 guard rule).
        let formula = crate::cnf::CnfFormula::new();
        let pool = Arc::new(SharePool::new(1024));
        let mut s = Solver::new();
        s.connect_share(
            ShareHandle::new(Arc::clone(&pool), 0, 30, 64),
            formula_class(&formula),
        );
        let holes = 4;
        let pigeons = holes + 1;
        let mut var = vec![vec![Lit::from_code(0); holes]; pigeons];
        for p in 0..pigeons {
            for h in 0..holes {
                var[p][h] = s.new_var().positive();
            }
        }
        let g = s.new_group();
        for p in 0..pigeons {
            let clause: Vec<Lit> = (0..holes).map(|h| var[p][h]).collect();
            s.add_clause_in_group(g, &clause);
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    s.add_clause_in_group(g, &[!var[p1][h], !var[p2][h]]);
                }
            }
        }
        assert_eq!(s.solve_with_assumptions(&[g]), SolveResult::Unsat);
        assert!(s.stats().conflicts > 0, "the grind really happened");
        assert_eq!(
            pool.stats().published,
            0,
            "every lemma depends on the group and must stay local"
        );
    }

    #[test]
    fn local_clause_additions_disable_exports_but_not_imports() {
        use crate::share::{formula_class, ShareHandle, SharePool};
        let formula = pigeonhole_cnf(5);
        let class = formula_class(&formula);
        let pool = Arc::new(SharePool::new(1024));

        // A publishes lemmas for B to import.
        let mut a = Solver::from_cnf(&formula);
        a.connect_share(ShareHandle::new(Arc::clone(&pool), 0, 6, 32), class);
        assert_eq!(a.solve(), SolveResult::Unsat);
        let published = pool.stats().published;
        assert!(published > 0);

        // B adds a local clause (like a register-allocation cut) right
        // after connecting: its lemmas may depend on it, so it must not
        // publish — but it still consumes A's sound clauses.
        let mut b = Solver::from_cnf(&formula);
        b.connect_share(ShareHandle::new(Arc::clone(&pool), 1, 6, 32), class);
        let extra = Lit::new(Var::new(0), true);
        b.add_clause(&[extra, !extra.var().positive()]); // tautology, still local intent
        b.add_clause(&[extra]);
        assert_eq!(b.solve(), SolveResult::Unsat);
        assert!(b.stats().shared_imported > 0, "imports stay on");
        assert_eq!(b.stats().shared_exported, 0, "exports are poisoned");
        assert_eq!(
            pool.stats().published,
            published,
            "nothing new reached the pool"
        );
    }

    #[test]
    fn model_satisfies_formula() {
        // Random-ish 3-CNF that is satisfiable by construction: plant a
        // solution and only add clauses consistent with it.
        let n = 60;
        let mut s = Solver::new();
        let lits: Vec<Lit> = (0..n).map(|_| lit(&mut s)).collect();
        let planted: Vec<bool> = (0..n).map(|i| (i * 7 + 3) % 5 < 2).collect();
        let mut clauses = Vec::new();
        let mut state = 0x12345678u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..300 {
            let mut clause = Vec::new();
            for _ in 0..3 {
                let v = (rng() % n as u64) as usize;
                let pol = rng() % 2 == 0;
                clause.push(if pol { lits[v] } else { !lits[v] });
            }
            // Ensure the planted assignment satisfies the clause.
            if !clause
                .iter()
                .any(|l| planted[l.var().index()] == l.is_positive())
            {
                let v = clause[0].var().index();
                clause[0] = if planted[v] { lits[v] } else { !lits[v] };
            }
            clauses.push(clause);
        }
        for c in &clauses {
            s.add_clause(c);
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        let model = s.model().unwrap();
        for c in &clauses {
            assert!(c.iter().any(|l| model[l.var().index()] == l.is_positive()));
        }
    }
}
