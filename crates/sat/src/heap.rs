//! Indexed binary max-heap over variable activities (VSIDS order).

/// A binary max-heap of variable indices keyed by an external activity
/// array. Supports O(log n) insert/pop and O(log n) activity-increase
/// notification, which is all CDCL branching needs.
#[derive(Debug, Default, Clone)]
pub(crate) struct ActivityHeap {
    heap: Vec<u32>,
    /// `pos[v]` is the index of `v` in `heap`, or `usize::MAX` if absent.
    pos: Vec<usize>,
}

const ABSENT: usize = usize::MAX;

impl ActivityHeap {
    pub fn new() -> ActivityHeap {
        ActivityHeap::default()
    }

    /// Grows the position table to cover `n` variables.
    pub fn grow_to(&mut self, n: usize) {
        if self.pos.len() < n {
            self.pos.resize(n, ABSENT);
        }
    }

    pub fn contains(&self, v: u32) -> bool {
        self.pos.get(v as usize).is_some_and(|&p| p != ABSENT)
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub fn insert(&mut self, v: u32, act: &[f64]) {
        self.grow_to(v as usize + 1);
        if self.contains(v) {
            return;
        }
        self.pos[v as usize] = self.heap.len();
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, act);
    }

    pub fn pop_max(&mut self, act: &[f64]) -> Option<u32> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.pop().unwrap();
        self.pos[top as usize] = ABSENT;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0, act);
        }
        Some(top)
    }

    /// Restores the heap invariant after arbitrary activity rewrites
    /// (e.g. a rung-advance activity transfer): O(n) bottom-up heapify
    /// over the queued variables.
    pub fn rebuild(&mut self, act: &[f64]) {
        for i in (0..self.heap.len() / 2).rev() {
            self.sift_down(i, act);
        }
    }

    /// Restores heap order after `act[v]` increased.
    pub fn bumped(&mut self, v: u32, act: &[f64]) {
        if let Some(&p) = self.pos.get(v as usize) {
            if p != ABSENT {
                self.sift_up(p, act);
            }
        }
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if act[self.heap[i] as usize] <= act[self.heap[parent] as usize] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && act[self.heap[l] as usize] > act[self.heap[best] as usize] {
                best = l;
            }
            if r < self.heap.len() && act[self.heap[r] as usize] > act[self.heap[best] as usize] {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a] as usize] = a;
        self.pos[self.heap[b] as usize] = b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let act = vec![0.5, 3.0, 1.0, 2.0];
        let mut h = ActivityHeap::new();
        for v in 0..4 {
            h.insert(v, &act);
        }
        assert_eq!(h.pop_max(&act), Some(1));
        assert_eq!(h.pop_max(&act), Some(3));
        assert_eq!(h.pop_max(&act), Some(2));
        assert_eq!(h.pop_max(&act), Some(0));
        assert_eq!(h.pop_max(&act), None);
    }

    #[test]
    fn bump_reorders() {
        let mut act = vec![1.0, 2.0, 3.0];
        let mut h = ActivityHeap::new();
        for v in 0..3 {
            h.insert(v, &act);
        }
        act[0] = 10.0;
        h.bumped(0, &act);
        assert_eq!(h.pop_max(&act), Some(0));
    }

    #[test]
    fn duplicate_insert_ignored() {
        let act = vec![1.0];
        let mut h = ActivityHeap::new();
        h.insert(0, &act);
        h.insert(0, &act);
        assert_eq!(h.pop_max(&act), Some(0));
        assert_eq!(h.pop_max(&act), None);
    }

    #[test]
    fn contains_tracks_membership() {
        let act = vec![1.0, 2.0];
        let mut h = ActivityHeap::new();
        assert!(!h.contains(0));
        h.insert(0, &act);
        assert!(h.contains(0));
        h.pop_max(&act);
        assert!(!h.contains(0));
        assert!(h.is_empty());
    }
}
