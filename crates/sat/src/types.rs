//! Fundamental SAT types: variables, literals and the three-valued
//! assignment domain.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Not;

/// A propositional variable, identified by a dense zero-based index.
///
/// Variables are created through [`crate::CnfFormula::new_var`] or
/// [`crate::Solver::new_var`]; their index is stable for the lifetime of the
/// formula/solver.
///
/// ```
/// use satmapit_sat::Var;
/// let v = Var::new(3);
/// assert_eq!(v.index(), 3);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Var(u32);

impl Var {
    /// Creates a variable from its dense index.
    pub fn new(index: u32) -> Var {
        Var(index)
    }

    /// The dense index of this variable, suitable for array indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    pub fn positive(self) -> Lit {
        Lit::new(self, true)
    }

    /// The negative literal of this variable.
    pub fn negative(self) -> Lit {
        Lit::new(self, false)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: a variable together with a polarity.
///
/// Internally encoded as `2 * var + (negated as u32)` so that literals can
/// index arrays of size `2 * num_vars` via [`Lit::code`], and negation is a
/// single XOR.
///
/// ```
/// use satmapit_sat::{Lit, Var};
/// let v = Var::new(7);
/// let p = Lit::new(v, true);
/// assert!(p.is_positive());
/// assert_eq!((!p).var(), v);
/// assert!(!(!p).is_positive());
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Lit(u32);

impl Lit {
    /// Creates a literal over `var`; `positive` selects the polarity.
    pub fn new(var: Var, positive: bool) -> Lit {
        Lit(var.0 << 1 | u32::from(!positive))
    }

    /// The variable underlying this literal.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// `true` if this is the positive (non-negated) literal.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Dense code in `0..2*num_vars`, suitable for watch-list indexing.
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a literal from its [`Lit::code`].
    ///
    /// # Panics
    ///
    /// Never panics, but passing a code not produced by [`Lit::code`] yields
    /// an unrelated literal.
    pub fn from_code(code: usize) -> Lit {
        Lit(code as u32)
    }

    /// Converts from a DIMACS-style non-zero integer (`-3` is `¬v2`).
    ///
    /// Returns `None` for `0`.
    pub fn from_dimacs(value: i64) -> Option<Lit> {
        if value == 0 {
            return None;
        }
        let var = Var::new((value.unsigned_abs() - 1) as u32);
        Some(Lit::new(var, value > 0))
    }

    /// Converts to the DIMACS representation (1-based, sign = polarity).
    pub fn to_dimacs(self) -> i64 {
        let v = i64::from(self.0 >> 1) + 1;
        if self.is_positive() {
            v
        } else {
            -v
        }
    }
}

impl Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "v{}", self.0 >> 1)
        } else {
            write!(f, "!v{}", self.0 >> 1)
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Three-valued assignment domain used during search.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum LBool {
    /// Assigned false.
    False,
    /// Assigned true.
    True,
    /// Not assigned.
    #[default]
    Undef,
}

impl LBool {
    /// Lifts a concrete boolean.
    pub fn from_bool(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }

    /// `true` iff assigned (either polarity).
    pub fn is_assigned(self) -> bool {
        self != LBool::Undef
    }

    /// Logical negation; `Undef` stays `Undef`.
    pub fn negate(self) -> LBool {
        match self {
            LBool::False => LBool::True,
            LBool::True => LBool::False,
            LBool::Undef => LBool::Undef,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lit_encoding_round_trips() {
        for idx in [0u32, 1, 2, 17, 1000] {
            let v = Var::new(idx);
            let p = v.positive();
            let n = v.negative();
            assert_eq!(p.var(), v);
            assert_eq!(n.var(), v);
            assert!(p.is_positive());
            assert!(!n.is_positive());
            assert_eq!(!p, n);
            assert_eq!(!n, p);
            assert_eq!(Lit::from_code(p.code()), p);
        }
    }

    #[test]
    fn dimacs_round_trips() {
        for value in [-5i64, -1, 1, 2, 42] {
            let lit = Lit::from_dimacs(value).unwrap();
            assert_eq!(lit.to_dimacs(), value);
        }
        assert!(Lit::from_dimacs(0).is_none());
    }

    #[test]
    fn lbool_negation() {
        assert_eq!(LBool::True.negate(), LBool::False);
        assert_eq!(LBool::False.negate(), LBool::True);
        assert_eq!(LBool::Undef.negate(), LBool::Undef);
        assert!(LBool::True.is_assigned());
        assert!(!LBool::Undef.is_assigned());
    }

    #[test]
    fn adjacent_lit_codes_share_var() {
        let v = Var::new(9);
        assert_eq!(v.positive().code() / 2, v.index());
        assert_eq!(v.negative().code() / 2, v.index());
        assert_ne!(v.positive().code(), v.negative().code());
    }
}
