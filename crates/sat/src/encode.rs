//! Reusable CNF encodings for cardinality and implication constraints.
//!
//! SAT-MapIt's constraint sets C1 and C2 are built from exactly-one /
//! at-most-one constraints over large literal sets (one literal per
//! candidate placement of a node). The encoding choice matters: the paper's
//! pairwise formulation is quadratic in the set size, while the sequential
//! (ladder) encoding is linear at the cost of auxiliary variables. Both are
//! provided; [`AmoEncoding::Auto`] switches at a small threshold.

use crate::cnf::CnfFormula;
use crate::types::Lit;

/// Strategy for at-most-one constraints.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum AmoEncoding {
    /// `O(n²)` binary clauses, no auxiliary variables (the paper's Eq. 1/2).
    Pairwise,
    /// Sequential/ladder encoding: `O(n)` clauses and `n-1` auxiliary
    /// variables (Sinz 2005).
    Sequential,
    /// Pairwise for small sets (≤ [`AUTO_PAIRWISE_MAX`] literals),
    /// sequential otherwise.
    #[default]
    Auto,
}

/// Threshold used by [`AmoEncoding::Auto`]: sets up to this size are encoded
/// pairwise.
pub const AUTO_PAIRWISE_MAX: usize = 6;

/// Adds the clause `l1 ∨ l2 ∨ … ∨ ln` ("at least one").
///
/// An empty `lits` adds the empty clause, making the formula unsatisfiable.
pub fn at_least_one(formula: &mut CnfFormula, lits: &[Lit]) {
    formula.add_clause(lits);
}

/// Adds pairwise at-most-one constraints: `¬li ∨ ¬lj` for all `i < j`.
pub fn at_most_one_pairwise(formula: &mut CnfFormula, lits: &[Lit]) {
    for i in 0..lits.len() {
        for j in (i + 1)..lits.len() {
            formula.add_clause(&[!lits[i], !lits[j]]);
        }
    }
}

/// Adds the sequential (ladder) at-most-one encoding.
///
/// Introduces `n-1` auxiliary variables `s_i` meaning "some literal among
/// `l_0..=l_i` is true", with clauses:
/// `¬l_i ∨ s_i`, `¬s_{i-1} ∨ s_i`, `¬l_i ∨ ¬s_{i-1}`.
#[allow(clippy::needless_range_loop)] // the ladder recurrences read best indexed
pub fn at_most_one_sequential(formula: &mut CnfFormula, lits: &[Lit]) {
    if lits.len() <= 1 {
        return;
    }
    let n = lits.len();
    // s[i] corresponds to prefix 0..=i, for i in 0..n-1.
    let first = formula.new_vars(n - 1);
    let s = |i: usize| {
        Lit::new(
            crate::types::Var::new(first.index() as u32 + i as u32),
            true,
        )
    };
    formula.add_clause(&[!lits[0], s(0)]);
    for i in 1..n - 1 {
        formula.add_clause(&[!lits[i], s(i)]);
        formula.add_clause(&[!s(i - 1), s(i)]);
        formula.add_clause(&[!lits[i], !s(i - 1)]);
    }
    formula.add_clause(&[!lits[n - 1], !s(n - 2)]);
}

/// Adds an at-most-one constraint with the chosen strategy.
pub fn at_most_one(formula: &mut CnfFormula, lits: &[Lit], encoding: AmoEncoding) {
    match encoding {
        AmoEncoding::Pairwise => at_most_one_pairwise(formula, lits),
        AmoEncoding::Sequential => at_most_one_sequential(formula, lits),
        AmoEncoding::Auto => {
            if lits.len() <= AUTO_PAIRWISE_MAX {
                at_most_one_pairwise(formula, lits);
            } else {
                at_most_one_sequential(formula, lits);
            }
        }
    }
}

/// Adds an exactly-one constraint (at-least-one + at-most-one).
pub fn exactly_one(formula: &mut CnfFormula, lits: &[Lit], encoding: AmoEncoding) {
    at_least_one(formula, lits);
    at_most_one(formula, lits, encoding);
}

/// Adds the implications `trigger → l` for every `l` in `lits`
/// (i.e. clauses `¬trigger ∨ l`).
///
/// This is the one-directional Tseitin expansion used for the per-dependency
/// disjunctions of constraint set C3: the auxiliary `trigger` stands for a
/// conjunction of `lits`, and only the `trigger ⇒ conjunct` direction is
/// needed to preserve satisfiability and model soundness.
pub fn implies_all(formula: &mut CnfFormula, trigger: Lit, lits: &[Lit]) {
    for &l in lits {
        formula.add_clause(&[!trigger, l]);
    }
}

/// Adds a sequential-counter at-most-`k` constraint (Sinz 2005).
///
/// For `k >= lits.len()` this is a no-op; `k == 0` forces all literals false.
#[allow(clippy::needless_range_loop)] // the ladder recurrences read best indexed
pub fn at_most_k(formula: &mut CnfFormula, lits: &[Lit], k: usize) {
    let n = lits.len();
    if k >= n {
        return;
    }
    if k == 0 {
        for &l in lits {
            formula.add_clause(&[!l]);
        }
        return;
    }
    // r[i][j]: among lits[0..=i], at least j+1 are true (j in 0..k).
    let first = formula.new_vars((n - 1) * k).index() as u32;
    let r = |i: usize, j: usize| {
        debug_assert!(i < n - 1 && j < k);
        Lit::new(crate::types::Var::new(first + (i * k + j) as u32), true)
    };
    // Base: l0 -> r[0][0]; r[0][j>=1] is false implicitly (never implied).
    formula.add_clause(&[!lits[0], r(0, 0)]);
    for j in 1..k {
        formula.add_clause(&[!r(0, j)]);
    }
    for i in 1..n {
        if i < n - 1 {
            // carry: r[i-1][j] -> r[i][j]
            for j in 0..k {
                formula.add_clause(&[!r(i - 1, j), r(i, j)]);
            }
            // increment: l_i ∧ r[i-1][j-1] -> r[i][j]; l_i -> r[i][0]
            formula.add_clause(&[!lits[i], r(i, 0)]);
            for j in 1..k {
                formula.add_clause(&[!lits[i], !r(i - 1, j - 1), r(i, j)]);
            }
        }
        // overflow: l_i ∧ r[i-1][k-1] -> ⊥
        formula.add_clause(&[!lits[i], !r(i - 1, k - 1)]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::solve_exhaustive;

    fn fresh(formula: &mut CnfFormula, n: usize) -> Vec<Lit> {
        (0..n).map(|_| formula.new_var().positive()).collect()
    }

    /// Counts models of `formula` projected onto the first `n_proj` vars.
    fn count_projected_models(formula: &CnfFormula, n_proj: usize) -> usize {
        let n = formula.num_vars();
        assert!(n <= 22, "too many vars for exhaustive model counting");
        let mut seen = std::collections::HashSet::new();
        for bits in 0..(1u64 << n) {
            let assignment: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            if formula.eval(&assignment) {
                let proj: Vec<bool> = assignment[..n_proj].to_vec();
                seen.insert(proj);
            }
        }
        seen.len()
    }

    #[test]
    fn pairwise_amo_models() {
        for n in 1..6 {
            let mut f = CnfFormula::new();
            let lits = fresh(&mut f, n);
            at_most_one_pairwise(&mut f, &lits);
            // Models: all-false + n one-hot assignments.
            assert_eq!(count_projected_models(&f, n), n + 1, "n={n}");
        }
    }

    #[test]
    fn sequential_amo_models() {
        for n in 1..7 {
            let mut f = CnfFormula::new();
            let lits = fresh(&mut f, n);
            at_most_one_sequential(&mut f, &lits);
            assert_eq!(count_projected_models(&f, n), n + 1, "n={n}");
        }
    }

    #[test]
    fn exactly_one_models() {
        for encoding in [
            AmoEncoding::Pairwise,
            AmoEncoding::Sequential,
            AmoEncoding::Auto,
        ] {
            for n in 1..6 {
                let mut f = CnfFormula::new();
                let lits = fresh(&mut f, n);
                exactly_one(&mut f, &lits, encoding);
                assert_eq!(count_projected_models(&f, n), n, "n={n} {encoding:?}");
            }
        }
    }

    #[test]
    fn at_most_k_models() {
        fn binom(n: usize, k: usize) -> usize {
            if k > n {
                return 0;
            }
            let mut r = 1usize;
            for i in 0..k {
                r = r * (n - i) / (i + 1);
            }
            r
        }
        for n in 1..6 {
            for k in 0..=n {
                let mut f = CnfFormula::new();
                let lits = fresh(&mut f, n);
                at_most_k(&mut f, &lits, k);
                let expected: usize = (0..=k).map(|j| binom(n, j)).sum();
                assert_eq!(count_projected_models(&f, n), expected, "n={n} k={k}");
            }
        }
    }

    #[test]
    fn implies_all_forces_conjuncts() {
        let mut f = CnfFormula::new();
        let t = f.new_var().positive();
        let a = f.new_var().positive();
        let b = f.new_var().positive();
        implies_all(&mut f, t, &[a, !b]);
        f.add_clause(&[t]);
        let model = solve_exhaustive(&f).unwrap().expect("sat");
        assert!(model[a.var().index()]);
        assert!(!model[b.var().index()]);
    }

    #[test]
    fn empty_at_least_one_is_unsat() {
        let mut f = CnfFormula::new();
        let _ = f.new_var();
        at_least_one(&mut f, &[]);
        assert!(solve_exhaustive(&f).unwrap().is_none());
    }

    #[test]
    fn amo_auto_switches_encoding() {
        let mut small = CnfFormula::new();
        let lits = fresh(&mut small, AUTO_PAIRWISE_MAX);
        at_most_one(&mut small, &lits, AmoEncoding::Auto);
        assert_eq!(small.num_vars(), AUTO_PAIRWISE_MAX, "no aux vars expected");

        let mut large = CnfFormula::new();
        let lits = fresh(&mut large, AUTO_PAIRWISE_MAX + 1);
        at_most_one(&mut large, &lits, AmoEncoding::Auto);
        assert!(
            large.num_vars() > AUTO_PAIRWISE_MAX + 1,
            "aux vars expected"
        );
    }

    #[test]
    fn single_literal_amo_is_trivial() {
        let mut f = CnfFormula::new();
        let lits = fresh(&mut f, 1);
        at_most_one_sequential(&mut f, &lits);
        assert_eq!(f.num_clauses(), 0);
        let _ = lits;
    }
}
