//! # satmapit-sat
//!
//! A from-scratch conflict-driven clause-learning (CDCL) SAT solver, built
//! as the decision engine for the SAT-MapIt CGRA mapper (DATE 2023). The
//! paper delegates its CNF formulation to Z3; this crate provides an
//! equivalent complete SAT back-end so that the whole toolchain is
//! self-contained.
//!
//! The crate is usable as a general-purpose SAT library:
//!
//! * [`CnfFormula`] — a solver-independent clause container with DIMACS
//!   import/export,
//! * [`Solver`] — the CDCL engine (watched literals, VSIDS + phase saving,
//!   1-UIP learning with minimization, Luby restarts, clause-DB reduction,
//!   assumptions, conflict/time budgets, and assumption-gated clause
//!   groups for incremental solving — see the [`solver`](Solver) module
//!   docs for the activation-literal lifecycle and the
//!   [`Solver::final_conflict`] failed-assumption-core contract),
//! * [`encode`] — cardinality encodings (pairwise / sequential
//!   at-most-one, sequential-counter at-most-k) used by the mapper's C1/C2
//!   constraint families,
//! * [`share`] — learnt-clause exchange between portfolio siblings
//!   (bounded per-race pools, per-sibling cursors, compatibility-class
//!   and activation-guard filtering),
//! * [`brute`] — an exhaustive oracle used by the property-test suite.
//!
//! ## Example
//!
//! ```
//! use satmapit_sat::{CnfFormula, Solver, SolveResult, encode};
//!
//! let mut f = CnfFormula::new();
//! let lits: Vec<_> = (0..4).map(|_| f.new_var().positive()).collect();
//! encode::exactly_one(&mut f, &lits, encode::AmoEncoding::Auto);
//!
//! let mut solver = Solver::from_cnf(&f);
//! assert_eq!(solver.solve(), SolveResult::Sat);
//! let model = solver.model().unwrap();
//! let true_count = lits
//!     .iter()
//!     .filter(|l| model[l.var().index()])
//!     .count();
//! assert_eq!(true_count, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
pub mod brute;
mod cnf;
pub mod encode;
mod heap;
mod luby;
pub mod share;
mod solver;
mod types;

pub use cnf::{CnfFormula, ParseDimacsError, ParseDimacsErrorKind};
pub use luby::luby;
pub use share::{formula_class, ShareHandle, SharePool, SharePoolStats};
pub use solver::{
    SolveLimits, SolveResult, Solver, SolverOptions, SolverStats, StopReason, LIMIT_POLL_INTERVAL,
};
pub use types::{LBool, Lit, Var};
