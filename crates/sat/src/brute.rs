//! Exhaustive SAT oracle for testing.
//!
//! Enumerates all assignments of a small formula. This is the ground truth
//! against which the CDCL solver is property-tested.

use crate::cnf::CnfFormula;

/// Hard cap on the variable count accepted by [`solve_exhaustive`].
pub const MAX_EXHAUSTIVE_VARS: usize = 26;

/// Exhaustively decides satisfiability of `formula`.
///
/// Returns `Err(TooManyVars)` when the formula has more than
/// [`MAX_EXHAUSTIVE_VARS`] variables, `Ok(Some(model))` with the
/// lexicographically-first model when satisfiable, and `Ok(None)` when
/// unsatisfiable.
///
/// ```
/// use satmapit_sat::{brute::solve_exhaustive, CnfFormula};
/// let mut f = CnfFormula::new();
/// let a = f.new_var().positive();
/// f.add_clause(&[!a]);
/// assert_eq!(solve_exhaustive(&f).unwrap(), Some(vec![false]));
/// ```
pub fn solve_exhaustive(formula: &CnfFormula) -> Result<Option<Vec<bool>>, TooManyVars> {
    let n = formula.num_vars();
    if n > MAX_EXHAUSTIVE_VARS {
        return Err(TooManyVars { vars: n });
    }
    for bits in 0u64..(1u64 << n) {
        let assignment: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
        if formula.eval(&assignment) {
            return Ok(Some(assignment));
        }
    }
    Ok(None)
}

/// Counts the models of a small formula.
///
/// # Errors
///
/// Fails with [`TooManyVars`] above [`MAX_EXHAUSTIVE_VARS`] variables.
pub fn count_models(formula: &CnfFormula) -> Result<u64, TooManyVars> {
    let n = formula.num_vars();
    if n > MAX_EXHAUSTIVE_VARS {
        return Err(TooManyVars { vars: n });
    }
    let mut count = 0;
    for bits in 0u64..(1u64 << n) {
        let assignment: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
        if formula.eval(&assignment) {
            count += 1;
        }
    }
    Ok(count)
}

/// Error: formula too large for exhaustive enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TooManyVars {
    /// The offending variable count.
    pub vars: usize,
}

impl std::fmt::Display for TooManyVars {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "formula has {} vars, exhaustive limit is {}",
            self.vars, MAX_EXHAUSTIVE_VARS
        )
    }
}

impl std::error::Error for TooManyVars {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_formulas() {
        let mut f = CnfFormula::new();
        let a = f.new_var().positive();
        let b = f.new_var().positive();
        f.add_clause(&[a, b]);
        f.add_clause(&[!a]);
        assert_eq!(solve_exhaustive(&f).unwrap(), Some(vec![false, true]));
        assert_eq!(count_models(&f).unwrap(), 1);
    }

    #[test]
    fn unsat_detected() {
        let mut f = CnfFormula::new();
        let a = f.new_var().positive();
        f.add_clause(&[a]);
        f.add_clause(&[!a]);
        assert_eq!(solve_exhaustive(&f).unwrap(), None);
        assert_eq!(count_models(&f).unwrap(), 0);
    }

    #[test]
    fn too_many_vars_rejected() {
        let f = CnfFormula::with_vars(MAX_EXHAUSTIVE_VARS + 1);
        assert!(solve_exhaustive(&f).is_err());
    }
}
