//! Flat clause storage: one contiguous `u32` arena plus a compacting
//! garbage collector.
//!
//! The first three PRs stored every clause as its own heap `Vec<Lit>`
//! behind a `Clause` header — two pointer chases per watched-literal
//! visit, allocator traffic on every learnt clause, and no way to ever
//! return the memory of a retired incremental rung. This module adopts
//! the MiniSat-lineage layout instead: all clauses live in one growable
//! `Vec<u32>` and are addressed by [`ClauseRef`] word offsets, so
//! propagation walks cache-adjacent memory and deleting a clause is a
//! single header-bit flip.
//!
//! # Record layout
//!
//! A clause record occupies `1 + size (+ 2 if learnt)` consecutive words:
//!
//! ```text
//! word 0            : header — size in bits 0..=28, LEARNT bit 29,
//!                     DELETED bit 30
//! words 1..=size    : literal codes ([`Lit::code`]) — first, so the
//!                     propagation hot path never needs the trailer
//! size+1, size+2    : learnt trailer — activity (f32 bits), LBD
//! ```
//!
//! The literals come directly after the header so that
//! [`ClauseArena::lit`] is a constant-offset read regardless of whether
//! the clause is learnt; the rarely-touched activity/LBD trailer pays the
//! size-dependent offset instead.
//!
//! # Deletion and garbage collection
//!
//! [`ClauseArena::delete`] only sets the DELETED header bit (the record —
//! literals included — stays readable, which the lazy watcher scheme in
//! the solver relies on) and accounts the record's words as waste. When
//! the wasted fraction crosses the solver's GC trigger,
//! [`ClauseArena::collect`] compacts: one forward sweep copies every live
//! record into a fresh buffer (records are allocated strictly
//! append-only, so a sequential header walk visits them all) and leaves a
//! forwarding pointer in each moved record's old slot. The returned
//! [`ArenaRemap`] — the retired buffer — translates stale [`ClauseRef`]s
//! in O(1) — watchers, `reason` pointers, learnt and group indices — and
//! answers `None` for deleted clauses so the caller can drop those
//! references on the spot.
//!
//! `ClauseRef`s are **unstable across `collect`**: the solver must remap
//! every stored reference immediately after a collection and never hold a
//! `ClauseRef` across one otherwise.

use crate::types::Lit;
use std::fmt;

const SIZE_BITS: u32 = 29;
const SIZE_MASK: u32 = (1 << SIZE_BITS) - 1;
const LEARNT_BIT: u32 = 1 << 29;
const DELETED_BIT: u32 = 1 << 30;
/// Set on an *old-buffer* header during collection: the record moved and
/// its first literal slot holds the forwarding offset. Never set on a
/// live arena record.
const RELOC_BIT: u32 = 1 << 31;

/// A reference to a clause record: the word offset of its header inside
/// the arena. Stable across allocations, invalidated by
/// [`ClauseArena::collect`] (use the returned [`ArenaRemap`]).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub(crate) struct ClauseRef(pub(crate) u32);

impl ClauseRef {
    /// The null reference (used for "no reason" / decision variables).
    pub(crate) const NONE: ClauseRef = ClauseRef(u32::MAX);
}

impl fmt::Debug for ClauseRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == ClauseRef::NONE {
            write!(f, "cref#none")
        } else {
            write!(f, "cref#{}", self.0)
        }
    }
}

/// What one [`ClauseArena::collect`] run reclaimed.
#[derive(Debug)]
pub(crate) struct GcSweep {
    /// Offset translation for surviving clauses.
    pub(crate) remap: ArenaRemap,
    /// Literal slots freed (deleted clauses' sizes summed).
    pub(crate) lits_reclaimed: u64,
}

/// The pre-collection buffer, reused as an O(1) forwarding table: every
/// surviving record's old header carries [`RELOC_BIT`] and its first
/// literal slot holds the new offset; deleted records were left as-is.
#[derive(Debug)]
pub(crate) struct ArenaRemap {
    old: Vec<u32>,
}

impl ArenaRemap {
    /// The post-compaction offset of `old`, or `None` if the clause was
    /// deleted and swept. Constant time — one header read in the retired
    /// buffer.
    pub(crate) fn remap(&self, old: ClauseRef) -> Option<ClauseRef> {
        let header = self.old[old.0 as usize];
        if header & RELOC_BIT != 0 {
            Some(ClauseRef(self.old[old.0 as usize + 1]))
        } else {
            None
        }
    }
}

/// The flat clause store. See the module docs for the record layout.
#[derive(Debug, Default)]
pub(crate) struct ClauseArena {
    data: Vec<u32>,
    /// Words occupied by deleted records (headers + lits + trailers).
    wasted: u64,
    /// A retired collection buffer kept for reuse ([`ClauseArena::recycle`]):
    /// ping-ponging between two high-water-sized buffers avoids a fresh
    /// multi-MB allocation (and its page faults) on every collection.
    spare: Vec<u32>,
}

impl ClauseArena {
    pub(crate) fn new() -> ClauseArena {
        ClauseArena::default()
    }

    /// Total words currently allocated (live + wasted).
    pub(crate) fn words(&self) -> u64 {
        self.data.len() as u64
    }

    /// Words occupied by deleted records awaiting collection.
    pub(crate) fn wasted_words(&self) -> u64 {
        self.wasted
    }

    /// Appends a clause record; `lits` must have at least 2 literals (unit
    /// and empty clauses never reach the store).
    pub(crate) fn alloc(&mut self, lits: &[Lit], learnt: bool, lbd: u32) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        debug_assert!(lits.len() as u32 <= SIZE_MASK);
        // ClauseRefs are u32 word offsets: past 2^32 words (16 GiB) a new
        // ref would silently alias an existing record. Fail loudly instead
        // — the check is one compare per allocation.
        assert!(
            self.data.len() + 3 + lits.len() < u32::MAX as usize,
            "clause arena exceeds the 2^32-word ClauseRef address space"
        );
        let cref = ClauseRef(self.data.len() as u32);
        let mut header = lits.len() as u32;
        if learnt {
            header |= LEARNT_BIT;
        }
        self.data.push(header);
        self.data.extend(lits.iter().map(|l| l.code() as u32));
        if learnt {
            self.data.push(0f32.to_bits()); // activity
            self.data.push(lbd);
        }
        cref
    }

    #[inline]
    pub(crate) fn len(&self, c: ClauseRef) -> usize {
        (self.data[c.0 as usize] & SIZE_MASK) as usize
    }

    #[inline]
    pub(crate) fn is_learnt(&self, c: ClauseRef) -> bool {
        self.data[c.0 as usize] & LEARNT_BIT != 0
    }

    #[inline]
    pub(crate) fn is_deleted(&self, c: ClauseRef) -> bool {
        self.data[c.0 as usize] & DELETED_BIT != 0
    }

    /// Literal `i` of clause `c` (no bounds relation to other clauses:
    /// the caller must keep `i < len(c)`).
    #[inline]
    pub(crate) fn lit(&self, c: ClauseRef, i: usize) -> Lit {
        debug_assert!(i < self.len(c));
        Lit::from_code(self.data[c.0 as usize + 1 + i] as usize)
    }

    #[inline]
    pub(crate) fn swap_lits(&mut self, c: ClauseRef, i: usize, j: usize) {
        debug_assert!(i < self.len(c) && j < self.len(c));
        let base = c.0 as usize + 1;
        self.data.swap(base + i, base + j);
    }

    /// `true` if `lit` occurs in clause `c`.
    pub(crate) fn contains(&self, c: ClauseRef, lit: Lit) -> bool {
        let base = c.0 as usize + 1;
        let code = lit.code() as u32;
        self.data[base..base + self.len(c)].contains(&code)
    }

    /// Marks `c` deleted. The record stays readable (lazy watchers may
    /// still dereference it) until the next [`ClauseArena::collect`].
    pub(crate) fn delete(&mut self, c: ClauseRef) {
        debug_assert!(!self.is_deleted(c));
        self.wasted += self.record_words(c) as u64;
        self.data[c.0 as usize] |= DELETED_BIT;
    }

    #[inline]
    pub(crate) fn activity(&self, c: ClauseRef) -> f32 {
        debug_assert!(self.is_learnt(c));
        f32::from_bits(self.data[self.trailer(c)])
    }

    #[inline]
    pub(crate) fn set_activity(&mut self, c: ClauseRef, act: f32) {
        debug_assert!(self.is_learnt(c));
        let at = self.trailer(c);
        self.data[at] = act.to_bits();
    }

    #[inline]
    pub(crate) fn lbd(&self, c: ClauseRef) -> u32 {
        debug_assert!(self.is_learnt(c));
        self.data[self.trailer(c) + 1]
    }

    #[inline]
    fn trailer(&self, c: ClauseRef) -> usize {
        c.0 as usize + 1 + self.len(c)
    }

    /// Words the record at `c` occupies (header + lits + learnt trailer).
    fn record_words(&self, c: ClauseRef) -> usize {
        1 + self.len(c) + if self.is_learnt(c) { 2 } else { 0 }
    }

    /// Copying collection: moves every live record into a fresh, exactly
    /// live-sized buffer (records are allocated strictly append-only, so
    /// one sequential header walk visits them all) and turns the retired
    /// buffer into the forwarding table — each moved record's old header
    /// gains [`RELOC_BIT`] and its first literal slot the new offset, so
    /// [`ArenaRemap::remap`] is O(1) per stale reference. O(arena) time,
    /// one transient buffer of the live size.
    pub(crate) fn collect(&mut self) -> GcSweep {
        let live = self.data.len() - self.wasted as usize;
        // Reuse the previous collection's retired buffer when one was
        // recycled, and keep the high-water capacity either way: a ladder
        // rung that grew the arena to N words will be followed by another
        // of about the same size, and re-growing (or freshly mapping) a
        // multi-MB buffer on every collection costs more than the
        // collection itself.
        let mut new: Vec<u32> = std::mem::take(&mut self.spare);
        new.clear();
        new.reserve(live.max(self.data.capacity()));
        let mut lits_reclaimed = 0u64;
        let mut read = 0usize;
        let end = self.data.len();
        while read < end {
            let c = ClauseRef(read as u32);
            let words = self.record_words(c);
            if self.is_deleted(c) {
                lits_reclaimed += self.len(c) as u64;
            } else {
                let dst = new.len() as u32;
                new.extend_from_slice(&self.data[read..read + words]);
                // Forwarding pointer: records always have ≥ 2 literal
                // slots, so word `read + 1` exists.
                self.data[read] |= RELOC_BIT;
                self.data[read + 1] = dst;
            }
            read += words;
        }
        debug_assert_eq!(new.len(), live);
        let old = std::mem::replace(&mut self.data, new);
        self.wasted = 0;
        GcSweep {
            remap: ArenaRemap { old },
            lits_reclaimed,
        }
    }

    /// Returns a spent forwarding table's buffer to the arena for the
    /// next collection (see [`ClauseArena::collect`]). Keeps whichever
    /// buffer is larger.
    pub(crate) fn recycle(&mut self, remap: ArenaRemap) {
        if remap.old.capacity() > self.spare.capacity() {
            self.spare = remap.old;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Var;

    fn lits(codes: &[usize]) -> Vec<Lit> {
        codes.iter().map(|&c| Lit::from_code(c)).collect()
    }

    #[test]
    fn alloc_and_read_back() {
        let mut a = ClauseArena::new();
        let c1 = a.alloc(&lits(&[0, 3, 5]), false, 0);
        let c2 = a.alloc(&lits(&[2, 7]), true, 4);
        assert_eq!(a.len(c1), 3);
        assert!(!a.is_learnt(c1));
        assert_eq!(a.lit(c1, 1), Lit::from_code(3));
        assert_eq!(a.len(c2), 2);
        assert!(a.is_learnt(c2));
        assert_eq!(a.lbd(c2), 4);
        assert_eq!(a.activity(c2), 0.0);
        a.set_activity(c2, 1.5);
        assert_eq!(a.activity(c2), 1.5);
        assert_eq!(a.words(), 4 + 5);
    }

    #[test]
    fn swap_and_contains() {
        let mut a = ClauseArena::new();
        let v: Vec<Lit> = (0..4).map(|i| Var::new(i).positive()).collect();
        let c = a.alloc(&v, false, 0);
        a.swap_lits(c, 0, 3);
        assert_eq!(a.lit(c, 0), v[3]);
        assert_eq!(a.lit(c, 3), v[0]);
        assert!(a.contains(c, v[2]));
        assert!(!a.contains(c, !v[2]));
    }

    #[test]
    fn delete_accounts_waste_and_collect_compacts() {
        let mut a = ClauseArena::new();
        let c1 = a.alloc(&lits(&[0, 2]), false, 0); // 3 words
        let c2 = a.alloc(&lits(&[4, 6, 8]), true, 2); // 6 words
        let c3 = a.alloc(&lits(&[1, 3]), false, 0); // 3 words
        a.delete(c2);
        assert_eq!(a.wasted_words(), 6);
        assert!(a.is_deleted(c2));
        // Deleted record stays readable until collection.
        assert_eq!(a.lit(c2, 2), Lit::from_code(8));

        let sweep = a.collect();
        assert_eq!(sweep.lits_reclaimed, 3);
        assert_eq!(a.wasted_words(), 0);
        assert_eq!(a.words(), 6);
        let n1 = sweep.remap.remap(c1).unwrap();
        let n3 = sweep.remap.remap(c3).unwrap();
        assert!(sweep.remap.remap(c2).is_none(), "deleted clause unmapped");
        assert_eq!(a.lit(n1, 1), Lit::from_code(2));
        assert_eq!(a.lit(n3, 0), Lit::from_code(1));
        assert_eq!(n1, c1, "records before the hole keep their offset");
        assert_eq!(n3.0, 3, "records after the hole slide down");
    }

    #[test]
    fn collect_on_clean_arena_is_identity() {
        let mut a = ClauseArena::new();
        let c1 = a.alloc(&lits(&[0, 2, 4]), true, 3);
        a.set_activity(c1, 2.25);
        let sweep = a.collect();
        assert_eq!(sweep.remap.remap(c1), Some(c1));
        assert_eq!(sweep.lits_reclaimed, 0);
        assert_eq!(a.activity(c1), 2.25, "trailer moves with the record");
    }

    #[test]
    fn learnt_trailer_survives_compaction() {
        let mut a = ClauseArena::new();
        let dead = a.alloc(&lits(&[0, 2]), false, 0);
        let keep = a.alloc(&lits(&[4, 6, 8]), true, 7);
        a.set_activity(keep, 9.75);
        a.delete(dead);
        let sweep = a.collect();
        let keep = sweep.remap.remap(keep).unwrap();
        assert_eq!(keep.0, 0);
        assert_eq!(a.lbd(keep), 7);
        assert_eq!(a.activity(keep), 9.75);
        assert_eq!(a.len(keep), 3);
    }
}
