//! Learnt-clause sharing between portfolio siblings.
//!
//! A solver portfolio races several diversified solvers over the *same*
//! formula; each sibling burns conflicts deriving lemmas the others will
//! re-derive from scratch. Classic parallel SAT portfolios
//! (ManySAT-lineage) amortize that cost by exchanging short, low-LBD
//! learnt clauses. This module provides the exchange fabric:
//!
//! * [`SharePool`] — one bounded, append-ordered ring of published
//!   clauses per raced II. Memory is bounded by the ring capacity; when
//!   the ring is full the oldest entry is evicted (counted as a drop).
//! * [`ShareHandle`] — one sibling's connection to a pool: a source id
//!   (so a solver never re-imports its own exports), the export
//!   thresholds, and a private read cursor so each sibling consumes the
//!   stream independently and exactly once.
//!
//! # Soundness: compatibility classes and guard filtering
//!
//! A clause is only meaningful to a sibling that assigns the same
//! variable indices the same meaning. Portfolio variants may encode the
//! formula differently (e.g. different at-most-one encodings allocate
//! different auxiliary variables), so every published clause is tagged
//! with a **class** — a content hash of the sender's CNF, see
//! [`formula_class`] — and importers only accept clauses of their own
//! class. Two siblings whose CNFs differ in any clause or variable count
//! therefore never exchange anything.
//!
//! Within a class, an exported clause must be implied by the formula the
//! siblings share:
//!
//! * clauses learnt while gated clause groups are live may carry an
//!   activation literal (`¬g`); under the gated-group contract they are
//!   only valid together with the group, whose lifetime is
//!   sender-local. The solver filters exports to **guard-free clauses
//!   only** (the safe v1 of the ISSUE); a follow-up could instead ship
//!   the guard and re-gate on import.
//! * clauses added to one solver *after* it connected to a pool (e.g.
//!   register-allocation blocking cuts) are sender-local too: any lemma
//!   derived from them is not implied by the shared CNF alone, so the
//!   first such add permanently disables that solver's exports (imports
//!   stay on — receiving sound clauses is always safe).
//!
//! # Determinism
//!
//! Sharing changes which clauses a solver knows and therefore which
//! (equally valid) model it finds first and how fast. A race with
//! `portfolio = 1` or sharing disabled is bit-identical to a build
//! without this module; anything else trades reproducibility for speed,
//! exactly like racing siblings at all does.

use crate::cnf::CnfFormula;
use crate::types::Lit;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// One published clause: the compatibility class and source that
/// produced it, its LBD at export time, and the literals (shared, so a
/// fetch clones a refcount, not a buffer).
#[derive(Debug, Clone)]
struct SharedClause {
    class: u64,
    source: u32,
    lbd: u32,
    lits: Arc<[Lit]>,
}

#[derive(Debug, Default)]
struct PoolInner {
    /// The ring, newest at the back. `head_seq` is the sequence number of
    /// the front entry; sequence numbers increase by one per publish and
    /// never reset, so a sibling cursor is just "first unseen sequence".
    ring: VecDeque<SharedClause>,
    head_seq: u64,
    published: u64,
    dropped: u64,
}

/// Aggregate pool counters (diagnostics; the per-solver view lives in
/// [`crate::SolverStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharePoolStats {
    /// Clauses ever published into the pool.
    pub published: u64,
    /// Clauses evicted by ring overflow before every sibling read them.
    pub dropped: u64,
    /// Clauses currently held.
    pub held: usize,
}

/// A bounded exchange ring for one group of portfolio siblings (the
/// engine allocates one per raced II). Lock-light: publishers and
/// fetchers hold one short mutex over the ring; clause literal buffers
/// are `Arc`-shared so no fetch copies literals under the lock.
#[derive(Debug)]
pub struct SharePool {
    cap: usize,
    inner: Mutex<PoolInner>,
}

impl SharePool {
    /// A pool holding at most `capacity` clauses (minimum 1).
    pub fn new(capacity: usize) -> SharePool {
        SharePool {
            cap: capacity.max(1),
            inner: Mutex::new(PoolInner::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PoolInner> {
        // A sibling that panicked mid-publish cannot leave the ring
        // half-updated (every mutation is a single push/pop), so a
        // poisoned lock still holds coherent data.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Publishes one clause; returns how many ring entries were evicted
    /// to make room (0 or 1).
    fn publish(&self, class: u64, source: u32, lbd: u32, lits: &[Lit]) -> u64 {
        // Copy the literals before taking the lock: every sibling's
        // conflict path funnels through this mutex, so the critical
        // section must stay push/pop-only.
        let lits: Arc<[Lit]> = lits.into();
        let mut inner = self.lock();
        let mut dropped = 0;
        if inner.ring.len() >= self.cap {
            inner.ring.pop_front();
            inner.head_seq += 1;
            inner.dropped += 1;
            dropped = 1;
        }
        inner.ring.push_back(SharedClause {
            class,
            source,
            lbd,
            lits,
        });
        inner.published += 1;
        dropped
    }

    /// Copies every clause published at sequence ≥ `cursor` whose class
    /// matches and whose source differs, into `out`. Returns the new
    /// cursor (one past the newest entry).
    fn fetch(&self, class: u64, source: u32, cursor: u64, out: &mut Vec<(u32, Arc<[Lit]>)>) -> u64 {
        let inner = self.lock();
        let end = inner.head_seq + inner.ring.len() as u64;
        let start = cursor.max(inner.head_seq);
        for seq in start..end {
            let entry = &inner.ring[(seq - inner.head_seq) as usize];
            if entry.class == class && entry.source != source {
                out.push((entry.lbd, Arc::clone(&entry.lits)));
            }
        }
        end
    }

    /// Aggregate counters.
    pub fn stats(&self) -> SharePoolStats {
        let inner = self.lock();
        SharePoolStats {
            published: inner.published,
            dropped: inner.dropped,
            held: inner.ring.len(),
        }
    }
}

#[derive(Debug)]
struct HandleInner {
    pool: Arc<SharePool>,
    source: u32,
    lbd_max: u32,
    max_len: usize,
    /// First pool sequence this sibling has not imported yet. Atomic so
    /// the handle can ride in a `Clone` [`crate::SolveLimits`] while the
    /// cursor stays shared across the clones.
    cursor: AtomicU64,
}

/// One sibling's connection to a [`SharePool`]: identity (for self-import
/// suppression), export thresholds, and the private read cursor.
///
/// Cheap to clone — clones share the cursor. Pass it to the solver via
/// [`crate::SolveLimits::with_share`] (the engine does this per racing
/// task) and connect it with [`crate::Solver::connect_share`].
#[derive(Debug, Clone)]
pub struct ShareHandle {
    inner: Arc<HandleInner>,
}

impl ShareHandle {
    /// Connects sibling `source` to `pool`. Only clauses with LBD ≤
    /// `lbd_max` *and* at most `max_len` literals are exported.
    pub fn new(pool: Arc<SharePool>, source: u32, lbd_max: u32, max_len: usize) -> ShareHandle {
        ShareHandle {
            inner: Arc::new(HandleInner {
                pool,
                source,
                lbd_max,
                max_len: max_len.max(1),
                cursor: AtomicU64::new(0),
            }),
        }
    }

    /// The export LBD threshold.
    pub fn lbd_max(&self) -> u32 {
        self.inner.lbd_max
    }

    /// The export length threshold.
    pub fn max_len(&self) -> usize {
        self.inner.max_len
    }

    /// The pool this handle publishes into.
    pub fn pool(&self) -> &Arc<SharePool> {
        &self.inner.pool
    }

    /// Publishes one clause under `class`; returns ring evictions caused
    /// (flows into `SolverStats::shared_dropped`). Threshold checks are
    /// the *caller's* job — the solver applies them pre-lock.
    pub(crate) fn export(&self, class: u64, lbd: u32, lits: &[Lit]) -> u64 {
        self.inner.pool.publish(class, self.inner.source, lbd, lits)
    }

    /// Drains every not-yet-seen clause of `class` published by other
    /// sources into `out`, advancing this sibling's cursor.
    pub(crate) fn import(&self, class: u64, out: &mut Vec<(u32, Arc<[Lit]>)>) {
        // ordering: the cursor is only ever touched by this sibling's
        // own solver thread (one handle per sibling); the atomic exists
        // for the Sync bound, not for cross-thread hand-off — clauses
        // travel through the pool's internal lock.
        let cursor = self.inner.cursor.load(Ordering::Relaxed);
        let next = self.inner.pool.fetch(class, self.inner.source, cursor, out);
        self.inner.cursor.store(next, Ordering::Relaxed); // ordering: see above
    }
}

/// The compatibility class of a CNF: a content hash over the variable
/// count and every clause's literal codes, in order. Two solvers whose
/// formulas hash equal assign identical meaning to identical variable
/// indices (they were built by the same deterministic encoder from the
/// same input), so exchanging guard-free learnt clauses between them is
/// sound. Different encodings (e.g. pairwise vs sequential at-most-one)
/// hash differently and are automatically fenced off from each other.
pub fn formula_class(formula: &CnfFormula) -> u64 {
    // FNV-1a, same constants as the engine's fingerprints.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    eat(formula.num_vars() as u64);
    for clause in formula.iter() {
        eat(clause.len() as u64);
        for lit in clause {
            eat(lit.code() as u64);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Var;

    fn lits(idxs: &[u32]) -> Vec<Lit> {
        idxs.iter().map(|&i| Var::new(i).positive()).collect()
    }

    #[test]
    fn fetch_skips_own_exports_and_foreign_classes() {
        let pool = Arc::new(SharePool::new(8));
        let a = ShareHandle::new(Arc::clone(&pool), 0, 4, 8);
        let b = ShareHandle::new(Arc::clone(&pool), 1, 4, 8);
        a.export(7, 2, &lits(&[0, 1]));
        b.export(7, 2, &lits(&[2, 3]));
        b.export(9, 2, &lits(&[4, 5])); // different class: invisible to a

        let mut got = Vec::new();
        a.import(7, &mut got);
        assert_eq!(got.len(), 1, "own export and foreign class skipped");
        assert_eq!(got[0].1.as_ref(), lits(&[2, 3]).as_slice());

        // The cursor advanced: a re-import sees nothing new.
        got.clear();
        a.import(7, &mut got);
        assert!(got.is_empty());

        // b sees a's clause (and not its own two).
        got.clear();
        b.import(7, &mut got);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1.as_ref(), lits(&[0, 1]).as_slice());
    }

    #[test]
    fn ring_capacity_bounds_memory_and_counts_drops() {
        let pool = Arc::new(SharePool::new(2));
        let a = ShareHandle::new(Arc::clone(&pool), 0, 4, 8);
        let b = ShareHandle::new(Arc::clone(&pool), 1, 4, 8);
        assert_eq!(a.export(1, 2, &lits(&[0, 1])), 0);
        assert_eq!(a.export(1, 2, &lits(&[2, 3])), 0);
        assert_eq!(a.export(1, 2, &lits(&[4, 5])), 1, "oldest evicted");
        let stats = pool.stats();
        assert_eq!(stats.published, 3);
        assert_eq!(stats.dropped, 1);
        assert_eq!(stats.held, 2);

        // A slow reader only sees what survived.
        let mut got = Vec::new();
        b.import(1, &mut got);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].1.as_ref(), lits(&[2, 3]).as_slice());
    }

    #[test]
    fn cursor_is_shared_across_handle_clones() {
        let pool = Arc::new(SharePool::new(8));
        let a = ShareHandle::new(Arc::clone(&pool), 0, 4, 8);
        let b = ShareHandle::new(Arc::clone(&pool), 1, 4, 8);
        b.export(1, 2, &lits(&[0, 1]));
        let a2 = a.clone();
        let mut got = Vec::new();
        a.import(1, &mut got);
        assert_eq!(got.len(), 1);
        got.clear();
        a2.import(1, &mut got);
        assert!(got.is_empty(), "the clone shares the advanced cursor");
    }

    #[test]
    fn formula_class_separates_different_encodings() {
        let mut f1 = CnfFormula::new();
        let x = f1.new_var().positive();
        let y = f1.new_var().positive();
        f1.add_clause(&[x, y]);
        let mut f2 = CnfFormula::new();
        let x2 = f2.new_var().positive();
        let y2 = f2.new_var().positive();
        f2.add_clause(&[x2, y2]);
        assert_eq!(formula_class(&f1), formula_class(&f2));
        f2.add_clause(&[!x2]);
        assert_ne!(formula_class(&f1), formula_class(&f2));
        let mut f3 = CnfFormula::new();
        let _ = f3.new_var();
        assert_ne!(formula_class(&f1), formula_class(&f3));
    }
}
