//! The Luby restart sequence (1, 1, 2, 1, 1, 2, 4, …).

/// Returns the `x`-th element (0-based) of the Luby sequence.
///
/// The Luby sequence is the theoretically optimal universal restart
/// strategy; CDCL restarts run `luby(i) * base` conflicts for restart `i`.
pub fn luby(x: u64) -> u64 {
    // Find the finite subsequence that contains index x, and the sequence
    // value at its end (MiniSat's formulation).
    let mut size: u64 = 1;
    let mut seq: u32 = 0;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    let mut x = x;
    while size - 1 != x {
        size = (size - 1) >> 1;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_terms_match_reference() {
        let expected = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let got: Vec<u64> = (0..expected.len() as u64).map(luby).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn powers_of_two_appear() {
        // Element 2^k - 2 of the sequence is 2^(k-1).
        for k in 1..10u32 {
            let idx = (1u64 << k) - 2;
            assert_eq!(luby(idx), 1u64 << (k - 1));
        }
    }

    #[test]
    fn self_similarity() {
        // The sequence repeats its prefix: luby(i) == luby(i + 2^k - 1)
        // whenever i < 2^k - 1.
        for k in 2..8u32 {
            let period = (1u64 << k) - 1;
            for i in 0..period.min(40) {
                assert_eq!(luby(i), luby(i + period));
            }
        }
    }
}
