//! Flight-recorder span tracing with a Chrome `trace_event` exporter.
//!
//! ## Model
//!
//! A [`Span`] is a named, categorised interval measured against one
//! process-wide monotonic epoch. Each thread records completed spans
//! into its own **bounded ring buffer** (capacity [`RING_CAPACITY`];
//! when full, the oldest span is dropped — a flight recorder keeps the
//! newest history, it never blocks the flight). Recording touches only
//! the recording thread's ring, guarded by a mutex that is uncontended
//! except while [`drain`] briefly collects it — no solver hot-path lock
//! is ever taken, and nothing is shared between recording threads.
//!
//! Every span carries a **track** (the `tid` of the exported trace):
//! by default each thread gets a unique track, but a scope can override
//! it with [`push_track`] — the race engine gives every portfolio
//! sibling its own track, so rung spans from concurrent siblings render
//! as parallel timeline rows in Perfetto. [`allocate_tracks`] reserves
//! a contiguous block of track ids; [`name_track`] labels them.
//!
//! ## Cost when disabled
//!
//! Tracing is off until [`set_enabled`]`(true)`. While off,
//! [`Span::begin`] is one relaxed atomic load returning an inert guard:
//! no allocation, no ring, no timestamps. Enabling tracing is a
//! process-local observer switch — it must never join a result
//! fingerprint or change an answer.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// Per-thread ring capacity, in spans. The newest spans win.
pub const RING_CAPACITY: usize = 16_384;

static ENABLED: AtomicBool = AtomicBool::new(false);
/// Track ids handed out so far; 0 is never used (it is the "not yet
/// assigned" sentinel in the thread-local).
static NEXT_TRACK: AtomicU64 = AtomicU64::new(1);
/// Spans lost to ring overflow, across all threads, since process start.
static DROPPED: AtomicU64 = AtomicU64::new(0);
/// Every thread's ring, so [`drain`] can collect spans recorded by
/// threads that have since exited (the `Arc` keeps the ring alive).
static REGISTRY: Mutex<Vec<Arc<Mutex<Ring>>>> = Mutex::new(Vec::new());
/// Human labels for track ids, rendered as `thread_name` metadata.
static TRACK_NAMES: Mutex<Vec<(u64, String)>> = Mutex::new(Vec::new());

thread_local! {
    static LOCAL_RING: RefCell<Option<Arc<Mutex<Ring>>>> = const { RefCell::new(None) };
    static LOCAL_TRACK: Cell<u64> = const { Cell::new(0) };
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the process trace epoch (monotonic).
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// Is tracing on? One relaxed atomic load — this is the whole cost of a
/// disabled [`Span::begin`].
pub fn enabled() -> bool {
    // ordering: on/off latch checked per span; events themselves ride
    // on mutex-guarded rings, so no data is published through this.
    ENABLED.load(Ordering::Relaxed)
}

/// Turns tracing on or off, process-wide. Enabling pins the monotonic
/// epoch so all later timestamps are comparable.
pub fn set_enabled(on: bool) {
    if on {
        let _ = epoch();
    }
    // ordering: same advisory latch as in `enabled`.
    ENABLED.store(on, Ordering::Relaxed);
}

/// Spans lost to ring overflow since process start.
pub fn dropped() -> u64 {
    // ordering: monotone telemetry counter.
    DROPPED.load(Ordering::Relaxed)
}

fn lock<'a, T>(mutex: &'a Mutex<T>) -> MutexGuard<'a, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Span categories — one per subsystem the trace timeline renders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// A whole II-ladder search (mapper run).
    Ladder,
    /// One rung: a single-II solve attempt, with `SolverStats` deltas.
    Rung,
    /// A race task: one (II, portfolio-variant) attempt on a sibling.
    Race,
    /// Clause-arena garbage collection observed during a rung.
    Gc,
    /// Portfolio clause-sharing traffic observed during a rung.
    Share,
    /// Cache probes and persistent-store appends in the batch engine.
    Persist,
    /// One daemon request, queue wait included.
    Request,
}

impl Category {
    /// The `cat` string used in the exported trace.
    pub fn as_str(self) -> &'static str {
        match self {
            Category::Ladder => "ladder",
            Category::Rung => "rung",
            Category::Race => "race",
            Category::Gc => "gc",
            Category::Share => "share",
            Category::Persist => "persist",
            Category::Request => "request",
        }
    }
}

/// A span argument value.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// An integer argument (counters, deltas, ids).
    Int(i64),
    /// A string argument (outcomes, names).
    Str(String),
}

/// One completed span, as collected by [`drain`].
#[derive(Debug, Clone)]
pub struct Event {
    /// Display name (e.g. `rung ii=3`).
    pub name: String,
    /// Subsystem category.
    pub cat: Category,
    /// Timeline track (exported as `tid`).
    pub track: u64,
    /// Start, microseconds since the trace epoch.
    pub ts_us: u64,
    /// Duration in microseconds (0 for instant events).
    pub dur_us: u64,
    /// Key/value arguments.
    pub args: Vec<(&'static str, ArgValue)>,
}

struct Ring {
    events: VecDeque<Event>,
}

impl Ring {
    fn push(&mut self, event: Event) {
        if self.events.len() >= RING_CAPACITY {
            self.events.pop_front();
            // ordering: monotone telemetry counter.
            DROPPED.fetch_add(1, Ordering::Relaxed);
        }
        self.events.push_back(event);
    }
}

fn record(event: Event) {
    LOCAL_RING.with(|slot| {
        let mut slot = slot.borrow_mut();
        let ring = slot.get_or_insert_with(|| {
            let ring = Arc::new(Mutex::new(Ring {
                events: VecDeque::new(),
            }));
            lock(&REGISTRY).push(Arc::clone(&ring));
            ring
        });
        lock(ring).push(event);
    });
}

/// The current thread's track id, assigning a fresh unique one on first
/// use.
pub fn current_track() -> u64 {
    LOCAL_TRACK.with(|track| {
        let id = track.get();
        if id != 0 {
            id
        } else {
            // ordering: unique-id ticket; only atomicity matters.
            let id = NEXT_TRACK.fetch_add(1, Ordering::Relaxed);
            track.set(id);
            id
        }
    })
}

/// Reserves `n` consecutive track ids and returns the first — the race
/// engine maps portfolio sibling `k` to `base + k` so each sibling gets
/// a stable timeline row.
pub fn allocate_tracks(n: u64) -> u64 {
    // ordering: unique-id ticket; only atomicity matters.
    NEXT_TRACK.fetch_add(n.max(1), Ordering::Relaxed)
}

/// Restores the previous track when dropped (see [`push_track`]).
pub struct TrackGuard {
    prev: u64,
}

/// Overrides the current thread's track until the guard drops. Spans
/// begun inside the scope are exported on `track`.
pub fn push_track(track: u64) -> TrackGuard {
    let prev = LOCAL_TRACK.with(|t| t.replace(track));
    TrackGuard { prev }
}

impl Drop for TrackGuard {
    fn drop(&mut self) {
        LOCAL_TRACK.with(|t| t.set(self.prev));
    }
}

/// Labels `track` in the exported trace (`thread_name` metadata).
/// Last writer wins; a no-op while tracing is disabled.
pub fn name_track(track: u64, name: &str) {
    if !enabled() {
        return;
    }
    let mut names = lock(&TRACK_NAMES);
    if let Some(entry) = names.iter_mut().find(|(id, _)| *id == track) {
        entry.1 = name.to_string();
    } else {
        names.push((track, name.to_string()));
    }
}

struct SpanInner {
    name: String,
    cat: Category,
    start_us: u64,
    args: Vec<(&'static str, ArgValue)>,
}

/// An in-flight span: begun now, recorded into the thread's ring when
/// dropped. Inert (no allocation, nothing recorded) when tracing was
/// disabled at [`Span::begin`].
pub struct Span(Option<SpanInner>);

impl Span {
    /// Starts a span; a single atomic load and an inert guard when
    /// tracing is off.
    pub fn begin(cat: Category, name: &str) -> Span {
        if !enabled() {
            return Span(None);
        }
        Span(Some(SpanInner {
            name: name.to_string(),
            cat,
            start_us: now_us(),
            args: Vec::new(),
        }))
    }

    /// Whether this span will record anything — lets callers skip
    /// argument computation entirely when tracing is off.
    pub fn active(&self) -> bool {
        self.0.is_some()
    }

    /// Attaches an integer argument.
    pub fn arg(&mut self, key: &'static str, value: i64) {
        if let Some(inner) = &mut self.0 {
            inner.args.push((key, ArgValue::Int(value)));
        }
    }

    /// Attaches a string argument.
    pub fn arg_str(&mut self, key: &'static str, value: &str) {
        if let Some(inner) = &mut self.0 {
            inner.args.push((key, ArgValue::Str(value.to_string())));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.0.take() {
            let end = now_us();
            record(Event {
                name: inner.name,
                cat: inner.cat,
                track: current_track(),
                ts_us: inner.start_us,
                dur_us: end.saturating_sub(inner.start_us),
                args: inner.args,
            });
        }
    }
}

/// Records an already-measured interval retroactively, on the current
/// track: `ts_us`/`dur_us` come from the caller's own clock (use
/// [`now_us`] so timestamps share the trace epoch). For code that
/// already times its work — e.g. a ladder rung whose elapsed time is
/// part of its attempt record — this avoids double bookkeeping. A no-op
/// while tracing is disabled; guard argument construction with
/// [`enabled`].
pub fn complete(
    cat: Category,
    name: &str,
    ts_us: u64,
    dur_us: u64,
    args: Vec<(&'static str, ArgValue)>,
) {
    if !enabled() {
        return;
    }
    record(Event {
        name: name.to_string(),
        cat,
        track: current_track(),
        ts_us,
        dur_us,
        args,
    });
}

/// Collects and clears every thread's ring (exited threads included),
/// returning the spans sorted by start time. Rings whose thread has
/// exited are unregistered once emptied.
pub fn drain() -> Vec<Event> {
    let mut out = Vec::new();
    let mut registry = lock(&REGISTRY);
    registry.retain(|ring| {
        out.extend(lock(ring).events.drain(..));
        // One strong reference means only the registry holds it: the
        // owning thread is gone and the ring is now empty.
        Arc::strong_count(ring) > 1
    });
    drop(registry);
    out.sort_by_key(|e| (e.ts_us, e.track));
    out
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Renders spans as Chrome `trace_event` JSON (the object form, with a
/// `traceEvents` array of complete `"ph":"X"` events plus
/// `thread_name` metadata per track) — loadable as-is in Perfetto or
/// `chrome://tracing`, and strict enough to round-trip through
/// `satmapit_service::json`.
pub fn export_chrome(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 256);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let emit = |out: &mut String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
    };

    emit(&mut out, &mut first);
    out.push_str(
        "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"satmapit\"}}",
    );

    let mut tracks: Vec<u64> = events.iter().map(|e| e.track).collect();
    tracks.sort_unstable();
    tracks.dedup();
    let names = lock(&TRACK_NAMES).clone();
    for track in tracks {
        let label = names
            .iter()
            .find(|(id, _)| *id == track)
            .map(|(_, name)| name.clone())
            .unwrap_or_else(|| format!("track {track}"));
        emit(&mut out, &mut first);
        out.push_str(&format!(
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{track},\"name\":\"thread_name\",\"args\":{{\"name\":\""
        ));
        escape_json(&label, &mut out);
        out.push_str("\"}}");
    }

    for event in events {
        emit(&mut out, &mut first);
        out.push_str(&format!(
            "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"cat\":\"{}\",\"name\":\"",
            event.track,
            event.ts_us,
            event.dur_us,
            event.cat.as_str()
        ));
        escape_json(&event.name, &mut out);
        out.push_str("\",\"args\":{");
        for (i, (key, value)) in event.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_json(key, &mut out);
            out.push_str("\":");
            match value {
                ArgValue::Int(v) => out.push_str(&v.to_string()),
                ArgValue::Str(v) => {
                    out.push('"');
                    escape_json(v, &mut out);
                    out.push('"');
                }
            }
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tracing state is process-global; tests that toggle it serialize
    // here so `cargo test`'s parallel runner cannot interleave them.
    fn serial() -> MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        lock(&GATE)
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _gate = serial();
        set_enabled(false);
        drain();
        {
            let mut span = Span::begin(Category::Rung, "rung ii=2");
            assert!(!span.active());
            span.arg("conflicts", 42);
        }
        assert!(drain().is_empty());
    }

    #[test]
    fn spans_survive_thread_exit_and_export() {
        let _gate = serial();
        set_enabled(true);
        drain();
        std::thread::spawn(|| {
            let _track = push_track(allocate_tracks(1));
            let mut span = Span::begin(Category::Race, "attempt ii=3 v=1");
            span.arg("ii", 3);
            span.arg_str("outcome", "mapped \"quoted\"");
        })
        .join()
        .unwrap();
        let events = drain();
        set_enabled(false);
        let ours: Vec<_> = events
            .iter()
            .filter(|e| e.name == "attempt ii=3 v=1")
            .collect();
        assert_eq!(ours.len(), 1);
        assert_eq!(ours[0].cat, Category::Race);
        let json = export_chrome(&events);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\\\"quoted\\\""));
    }

    #[test]
    fn ring_keeps_the_newest_spans() {
        let _gate = serial();
        set_enabled(true);
        drain();
        let before = dropped();
        std::thread::spawn(|| {
            for i in 0..RING_CAPACITY + 10 {
                let _span = Span::begin(Category::Persist, &format!("s{i}"));
            }
        })
        .join()
        .unwrap();
        let events = drain();
        set_enabled(false);
        let ours: Vec<_> = events.iter().filter(|e| e.name.starts_with('s')).collect();
        assert!(ours.len() <= RING_CAPACITY);
        assert!(dropped() >= before + 10);
        // The oldest were dropped, the newest survived.
        assert!(ours
            .iter()
            .any(|e| e.name == format!("s{}", RING_CAPACITY + 9)));
    }
}
