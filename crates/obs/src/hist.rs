//! Log-bucketed latency histograms (HDR-style).
//!
//! Values (microseconds, but any `u64` works) are binned into
//! power-of-two octaves, each split into `2^SUB_BITS = 16` linear
//! sub-buckets. That gives constant memory (976 buckets cover all of
//! `u64`), O(1) recording, exact counts, and quantile queries whose
//! answer is the recorded bucket's **upper bound** — at most one
//! sub-bucket width (≤ 1/16 ≈ 6.25% relative) above the true value, and
//! never below it. Histograms merge bucket-wise, so per-thread or
//! per-outcome histograms aggregate losslessly, and every accumulator
//! saturates instead of wrapping.

/// Linear sub-buckets per power-of-two octave, as a bit count.
const SUB_BITS: u32 = 4;
/// Sub-buckets per octave.
const SUB: u64 = 1 << SUB_BITS;
/// Total buckets needed to cover the full `u64` range: values below
/// `SUB` index themselves, then `64 - SUB_BITS` octaves of `SUB`
/// sub-buckets each.
const BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) << SUB_BITS;

/// Bucket index of `value`. Monotonic in `value`.
fn bucket_index(value: u64) -> usize {
    if value < SUB {
        value as usize
    } else {
        let msb = 63 - value.leading_zeros();
        let octave = (msb - SUB_BITS + 1) as usize;
        let sub = ((value >> (msb - SUB_BITS)) & (SUB - 1)) as usize;
        (octave << SUB_BITS) | sub
    }
}

/// Smallest value mapping to bucket `index` (inverse of
/// [`bucket_index`]).
fn bucket_low(index: usize) -> u64 {
    if index < SUB as usize {
        index as u64
    } else {
        let octave = (index >> SUB_BITS) as u32;
        let sub = (index as u64) & (SUB - 1);
        let msb = octave + SUB_BITS - 1;
        (1u64 << msb) + (sub << (msb - SUB_BITS))
    }
}

/// Largest value mapping to bucket `index`.
fn bucket_high(index: usize) -> u64 {
    if index + 1 < BUCKETS {
        bucket_low(index + 1) - 1
    } else {
        u64::MAX
    }
}

/// A mergeable, saturating, log-bucketed histogram of `u64` values.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// A point-in-time summary of a [`Histogram`]: totals plus the three
/// quantiles the service reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Snapshot {
    /// Recorded values.
    pub count: u64,
    /// Saturating sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Median, see [`Histogram::percentile`].
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one occurrence of `value`.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` occurrences of `value`. All accumulators saturate.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let bucket = &mut self.counts[bucket_index(value)];
        *bucket = bucket.saturating_add(n);
        self.count = self.count.saturating_add(n);
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds `other` into `self` bucket-wise (saturating).
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine = mine.saturating_add(*theirs);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value; `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value; `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of recorded values (0 when empty; exact only while `sum`
    /// has not saturated).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The value at quantile `q` (`0.0..=1.0`): the upper bound of the
    /// first bucket whose cumulative count reaches `ceil(q · count)`,
    /// clamped into `[min, max]`. Never below the true quantile, and at
    /// most one sub-bucket width (≤ 1/16 relative) above it. Returns 0
    /// when the histogram is empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &n) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(n);
            if seen >= rank {
                return bucket_high(index).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Totals plus p50/p90/p99 in one call.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            count: self.count,
            sum: self.sum,
            min: self.min().unwrap_or(0),
            max: self.max().unwrap_or(0),
            p50: self.percentile(0.50),
            p90: self.percentile(0.90),
            p99: self.percentile(0.99),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotonic_and_inverts() {
        let mut probes = Vec::new();
        for shift in 0..64u32 {
            for delta in [0u64, 1, 3] {
                probes.push((1u64 << shift).saturating_add(delta << shift.saturating_sub(5)));
            }
        }
        probes.sort_unstable();
        let mut last = 0usize;
        for v in probes {
            let i = bucket_index(v);
            assert!(i >= last, "index regressed at {v}");
            assert!(
                bucket_low(i) <= v && v <= bucket_high(i),
                "{v} not in bucket {i}"
            );
            last = i;
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn exact_below_sixteen() {
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_low(v as usize), v);
            assert_eq!(bucket_high(v as usize), v);
        }
    }

    /// Deterministic pseudo-random `u64`s spread across magnitudes
    /// (shifting by the state's low bits walks the whole octave range).
    fn pseudo_values(n: usize) -> Vec<u64> {
        let mut state = 0x243F_6A88_85A3_08D3u64;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                state >> (state % 50)
            })
            .collect()
    }

    #[test]
    fn percentiles_match_a_sorted_reference() {
        let mut values = pseudo_values(10_000);
        let mut hist = Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        values.sort_unstable();
        for q in [0.001, 0.01, 0.25, 0.50, 0.90, 0.99, 0.999, 1.0] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let exact = values[rank - 1];
            let got = hist.percentile(q);
            // Never below the true quantile, and at most one sub-bucket
            // width (one sixteenth) above it.
            assert!(got >= exact, "p{q}: {got} < exact {exact}");
            assert!(
                got <= exact.saturating_add(exact / SUB).saturating_add(1),
                "p{q}: {got} too far above exact {exact}"
            );
        }
        assert_eq!(hist.min(), values.first().copied());
        assert_eq!(hist.max(), values.last().copied());
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let values = pseudo_values(4_096);
        let (left, right) = values.split_at(1_234);
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for &v in left {
            a.record(v);
            whole.record(v);
        }
        for &v in right {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.snapshot(), whole.snapshot());
    }

    #[test]
    fn saturation_does_not_wrap() {
        let mut hist = Histogram::new();
        hist.record_n(u64::MAX, u64::MAX);
        hist.record_n(u64::MAX, u64::MAX);
        assert_eq!(hist.count(), u64::MAX);
        assert_eq!(hist.sum(), u64::MAX);
        assert_eq!(hist.percentile(1.0), u64::MAX);
        let mut other = Histogram::new();
        other.record_n(1, u64::MAX);
        hist.merge(&other);
        assert_eq!(hist.count(), u64::MAX);
        assert_eq!(hist.min(), Some(1));
        assert_eq!(hist.max(), Some(u64::MAX));
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let hist = Histogram::new();
        let snap = hist.snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.p50, 0);
        assert_eq!(hist.min(), None);
        assert_eq!(hist.max(), None);
        assert_eq!(hist.mean(), 0);
    }
}
