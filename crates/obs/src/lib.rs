//! # satmapit-obs
//!
//! Hand-rolled, fully offline observability for the SAT-MapIt stack —
//! no crates.io dependencies, `std` only. Three facilities, each usable
//! on its own (see `docs/observability.md` for the full reference):
//!
//! * [`trace`] — a flight-recorder span tracer. Threads record
//!   completed spans into **thread-local bounded ring buffers** (the
//!   newest events win; nothing blocks, no solver hot-path lock is ever
//!   held), timestamped against one process-wide monotonic epoch.
//!   [`trace::drain`] collects every thread's ring and
//!   [`trace::export_chrome`] renders the result in Chrome
//!   `trace_event` JSON, so a portfolio II-race opens as a real
//!   timeline in Perfetto / `chrome://tracing`. Tracing is **off by
//!   default and zero-cost while off**: recording is a single relaxed
//!   atomic load, no ring is allocated, and nothing about enabling it
//!   may enter a result fingerprint.
//!
//! * [`hist`] — HDR-style log-bucketed latency histograms
//!   (power-of-two octaves split into linear sub-buckets): constant
//!   memory for the full `u64` microsecond range, mergeable,
//!   saturating, with cheap p50/p90/p99 quantile queries bounded to
//!   ~6% relative error.
//!
//! * [`mod@log`] — a leveled structured logger ([`log!`], [`error!`],
//!   [`warn!`], [`info!`], [`debug!`]) with per-target filtering via
//!   the `SATMAPIT_LOG` environment variable. Every record is written
//!   as one `write_all` call on a locked stderr, so warnings from
//!   concurrent worker threads never interleave mid-line.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod log;
pub mod trace;

pub use hist::{Histogram, Snapshot};
pub use log::Level;
pub use trace::{Category, Event, Span};
