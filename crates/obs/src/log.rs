//! Leveled, filtered, non-interleaving structured logging.
//!
//! Records go through the [`log!`](crate::log!) family of macros with
//! an explicit **target** (a module-ish path such as
//! `satmapit::service`). The `SATMAPIT_LOG` environment variable
//! filters by level and target:
//!
//! ```text
//! SATMAPIT_LOG=info                         # default level for everything
//! SATMAPIT_LOG=warn,satmapit::engine=debug  # per-target overrides (longest prefix wins)
//! SATMAPIT_LOG=off                          # silence everything
//! ```
//!
//! Unset, the filter defaults to `warn` — warnings stay visible, as
//! the old ad-hoc `eprintln!` sites were. Each record is rendered to
//! one line — `[<seconds> <LEVEL> <target>] message` — and written
//! with a **single `write_all` on a locked stderr**, so concurrent
//! worker threads can never interleave mid-line.

use std::io::Write;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, PoisonError};

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The operation failed and was not retried.
    Error = 1,
    /// Something degraded but was recovered or worked around.
    Warn = 2,
    /// Coarse lifecycle events.
    Info = 3,
    /// Per-request / per-solve detail.
    Debug = 4,
    /// Everything, including hot-loop detail.
    Trace = 5,
}

impl Level {
    /// Fixed-width display name.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }

    /// Parses a filter token (case-insensitive; `off` parses as
    /// "no level", returned as 0).
    fn parse_token(token: &str) -> Option<u8> {
        match token.to_ascii_lowercase().as_str() {
            "off" | "none" => Some(0),
            "error" => Some(Level::Error as u8),
            "warn" | "warning" => Some(Level::Warn as u8),
            "info" => Some(Level::Info as u8),
            "debug" => Some(Level::Debug as u8),
            "trace" => Some(Level::Trace as u8),
            _ => None,
        }
    }
}

#[derive(Debug, Clone)]
struct Filter {
    /// Level for targets with no specific rule (0 = off).
    default: u8,
    /// `(target prefix, level)` rules; the longest matching prefix wins.
    targets: Vec<(String, u8)>,
}

impl Filter {
    fn parse(spec: &str) -> Filter {
        let mut filter = Filter {
            default: Level::Warn as u8,
            targets: Vec::new(),
        };
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match part.split_once('=') {
                None => {
                    if let Some(level) = Level::parse_token(part) {
                        filter.default = level;
                    } else {
                        // A bare target enables everything under it.
                        filter.targets.push((part.to_string(), Level::Trace as u8));
                    }
                }
                Some((target, level)) => {
                    if let Some(level) = Level::parse_token(level) {
                        filter.targets.push((target.trim().to_string(), level));
                    }
                }
            }
        }
        filter
    }

    fn level_for(&self, target: &str) -> u8 {
        self.targets
            .iter()
            .filter(|(prefix, _)| target.starts_with(prefix.as_str()))
            .max_by_key(|(prefix, _)| prefix.len())
            .map(|(_, level)| *level)
            .unwrap_or(self.default)
    }

    fn max_level(&self) -> u8 {
        self.targets
            .iter()
            .map(|(_, level)| *level)
            .fold(self.default, u8::max)
    }
}

static FILTER: Mutex<Option<Filter>> = Mutex::new(None);
/// Cheap global reject: the maximum level any target lets through.
/// `u8::MAX` means "filter not initialised yet".
static MAX_LEVEL: AtomicU8 = AtomicU8::new(u8::MAX);

fn with_filter<R>(f: impl FnOnce(&Filter) -> R) -> R {
    let mut slot = FILTER.lock().unwrap_or_else(PoisonError::into_inner);
    let filter = slot.get_or_insert_with(|| {
        let filter = std::env::var("SATMAPIT_LOG")
            .map(|spec| Filter::parse(&spec))
            .unwrap_or_else(|_| Filter::parse(""));
        // ordering: advisory fast-path ceiling; the authoritative
        // filter lives behind the mutex, a stale read only costs one
        // redundant filter check.
        MAX_LEVEL.store(filter.max_level(), Ordering::Relaxed);
        filter
    });
    f(filter)
}

/// Replaces the active filter (same syntax as `SATMAPIT_LOG`),
/// overriding the environment. For CLI verbosity flags and tests.
pub fn set_filter(spec: &str) {
    let filter = Filter::parse(spec);
    // ordering: advisory fast-path ceiling (see with_filter).
    MAX_LEVEL.store(filter.max_level(), Ordering::Relaxed);
    *FILTER.lock().unwrap_or_else(PoisonError::into_inner) = Some(filter);
}

/// Would a record at `level` for `target` be emitted?
pub fn enabled(level: Level, target: &str) -> bool {
    // ordering: advisory fast-path ceiling; a racing set_filter at
    // worst emits or drops one in-flight record, never corrupts state.
    let max = MAX_LEVEL.load(Ordering::Relaxed);
    if max != u8::MAX && level as u8 > max {
        return false;
    }
    with_filter(|filter| level as u8 <= filter.level_for(target))
}

/// Formats and writes one record; the [`log!`](crate::log!) macros call
/// this. One `write_all` on a locked stderr — never interleaves.
pub fn log(level: Level, target: &str, args: std::fmt::Arguments<'_>) {
    if !enabled(level, target) {
        return;
    }
    let seconds = crate::trace::now_us() as f64 / 1e6;
    let line = format!("[{seconds:11.6} {:5} {target}] {args}\n", level.as_str());
    let stderr = std::io::stderr();
    let mut handle = stderr.lock();
    let _ = handle.write_all(line.as_bytes());
}

/// Logs at an explicit level: `log!(Level::Warn, "satmapit::x", "...", …)`.
#[macro_export]
macro_rules! log {
    ($level:expr, $target:expr, $($arg:tt)*) => {
        $crate::log::log($level, $target, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Error`](crate::Level::Error): `error!(target, fmt, …)`.
#[macro_export]
macro_rules! error {
    ($target:expr, $($arg:tt)*) => {
        $crate::log!($crate::log::Level::Error, $target, $($arg)*)
    };
}

/// Logs at [`Level::Warn`](crate::Level::Warn): `warn!(target, fmt, …)`.
#[macro_export]
macro_rules! warn {
    ($target:expr, $($arg:tt)*) => {
        $crate::log!($crate::log::Level::Warn, $target, $($arg)*)
    };
}

/// Logs at [`Level::Info`](crate::Level::Info): `info!(target, fmt, …)`.
#[macro_export]
macro_rules! info {
    ($target:expr, $($arg:tt)*) => {
        $crate::log!($crate::log::Level::Info, $target, $($arg)*)
    };
}

/// Logs at [`Level::Debug`](crate::Level::Debug): `debug!(target, fmt, …)`.
#[macro_export]
macro_rules! debug {
    ($target:expr, $($arg:tt)*) => {
        $crate::log!($crate::log::Level::Debug, $target, $($arg)*)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_syntax_and_longest_prefix() {
        let filter = Filter::parse("warn,satmapit::engine=debug,satmapit::engine::persist=off");
        assert_eq!(filter.level_for("satmapit::service"), Level::Warn as u8);
        assert_eq!(
            filter.level_for("satmapit::engine::race"),
            Level::Debug as u8
        );
        assert_eq!(filter.level_for("satmapit::engine::persist"), 0);
        assert_eq!(filter.max_level(), Level::Debug as u8);

        let silent = Filter::parse("off");
        assert_eq!(silent.level_for("anything"), 0);

        let bare_target = Filter::parse("satmapit::core");
        assert_eq!(
            bare_target.level_for("satmapit::core::ladder"),
            Level::Trace as u8
        );
        assert_eq!(bare_target.level_for("other"), Level::Warn as u8);
    }

    #[test]
    fn default_is_warn() {
        let filter = Filter::parse("");
        assert_eq!(filter.level_for("satmapit::service"), Level::Warn as u8);
    }
}
