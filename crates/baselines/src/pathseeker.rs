//! PathSeeker-like baseline (Balasubramanian & Shrivastava, DATE 2022):
//! randomized iterative modulo scheduling (CRIMSON-style restarts) with
//! failure analysis and local schedule adjustment between placement
//! attempts. The paper runs it 10× per benchmark owing to its randomized
//! nature; `attempts_per_ii` plays that role here.

use crate::common::{BaselineConfig, BaselineFailure, BaselineMapped, BaselineOutcome};
use crate::ims::{modulo_schedule, schedule_is_legal, Priority, Rng};
use crate::place::{place, schedule_to_mapping, PlaceConfig};
use satmapit_cgra::Cgra;
use satmapit_core::validate_mapping;
use satmapit_dfg::{Dfg, NodeId};
use satmapit_regalloc::allocate;
use satmapit_schedule::mii;
use std::time::Instant;

/// Number of local schedule adjustments tried after each failed placement.
const ADJUST_ROUNDS: u32 = 4;

/// The PathSeeker-like mapper.
///
/// ```
/// use satmapit_baselines::PathSeekerMapper;
/// use satmapit_cgra::Cgra;
/// use satmapit_dfg::{Dfg, Op};
///
/// let mut dfg = Dfg::new("pair");
/// let a = dfg.add_const(1);
/// let b = dfg.add_node(Op::Neg);
/// dfg.add_edge(a, b, 0);
/// let cgra = Cgra::square(2);
/// let outcome = PathSeekerMapper::new(&dfg, &cgra).run();
/// assert_eq!(outcome.ii(), Some(1));
/// ```
#[derive(Debug)]
pub struct PathSeekerMapper<'a> {
    dfg: &'a Dfg,
    cgra: &'a Cgra,
    config: BaselineConfig,
}

impl<'a> PathSeekerMapper<'a> {
    /// Creates a mapper with default configuration.
    pub fn new(dfg: &'a Dfg, cgra: &'a Cgra) -> PathSeekerMapper<'a> {
        PathSeekerMapper {
            dfg,
            cgra,
            config: BaselineConfig::default(),
        }
    }

    /// Replaces the configuration.
    pub fn with_config(mut self, config: BaselineConfig) -> PathSeekerMapper<'a> {
        self.config = config;
        self
    }

    /// Runs the randomized iterative search.
    pub fn run(&self) -> BaselineOutcome {
        let t0 = Instant::now();
        let deadline = self.config.timeout.map(|d| t0 + d);
        let mut schedules_tried = 0u32;

        if let Err(e) = self.dfg.validate() {
            return BaselineOutcome {
                result: Err(BaselineFailure::InvalidDfg(e)),
                elapsed: t0.elapsed(),
                schedules_tried,
            };
        }
        // An unmappable signal (no memory-capable PE) skips the loop
        // entirely and falls through to the II-cap failure.
        let start = mii(self.dfg, self.cgra).unwrap_or(self.config.max_ii.saturating_add(1));

        for ii in start..=self.config.max_ii {
            for run in 0..self.config.attempts_per_ii {
                if let Some(dl) = deadline {
                    if Instant::now() >= dl {
                        return BaselineOutcome {
                            result: Err(BaselineFailure::Timeout { at_ii: ii }),
                            elapsed: t0.elapsed(),
                            schedules_tried,
                        };
                    }
                }
                let run_seed = self
                    .config
                    .seed
                    .wrapping_add(u64::from(ii) << 32)
                    .wrapping_add(u64::from(run));
                schedules_tried += 1;
                let Some(mut times) = modulo_schedule(
                    self.dfg,
                    self.cgra,
                    ii,
                    Priority::Random(run_seed),
                    self.config.ims_budget_factor,
                ) else {
                    continue;
                };
                let mut rng = Rng::new(run_seed ^ 0x5EED);
                for adjust in 0..=ADJUST_ROUNDS {
                    let place_config = PlaceConfig {
                        // PathSeeker's placement is a fast local search,
                        // not an exhaustive one: keep the budget small and
                        // rely on restarts/adjustments.
                        budget: self.config.place_budget / 8,
                        shuffle_seed: Some(run_seed.wrapping_add(u64::from(adjust))),
                    };
                    if let Some(pes) = place(self.dfg, self.cgra, &times, ii, &place_config) {
                        let mapping = schedule_to_mapping(self.dfg, &times, &pes, ii);
                        if validate_mapping(self.dfg, self.cgra, &mapping).is_err() {
                            continue;
                        }
                        let live = satmapit_core::live_values(self.dfg, self.cgra, &mapping);
                        if let Ok(registers) = allocate(
                            &live,
                            ii,
                            self.cgra.regs_per_pe(),
                            self.config.regalloc_budget,
                        ) {
                            return BaselineOutcome {
                                result: Ok(BaselineMapped {
                                    dfg: self.dfg.clone(),
                                    mapping,
                                    registers,
                                    routes: 0,
                                }),
                                elapsed: t0.elapsed(),
                                schedules_tried,
                            };
                        }
                    }
                    // Placement failed: local adjustment — nudge a random
                    // node within its legal window and retry.
                    if adjust < ADJUST_ROUNDS {
                        if let Some(adjusted) = self.adjust(&times, ii, &mut rng) {
                            times = adjusted;
                        } else {
                            break;
                        }
                    }
                }
            }
        }
        BaselineOutcome {
            result: Err(BaselineFailure::IiCapReached {
                cap: self.config.max_ii,
            }),
            elapsed: t0.elapsed(),
            schedules_tried,
        }
    }

    /// PathSeeker's "local adjustment": move one node a few cycles while
    /// keeping the schedule legal (dependences and resource counts).
    fn adjust(&self, times: &[u32], ii: u32, rng: &mut Rng) -> Option<Vec<u32>> {
        let n = self.dfg.num_nodes();
        for _ in 0..2 * n {
            let v = rng.below(n);
            let delta: i64 = match rng.below(4) {
                0 => -2,
                1 => -1,
                2 => 1,
                _ => 2,
            };
            let old = i64::from(times[v]);
            let candidate = old + delta;
            if candidate < 0 {
                continue;
            }
            let mut adjusted = times.to_vec();
            adjusted[v] = candidate as u32;
            if schedule_is_legal(self.dfg, self.cgra, &adjusted, ii) {
                return Some(adjusted);
            }
            let _ = NodeId(v as u32);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use satmapit_dfg::Op;

    #[test]
    fn maps_accumulator_loop() {
        let mut dfg = Dfg::new("acc");
        let c = dfg.add_const(1);
        let acc = dfg.add_node(Op::Add);
        dfg.add_edge(c, acc, 0);
        dfg.add_back_edge(acc, acc, 1, 1, 0);
        let cgra = Cgra::square(2);
        let outcome = PathSeekerMapper::new(&dfg, &cgra).run();
        let mapped = outcome.result.expect("mappable");
        assert!(validate_mapping(&mapped.dfg, &cgra, &mapped.mapping).is_ok());
        assert_eq!(mapped.routes, 0, "PathSeeker never inserts routes");
    }

    #[test]
    fn respects_rec_mii() {
        let mut dfg = Dfg::new("rec3");
        let a = dfg.add_node(Op::Neg);
        let b = dfg.add_node(Op::Neg);
        let c = dfg.add_node(Op::Neg);
        dfg.add_edge(a, b, 0);
        dfg.add_edge(b, c, 0);
        dfg.add_back_edge(c, a, 0, 1, 0);
        let cgra = Cgra::square(3);
        let outcome = PathSeekerMapper::new(&dfg, &cgra).run();
        assert!(outcome.ii().unwrap() >= 3);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut dfg = Dfg::new("mix");
        let a = dfg.add_const(1);
        let b = dfg.add_node(Op::Neg);
        let c = dfg.add_node(Op::Add);
        dfg.add_edge(a, b, 0);
        dfg.add_edge(a, c, 0);
        dfg.add_edge(b, c, 1);
        let cgra = Cgra::square(2);
        let r1 = PathSeekerMapper::new(&dfg, &cgra).run();
        let r2 = PathSeekerMapper::new(&dfg, &cgra).run();
        assert_eq!(r1.ii(), r2.ii());
        assert_eq!(r1.schedules_tried, r2.schedules_tried);
    }

    #[test]
    fn different_seeds_may_differ_but_stay_valid() {
        let mut dfg = Dfg::new("w");
        let a = dfg.add_const(1);
        for _ in 0..5 {
            let n = dfg.add_node(Op::Neg);
            dfg.add_edge(a, n, 0);
        }
        let cgra = Cgra::square(2);
        for seed in [1u64, 2, 3] {
            let config = BaselineConfig {
                seed,
                ..BaselineConfig::default()
            };
            let outcome = PathSeekerMapper::new(&dfg, &cgra).with_config(config).run();
            if let Ok(m) = outcome.result {
                assert!(
                    validate_mapping(&m.dfg, &cgra, &m.mapping).is_ok(),
                    "seed {seed}"
                );
            }
        }
    }
}
