//! Placement of a modulo schedule onto the PE array.
//!
//! This is the baselines' counterpart of REGIMap/RAMP's max-clique search:
//! finding one PE per node such that mutual compatibility holds is exactly
//! finding an `n`-clique in the node×PE compatibility graph. We implement
//! it as class-based backtracking with forward checking and a step budget
//! (each DFG node is a clique "class"; candidates are its compatible PEs),
//! plus window *reservations* that model the output-register lifetime of
//! cross-PE transfers.

use crate::ims::Rng;
use satmapit_cgra::{Cgra, PeId};
use satmapit_dfg::{Dfg, NodeId};

/// Placement search configuration.
#[derive(Debug, Clone)]
pub struct PlaceConfig {
    /// Maximum number of candidate trials before giving up.
    pub budget: u64,
    /// Shuffle candidate PEs (randomized baselines).
    pub shuffle_seed: Option<u64>,
}

impl Default for PlaceConfig {
    fn default() -> PlaceConfig {
        PlaceConfig {
            budget: 200_000,
            shuffle_seed: None,
        }
    }
}

struct Searcher<'a> {
    dfg: &'a Dfg,
    cgra: &'a Cgra,
    times: &'a [u32],
    ii: u32,
    order: Vec<usize>,
    /// occupant node per (pe, slot), `usize::MAX` = free.
    occupied: Vec<usize>,
    /// reservation count per (pe, slot) from cross-PE transfer windows.
    reserved: Vec<u32>,
    place: Vec<Option<PeId>>,
    budget: u64,
    rng: Option<Rng>,
}

const FREE: usize = usize::MAX;

impl<'a> Searcher<'a> {
    fn idx(&self, pe: PeId, slot: u32) -> usize {
        pe.index() * self.ii as usize + slot as usize
    }

    fn slot_of(&self, v: usize) -> u32 {
        self.times[v] % self.ii
    }

    /// The window slots (on the producer's PE) of a cross-PE edge.
    fn window(&self, s: usize, d: usize, dist: u32) -> Vec<u32> {
        let ii = i64::from(self.ii);
        let ts = i64::from(self.times[s]);
        let td = i64::from(self.times[d]);
        let delta = td - ts + i64::from(dist) * ii;
        (1..delta).map(|k| ((ts + k) % ii) as u32).collect()
    }

    /// Checks `v @ pe` against everything already placed.
    fn compatible(&self, v: usize, pe: PeId) -> bool {
        let node = NodeId(v as u32);
        if !self.cgra.supports_op(pe, self.dfg.node(node).op) {
            return false;
        }
        let slot = self.slot_of(v);
        let at = self.idx(pe, slot);
        if self.occupied[at] != FREE || self.reserved[at] > 0 {
            return false;
        }
        // Edge compatibility with placed endpoints.
        for (_, e) in self.dfg.edges() {
            let (s, d) = (e.src.index(), e.dst.index());
            if s == d {
                continue;
            }
            let other = if s == v {
                d
            } else if d == v {
                s
            } else {
                continue;
            };
            let Some(q) = self.place[other] else { continue };
            let (ps, pd) = if s == v { (pe, q) } else { (q, pe) };
            if ps != pd && !self.cgra.adjacent_or_same(ps, pd) {
                return false;
            }
            if ps != pd {
                // Output-register window on the producer PE must be free of
                // occupants, and conversely v must not land in a slot that
                // the edge will reserve.
                for w in self.window(s, d, e.distance) {
                    let wi = self.idx(ps, w);
                    if self.occupied[wi] != FREE {
                        return false;
                    }
                }
            } else {
                // Same-PE transfer: schedule-level window already ensures
                // 1 <= Δ <= II; colliding slots are impossible unless
                // Δ == II (same slot), which same-PE placement forbids.
                if self.slot_of(s) == self.slot_of(d) {
                    return false;
                }
            }
        }
        true
    }

    fn apply(&mut self, v: usize, pe: PeId, delta: i32) {
        let slot = self.slot_of(v);
        let at = self.idx(pe, slot);
        if delta > 0 {
            self.occupied[at] = v;
            self.place[v] = Some(pe);
        } else {
            self.occupied[at] = FREE;
            self.place[v] = None;
        }
        // Update reservations of every edge that now has both endpoints.
        for (_, e) in self.dfg.edges() {
            let (s, d) = (e.src.index(), e.dst.index());
            if s == d || (s != v && d != v) {
                continue;
            }
            let (Some(ps), Some(pd)) = (
                if s == v { Some(pe) } else { self.place[s] },
                if d == v { Some(pe) } else { self.place[d] },
            ) else {
                continue;
            };
            if ps == pd {
                continue;
            }
            for w in self.window(s, d, e.distance) {
                let wi = self.idx(ps, w);
                if delta > 0 {
                    self.reserved[wi] += 1;
                } else {
                    self.reserved[wi] -= 1;
                }
            }
        }
    }

    fn search(&mut self, pos: usize) -> Result<bool, ()> {
        if pos == self.order.len() {
            return Ok(true);
        }
        let v = self.order[pos];
        let mut candidates: Vec<PeId> = self.cgra.pes().collect();
        if let Some(rng) = self.rng.as_mut() {
            rng.shuffle(&mut candidates);
        }
        for pe in candidates {
            if self.budget == 0 {
                return Err(());
            }
            self.budget -= 1;
            if !self.compatible(v, pe) {
                continue;
            }
            self.apply(v, pe, 1);
            match self.search(pos + 1) {
                Ok(true) => return Ok(true),
                Ok(false) => self.apply(v, pe, -1),
                Err(()) => return Err(()),
            }
        }
        Ok(false)
    }
}

/// Searches for a placement of `times` onto the array. Returns one PE per
/// node, or `None` when the search fails or exhausts its budget.
pub fn place(
    dfg: &Dfg,
    cgra: &Cgra,
    times: &[u32],
    ii: u32,
    config: &PlaceConfig,
) -> Option<Vec<PeId>> {
    let n = dfg.num_nodes();
    // Most-constrained-first: high connectivity, then early schedule time.
    let mut order: Vec<usize> = (0..n).collect();
    let degree =
        |v: usize| dfg.in_edges(NodeId(v as u32)).len() + dfg.out_edges(NodeId(v as u32)).len();
    order.sort_by_key(|&v| (std::cmp::Reverse(degree(v)), times[v]));

    let mut searcher = Searcher {
        dfg,
        cgra,
        times,
        ii,
        order,
        occupied: vec![FREE; cgra.num_pes() * ii as usize],
        reserved: vec![0; cgra.num_pes() * ii as usize],
        place: vec![None; n],
        budget: config.budget,
        rng: config.shuffle_seed.map(Rng::new),
    };
    match searcher.search(0) {
        Ok(true) => Some(
            searcher
                .place
                .into_iter()
                .map(|p| p.expect("complete placement"))
                .collect(),
        ),
        _ => None,
    }
}

/// Converts a (times, pes) schedule/placement pair into a core
/// [`Mapping`](satmapit_core::Mapping) for validation, register allocation
/// and simulation.
pub fn schedule_to_mapping(
    dfg: &Dfg,
    times: &[u32],
    pes: &[PeId],
    ii: u32,
) -> satmapit_core::Mapping {
    use satmapit_core::{Mapping, Placement, TransferKind};
    let folds = times.iter().map(|&t| t / ii + 1).max().unwrap_or(1);
    let placements = (0..dfg.num_nodes())
        .map(|v| Placement {
            pe: pes[v],
            cycle: times[v] % ii,
            fold: times[v] / ii,
        })
        .collect();
    let transfers = dfg
        .edges()
        .map(|(_, e)| {
            if pes[e.src.index()] == pes[e.dst.index()] {
                TransferKind::SamePeRegister
            } else {
                TransferKind::NeighborOutput
            }
        })
        .collect();
    Mapping {
        ii,
        folds,
        placements,
        transfers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ims::{modulo_schedule, Priority};
    use satmapit_core::validate_mapping;
    use satmapit_dfg::Op;
    use satmapit_schedule::mii;

    fn to_mapping(dfg: &Dfg, times: &[u32], pes: &[PeId], ii: u32) -> satmapit_core::Mapping {
        schedule_to_mapping(dfg, times, pes, ii)
    }

    #[test]
    fn placed_schedule_validates() {
        let mut dfg = Dfg::new("mix");
        let a = dfg.add_const(1);
        let b = dfg.add_node(Op::Neg);
        let c = dfg.add_node(Op::Neg);
        let d = dfg.add_node(Op::Add);
        dfg.add_edge(a, b, 0);
        dfg.add_edge(a, c, 0);
        dfg.add_edge(b, d, 0);
        dfg.add_edge(c, d, 1);
        let cgra = Cgra::square(2);
        let ii = mii(&dfg, &cgra).unwrap();
        let times = modulo_schedule(&dfg, &cgra, ii, Priority::Height, 30).unwrap();
        let pes = place(&dfg, &cgra, &times, ii, &PlaceConfig::default()).unwrap();
        let mapping = to_mapping(&dfg, &times, &pes, ii);
        assert!(validate_mapping(&dfg, &cgra, &mapping).is_ok());
    }

    #[test]
    fn impossible_placement_returns_none() {
        // 5 nodes all forced to slot 0 of a 2x2 (ii=1, 4 PEs): placement
        // must fail (the schedule itself is illegal, but place() should
        // still reject gracefully).
        let mut dfg = Dfg::new("par5");
        for i in 0..5 {
            let _ = dfg.add_const(i);
        }
        let cgra = Cgra::square(2);
        let times = vec![0; 5];
        assert!(place(&dfg, &cgra, &times, 1, &PlaceConfig::default()).is_none());
    }

    #[test]
    fn budget_exhaustion_fails_gracefully() {
        let mut dfg = Dfg::new("wide");
        let src = dfg.add_const(1);
        for _ in 0..6 {
            let n = dfg.add_node(Op::Neg);
            dfg.add_edge(src, n, 0);
        }
        let cgra = Cgra::square(3);
        let times: Vec<u32> = vec![0, 1, 1, 1, 1, 1, 1];
        let config = PlaceConfig {
            budget: 2,
            shuffle_seed: None,
        };
        assert!(place(&dfg, &cgra, &times, 2, &config).is_none());
    }

    #[test]
    fn shuffled_placement_still_valid() {
        let mut dfg = Dfg::new("chain");
        let mut prev = dfg.add_const(1);
        for _ in 0..5 {
            let n = dfg.add_node(Op::Neg);
            dfg.add_edge(prev, n, 0);
            prev = n;
        }
        let cgra = Cgra::square(3);
        let ii = 2;
        let times = modulo_schedule(&dfg, &cgra, ii, Priority::Height, 30).unwrap();
        for seed in 1..6 {
            let config = PlaceConfig {
                budget: 100_000,
                shuffle_seed: Some(seed),
            };
            let pes = place(&dfg, &cgra, &times, ii, &config).unwrap();
            let mapping = to_mapping(&dfg, &times, &pes, ii);
            assert!(
                validate_mapping(&dfg, &cgra, &mapping).is_ok(),
                "seed {seed}"
            );
        }
    }
}
