//! # satmapit-baselines
//!
//! Reimplementations of the state-of-the-art heuristic mappers that the
//! SAT-MapIt paper compares against (§II, §V):
//!
//! * [`RampMapper`] — RAMP-like (Dave et al., DAC 2018): iterative modulo
//!   scheduling with height/fan-out priority variants, placement as a
//!   max-clique-style backtracking search over the node×PE compatibility
//!   structure, and explicit routing-node insertion when direct placement
//!   fails (the capability SAT-MapIt lacks);
//! * [`PathSeekerMapper`] — PathSeeker-like (Balasubramanian &
//!   Shrivastava, DATE 2022): randomized iterative modulo scheduling with
//!   restart-based exploration and local schedule adjustment after
//!   placement failures.
//!
//! Both mappers target exactly the same architectural rules as the SAT
//! mapper — every returned mapping passes
//! [`satmapit_core::validate_mapping`] and register allocation — so the
//! Figure-6/Table I–IV comparisons measure mapping quality, not rule
//! differences.
//!
//! The building blocks ([`ims`] scheduling, [`place`] placement,
//! [`routing`] transformations) are public for reuse and benchmarking.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod common;
pub mod ims;
pub mod place;
pub mod routing;

mod pathseeker;
mod ramp;

pub use common::{BaselineConfig, BaselineFailure, BaselineMapped, BaselineOutcome};
pub use pathseeker::PathSeekerMapper;
pub use ramp::RampMapper;
