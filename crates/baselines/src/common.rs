//! Shared configuration and outcome types for the baseline mappers.

use satmapit_core::Mapping;
use satmapit_dfg::{Dfg, DfgError};
use satmapit_regalloc::RegAllocation;
use std::fmt;
use std::time::Duration;

/// Configuration shared by the baseline mappers.
#[derive(Debug, Clone)]
pub struct BaselineConfig {
    /// Give up once II exceeds this cap (paper: 50).
    pub max_ii: u32,
    /// Wall-clock budget (paper: 4000 s).
    pub timeout: Option<Duration>,
    /// Master seed for randomized components.
    pub seed: u64,
    /// Scheduling attempts per II (RAMP priority variants; PathSeeker
    /// restarts — the paper repeats PathSeeker 10×).
    pub attempts_per_ii: u32,
    /// Backtracking budget of one placement search.
    pub place_budget: u64,
    /// Routing nodes the RAMP-like mapper may insert per II.
    pub routing_budget: u32,
    /// IMS operation budget factor (`factor * nodes` schedule steps).
    pub ims_budget_factor: u32,
    /// Register-allocation colouring budget.
    pub regalloc_budget: u64,
}

impl Default for BaselineConfig {
    fn default() -> BaselineConfig {
        BaselineConfig {
            max_ii: 50,
            timeout: None,
            seed: 0xBA5E11E5,
            attempts_per_ii: 10,
            place_budget: 200_000,
            routing_budget: 3,
            ims_budget_factor: 30,
            regalloc_budget: 1_000_000,
        }
    }
}

/// A successful baseline mapping.
#[derive(Debug, Clone)]
pub struct BaselineMapped {
    /// The mapped DFG — possibly augmented with routing nodes, in which
    /// case it differs from the input (original node ids are preserved).
    pub dfg: Dfg,
    /// The placement/schedule.
    pub mapping: Mapping,
    /// Register assignment.
    pub registers: RegAllocation,
    /// Number of routing nodes inserted.
    pub routes: u32,
}

impl BaselineMapped {
    /// The achieved initiation interval.
    pub fn ii(&self) -> u32 {
        self.mapping.ii
    }
}

/// Terminal baseline failures (mirrors the SAT mapper's failure modes so
/// the experiment harness can chart them identically).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineFailure {
    /// The input DFG is malformed.
    InvalidDfg(DfgError),
    /// Wall-clock budget expired (a "red ✕" in the paper's Fig. 6).
    Timeout {
        /// The II being attempted.
        at_ii: u32,
    },
    /// No mapping up to the II cap (a "black ✕" in Fig. 6).
    IiCapReached {
        /// The configured cap.
        cap: u32,
    },
}

impl fmt::Display for BaselineFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineFailure::InvalidDfg(e) => write!(f, "invalid DFG: {e}"),
            BaselineFailure::Timeout { at_ii } => write!(f, "timeout at II={at_ii}"),
            BaselineFailure::IiCapReached { cap } => write!(f, "no mapping up to II={cap}"),
        }
    }
}

impl std::error::Error for BaselineFailure {}

/// Outcome of a baseline mapping run.
#[derive(Debug, Clone)]
pub struct BaselineOutcome {
    /// Success or failure.
    pub result: Result<BaselineMapped, BaselineFailure>,
    /// Total wall-clock time.
    pub elapsed: Duration,
    /// Number of schedules attempted across all IIs.
    pub schedules_tried: u32,
}

impl BaselineOutcome {
    /// The achieved II, if any.
    pub fn ii(&self) -> Option<u32> {
        self.result.as_ref().ok().map(BaselineMapped::ii)
    }
}
