//! Iterative Modulo Scheduling (Rau's IMS), the scheduling engine shared
//! by the heuristic baselines.
//!
//! Produces a time schedule `t(n)` for a candidate II such that every
//! dependency satisfies `1 <= Δ <= II` (`Δ = t_d - t_s + dist·II` — the
//! same transfer-window rule the SAT mapper encodes) and no more than
//! `|PEs|` operations (resp. memory-capable PEs for memory ops) share a
//! kernel slot. Placement onto concrete PEs happens afterwards.

use satmapit_cgra::Cgra;
use satmapit_dfg::{Dfg, NodeId};

/// Scheduling priority variants, mirroring the baselines' published
/// heuristics (RAMP uses height-based priorities; PathSeeker/CRIMSON
/// randomize).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    /// Longest path to a sink, ties by node index.
    Height,
    /// Height, ties by fan-out (more consumers first).
    HeightFanout,
    /// Random priorities from the given seed.
    Random(u64),
}

/// A simple xorshift for deterministic randomized scheduling.
#[derive(Debug, Clone)]
pub(crate) struct Rng(u64);

impl Rng {
    pub fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }

    pub fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    pub fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }

    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }
}

/// Computes node heights (longest forward path to a sink).
pub fn heights(dfg: &Dfg) -> Vec<u32> {
    let order = dfg.forward_topo_order().expect("caller validates the DFG");
    let mut h = vec![0u32; dfg.num_nodes()];
    for &v in order.iter().rev() {
        for eid in dfg.out_edges(v) {
            let e = dfg.edge(eid);
            if e.distance == 0 {
                h[v.index()] = h[v.index()].max(h[e.dst.index()] + 1);
            }
        }
    }
    h
}

/// Runs IMS at the given II. Returns per-node times on success.
///
/// `budget_factor` bounds the total number of (re)scheduling operations at
/// `budget_factor * num_nodes`; heuristic failure returns `None`.
#[allow(clippy::while_let_loop)] // the loop has two exits with distinct results
pub fn modulo_schedule(
    dfg: &Dfg,
    cgra: &Cgra,
    ii: u32,
    priority: Priority,
    budget_factor: u32,
) -> Option<Vec<u32>> {
    let n = dfg.num_nodes();
    let cap = cgra.num_pes();
    let mem_cap = cgra.num_memory_pes();
    let h = heights(dfg);
    let mut rng = match priority {
        Priority::Random(seed) => Rng::new(seed),
        _ => Rng::new(0xDEADBEEF),
    };
    let prio: Vec<u64> = (0..n)
        .map(|v| match priority {
            Priority::Height => (u64::from(h[v]) << 32) | (n - v) as u64,
            Priority::HeightFanout => {
                let fanout = dfg.out_edges(NodeId(v as u32)).len() as u64;
                (u64::from(h[v]) << 32) | (fanout << 16) | (n - v) as u64
            }
            Priority::Random(_) => rng.next() >> 8,
        })
        .collect();

    let ii_i = i64::from(ii);
    let mut time: Vec<Option<i64>> = vec![None; n];
    let mut ever: Vec<bool> = vec![false; n];
    let mut last: Vec<i64> = vec![-1; n];
    let mut budget = (budget_factor as i64) * (n as i64).max(1);
    // Modulo reservation table: which nodes occupy each slot.
    let mut mrt: Vec<Vec<usize>> = vec![Vec::new(); ii as usize];

    let is_mem = |v: usize| dfg.node(NodeId(v as u32)).op.is_memory();
    let slot_full = |mrt: &Vec<Vec<usize>>, slot: usize, mem: bool| {
        if mrt[slot].len() >= cap {
            return true;
        }
        if mem {
            let mem_count = mrt[slot].iter().filter(|&&m| is_mem(m)).count();
            mem_count >= mem_cap
        } else {
            false
        }
    };

    loop {
        // Highest-priority unscheduled node.
        let Some(v) = (0..n)
            .filter(|&v| time[v].is_none())
            .max_by_key(|&v| prio[v])
        else {
            break;
        };
        budget -= 1;
        if budget < 0 {
            return None;
        }

        // Feasible interval for t(v) given every *scheduled* neighbour:
        // an edge s→d with distance `dist` requires
        // 1 <= t(d) - t(s) + dist·II <= II. Unlike classic IMS (which has
        // no upper bound thanks to rotating register files), the
        // consume-within-II rule bounds t(v) from both sides.
        let mut lo: i64 = 0;
        let mut hi: i64 = i64::MAX;
        let mut estart: i64 = 0;
        for (_, e) in dfg.edges() {
            let (s, d) = (e.src.index(), e.dst.index());
            if s == d || (s != v && d != v) {
                continue;
            }
            let dist = i64::from(e.distance) * ii_i;
            if d == v {
                if let Some(ts) = time[s] {
                    lo = lo.max(ts + 1 - dist);
                    hi = hi.min(ts + ii_i - dist);
                    estart = estart.max(ts + 1 - dist);
                }
            } else if let Some(td) = time[d] {
                lo = lo.max(td + dist - ii_i);
                hi = hi.min(td + dist - 1);
            }
        }
        lo = lo.max(0);
        estart = estart.max(0);
        let (win_lo, win_hi) = if lo <= hi {
            (lo, hi.min(lo + ii_i - 1))
        } else {
            // No consistent interval: fall back to the producer-driven
            // window and evict whoever conflicts.
            (estart, estart + ii_i - 1)
        };

        // Pick the slot that minimizes disruption: broken transfer windows
        // first, then resource conflicts, then load (balancing keeps
        // placement feasible later).
        let mem = is_mem(v);
        let mut best: Option<(i64, u64)> = None;
        for t in win_lo..=win_hi {
            let slot = (t % ii_i) as usize;
            let mut score: u64 = 0;
            if slot_full(&mrt, slot, mem) {
                score += 1000;
            }
            score += 10 * mrt[slot].len() as u64;
            for (_, e) in dfg.edges() {
                let (s, d) = (e.src.index(), e.dst.index());
                if s == d || (s != v && d != v) {
                    continue;
                }
                let other = if s == v { d } else { s };
                let Some(to) = time[other] else { continue };
                let (ts, td) = if s == v { (t, to) } else { (to, t) };
                let delta = td - ts + i64::from(e.distance) * ii_i;
                if delta < 1 || delta > ii_i {
                    score += 10_000;
                }
            }
            if best.is_none_or(|(_, bs)| score < bs) {
                best = Some((t, score));
            }
        }
        let (mut t, score) = best.expect("window is nonempty");
        // Anti-cycling: when rescheduling a node disruptively at or before
        // its previous slot, force forward progress (Rau's rule).
        if ever[v] && score >= 10_000 && t <= last[v] {
            t = last[v] + 1;
        }
        if t > (n as i64 + 4) * ii_i {
            return None; // schedule diverging
        }

        // Evict whatever conflicts with (v @ t).
        let slot = (t % ii_i) as usize;
        while slot_full(&mrt, slot, mem) {
            // Evict the lowest-priority occupant (a memory op when the
            // memory port is the bottleneck).
            let victim = if mem
                && mrt[slot].iter().filter(|&&m| is_mem(m)).count() >= mem_cap
                && mrt[slot].len() < cap
            {
                *mrt[slot]
                    .iter()
                    .filter(|&&m| is_mem(m))
                    .min_by_key(|&&m| prio[m])
                    .expect("mem occupant exists")
            } else {
                *mrt[slot]
                    .iter()
                    .min_by_key(|&&m| prio[m])
                    .expect("occupant exists")
            };
            mrt[slot].retain(|&m| m != victim);
            time[victim] = None;
        }
        time[v] = Some(t);
        ever[v] = true;
        last[v] = t;
        mrt[slot].push(v);

        // Evict scheduled neighbours whose transfer window broke.
        let mut evict: Vec<usize> = Vec::new();
        for (_, e) in dfg.edges() {
            let (s, d) = (e.src.index(), e.dst.index());
            if s != v && d != v {
                continue;
            }
            if s == d {
                continue;
            }
            let (Some(ts), Some(td)) = (time[s], time[d]) else {
                continue;
            };
            let delta = td - ts + i64::from(e.distance) * ii_i;
            if delta < 1 || delta > ii_i {
                let other = if s == v { d } else { s };
                evict.push(other);
            }
        }
        for m in evict {
            if let Some(tm) = time[m] {
                mrt[(tm % ii_i) as usize].retain(|&x| x != m);
                time[m] = None;
            }
        }
    }

    // Final legality check.
    let times: Vec<u32> = time
        .into_iter()
        .map(|t| t.expect("all scheduled") as u32)
        .collect();
    if schedule_is_legal(dfg, cgra, &times, ii) {
        Some(times)
    } else {
        None
    }
}

/// Checks the schedule-level legality: transfer windows and per-slot
/// resource counts.
#[allow(clippy::needless_range_loop)]
pub fn schedule_is_legal(dfg: &Dfg, cgra: &Cgra, times: &[u32], ii: u32) -> bool {
    let ii_i = i64::from(ii);
    for (_, e) in dfg.edges() {
        if e.src == e.dst {
            if e.distance != 1 {
                return false;
            }
            continue;
        }
        let delta = i64::from(times[e.dst.index()]) - i64::from(times[e.src.index()])
            + i64::from(e.distance) * ii_i;
        if delta < 1 || delta > ii_i {
            return false;
        }
    }
    let mut counts = vec![0usize; ii as usize];
    let mut mem_counts = vec![0usize; ii as usize];
    for v in 0..dfg.num_nodes() {
        let slot = (times[v] % ii) as usize;
        counts[slot] += 1;
        if dfg.node(NodeId(v as u32)).op.is_memory() {
            mem_counts[slot] += 1;
        }
    }
    counts.iter().all(|&c| c <= cgra.num_pes())
        && mem_counts.iter().all(|&c| c <= cgra.num_memory_pes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use satmapit_dfg::Op;
    use satmapit_schedule::mii;

    fn chain(n: usize) -> Dfg {
        let mut dfg = Dfg::new("chain");
        let mut prev = dfg.add_const(1);
        for _ in 1..n {
            let next = dfg.add_node(Op::Neg);
            dfg.add_edge(prev, next, 0);
            prev = next;
        }
        dfg
    }

    #[test]
    fn chain_schedules_at_mii() {
        let dfg = chain(6);
        let cgra = Cgra::square(2);
        let ii = mii(&dfg, &cgra).unwrap();
        let times = modulo_schedule(&dfg, &cgra, ii, Priority::Height, 20).unwrap();
        assert!(schedule_is_legal(&dfg, &cgra, &times, ii));
        for w in times.windows(2) {
            assert!(w[1] > w[0], "chain order preserved");
        }
    }

    #[test]
    fn parallel_constants_spread_across_slots() {
        let mut dfg = Dfg::new("par");
        for i in 0..8 {
            let _ = dfg.add_const(i);
        }
        let cgra = Cgra::square(2);
        let times = modulo_schedule(&dfg, &cgra, 2, Priority::Height, 20).unwrap();
        assert!(schedule_is_legal(&dfg, &cgra, &times, 2));
    }

    #[test]
    fn recurrence_respected() {
        let mut dfg = Dfg::new("rec");
        let a = dfg.add_node(Op::Neg);
        let b = dfg.add_node(Op::Neg);
        let c = dfg.add_node(Op::Neg);
        dfg.add_edge(a, b, 0);
        dfg.add_edge(b, c, 0);
        dfg.add_back_edge(c, a, 0, 1, 0);
        let cgra = Cgra::square(3);
        assert!(
            modulo_schedule(&dfg, &cgra, 2, Priority::Height, 30).is_none(),
            "RecMII is 3"
        );
        let times = modulo_schedule(&dfg, &cgra, 3, Priority::Height, 30).unwrap();
        assert!(schedule_is_legal(&dfg, &cgra, &times, 3));
    }

    #[test]
    fn all_kernels_schedule_somewhere() {
        for k in satmapit_kernels::all() {
            let cgra = Cgra::square(4);
            let start = mii(&k.dfg, &cgra).unwrap();
            let mut scheduled = false;
            for ii in start..start + 12 {
                if let Some(times) = modulo_schedule(&k.dfg, &cgra, ii, Priority::Height, 50) {
                    assert!(schedule_is_legal(&k.dfg, &cgra, &times, ii));
                    scheduled = true;
                    break;
                }
            }
            assert!(scheduled, "{} never scheduled", k.name());
        }
    }

    #[test]
    fn random_priorities_are_deterministic_per_seed() {
        let dfg = chain(8);
        let cgra = Cgra::square(2);
        let a = modulo_schedule(&dfg, &cgra, 2, Priority::Random(7), 30);
        let b = modulo_schedule(&dfg, &cgra, 2, Priority::Random(7), 30);
        assert_eq!(a, b);
    }

    #[test]
    fn priority_variants_cover_height_and_fanout() {
        let dfg = chain(5);
        let cgra = Cgra::square(2);
        for p in [
            Priority::Height,
            Priority::HeightFanout,
            Priority::Random(3),
        ] {
            let times = modulo_schedule(&dfg, &cgra, 2, p, 30).unwrap();
            assert!(schedule_is_legal(&dfg, &cgra, &times, 2), "{p:?}");
        }
    }
}
