//! RAMP-like baseline (Dave et al., DAC 2018): iterative modulo scheduling
//! with deterministic priority variants, max-clique-style placement, and
//! escalating insertion of explicit routing nodes when placement fails.

use crate::common::{BaselineConfig, BaselineFailure, BaselineMapped, BaselineOutcome};
use crate::ims::{modulo_schedule, Priority};
use crate::place::{place, schedule_to_mapping, PlaceConfig};
use crate::routing::{insert_route, route_candidates};
use satmapit_cgra::Cgra;
use satmapit_core::validate_mapping;
use satmapit_dfg::Dfg;
use satmapit_regalloc::allocate;
use satmapit_schedule::mii;
use std::time::Instant;

/// The RAMP-like mapper.
///
/// ```
/// use satmapit_baselines::RampMapper;
/// use satmapit_cgra::Cgra;
/// use satmapit_dfg::{Dfg, Op};
///
/// let mut dfg = Dfg::new("pair");
/// let a = dfg.add_const(1);
/// let b = dfg.add_node(Op::Neg);
/// dfg.add_edge(a, b, 0);
/// let cgra = Cgra::square(2);
/// let outcome = RampMapper::new(&dfg, &cgra).run();
/// assert_eq!(outcome.ii(), Some(1));
/// ```
#[derive(Debug)]
pub struct RampMapper<'a> {
    dfg: &'a Dfg,
    cgra: &'a Cgra,
    config: BaselineConfig,
}

impl<'a> RampMapper<'a> {
    /// Creates a mapper with default configuration.
    pub fn new(dfg: &'a Dfg, cgra: &'a Cgra) -> RampMapper<'a> {
        RampMapper {
            dfg,
            cgra,
            config: BaselineConfig::default(),
        }
    }

    /// Replaces the configuration.
    pub fn with_config(mut self, config: BaselineConfig) -> RampMapper<'a> {
        self.config = config;
        self
    }

    /// Runs the iterative search.
    pub fn run(&self) -> BaselineOutcome {
        let t0 = Instant::now();
        let deadline = self.config.timeout.map(|d| t0 + d);
        let mut schedules_tried = 0u32;

        if let Err(e) = self.dfg.validate() {
            return BaselineOutcome {
                result: Err(BaselineFailure::InvalidDfg(e)),
                elapsed: t0.elapsed(),
                schedules_tried,
            };
        }
        // An unmappable signal (no memory-capable PE) skips the loop
        // entirely and falls through to the II-cap failure.
        let start = mii(self.dfg, self.cgra).unwrap_or(self.config.max_ii.saturating_add(1));

        for ii in start..=self.config.max_ii {
            // Routing escalation: start from the plain DFG, add routes on
            // placement failure.
            let mut current = self.dfg.clone();
            let mut routes = 0u32;
            loop {
                if let Some(dl) = deadline {
                    if Instant::now() >= dl {
                        return BaselineOutcome {
                            result: Err(BaselineFailure::Timeout { at_ii: ii }),
                            elapsed: t0.elapsed(),
                            schedules_tried,
                        };
                    }
                }
                let variants = self.variants(ii, routes);
                for variant in variants {
                    schedules_tried += 1;
                    let Some(times) = modulo_schedule(
                        &current,
                        self.cgra,
                        ii,
                        variant,
                        self.config.ims_budget_factor,
                    ) else {
                        continue;
                    };
                    let place_config = PlaceConfig {
                        budget: self.config.place_budget,
                        shuffle_seed: None,
                    };
                    let Some(pes) = place(&current, self.cgra, &times, ii, &place_config) else {
                        continue;
                    };
                    let mapping = schedule_to_mapping(&current, &times, &pes, ii);
                    if validate_mapping(&current, self.cgra, &mapping).is_err() {
                        // Heuristic produced an invalid mapping: reject it
                        // honestly and keep searching.
                        continue;
                    }
                    let live = satmapit_core::live_values(&current, self.cgra, &mapping);
                    match allocate(
                        &live,
                        ii,
                        self.cgra.regs_per_pe(),
                        self.config.regalloc_budget,
                    ) {
                        Ok(registers) => {
                            return BaselineOutcome {
                                result: Ok(BaselineMapped {
                                    dfg: current,
                                    mapping,
                                    registers,
                                    routes,
                                }),
                                elapsed: t0.elapsed(),
                                schedules_tried,
                            };
                        }
                        Err(_) => continue,
                    }
                }
                // Escalate: add one routing node and retry this II.
                if routes >= self.config.routing_budget {
                    break;
                }
                let cands = route_candidates(&current);
                let Some(&edge) = cands.first() else { break };
                current = insert_route(&current, edge);
                routes += 1;
            }
        }
        BaselineOutcome {
            result: Err(BaselineFailure::IiCapReached {
                cap: self.config.max_ii,
            }),
            elapsed: t0.elapsed(),
            schedules_tried,
        }
    }

    fn variants(&self, ii: u32, routes: u32) -> Vec<Priority> {
        let mut v = vec![Priority::Height, Priority::HeightFanout];
        let extra = self.config.attempts_per_ii.saturating_sub(2);
        for k in 0..extra {
            v.push(Priority::Random(
                self.config
                    .seed
                    .wrapping_add(u64::from(ii) << 24)
                    .wrapping_add(u64::from(routes) << 16)
                    .wrapping_add(u64::from(k)),
            ));
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use satmapit_dfg::Op;

    #[test]
    fn maps_simple_chain_at_ii_one() {
        let mut dfg = Dfg::new("chain");
        let mut prev = dfg.add_const(1);
        for _ in 0..3 {
            let n = dfg.add_node(Op::Neg);
            dfg.add_edge(prev, n, 0);
            prev = n;
        }
        let cgra = Cgra::square(2);
        let outcome = RampMapper::new(&dfg, &cgra).run();
        assert_eq!(outcome.ii(), Some(1));
        let mapped = outcome.result.unwrap();
        assert!(validate_mapping(&mapped.dfg, &cgra, &mapped.mapping).is_ok());
    }

    #[test]
    fn high_fanout_triggers_routing() {
        // One producer with 7 consumers: on a 3x3 the producer has at most
        // 4 neighbours + itself; with II=1 placement is impossible without
        // routing, so a success with low II implies routing kicked in or II
        // grew. Either way the result must validate on the *returned* DFG.
        let mut dfg = Dfg::new("fan7");
        let src = dfg.add_const(1);
        for _ in 0..7 {
            let n = dfg.add_node(Op::Neg);
            dfg.add_edge(src, n, 0);
        }
        let cgra = Cgra::square(3);
        let outcome = RampMapper::new(&dfg, &cgra).run();
        let mapped = outcome.result.expect("mappable with routing or larger II");
        assert!(validate_mapping(&mapped.dfg, &cgra, &mapped.mapping).is_ok());
        assert!(mapped.dfg.num_nodes() >= dfg.num_nodes());
    }

    #[test]
    fn reports_ii_cap() {
        let mut dfg = Dfg::new("rec");
        let a = dfg.add_node(Op::Neg);
        let b = dfg.add_node(Op::Neg);
        dfg.add_edge(a, b, 0);
        dfg.add_back_edge(b, a, 0, 1, 0);
        let cgra = Cgra::square(2);
        let config = BaselineConfig {
            max_ii: 1, // RecMII is 2: cap below it
            ..BaselineConfig::default()
        };
        let outcome = RampMapper::new(&dfg, &cgra).with_config(config).run();
        assert_eq!(
            outcome.result.unwrap_err(),
            BaselineFailure::IiCapReached { cap: 1 }
        );
    }

    #[test]
    fn zero_timeout_reports_timeout() {
        let mut dfg = Dfg::new("pair");
        let a = dfg.add_const(1);
        let b = dfg.add_node(Op::Neg);
        dfg.add_edge(a, b, 0);
        let cgra = Cgra::square(2);
        let config = BaselineConfig {
            timeout: Some(std::time::Duration::from_secs(0)),
            ..BaselineConfig::default()
        };
        let outcome = RampMapper::new(&dfg, &cgra).with_config(config).run();
        assert!(matches!(
            outcome.result,
            Err(BaselineFailure::Timeout { .. })
        ));
    }

    #[test]
    fn deterministic_across_runs() {
        let mut dfg = Dfg::new("mix");
        let a = dfg.add_const(1);
        let b = dfg.add_node(Op::Neg);
        let c = dfg.add_node(Op::Neg);
        let d = dfg.add_node(Op::Add);
        dfg.add_edge(a, b, 0);
        dfg.add_edge(a, c, 0);
        dfg.add_edge(b, d, 0);
        dfg.add_edge(c, d, 1);
        let cgra = Cgra::square(2);
        let r1 = RampMapper::new(&dfg, &cgra).run();
        let r2 = RampMapper::new(&dfg, &cgra).run();
        assert_eq!(r1.ii(), r2.ii());
    }
}
