//! Explicit routing nodes (RAMP's key capability, paper §II).
//!
//! When a value cannot reach its consumer directly — the PEs are not
//! adjacent, or the transfer window is longer than II — a `Route` node can
//! carry it through an intermediate PE/cycle. SAT-MapIt deliberately lacks
//! this (its stated limitation, visible on `sha` at 5×5); the RAMP-like
//! baseline uses it.

use satmapit_dfg::{Dfg, NodeId, Op};

// The transformations are shared with the SAT mapper's routing extension;
// the canonical implementations live in `satmapit_dfg::transform`.
pub use satmapit_dfg::transform::{insert_route, route_candidates};

/// `true` if node `n` is a routing node added by [`insert_route`].
pub fn is_route(dfg: &Dfg, n: NodeId) -> bool {
    dfg.node(n).op == Op::Route
}

#[cfg(test)]
mod tests {
    use super::*;
    use satmapit_dfg::interp::interpret;
    use satmapit_dfg::EdgeId;

    fn sample() -> Dfg {
        let mut dfg = Dfg::new("s");
        let a = dfg.add_const(5);
        let b = dfg.add_node(Op::Neg);
        let acc = dfg.add_node(Op::Add);
        dfg.add_edge(a, b, 0);
        dfg.add_edge(b, acc, 0);
        dfg.add_back_edge(acc, acc, 1, 1, 100);
        dfg
    }

    #[test]
    fn routing_preserves_semantics() {
        let dfg = sample();
        let reference = interpret(&dfg, vec![], 5).unwrap();
        for (eid, _) in dfg.edges().collect::<Vec<_>>() {
            let routed = insert_route(&dfg, eid);
            assert!(routed.validate().is_ok(), "edge {eid:?}");
            assert_eq!(routed.num_nodes(), dfg.num_nodes() + 1);
            let r = interpret(&routed, vec![], 5).unwrap();
            for n in dfg.node_ids() {
                for i in 0..5 {
                    assert_eq!(
                        reference.values[i][n.index()],
                        r.values[i][n.index()],
                        "edge {eid:?} node {n} iter {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn back_edge_routing_moves_distance_to_second_leg() {
        let dfg = sample();
        // Edge 2 is the back edge acc -> acc.
        let routed = insert_route(&dfg, EdgeId(2));
        let route_node = NodeId(3);
        assert!(is_route(&routed, route_node));
        let in_edges = routed.in_edges(route_node);
        assert_eq!(routed.edge(in_edges[0]).distance, 0, "first leg same-iter");
        // The leg into acc keeps distance 1.
        let acc_ins = routed.in_edges(NodeId(2));
        let back = acc_ins
            .iter()
            .map(|&e| routed.edge(e))
            .find(|e| e.src == route_node)
            .unwrap();
        assert_eq!(back.distance, 1);
        assert_eq!(back.init, 100);
    }

    #[test]
    fn candidates_prefer_high_fanout() {
        let mut dfg = Dfg::new("fan");
        let hub = dfg.add_const(1);
        let a = dfg.add_node(Op::Neg);
        let b = dfg.add_node(Op::Neg);
        let c = dfg.add_node(Op::Neg);
        dfg.add_edge(hub, a, 0);
        dfg.add_edge(hub, b, 0);
        dfg.add_edge(a, c, 0);
        let cands = route_candidates(&dfg);
        let first = dfg.edge(cands[0]);
        assert_eq!(first.src, hub, "hub edges ranked first");
    }
}
