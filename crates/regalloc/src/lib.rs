//! # satmapit-regalloc
//!
//! Register allocation for modulo-scheduled CGRA mappings (SAT-MapIt,
//! DATE 2023, §IV-D).
//!
//! After the SAT solver fixes where and when every DFG node executes, each
//! value that is transferred through a PE's local register file must be
//! assigned one of the PE's registers for its whole lifetime. In a modulo
//! schedule with initiation interval `II`, a value produced at unfolded
//! time `t` and last consumed `span` cycles later occupies a register
//! during the *cyclic* window `(t, t+span]` on the `II`-cycle wheel —
//! because the kernel repeats every `II` cycles, and the producing
//! instruction re-writes the same register each revolution. Lifetimes are
//! therefore at most `II` (longer lifetimes would need modulo variable
//! expansion / rotating register files, which the paper's architecture does
//! not have; the mapper's C3 constraints enforce this bound).
//!
//! Allocation per PE is exact graph colouring of the circular-arc
//! interference graph with `regs_per_pe` colours (the paper's
//! SSA-based-optimal claim corresponds to the small per-PE instance sizes:
//! at most `II` values live per PE, so exact search is cheap). Failure
//! feeds back into the mapper's iterative loop, which increments II
//! (paper Fig. 3).
//!
//! ```
//! use satmapit_regalloc::{allocate_pe, LiveValue};
//! let values = vec![
//!     LiveValue { id: 0, write_time: 0, span: 2 },
//!     LiveValue { id: 1, write_time: 1, span: 2 },
//! ];
//! let regs = allocate_pe(&values, 3, 4, 10_000).unwrap();
//! assert_ne!(regs[0], regs[1], "overlapping lifetimes need distinct registers");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use satmapit_graphs::arcs::{interference_graph, CyclicArc};
use satmapit_graphs::coloring::{exact_k_coloring, is_valid_coloring, ColoringResult};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A value that must reside in a PE's register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LiveValue {
    /// Opaque identifier (the producing DFG node index).
    pub id: u32,
    /// Unfolded schedule time at which the producer executes (the register
    /// is written at the *end* of this cycle).
    pub write_time: u32,
    /// Lifetime in cycles: distance from production to the last read
    /// through the register file. Must satisfy `1 <= span <= II`.
    pub span: u32,
}

impl LiveValue {
    /// The cyclic occupancy arc of this value on the `II` wheel:
    /// cycles `write_time+1 ..= write_time+span`.
    pub fn arc(&self, ii: u32) -> CyclicArc {
        CyclicArc::new((self.write_time + 1) % ii, self.span, ii)
    }
}

/// Register assignment for one PE: parallel to the input `values` slice.
pub type PeRegs = Vec<u8>;

/// Why allocation of one PE failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PeAllocFailure {
    /// The interference graph is not colourable with the available
    /// registers: too much register pressure at this II.
    Infeasible,
    /// The exact search ran out of budget (treated as failure by callers).
    BudgetExhausted,
    /// A value's span is out of the legal `1..=II` range.
    IllegalSpan {
        /// The offending value id.
        id: u32,
    },
}

impl fmt::Display for PeAllocFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PeAllocFailure::Infeasible => write!(f, "register pressure exceeds register file"),
            PeAllocFailure::BudgetExhausted => write!(f, "colouring budget exhausted"),
            PeAllocFailure::IllegalSpan { id } => {
                write!(f, "value {id} has a span outside 1..=II")
            }
        }
    }
}

impl std::error::Error for PeAllocFailure {}

/// Allocates the register file of a single PE.
///
/// Returns one register index (in `0..num_regs`) per input value, aligned
/// with `values`.
///
/// # Errors
///
/// * [`PeAllocFailure::IllegalSpan`] if any span is 0 or exceeds `ii`;
/// * [`PeAllocFailure::Infeasible`] if more than `num_regs` values overlap;
/// * [`PeAllocFailure::BudgetExhausted`] if the exact search exceeds
///   `budget` steps (callers treat this as a failure and raise II).
pub fn allocate_pe(
    values: &[LiveValue],
    ii: u32,
    num_regs: u8,
    budget: u64,
) -> Result<PeRegs, PeAllocFailure> {
    assert!(ii > 0, "II must be positive");
    if values.is_empty() {
        return Ok(Vec::new());
    }
    for v in values {
        if v.span == 0 || v.span > ii {
            return Err(PeAllocFailure::IllegalSpan { id: v.id });
        }
    }
    let arcs: Vec<CyclicArc> = values.iter().map(|v| v.arc(ii)).collect();
    let graph = interference_graph(&arcs);
    match exact_k_coloring(&graph, num_regs as usize, budget) {
        ColoringResult::Colored(colors) => {
            debug_assert!(is_valid_coloring(&graph, &colors, num_regs as usize));
            Ok(colors.into_iter().map(|c| c as u8).collect())
        }
        ColoringResult::Infeasible => Err(PeAllocFailure::Infeasible),
        ColoringResult::BudgetExhausted => Err(PeAllocFailure::BudgetExhausted),
    }
}

/// A whole-array register allocation: per PE, pairs `(value id, register)`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegAllocation {
    per_pe: Vec<Vec<(u32, u8)>>,
}

impl RegAllocation {
    /// Reconstructs an allocation from its raw per-PE assignment lists
    /// (`per_pe[p]` holds `(value id, register)` pairs for PE `p`). The
    /// inverse of [`RegAllocation::per_pe`]; used by persistence layers
    /// that serialize allocations and must rebuild them byte-identically.
    pub fn from_per_pe(per_pe: Vec<Vec<(u32, u8)>>) -> RegAllocation {
        RegAllocation { per_pe }
    }

    /// The raw per-PE assignment lists, indexed by PE.
    pub fn per_pe(&self) -> &[Vec<(u32, u8)>] {
        &self.per_pe
    }

    /// Assignments on PE `pe` as `(value id, register)` pairs.
    pub fn pe(&self, pe: usize) -> &[(u32, u8)] {
        static EMPTY: [(u32, u8); 0] = [];
        self.per_pe.get(pe).map_or(&EMPTY[..], Vec::as_slice)
    }

    /// The register holding value `id` on PE `pe`, if allocated there.
    pub fn reg_of(&self, pe: usize, id: u32) -> Option<u8> {
        self.pe(pe).iter().find(|(v, _)| *v == id).map(|&(_, r)| r)
    }

    /// Total number of register-resident values.
    pub fn num_values(&self) -> usize {
        self.per_pe.iter().map(Vec::len).sum()
    }

    /// Maximum register index in use plus one, per PE.
    pub fn pressure(&self, pe: usize) -> u8 {
        self.pe(pe).iter().map(|&(_, r)| r + 1).max().unwrap_or(0)
    }
}

/// Error from [`allocate`]: which PE failed and why.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegAllocError {
    /// Index of the failing PE.
    pub pe: usize,
    /// The failure cause.
    pub failure: PeAllocFailure,
}

impl fmt::Display for RegAllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "register allocation failed on PE {}: {}",
            self.pe, self.failure
        )
    }
}

impl std::error::Error for RegAllocError {}

/// Allocates every PE's register file.
///
/// `per_pe[p]` lists the register-file values of PE `p`.
///
/// # Errors
///
/// Returns the first failing PE (see [`allocate_pe`]).
pub fn allocate(
    per_pe: &[Vec<LiveValue>],
    ii: u32,
    num_regs: u8,
    budget: u64,
) -> Result<RegAllocation, RegAllocError> {
    let mut result = Vec::with_capacity(per_pe.len());
    for (pe, values) in per_pe.iter().enumerate() {
        let regs = allocate_pe(values, ii, num_regs, budget)
            .map_err(|failure| RegAllocError { pe, failure })?;
        result.push(values.iter().zip(regs).map(|(v, r)| (v.id, r)).collect());
    }
    Ok(RegAllocation { per_pe: result })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_pe_allocates_trivially() {
        assert_eq!(allocate_pe(&[], 4, 4, 100).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn disjoint_lifetimes_can_share_register() {
        // II=4: value A occupies cycles 1..2, value B occupies 3..4.
        let values = vec![
            LiveValue {
                id: 0,
                write_time: 0,
                span: 1,
            },
            LiveValue {
                id: 1,
                write_time: 2,
                span: 1,
            },
        ];
        let regs = allocate_pe(&values, 4, 1, 10_000).unwrap();
        assert_eq!(regs[0], regs[1], "one register suffices");
    }

    #[test]
    fn full_wheel_values_conflict() {
        // Two values with span == II always interfere.
        let values = vec![
            LiveValue {
                id: 0,
                write_time: 0,
                span: 3,
            },
            LiveValue {
                id: 1,
                write_time: 1,
                span: 3,
            },
        ];
        assert_eq!(
            allocate_pe(&values, 3, 1, 10_000),
            Err(PeAllocFailure::Infeasible)
        );
        let regs = allocate_pe(&values, 3, 2, 10_000).unwrap();
        assert_ne!(regs[0], regs[1]);
    }

    #[test]
    fn pressure_equals_max_overlap_for_wheel() {
        // II = 4, four staggered full-span values need 4 registers.
        let values: Vec<LiveValue> = (0..4)
            .map(|i| LiveValue {
                id: i,
                write_time: i,
                span: 4,
            })
            .collect();
        assert!(allocate_pe(&values, 4, 3, 100_000).is_err());
        let regs = allocate_pe(&values, 4, 4, 100_000).unwrap();
        let mut sorted = regs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "all four registers used");
    }

    #[test]
    fn illegal_spans_rejected() {
        let z = [LiveValue {
            id: 7,
            write_time: 0,
            span: 0,
        }];
        assert_eq!(
            allocate_pe(&z, 4, 4, 100),
            Err(PeAllocFailure::IllegalSpan { id: 7 })
        );
        let too_long = [LiveValue {
            id: 9,
            write_time: 0,
            span: 5,
        }];
        assert_eq!(
            allocate_pe(&too_long, 4, 4, 100),
            Err(PeAllocFailure::IllegalSpan { id: 9 })
        );
    }

    #[test]
    fn wraparound_lifetime_interferes_across_boundary() {
        // II=4: A written at cycle 3 with span 2 occupies cycles 0 and 1 of
        // the next revolution; B written at 0 spans cycle 1 -> conflict.
        let values = vec![
            LiveValue {
                id: 0,
                write_time: 3,
                span: 2,
            },
            LiveValue {
                id: 1,
                write_time: 0,
                span: 1,
            },
        ];
        let regs = allocate_pe(&values, 4, 2, 10_000).unwrap();
        assert_ne!(regs[0], regs[1]);
    }

    #[test]
    fn whole_array_allocation_and_queries() {
        let per_pe = vec![
            vec![LiveValue {
                id: 10,
                write_time: 0,
                span: 2,
            }],
            vec![],
            vec![
                LiveValue {
                    id: 20,
                    write_time: 0,
                    span: 2,
                },
                LiveValue {
                    id: 21,
                    write_time: 1,
                    span: 2,
                },
            ],
        ];
        let alloc = allocate(&per_pe, 3, 4, 10_000).unwrap();
        assert_eq!(alloc.num_values(), 3);
        assert!(alloc.reg_of(0, 10).is_some());
        assert!(alloc.reg_of(1, 10).is_none());
        let r20 = alloc.reg_of(2, 20).unwrap();
        let r21 = alloc.reg_of(2, 21).unwrap();
        assert_ne!(r20, r21);
        assert!(alloc.pressure(2) >= 2);
    }

    #[test]
    fn whole_array_reports_failing_pe() {
        let per_pe = vec![
            vec![],
            vec![
                LiveValue {
                    id: 0,
                    write_time: 0,
                    span: 2,
                },
                LiveValue {
                    id: 1,
                    write_time: 0,
                    span: 2,
                },
                LiveValue {
                    id: 2,
                    write_time: 0,
                    span: 2,
                },
            ],
        ];
        let err = allocate(&per_pe, 2, 2, 10_000).unwrap_err();
        assert_eq!(err.pe, 1);
        assert_eq!(err.failure, PeAllocFailure::Infeasible);
    }

    #[test]
    fn allocation_is_conflict_free_property() {
        // Brute check on staggered random-ish values: any two values whose
        // arcs overlap must receive different registers.
        for ii in 2..=6u32 {
            let values: Vec<LiveValue> = (0..ii)
                .map(|i| LiveValue {
                    id: i,
                    write_time: (i * 2) % ii,
                    span: 1 + (i % ii.min(3)),
                })
                .collect();
            if let Ok(regs) = allocate_pe(&values, ii, 4, 100_000) {
                for i in 0..values.len() {
                    for j in (i + 1)..values.len() {
                        if values[i].arc(ii).overlaps(&values[j].arc(ii)) {
                            assert_ne!(regs[i], regs[j], "ii={ii} i={i} j={j}");
                        }
                    }
                }
            }
        }
    }
}
