//! # satmapit-cgra
//!
//! Architecture model of the coarse-grain reconfigurable array targeted by
//! SAT-MapIt (DATE 2023, Fig. 1): a 2-D mesh of processing elements (PEs),
//! each containing an ALU, a small local register file and one output
//! register, connected to its nearest neighbours.
//!
//! The paper evaluates square meshes from 2×2 to 5×5 with four local
//! registers per PE and 4-neighbour connectivity; [`Cgra::square`] builds
//! exactly that configuration. Torus and 8-neighbour variants are provided
//! as architecture-exploration extensions.
//!
//! ```
//! use satmapit_cgra::{Cgra, Topology};
//! let cgra = Cgra::square(3);
//! assert_eq!(cgra.num_pes(), 9);
//! let center = cgra.pe_at(1, 1);
//! assert_eq!(cgra.neighbors(center).len(), 4);
//! let corner = cgra.pe_at(0, 0);
//! assert_eq!(cgra.neighbors(corner).len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use satmapit_dfg::Op;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a processing element (dense index, row-major).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PeId(pub u16);

impl PeId {
    /// Dense index for array addressing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for PeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pe{}", self.0)
    }
}

impl fmt::Display for PeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pe{}", self.0)
    }
}

/// Interconnect topology of the PE mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Topology {
    /// 4-neighbour 2-D mesh (the paper's architecture).
    #[default]
    Mesh4,
    /// 8-neighbour mesh (adds diagonals).
    Mesh8,
    /// 4-neighbour torus (wrap-around rows/columns).
    Torus4,
}

/// Which PEs may execute memory operations (loads/stores).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum MemoryPolicy {
    /// Every PE has a memory port (the default; the paper's Fig. 1 shows
    /// data-memory lines reaching the array).
    #[default]
    AllPes,
    /// Only column 0 PEs may access memory (a common CGRA restriction,
    /// provided for architecture exploration).
    LeftColumn,
    /// No PE may access memory: a pure compute fabric (streaming
    /// accelerators that receive operands over the interconnect). Any DFG
    /// containing loads or stores is structurally unmappable on such an
    /// array, which the `res_mii`-style lower bounds report as an explicit
    /// "unmappable" signal rather than dividing by zero.
    None,
    /// Loads on column 0, stores on the last column (separate read and
    /// write ports on opposite edges of the array). On meshes at least
    /// three columns wide a direct load→store dependency is PE-level
    /// infeasible at *every* II — the case the incremental mapper's
    /// UNSAT-core analysis proves from a single solve.
    SplitLoadStore,
}

/// A CGRA instance: mesh geometry, topology, per-PE register count and
/// memory-access policy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cgra {
    rows: u16,
    cols: u16,
    topology: Topology,
    regs_per_pe: u8,
    memory_policy: MemoryPolicy,
}

impl Cgra {
    /// Creates an `rows × cols` CGRA with the paper's defaults: 4-neighbour
    /// mesh, 4 registers per PE, memory on every PE.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: u16, cols: u16) -> Cgra {
        assert!(rows > 0 && cols > 0, "CGRA dimensions must be positive");
        Cgra {
            rows,
            cols,
            topology: Topology::Mesh4,
            regs_per_pe: 4,
            memory_policy: MemoryPolicy::AllPes,
        }
    }

    /// Creates the paper's `n × n` configuration.
    pub fn square(n: u16) -> Cgra {
        Cgra::new(n, n)
    }

    /// Sets the interconnect topology.
    pub fn with_topology(mut self, topology: Topology) -> Cgra {
        self.topology = topology;
        self
    }

    /// Sets the register-file size per PE.
    pub fn with_regs_per_pe(mut self, regs: u8) -> Cgra {
        self.regs_per_pe = regs;
        self
    }

    /// Sets the memory-access policy.
    pub fn with_memory_policy(mut self, policy: MemoryPolicy) -> Cgra {
        self.memory_policy = policy;
        self
    }

    /// Number of rows.
    pub fn rows(&self) -> u16 {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> u16 {
        self.cols
    }

    /// Total number of PEs.
    pub fn num_pes(&self) -> usize {
        usize::from(self.rows) * usize::from(self.cols)
    }

    /// The interconnect topology.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Registers in each PE's local register file.
    pub fn regs_per_pe(&self) -> u8 {
        self.regs_per_pe
    }

    /// The memory-access policy.
    pub fn memory_policy(&self) -> MemoryPolicy {
        self.memory_policy
    }

    /// The PE at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn pe_at(&self, row: u16, col: u16) -> PeId {
        assert!(
            row < self.rows && col < self.cols,
            "({row},{col}) out of range"
        );
        PeId(row * self.cols + col)
    }

    /// The `(row, col)` coordinates of a PE.
    pub fn coords(&self, pe: PeId) -> (u16, u16) {
        (pe.0 / self.cols, pe.0 % self.cols)
    }

    /// Iterates over all PE ids in row-major order.
    pub fn pes(&self) -> impl Iterator<Item = PeId> {
        (0..self.rows * self.cols).map(PeId)
    }

    /// The neighbours of `pe` under the configured topology (excluding
    /// `pe` itself).
    pub fn neighbors(&self, pe: PeId) -> Vec<PeId> {
        let (r, c) = self.coords(pe);
        let (rows, cols) = (i32::from(self.rows), i32::from(self.cols));
        let (r, c) = (i32::from(r), i32::from(c));
        let deltas: &[(i32, i32)] = match self.topology {
            Topology::Mesh4 | Topology::Torus4 => &[(-1, 0), (1, 0), (0, -1), (0, 1)],
            Topology::Mesh8 => &[
                (-1, 0),
                (1, 0),
                (0, -1),
                (0, 1),
                (-1, -1),
                (-1, 1),
                (1, -1),
                (1, 1),
            ],
        };
        let wrap = matches!(self.topology, Topology::Torus4);
        let mut out = Vec::with_capacity(deltas.len());
        for &(dr, dc) in deltas {
            let (nr, nc) = (r + dr, c + dc);
            let (nr, nc) = if wrap {
                ((nr + rows) % rows, (nc + cols) % cols)
            } else {
                if nr < 0 || nr >= rows || nc < 0 || nc >= cols {
                    continue;
                }
                (nr, nc)
            };
            let id = PeId((nr * cols + nc) as u16);
            if id != pe && !out.contains(&id) {
                out.push(id);
            }
        }
        out
    }

    /// `true` if `a` and `b` are connected or identical; data can move from
    /// a producer on `a` to a consumer on `b` in one step.
    pub fn adjacent_or_same(&self, a: PeId, b: PeId) -> bool {
        a == b || self.neighbors(a).contains(&b)
    }

    /// Dense adjacency matrix (row-major, excluding self):
    /// `matrix[a.index() * num_pes + b.index()]` is `true` iff `b` is a
    /// neighbour of `a`. The shared precomputation for the encoder's C3
    /// pair enumeration and the incremental ladder's PE-level prefix —
    /// one definition keeps the two formulations in sync.
    pub fn adjacency_matrix(&self) -> Vec<bool> {
        let n = self.num_pes();
        let mut matrix = vec![false; n * n];
        for p in self.pes() {
            for q in self.neighbors(p) {
                matrix[p.index() * n + q.index()] = true;
            }
        }
        matrix
    }

    /// The PEs able to execute `op`, in PE-id order (memory-policy
    /// filtered). Empty means `op` is structurally unmappable. This is
    /// the single definition of each node's placement domain, shared by
    /// the per-II variable space (`VarMap`) and the II-invariant prefix.
    pub fn supported_pes(&self, op: Op) -> Vec<PeId> {
        self.pes().filter(|&p| self.supports_op(p, op)).collect()
    }

    /// Manhattan distance between two PEs (ignoring torus wrap).
    pub fn manhattan(&self, a: PeId, b: PeId) -> u32 {
        let (ar, ac) = self.coords(a);
        let (br, bc) = self.coords(b);
        (i32::from(ar) - i32::from(br)).unsigned_abs()
            + (i32::from(ac) - i32::from(bc)).unsigned_abs()
    }

    /// `true` if `pe` may execute `op` (memory policy check).
    pub fn supports_op(&self, pe: PeId, op: Op) -> bool {
        if !op.is_memory() {
            return true;
        }
        match self.memory_policy {
            MemoryPolicy::AllPes => true,
            MemoryPolicy::LeftColumn => self.coords(pe).1 == 0,
            MemoryPolicy::None => false,
            MemoryPolicy::SplitLoadStore => {
                let col = self.coords(pe).1;
                if matches!(op, Op::Load) {
                    col == 0
                } else {
                    col == self.cols - 1
                }
            }
        }
    }

    /// Number of PEs allowed to execute memory operations.
    pub fn num_memory_pes(&self) -> usize {
        match self.memory_policy {
            MemoryPolicy::AllPes => self.num_pes(),
            MemoryPolicy::LeftColumn => usize::from(self.rows),
            MemoryPolicy::None => 0,
            MemoryPolicy::SplitLoadStore => {
                // Load and store columns coincide on single-column arrays.
                usize::from(self.rows) * if self.cols > 1 { 2 } else { 1 }
            }
        }
    }
}

impl fmt::Display for Cgra {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{} CGRA ({:?}, {} regs/PE, mem={:?})",
            self.rows, self.cols, self.topology, self.regs_per_pe, self.memory_policy
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_configuration() {
        let cgra = Cgra::square(4);
        assert_eq!(cgra.num_pes(), 16);
        assert_eq!(cgra.regs_per_pe(), 4);
        assert_eq!(cgra.topology(), Topology::Mesh4);
        assert_eq!(cgra.memory_policy(), MemoryPolicy::AllPes);
    }

    #[test]
    fn mesh4_neighbor_counts() {
        let cgra = Cgra::square(3);
        // Corners: 2, edges: 3, center: 4.
        assert_eq!(cgra.neighbors(cgra.pe_at(0, 0)).len(), 2);
        assert_eq!(cgra.neighbors(cgra.pe_at(0, 1)).len(), 3);
        assert_eq!(cgra.neighbors(cgra.pe_at(1, 1)).len(), 4);
    }

    #[test]
    fn mesh8_neighbor_counts() {
        let cgra = Cgra::square(3).with_topology(Topology::Mesh8);
        assert_eq!(cgra.neighbors(cgra.pe_at(0, 0)).len(), 3);
        assert_eq!(cgra.neighbors(cgra.pe_at(1, 1)).len(), 8);
    }

    #[test]
    fn torus_wraps() {
        let cgra = Cgra::square(3).with_topology(Topology::Torus4);
        for pe in cgra.pes() {
            assert_eq!(cgra.neighbors(pe).len(), 4, "{pe}");
        }
        let corner = cgra.pe_at(0, 0);
        let ns = cgra.neighbors(corner);
        assert!(ns.contains(&cgra.pe_at(2, 0)));
        assert!(ns.contains(&cgra.pe_at(0, 2)));
    }

    #[test]
    fn tiny_torus_has_no_self_or_duplicate_neighbors() {
        let cgra = Cgra::new(1, 2).with_topology(Topology::Torus4);
        let ns = cgra.neighbors(cgra.pe_at(0, 0));
        assert_eq!(ns, vec![cgra.pe_at(0, 1)]);
        let cgra1 = Cgra::new(1, 1).with_topology(Topology::Torus4);
        assert!(cgra1.neighbors(cgra1.pe_at(0, 0)).is_empty());
    }

    #[test]
    fn adjacency_is_symmetric() {
        for topo in [Topology::Mesh4, Topology::Mesh8, Topology::Torus4] {
            let cgra = Cgra::square(4).with_topology(topo);
            for a in cgra.pes() {
                for b in cgra.pes() {
                    assert_eq!(
                        cgra.neighbors(a).contains(&b),
                        cgra.neighbors(b).contains(&a),
                        "{topo:?} {a} {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn coords_round_trip() {
        let cgra = Cgra::new(3, 5);
        for pe in cgra.pes() {
            let (r, c) = cgra.coords(pe);
            assert_eq!(cgra.pe_at(r, c), pe);
        }
    }

    #[test]
    fn manhattan_distances() {
        let cgra = Cgra::square(4);
        assert_eq!(cgra.manhattan(cgra.pe_at(0, 0), cgra.pe_at(3, 3)), 6);
        assert_eq!(cgra.manhattan(cgra.pe_at(1, 2), cgra.pe_at(1, 2)), 0);
        assert_eq!(cgra.manhattan(cgra.pe_at(0, 1), cgra.pe_at(1, 1)), 1);
    }

    #[test]
    fn memory_policy_restricts_ops() {
        let all = Cgra::square(3);
        assert!(all.supports_op(all.pe_at(1, 2), Op::Load));
        assert_eq!(all.num_memory_pes(), 9);

        let left = Cgra::square(3).with_memory_policy(MemoryPolicy::LeftColumn);
        assert!(left.supports_op(left.pe_at(2, 0), Op::Store));
        assert!(!left.supports_op(left.pe_at(0, 1), Op::Store));
        assert!(left.supports_op(left.pe_at(0, 1), Op::Add), "non-memory ok");
        assert_eq!(left.num_memory_pes(), 3);
    }

    #[test]
    fn memory_policy_none_and_split() {
        let none = Cgra::square(2).with_memory_policy(MemoryPolicy::None);
        assert_eq!(none.num_memory_pes(), 0);
        for pe in none.pes() {
            assert!(!none.supports_op(pe, Op::Load));
            assert!(!none.supports_op(pe, Op::Store));
            assert!(none.supports_op(pe, Op::Add));
        }

        let split = Cgra::new(2, 3).with_memory_policy(MemoryPolicy::SplitLoadStore);
        assert_eq!(split.num_memory_pes(), 4, "2 load PEs + 2 store PEs");
        assert!(split.supports_op(split.pe_at(0, 0), Op::Load));
        assert!(!split.supports_op(split.pe_at(0, 0), Op::Store));
        assert!(split.supports_op(split.pe_at(1, 2), Op::Store));
        assert!(!split.supports_op(split.pe_at(1, 2), Op::Load));
        assert!(!split.supports_op(split.pe_at(0, 1), Op::Load));

        let column = Cgra::new(3, 1).with_memory_policy(MemoryPolicy::SplitLoadStore);
        assert_eq!(column.num_memory_pes(), 3, "load and store columns merge");
        assert!(column.supports_op(column.pe_at(0, 0), Op::Load));
        assert!(column.supports_op(column.pe_at(0, 0), Op::Store));
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dimension_rejected() {
        let _ = Cgra::new(0, 3);
    }

    #[test]
    fn adjacent_or_same_includes_self() {
        let cgra = Cgra::square(2);
        let p = cgra.pe_at(0, 0);
        assert!(cgra.adjacent_or_same(p, p));
        assert!(cgra.adjacent_or_same(p, cgra.pe_at(0, 1)));
        assert!(!cgra.adjacent_or_same(p, cgra.pe_at(1, 1)));
    }

    #[test]
    fn display_is_informative() {
        let s = Cgra::square(2).to_string();
        assert!(s.contains("2x2"));
        assert!(s.contains("Mesh4"));
    }
}
