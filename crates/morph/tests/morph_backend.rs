//! The monomorphism backend against the SAT mapper: same verdicts, same
//! best IIs, honored limits.

use satmapit_cgra::{Cgra, MemoryPolicy};
use satmapit_core::{AttemptOutcome, Backend, Mapper, MapperConfig};
use satmapit_dfg::{Dfg, Op};
use satmapit_morph::MorphMapper;
use satmapit_sat::{SolveLimits, StopReason};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn config() -> MapperConfig {
    MapperConfig {
        timeout: Some(std::time::Duration::from_secs(120)),
        ..MapperConfig::default()
    }
}

#[test]
fn agrees_with_sat_on_small_kernels() {
    for kernel in ["srand", "bitcount", "sha"] {
        let dfg = satmapit_kernels::by_name(kernel).expect("suite kernel").dfg;
        let cgra = Cgra::square(4);
        let sat = Mapper::new(&dfg, &cgra).with_config(config()).run();
        let morph = MorphMapper::new(&dfg, &cgra).with_config(config()).run();
        eprintln!(
            "{kernel}: sat {:?} morph {:?} (sat ii {:?}, morph ii {:?})",
            sat.elapsed,
            morph.elapsed,
            sat.ii(),
            morph.ii()
        );
        let sat_ii = sat.ii().expect("sat maps the suite at 4x4");
        let morph_ii = morph.ii().expect("morph maps the suite at 4x4");
        assert_eq!(sat_ii, morph_ii, "{kernel}: best II disagrees");
    }
}

#[test]
fn proves_the_same_unsat_rungs_as_sat() {
    // 1 const fanning out to 5 negations on a 1x2 mesh: MII is 3 but the
    // ladder must climb UNSAT rungs first. Both backends must reject the
    // same rungs and settle on the same II.
    let mut dfg = Dfg::new("fanout");
    let c = dfg.add_const(7);
    for _ in 0..5 {
        let n = dfg.add_node(Op::Neg);
        dfg.add_edge(c, n, 0);
    }
    let cgra = Cgra::new(1, 2);
    let sat = Mapper::new(&dfg, &cgra).prepare().unwrap();
    let morph = MorphMapper::new(&dfg, &cgra).prepare().unwrap();
    assert_eq!(Backend::mii(&sat), Backend::mii(&morph));
    let mut ii = Backend::start_ii(&morph);
    loop {
        let s = sat.attempt_ii(ii, &SolveLimits::none()).unwrap();
        let m = morph.attempt_ii(ii, &SolveLimits::none()).unwrap();
        match (&s.attempt.outcome, &m.attempt.outcome) {
            (AttemptOutcome::Unsat, AttemptOutcome::Unsat) => ii += 1,
            (AttemptOutcome::Mapped, AttemptOutcome::Mapped) => break,
            (a, b) => panic!("ii={ii}: sat={a:?} morph={b:?}"),
        }
        assert!(ii < 20, "runaway ladder");
    }
}

#[test]
fn morph_mapping_passes_the_independent_validator() {
    let dfg = satmapit_kernels::by_name("gsm").expect("suite kernel").dfg;
    let cgra = Cgra::square(3);
    let morph = MorphMapper::new(&dfg, &cgra).with_config(config()).run();
    let mapped = morph.result.expect("gsm maps at 3x3");
    satmapit_core::validate_mapping(&dfg, &cgra, &mapped.mapping).expect("independent validation");
    assert!(mapped.mapping.ii >= mapped.mii);
}

#[test]
fn detects_unmappable_split_memory_loop() {
    // A load in column 0 feeding a store in column 3 of a 1x4
    // SplitLoadStore mesh: the PEs are never adjacent, at any II. The
    // PE-level relaxation must prove it without a search.
    let mut dfg = Dfg::new("split");
    let addr = dfg.add_const(0);
    let ld = dfg.add_node(Op::Load);
    dfg.add_edge(addr, ld, 0);
    let st = dfg.add_node(Op::Store);
    dfg.add_edge(addr, st, 0);
    dfg.add_edge(ld, st, 1);
    let cgra = Cgra::new(1, 4).with_memory_policy(MemoryPolicy::SplitLoadStore);
    let morph = MorphMapper::new(&dfg, &cgra).prepare().unwrap();
    assert!(Backend::proven_unmappable(&morph));
    let report = morph.attempt_ii(2, &SolveLimits::none()).unwrap();
    assert_eq!(report.attempt.outcome, AttemptOutcome::Unsat);
    assert!(report.proven_unmappable);
}

#[test]
fn preset_stop_flag_cancels_before_any_search() {
    let dfg = satmapit_kernels::by_name("sha").expect("suite kernel").dfg;
    let cgra = Cgra::square(4);
    let morph = MorphMapper::new(&dfg, &cgra).prepare().unwrap();
    let stop = Arc::new(AtomicBool::new(true));
    let limits = SolveLimits::none().with_stop_flag(stop);
    let report = morph
        .attempt_ii(Backend::start_ii(&morph), &limits)
        .unwrap();
    assert_eq!(
        report.attempt.outcome,
        AttemptOutcome::SolverBudget(StopReason::Cancelled)
    );
    assert!(!report.is_definitive());
    assert_eq!(report.attempt.solver_stats, None, "no search ran");
}

#[test]
fn mid_search_cancellation_honors_the_poll_cadence() {
    // Raise the flag from a sibling thread while the search grinds an
    // UNSAT rung; the attempt must come back Cancelled (not run to
    // exhaustion) and the step counters prove the poll cadence was hit.
    let mut dfg = Dfg::new("fanout");
    let c = dfg.add_const(7);
    for _ in 0..8 {
        let n = dfg.add_node(Op::Neg);
        dfg.add_edge(c, n, 0);
    }
    let cgra = Cgra::new(1, 2);
    let morph = MorphMapper::new(&dfg, &cgra).prepare().unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let limits = SolveLimits::none().with_stop_flag(stop.clone());
    let handle = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            stop.store(true, Ordering::Relaxed); // ordering: cooperative flag, Relaxed per SolveLimits contract
        })
    };
    // II=2 is deep in the UNSAT region for this shape; without the flag
    // the exhaustive proof takes far longer than the flag raise.
    let report = morph.attempt_ii(2, &limits).unwrap();
    handle.join().unwrap();
    if let AttemptOutcome::SolverBudget(StopReason::Cancelled) = report.attempt.outcome {
        assert!(!report.is_definitive());
    } else {
        // The search may legitimately finish before the flag rises on a
        // fast machine; the only acceptable alternative is the real
        // verdict.
        assert_eq!(report.attempt.outcome, AttemptOutcome::Unsat);
    }
}

#[test]
fn conflict_budget_stops_the_search() {
    let dfg = satmapit_kernels::by_name("sha").expect("suite kernel").dfg;
    let cgra = Cgra::square(2);
    let morph = MorphMapper::new(&dfg, &cgra).prepare().unwrap();
    let limits = SolveLimits::none().with_max_conflicts(16);
    // On a 2x2 the first rungs are UNSAT and far beyond 16 dead-ends;
    // the budget must surface as an indefinite ConflictLimit report.
    let report = morph
        .attempt_ii(Backend::start_ii(&morph), &limits)
        .unwrap();
    assert_eq!(
        report.attempt.outcome,
        AttemptOutcome::SolverBudget(StopReason::ConflictLimit)
    );
    let stats = report.attempt.solver_stats.expect("search ran");
    assert_eq!(stats.conflicts, 16);
}
