//! The per-II monomorphism search.
//!
//! ## The target: the time-expanded routing graph
//!
//! For a candidate II the CGRA unrolls into a slot graph with one vertex
//! per `(PE, kernel cycle)` pair and one arc per single-cycle value hop:
//! `(p, c) → (p', (c+1) mod II)` for every `p'` that is `p` itself (the
//! register file) or an interconnect neighbour (the output register).
//! A valid mapping is an embedding of the DFG into this graph: each node
//! lands on a slot whose PE supports its op, no two nodes share a slot
//! (injectivity — the *mono* in monomorphism), and each dependency
//! follows arcs of the slot graph with a latency `Δ = t_d − t_s +
//! dist·II` inside `1..=II` whose producer-side output register survives
//! untouched for `Δ` cycles. The candidate *times* per node are exactly
//! the kernel-mobility-schedule positions the SAT encoder enumerates
//! ([`Kms::positions`]) — both backends search the same space, which is
//! what makes their `Unsat` verdicts interchangeable.
//!
//! ## The search
//!
//! Exact backtracking with forward checking: per-node candidate domains
//! (`KMS position × supporting PE`), dynamic most-constrained-first
//! variable order, and trail-based undo. Assigning a node prunes from
//! every unassigned domain the taken slot, every timing/adjacency
//! violation along incident edges, and every slot inside a newly closed
//! cross-PE edge's output-register window; an emptied domain backtracks.
//! Complete embeddings go to register allocation — a failure there is
//! counted against [`MapperConfig::ra_cuts`](satmapit_core::MapperConfig)
//! and the search resumes, exactly like the SAT backend's blocking cuts.
//!
//! Exhaustion with zero register-allocation failures is a **proof** of
//! infeasibility (`Unsat`); with failures it is only a definitive
//! give-up (`RegAllocFailed`), mirroring the SAT ladder's semantics.
//!
//! The stop flag and deadline in [`SolveLimits`] are polled every
//! [`LIMIT_POLL_INTERVAL`] search steps (decisions and dead-ends both
//! count), the SAT core's cadence.

use crate::PreparedMorph;
use satmapit_cgra::{Cgra, PeId};
use satmapit_core::encoder::EncodeStats;
use satmapit_core::{
    allocate_registers, validate_mapping, AttemptOutcome, AttemptReport, IiAttempt, MapFailure,
    MappedLoop, Mapping, Placement, TransferKind,
};
use satmapit_dfg::{Dfg, NodeId};
use satmapit_graphs::DiGraph;
use satmapit_regalloc::RegAllocError;
use satmapit_sat::{SolveLimits, SolverStats, StopReason, LIMIT_POLL_INTERVAL};
use satmapit_schedule::Kms;
use std::time::Instant;

/// One candidate slot for a node: a KMS position on a supporting PE.
#[derive(Debug, Clone, Copy)]
struct Cand {
    /// PE index (dense).
    pe: usize,
    /// Kernel cycle, `< ii`.
    cycle: u32,
    /// Fold label.
    fold: u32,
    /// Unfolded time `cycle + fold·ii`.
    time: i64,
}

/// An open output-register window: the producer of a completed cross-PE
/// edge holds its output register for `delta` cycles.
#[derive(Debug, Clone, Copy)]
struct Guard {
    src: usize,
    pe: usize,
    cycle: u32,
    delta: u32,
}

/// Why the search stopped before exhausting the space.
enum Halt {
    Cancelled,
    ConflictLimit,
    Deadline,
    RaBudget,
    Internal(String),
}

enum SearchResult {
    Found(Box<MappedLoop>),
    /// This subtree (or the whole space, at the root) holds no embedding.
    Dead,
    Halt(Halt),
}

/// Builds the time-expanded routing graph for one II: vertex `pe·II + c`
/// is slot `(pe, c)`, arcs are the single-cycle value hops.
fn slot_graph(cgra: &Cgra, ii: u32) -> DiGraph {
    let ii_us = ii as usize;
    let mut g = DiGraph::new(cgra.num_pes() * ii_us);
    for pe in cgra.pes() {
        for c in 0..ii_us {
            let from = pe.index() * ii_us + c;
            let tc = (c + 1) % ii_us;
            g.add_edge(from, pe.index() * ii_us + tc);
            for nb in cgra.neighbors(pe) {
                g.add_edge(from, nb.index() * ii_us + tc);
            }
        }
    }
    g
}

/// Projects the slot graph's arc set down to the PE relation "can hand a
/// value to in one cycle" (self or interconnect neighbour) — the
/// adjacency test every cross-slot dependency must pass.
fn hop_relation(cgra: &Cgra, ii: u32, slots: &DiGraph) -> Vec<bool> {
    let np = cgra.num_pes();
    let ii_us = ii as usize;
    let mut adj = vec![false; np * np];
    for pe in 0..np {
        for to in slots.successors(pe * ii_us) {
            adj[pe * np + to / ii_us] = true;
        }
    }
    adj
}

struct Search<'p> {
    dfg: &'p Dfg,
    cgra: &'p Cgra,
    limits: &'p SolveLimits,
    ii: u32,
    folds: u32,
    num_nodes: usize,
    /// PE×PE single-hop relation from the time-expanded graph.
    adj: Vec<bool>,
    num_pes: usize,
    /// Per-node candidate slots.
    cands: Vec<Vec<Cand>>,
    /// Per-node per-candidate liveness under the current partial
    /// assignment.
    active: Vec<Vec<bool>>,
    active_count: Vec<usize>,
    /// Chosen candidate index per node.
    assigned: Vec<Option<usize>>,
    num_assigned: usize,
    /// Slot occupancy: `pe·II + cycle → node`.
    slot_occ: Vec<Option<usize>>,
    /// Undo log of `(node, candidate)` prunes.
    trail: Vec<(usize, usize)>,
    /// Nodes whose domains the last [`Search::assign`] shrank — the
    /// seed set for [`Search::propagate`].
    dirty: Vec<usize>,
    /// Open output-register windows of completed cross-PE edges.
    guards: Vec<Guard>,
    ra_cut_budget: u32,
    regalloc_budget: u64,
    mii: u32,
    ra_failures: u32,
    last_ra_error: Option<RegAllocError>,
    decisions: u64,
    conflicts: u64,
    propagations: u64,
    steps: u64,
}

impl<'p> Search<'p> {
    fn new(p: &'p PreparedMorph<'p>, kms: &Kms, ii: u32, limits: &'p SolveLimits) -> Search<'p> {
        let dfg = p.dfg;
        let cgra = p.cgra;
        let slots = slot_graph(cgra, ii);
        let adj = hop_relation(cgra, ii, &slots);
        let num_pes = cgra.num_pes();
        let mut cands: Vec<Vec<Cand>> = Vec::with_capacity(dfg.num_nodes());
        for n in dfg.node_ids() {
            let op = dfg.node(n).op;
            let mut dom = Vec::new();
            for pos in kms.positions(n) {
                for pe in cgra.supported_pes(op) {
                    dom.push(Cand {
                        pe: pe.index(),
                        cycle: pos.cycle,
                        fold: pos.fold,
                        time: i64::from(pos.cycle) + i64::from(pos.fold) * i64::from(ii),
                    });
                }
            }
            cands.push(dom);
        }
        let active = cands.iter().map(|d| vec![true; d.len()]).collect();
        let active_count = cands.iter().map(Vec::len).collect();
        Search {
            dfg,
            cgra,
            limits,
            ii,
            folds: kms.folds(),
            num_nodes: dfg.num_nodes(),
            adj,
            num_pes,
            cands,
            active,
            active_count,
            assigned: vec![None; dfg.num_nodes()],
            num_assigned: 0,
            slot_occ: vec![None; num_pes * ii as usize],
            trail: Vec::new(),
            dirty: Vec::new(),
            guards: Vec::new(),
            ra_cut_budget: p.config.ra_cuts,
            regalloc_budget: p.config.regalloc_budget,
            mii: p.mii,
            ra_failures: 0,
            last_ra_error: None,
            decisions: 0,
            conflicts: 0,
            propagations: 0,
            steps: 0,
        }
    }

    fn hop_ok(&self, from_pe: usize, to_pe: usize) -> bool {
        self.adj[from_pe * self.num_pes + to_pe]
    }

    fn slot(&self, pe: usize, cycle: u32) -> usize {
        pe * self.ii as usize + cycle as usize
    }

    /// Uniform limit poll, same cadence as the SAT core.
    fn poll(&self) -> Option<Halt> {
        if self.limits.stop_requested() {
            return Some(Halt::Cancelled);
        }
        if let Some(dl) = self.limits.deadline {
            if Instant::now() >= dl {
                return Some(Halt::Deadline);
            }
        }
        None
    }

    /// Is `(pe, cycle)` inside the window of `guard` (excluding the
    /// producer itself, which legally occupies the window's base slot)?
    fn in_guard(&self, guard: &Guard, node: usize, pe: usize, cycle: u32) -> bool {
        if guard.pe != pe || node == guard.src {
            return false;
        }
        (1..guard.delta).any(|k| (guard.cycle + k) % self.ii == cycle)
    }

    /// The timing/adjacency check for edge `e` with both endpoints
    /// placed.
    fn edge_ok(&self, src: &Cand, dst: &Cand, distance: u32) -> bool {
        let delta = dst.time - src.time + i64::from(distance) * i64::from(self.ii);
        delta >= 1 && delta <= i64::from(self.ii) && self.hop_ok(src.pe, dst.pe)
    }

    /// Prunes candidate `ci` of node `m`, recording it on the trail.
    fn prune(&mut self, m: usize, ci: usize) {
        if self.active[m][ci] {
            self.active[m][ci] = false;
            self.active_count[m] -= 1;
            self.trail.push((m, ci));
            self.propagations += 1;
        }
    }

    /// Checks candidate `ci` for `node` against the assigned prefix,
    /// then commits it and forward-prunes the unassigned domains.
    /// Returns `false` (no state change) if the candidate is
    /// inconsistent with the assignment.
    fn assign(&mut self, node: usize, ci: usize) -> bool {
        let cand = self.cands[node][ci];
        if self.slot_occ[self.slot(cand.pe, cand.cycle)].is_some() {
            return false;
        }
        // Existing output-register windows forbid this slot?
        for g in &self.guards {
            if self.in_guard(g, node, cand.pe, cand.cycle) {
                return false;
            }
        }
        // Edges whose second endpoint this assignment closes: timing,
        // adjacency, and (cross-PE) a clear output-register window.
        let nid = NodeId(node as u32);
        let mut new_guards: Vec<Guard> = Vec::new();
        for eid in self
            .dfg
            .in_edges(nid)
            .into_iter()
            .chain(self.dfg.out_edges(nid))
        {
            let e = self.dfg.edge(eid);
            let (s, d) = (e.src.index(), e.dst.index());
            let other = if s == node { d } else { s };
            if other == node {
                // Self-dependency: distance 1 (checked at prepare), so
                // Δ = II and the transfer stays on-PE. Always fine.
                continue;
            }
            let Some(oi) = self.assigned[other] else {
                continue;
            };
            let o = self.cands[other][oi];
            let (sc, dc) = if s == node { (cand, o) } else { (o, cand) };
            if !self.edge_ok(&sc, &dc, e.distance) {
                return false;
            }
            if sc.pe != dc.pe {
                let delta = (dc.time - sc.time + i64::from(e.distance) * i64::from(self.ii)) as u32;
                let guard = Guard {
                    src: s,
                    pe: sc.pe,
                    cycle: sc.cycle,
                    delta,
                };
                // The window must already be clear of assigned nodes…
                for k in 1..delta {
                    let w = self.slot(sc.pe, (sc.cycle + k) % self.ii);
                    if let Some(m) = self.slot_occ[w] {
                        if m != s {
                            return false;
                        }
                    }
                }
                new_guards.push(guard);
            }
        }
        // Commit.
        self.assigned[node] = Some(ci);
        self.num_assigned += 1;
        let taken = self.slot(cand.pe, cand.cycle);
        self.slot_occ[taken] = Some(node);
        // Forward-check the unassigned domains.
        self.dirty.clear();
        for m in 0..self.num_nodes {
            if self.assigned[m].is_some() {
                continue;
            }
            let before = self.active_count[m];
            for mi in 0..self.cands[m].len() {
                if !self.active[m][mi] {
                    continue;
                }
                let mc = self.cands[m][mi];
                // …the taken slot (injectivity),
                if mc.pe == cand.pe && mc.cycle == cand.cycle {
                    self.prune(m, mi);
                    continue;
                }
                // …new output-register windows,
                if new_guards
                    .iter()
                    .any(|g| self.in_guard(g, m, mc.pe, mc.cycle))
                {
                    self.prune(m, mi);
                    continue;
                }
                // …and timing/adjacency along edges to the new node.
                let mid = NodeId(m as u32);
                let mut dead = false;
                for eid in self.dfg.in_edges(mid) {
                    let e = self.dfg.edge(eid);
                    if e.src.index() == node && !self.edge_ok(&cand, &mc, e.distance) {
                        dead = true;
                        break;
                    }
                }
                if !dead {
                    for eid in self.dfg.out_edges(mid) {
                        let e = self.dfg.edge(eid);
                        if e.dst.index() == node && !self.edge_ok(&mc, &cand, e.distance) {
                            dead = true;
                            break;
                        }
                    }
                }
                if dead {
                    self.prune(m, mi);
                }
            }
            if self.active_count[m] < before {
                self.dirty.push(m);
            }
        }
        self.guards.extend(new_guards);
        true
    }

    /// Maintains arc consistency over the timing/adjacency constraints:
    /// starting from `dirty` (nodes whose domains just shrank), prune
    /// every unassigned candidate left without a support in a
    /// constraining neighbour's domain, to a fixpoint. All prunes land
    /// on the trail; returns `false` on a domain wipe-out (the branch is
    /// dead). Sound for the exactness of `Unsat`: a value without
    /// support under one edge constraint can appear in no embedding.
    fn propagate(&mut self, dirty: Vec<usize>) -> bool {
        let mut queue: std::collections::VecDeque<usize> = dirty.into();
        let mut queued = vec![false; self.num_nodes];
        for &x in &queue {
            queued[x] = true;
        }
        while let Some(x) = queue.pop_front() {
            queued[x] = false;
            if self.active_count[x] == 0 && self.assigned[x].is_none() {
                return false;
            }
            let xid = NodeId(x as u32);
            for eid in self
                .dfg
                .in_edges(xid)
                .into_iter()
                .chain(self.dfg.out_edges(xid))
            {
                let e = self.dfg.edge(eid);
                let (s, d) = (e.src.index(), e.dst.index());
                let y = if s == x { d } else { s };
                if y == x || self.assigned[y].is_some() || self.assigned[x].is_some() {
                    continue;
                }
                let y_is_src = s == y;
                let mut changed = false;
                for yi in 0..self.cands[y].len() {
                    if !self.active[y][yi] {
                        continue;
                    }
                    let yc = self.cands[y][yi];
                    let supported = (0..self.cands[x].len()).any(|xi| {
                        if !self.active[x][xi] {
                            return false;
                        }
                        let xc = self.cands[x][xi];
                        if y_is_src {
                            self.edge_ok(&yc, &xc, e.distance)
                        } else {
                            self.edge_ok(&xc, &yc, e.distance)
                        }
                    });
                    if !supported {
                        self.prune(y, yi);
                        changed = true;
                        if self.active_count[y] == 0 {
                            return false;
                        }
                    }
                }
                if changed && !queued[y] {
                    queued[y] = true;
                    queue.push_back(y);
                }
            }
        }
        true
    }

    /// Reverts one [`Search::assign`]: trail prunes, guards, occupancy.
    fn undo(&mut self, node: usize, trail_mark: usize, guard_mark: usize) {
        while self.trail.len() > trail_mark {
            let (m, ci) = self.trail.pop().expect("trail above mark");
            self.active[m][ci] = true;
            self.active_count[m] += 1;
        }
        self.guards.truncate(guard_mark);
        let ci = self.assigned[node].take().expect("undoing an assignment");
        let cand = self.cands[node][ci];
        let freed = self.slot(cand.pe, cand.cycle);
        self.slot_occ[freed] = None;
        self.num_assigned -= 1;
    }

    /// Most-constrained unassigned node (fail-first).
    fn pick_node(&self) -> usize {
        let mut best = usize::MAX;
        let mut best_count = usize::MAX;
        for n in 0..self.num_nodes {
            if self.assigned[n].is_none() && self.active_count[n] < best_count {
                best = n;
                best_count = self.active_count[n];
            }
        }
        best
    }

    /// A complete embedding: decode, validate, allocate registers.
    fn complete(&mut self) -> SearchResult {
        let placements: Vec<Placement> = (0..self.num_nodes)
            .map(|n| {
                let c = self.cands[n][self.assigned[n].expect("complete assignment")];
                Placement {
                    pe: PeId(c.pe as u16),
                    cycle: c.cycle,
                    fold: c.fold,
                }
            })
            .collect();
        let transfers: Vec<TransferKind> = self
            .dfg
            .edges()
            .map(|(_, e)| {
                if placements[e.src.index()].pe == placements[e.dst.index()].pe {
                    TransferKind::SamePeRegister
                } else {
                    TransferKind::NeighborOutput
                }
            })
            .collect();
        let mapping = Mapping {
            ii: self.ii,
            folds: self.folds,
            placements,
            transfers,
        };
        if let Err(violations) = validate_mapping(self.dfg, self.cgra, &mapping) {
            return SearchResult::Halt(Halt::Internal(format!(
                "morph embedding failed validation: {violations:?}"
            )));
        }
        match allocate_registers(self.dfg, self.cgra, &mapping, self.regalloc_budget) {
            Ok(registers) => SearchResult::Found(Box::new(MappedLoop {
                mapping,
                registers,
                mii: self.mii,
            })),
            Err(e) => {
                self.ra_failures += 1;
                self.last_ra_error = Some(e);
                if self.ra_failures > self.ra_cut_budget {
                    SearchResult::Halt(Halt::RaBudget)
                } else {
                    // Keep searching: some other embedding may allocate.
                    SearchResult::Dead
                }
            }
        }
    }

    fn search(&mut self) -> SearchResult {
        if self.num_assigned == self.num_nodes {
            return self.complete();
        }
        let node = self.pick_node();
        let order: Vec<usize> = (0..self.cands[node].len())
            .filter(|&ci| self.active[node][ci])
            .collect();
        for ci in order {
            self.steps += 1;
            if self.steps.is_multiple_of(LIMIT_POLL_INTERVAL) {
                if let Some(h) = self.poll() {
                    return SearchResult::Halt(h);
                }
            }
            self.decisions += 1;
            let trail_mark = self.trail.len();
            let guard_mark = self.guards.len();
            if self.assign(node, ci) {
                let dirty = std::mem::take(&mut self.dirty);
                if self.propagate(dirty) {
                    match self.search() {
                        SearchResult::Dead => {}
                        other => return other,
                    }
                }
                self.undo(node, trail_mark, guard_mark);
            }
            self.steps += 1;
            self.conflicts += 1;
            if let Some(max) = self.limits.max_conflicts {
                if self.conflicts >= max {
                    return SearchResult::Halt(Halt::ConflictLimit);
                }
            }
        }
        SearchResult::Dead
    }

    fn solver_stats(&self) -> SolverStats {
        SolverStats {
            decisions: self.decisions,
            conflicts: self.conflicts,
            propagations: self.propagations,
            ..SolverStats::default()
        }
    }

    fn encode_stats(&self) -> EncodeStats {
        EncodeStats {
            placement_vars: self.cands.iter().map(Vec::len).sum(),
            total_vars: self.cands.iter().map(Vec::len).sum(),
            ..EncodeStats::default()
        }
    }
}

/// Attempts one candidate II for a prepared session; the
/// [`satmapit_core::PreparedMapper::attempt_ii`] contract.
pub(crate) fn attempt(
    p: &PreparedMorph<'_>,
    ii: u32,
    limits: &SolveLimits,
) -> Result<AttemptReport, MapFailure> {
    let t_ii = Instant::now();
    // An already-raised stop flag makes the attempt moot; bail before
    // paying for the KMS fold and domain construction (the search polls
    // again on its own cadence).
    if limits.stop_requested() {
        return Ok(AttemptReport {
            attempt: IiAttempt {
                ii,
                encode_stats: EncodeStats::default(),
                outcome: AttemptOutcome::SolverBudget(StopReason::Cancelled),
                solver_stats: None,
                ra_cuts: 0,
                elapsed: t_ii.elapsed(),
            },
            mapped: None,
            proven_unmappable: false,
        });
    }
    if p.proven_unmappable() {
        return Ok(AttemptReport {
            attempt: IiAttempt {
                ii,
                encode_stats: EncodeStats::default(),
                outcome: AttemptOutcome::Unsat,
                solver_stats: None,
                ra_cuts: 0,
                elapsed: t_ii.elapsed(),
            },
            mapped: None,
            proven_unmappable: true,
        });
    }
    let kms = Kms::build_with_slack(&p.ms, ii, p.config.slack.slack(ii));
    let mut s = Search::new(p, &kms, ii, limits);
    // Root-level arc consistency; a wipe-out here is already a proof.
    let result = if s.propagate((0..s.num_nodes).collect()) {
        s.search()
    } else {
        SearchResult::Dead
    };
    let report = |s: &Search<'_>, outcome, mapped, stats| AttemptReport {
        attempt: IiAttempt {
            ii,
            encode_stats: s.encode_stats(),
            outcome,
            solver_stats: stats,
            ra_cuts: s.ra_failures,
            elapsed: t_ii.elapsed(),
        },
        mapped,
        proven_unmappable: false,
    };
    match result {
        SearchResult::Found(mapped) => Ok(report(
            &s,
            AttemptOutcome::Mapped,
            Some(*mapped),
            Some(s.solver_stats()),
        )),
        SearchResult::Dead => {
            // The space is exhausted. With register-allocation failures
            // along the way this is a give-up, not a proof — exactly the
            // SAT ladder's Unsat-after-cuts semantics.
            let outcome = match s.last_ra_error {
                Some(e) if s.ra_failures > 0 => AttemptOutcome::RegAllocFailed(e),
                _ => AttemptOutcome::Unsat,
            };
            Ok(report(&s, outcome, None, Some(s.solver_stats())))
        }
        SearchResult::Halt(Halt::RaBudget) => {
            let e = s.last_ra_error.expect("budget implies a failure");
            Ok(report(
                &s,
                AttemptOutcome::RegAllocFailed(e),
                None,
                Some(s.solver_stats()),
            ))
        }
        SearchResult::Halt(Halt::Cancelled) => Ok(report(
            &s,
            AttemptOutcome::SolverBudget(StopReason::Cancelled),
            None,
            Some(s.solver_stats()),
        )),
        SearchResult::Halt(Halt::ConflictLimit) => Ok(report(
            &s,
            AttemptOutcome::SolverBudget(StopReason::ConflictLimit),
            None,
            Some(s.solver_stats()),
        )),
        SearchResult::Halt(Halt::Deadline) => Err(MapFailure::Timeout { at_ii: ii }),
        SearchResult::Halt(Halt::Internal(msg)) => Err(MapFailure::Internal(msg)),
    }
}

/// The PE-level relaxation probe: ignore time entirely and ask whether
/// *any* node→PE assignment satisfies op support and per-edge
/// adjacency-or-same. Every valid mapping at every II induces one, so an
/// infeasible relaxation proves the loop unmappable outright — the
/// monomorphism twin of the SAT ladder's II-invariant prefix core.
///
/// Bounded by `budget` node expansions; past it the probe answers
/// `false` ("not proven"), which is always sound.
pub(crate) fn pe_relaxation_infeasible(dfg: &Dfg, cgra: &Cgra, budget: u64) -> bool {
    struct Relax<'a> {
        cgra: &'a Cgra,
        domains: Vec<Vec<PeId>>,
        /// Per node: the other endpoints of its non-self edges.
        contacts: Vec<Vec<usize>>,
        assignment: Vec<Option<PeId>>,
        expansions: u64,
        budget: u64,
    }
    impl Relax<'_> {
        /// `Some(true)` = a PE assignment exists, `Some(false)` = none
        /// exists, `None` = budget exhausted (unknown).
        fn feasible(&mut self, node: usize) -> Option<bool> {
            if node == self.assignment.len() {
                return Some(true);
            }
            for i in 0..self.domains[node].len() {
                let pe = self.domains[node][i];
                self.expansions += 1;
                if self.expansions > self.budget {
                    return None;
                }
                let ok = self.contacts[node].iter().all(|&m| {
                    self.assignment[m].is_none_or(|mp| self.cgra.adjacent_or_same(pe, mp))
                });
                if !ok {
                    continue;
                }
                self.assignment[node] = Some(pe);
                match self.feasible(node + 1) {
                    Some(true) => return Some(true),
                    Some(false) => {}
                    None => return None,
                }
                self.assignment[node] = None;
            }
            Some(false)
        }
    }

    let n = dfg.num_nodes();
    let domains: Vec<Vec<PeId>> = dfg
        .node_ids()
        .map(|id| cgra.supported_pes(dfg.node(id).op))
        .collect();
    if domains.iter().any(Vec::is_empty) {
        return true;
    }
    let mut contacts = vec![Vec::new(); n];
    for (_, e) in dfg.edges() {
        if e.src != e.dst {
            contacts[e.src.index()].push(e.dst.index());
            contacts[e.dst.index()].push(e.src.index());
        }
    }
    let mut relax = Relax {
        cgra,
        domains,
        contacts,
        assignment: vec![None; n],
        expansions: 0,
        budget,
    };
    matches!(relax.feasible(0), Some(false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use satmapit_dfg::Op;

    fn chain(n: usize) -> Dfg {
        let mut dfg = Dfg::new("chain");
        let mut prev = dfg.add_const(1);
        for _ in 1..n {
            let next = dfg.add_node(Op::Neg);
            dfg.add_edge(prev, next, 0);
            prev = next;
        }
        dfg
    }

    #[test]
    fn slot_graph_has_one_arc_per_hop() {
        let cgra = Cgra::square(2);
        let g = slot_graph(&cgra, 3);
        assert_eq!(g.num_nodes(), 4 * 3);
        // Each of the 12 slots hops to itself-next-cycle plus each
        // neighbour-next-cycle (2 neighbours per PE on a 2x2 mesh).
        assert_eq!(g.num_edges(), 12 * 3);
    }

    #[test]
    fn hop_relation_matches_adjacent_or_same() {
        let cgra = Cgra::square(3);
        let g = slot_graph(&cgra, 2);
        let adj = hop_relation(&cgra, 2, &g);
        for a in cgra.pes() {
            for b in cgra.pes() {
                assert_eq!(
                    adj[a.index() * cgra.num_pes() + b.index()],
                    cgra.adjacent_or_same(a, b),
                    "{a:?} -> {b:?}"
                );
            }
        }
    }

    #[test]
    fn relaxation_feasible_for_a_chain() {
        let dfg = chain(4);
        assert!(!pe_relaxation_infeasible(&dfg, &Cgra::square(2), 100_000));
    }
}
