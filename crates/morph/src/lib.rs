//! # satmapit-morph
//!
//! The monomorphism mapper: an exact, space/time-decoupled CGRA
//! modulo-scheduling backend in the style of Tirelli & Otoni,
//! *"Monomorphism-based CGRA Mapping via Space and Time Decoupling"* —
//! the second [`Backend`] of the workspace, raced against the SAT ladder
//! by `satmapit-engine`.
//!
//! ## Approach
//!
//! Where the SAT backend encodes placement *and* schedule into one CNF,
//! this backend decouples them:
//!
//! 1. **Time first.** For a candidate II, fold the ASAP/ALAP mobility
//!    windows into the kernel mobility schedule
//!    ([`satmapit_schedule::Kms`]) — exactly the folding the SAT encoder
//!    uses, so both backends search the *same* candidate space and their
//!    verdicts are interchangeable.
//! 2. **Space second.** Build the time-expanded routing graph of the
//!    CGRA (one vertex per `(PE, kernel cycle)` slot, one arc per
//!    single-cycle value hop — see [`search`]) and look for a **subgraph
//!    monomorphism**: an injective-per-slot embedding of the DFG into
//!    the slot graph that respects op support, slot exclusivity,
//!    dependency timing windows and the output-register lifetime rule —
//!    precisely the rules `satmapit_core::validate_mapping` re-checks.
//!
//! The search is exact backtracking with forward checking: prune
//! candidate slots of unassigned nodes on every assignment, pick the
//! most-constrained node next, and undo through a trail. Exhausting the
//! space **proves** the II infeasible (the report's `Unsat` is a real
//! proof the engine may exchange with the SAT backend as a bound);
//! register-allocation failures are retried up to
//! [`MapperConfig::ra_cuts`] embeddings, after which the II is declared
//! `RegAllocFailed` — definitive, but not a proof, mirroring the SAT
//! backend's cut budget.
//!
//! ## Cancellation
//!
//! Attempts honor [`SolveLimits`] with the same cadence as the SAT
//! core: the stop flag and deadline are polled every
//! [`satmapit_sat::LIMIT_POLL_INTERVAL`] search steps (assignments and
//! dead-ends both count), so a race can cancel a morph attempt as
//! promptly as a SAT one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod search;

use satmapit_cgra::Cgra;
use satmapit_core::encoder::EncodeError;
use satmapit_core::{AttemptReport, Backend, MapFailure, MapOutcome, Mapper, MapperConfig};
use satmapit_dfg::Dfg;
use satmapit_sat::SolveLimits;
use satmapit_schedule::{mii, MobilitySchedule};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// The monomorphism mapper: same problem types and configuration as
/// [`satmapit_core::Mapper`], different search engine.
///
/// Only the schedule-shaped configuration applies here — `max_ii`,
/// `start_ii`, `timeout`, `slack`, `regalloc_budget`, `ra_cuts`. The
/// SAT-specific knobs (`amo`, `solver`, `incremental`, `rung_transfer`,
/// `register_pressure`, `max_conflicts_per_ii` as a *conflict* budget —
/// here it bounds search dead-ends) are ignored or reinterpreted as
/// documented on [`PreparedMorph::attempt_ii`].
#[derive(Debug, Clone)]
pub struct MorphMapper<'a> {
    dfg: &'a Dfg,
    cgra: &'a Cgra,
    config: MapperConfig,
}

impl<'a> MorphMapper<'a> {
    /// A mapper with the default configuration.
    pub fn new(dfg: &'a Dfg, cgra: &'a Cgra) -> MorphMapper<'a> {
        MorphMapper {
            dfg,
            cgra,
            config: MapperConfig::default(),
        }
    }

    /// Replaces the configuration.
    pub fn with_config(mut self, config: MapperConfig) -> MorphMapper<'a> {
        self.config = config;
        self
    }

    /// Sets a wall-clock budget for [`MorphMapper::run`].
    pub fn with_timeout(mut self, timeout: Duration) -> MorphMapper<'a> {
        self.config.timeout = Some(timeout);
        self
    }

    /// Validates the problem and precomputes the mobility schedule and
    /// MII, yielding a shareable attempt session.
    ///
    /// # Errors
    ///
    /// The same terminal conditions as [`Mapper::prepare`]: an invalid
    /// DFG, or a memory operation with zero memory-capable PEs.
    pub fn prepare(&self) -> Result<PreparedMorph<'a>, MapFailure> {
        // Delegate the shared problem checks (DFG validation, the
        // memory-policy MII hole) to the SAT mapper's prepare — the two
        // backends must agree on what is structurally solvable.
        Mapper::new(self.dfg, self.cgra)
            .with_config(self.config.clone())
            .prepare()?;
        let ms = MobilitySchedule::compute(self.dfg).expect("prepare validated the DFG");
        let mii_v = mii(self.dfg, self.cgra).expect("prepare computed an MII");
        // Structural rejections the SAT path reports at encode time are
        // II-independent; surface them at prepare so every later attempt
        // is spared the check.
        for n in self.dfg.node_ids() {
            let op = self.dfg.node(n).op;
            if !self.cgra.pes().any(|p| self.cgra.supports_op(p, op)) {
                return Err(MapFailure::Structural(EncodeError::NoPeForOp { node: n }));
            }
        }
        for (eid, e) in self.dfg.edges() {
            if e.src == e.dst && e.distance != 1 {
                return Err(MapFailure::Structural(EncodeError::SelfEdgeDistance {
                    edge: eid,
                }));
            }
        }
        Ok(PreparedMorph {
            dfg: self.dfg,
            cgra: self.cgra,
            config: self.config.clone(),
            ms,
            mii: mii_v,
            relaxation_infeasible: OnceLock::new(),
        })
    }

    /// Runs the iterative II search (paper Fig. 3's outer loop) with the
    /// monomorphism engine on every rung.
    pub fn run(&self) -> MapOutcome {
        if !satmapit_obs::trace::enabled() {
            return self.run_inner();
        }
        let mut span = satmapit_obs::trace::Span::begin(
            satmapit_obs::trace::Category::Ladder,
            &format!("ladder {} (morph)", self.dfg.name()),
        );
        let outcome = self.run_inner();
        match &outcome.result {
            Ok(mapped) => {
                span.arg_str("status", "mapped");
                span.arg("ii", i64::from(mapped.mapping.ii));
            }
            Err(failure) => span.arg_str("status", &format!("{failure:?}")),
        }
        outcome
    }

    fn run_inner(&self) -> MapOutcome {
        let t0 = Instant::now();
        let deadline = self.config.timeout.map(|d| t0 + d);
        let mut attempts = Vec::new();
        let prepared = match self.prepare() {
            Ok(p) => p,
            Err(e) => {
                return MapOutcome {
                    result: Err(e),
                    attempts,
                    elapsed: t0.elapsed(),
                };
            }
        };
        let mut ii = prepared.start_ii();
        while ii <= self.config.max_ii {
            if let Some(dl) = deadline {
                if Instant::now() >= dl {
                    return MapOutcome {
                        result: Err(MapFailure::Timeout { at_ii: ii }),
                        attempts,
                        elapsed: t0.elapsed(),
                    };
                }
            }
            let mut limits = SolveLimits::none();
            if let Some(dl) = deadline {
                limits = limits.with_deadline(dl);
            }
            if let Some(c) = self.config.max_conflicts_per_ii {
                limits = limits.with_max_conflicts(c);
            }
            match prepared.attempt_ii(ii, &limits) {
                Err(e) => {
                    return MapOutcome {
                        result: Err(e),
                        attempts,
                        elapsed: t0.elapsed(),
                    };
                }
                Ok(report) => {
                    let mapped = report.mapped;
                    let unmappable = report.proven_unmappable;
                    attempts.push(report.attempt);
                    if let Some(m) = mapped {
                        return MapOutcome {
                            result: Ok(m),
                            attempts,
                            elapsed: t0.elapsed(),
                        };
                    }
                    if unmappable {
                        return MapOutcome {
                            result: Err(MapFailure::IiCapReached {
                                cap: self.config.max_ii,
                            }),
                            attempts,
                            elapsed: t0.elapsed(),
                        };
                    }
                }
            }
            ii += 1;
        }
        MapOutcome {
            result: Err(MapFailure::IiCapReached {
                cap: self.config.max_ii,
            }),
            attempts,
            elapsed: t0.elapsed(),
        }
    }
}

/// Node-expansion budget for the PE-level relaxation probe behind
/// [`PreparedMorph::proven_unmappable`]. The relaxation is tiny (one
/// variable per DFG node, one value per PE), but its worst case is still
/// exponential; past this many expansions the probe gives up and answers
/// "not proven" — always sound, never wrong.
const RELAXATION_BUDGET: u64 = 200_000;

/// A prepared monomorphism session: problem validated, mobility windows
/// and MII precomputed. Shareable across threads; every
/// [`PreparedMorph::attempt_ii`] owns its search state.
#[derive(Debug)]
pub struct PreparedMorph<'a> {
    dfg: &'a Dfg,
    cgra: &'a Cgra,
    config: MapperConfig,
    ms: MobilitySchedule,
    mii: u32,
    relaxation_infeasible: OnceLock<bool>,
}

impl<'a> PreparedMorph<'a> {
    /// The MII lower bound (`max(ResMII, RecMII)`).
    pub fn mii(&self) -> u32 {
        self.mii
    }

    /// The first II the search considers (configured start or MII).
    pub fn start_ii(&self) -> u32 {
        self.config.start_ii.unwrap_or(self.mii).max(1)
    }

    /// The configuration this session attempts IIs under.
    pub fn config(&self) -> &MapperConfig {
        &self.config
    }

    /// Replaces the configuration. The precomputed schedule is reused.
    pub fn with_config(mut self, config: MapperConfig) -> PreparedMorph<'a> {
        self.config = config;
        self
    }

    /// `true` when the loop is proven unmappable at *every* II.
    ///
    /// The probe is the monomorphism twin of the SAT ladder's
    /// II-invariant PE-level prefix: drop all timing and ask only
    /// whether *some* assignment of nodes to PEs satisfies op support
    /// and per-edge adjacency. Those constraints are implied by every
    /// valid mapping at every II, so an infeasible relaxation condemns
    /// the whole ladder. Computed once per session (bounded by a fixed
    /// step budget — on blow-up the answer is `false`, which merely
    /// declines the shortcut).
    pub fn proven_unmappable(&self) -> bool {
        *self.relaxation_infeasible.get_or_init(|| {
            search::pe_relaxation_infeasible(self.dfg, self.cgra, RELAXATION_BUDGET)
        })
    }

    /// Attempts one candidate II: fold the mobility schedule, search for
    /// a monomorphism embedding, allocate registers.
    ///
    /// The contract is [`satmapit_core::PreparedMapper::attempt_ii`]'s, term for term:
    /// `Err` only for an out-of-range II, a structural failure, an
    /// internal inconsistency, or the deadline in `limits` expiring;
    /// cooperative cancellation comes back as an `Ok` report with
    /// `SolverBudget(Cancelled)`. `limits.max_conflicts` bounds search
    /// dead-ends (the closest analogue of CDCL conflicts);
    /// `limits.share` has no meaning here and is ignored.
    ///
    /// # Errors
    ///
    /// Terminal conditions only, as above.
    pub fn attempt_ii(&self, ii: u32, limits: &SolveLimits) -> Result<AttemptReport, MapFailure> {
        if !satmapit_obs::trace::enabled() {
            return self.attempt_ii_inner(ii, limits);
        }
        let start_us = satmapit_obs::trace::now_us();
        let result = self.attempt_ii_inner(ii, limits);
        satmapit_core::trace_rung_attempt(ii, start_us, &result);
        result
    }

    fn attempt_ii_inner(&self, ii: u32, limits: &SolveLimits) -> Result<AttemptReport, MapFailure> {
        if ii == 0 || ii > self.config.max_ii {
            return Err(MapFailure::InvalidIi {
                ii,
                max_ii: self.config.max_ii,
            });
        }
        search::attempt(self, ii, limits)
    }
}

impl Backend for PreparedMorph<'_> {
    fn name(&self) -> &'static str {
        "morph"
    }

    fn mii(&self) -> u32 {
        PreparedMorph::mii(self)
    }

    fn start_ii(&self) -> u32 {
        PreparedMorph::start_ii(self)
    }

    fn proven_unmappable(&self) -> bool {
        PreparedMorph::proven_unmappable(self)
    }

    fn attempt_ii(&self, ii: u32, limits: &SolveLimits) -> Result<AttemptReport, MapFailure> {
        PreparedMorph::attempt_ii(self, ii, limits)
    }
}
