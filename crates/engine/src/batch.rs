//! The batch frontend: many (kernel × CGRA) jobs over a bounded worker
//! pool, memoized in a content-addressed result cache.

use satmapit_cgra::Cgra;
use satmapit_dfg::Dfg;
use std::collections::{HashMap, HashSet};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use crate::fingerprint::{fingerprint, problem_fingerprint, Fingerprint};
use crate::persist::{self, Appender, StoreKind};
use crate::race::{map_raced_with_bound, EngineOutcome};
use crate::EngineConfig;
use satmapit_core::AttemptOutcome;
use satmapit_obs as obs;

/// One mapping request in a batch.
#[derive(Debug, Clone)]
pub struct Job {
    /// Display name (reported back in the [`BatchItem`]).
    pub name: String,
    /// The loop body to map.
    pub dfg: Dfg,
    /// The target architecture.
    pub cgra: Cgra,
}

impl Job {
    /// A named mapping request.
    pub fn new(name: impl Into<String>, dfg: Dfg, cgra: Cgra) -> Job {
        Job {
            name: name.into(),
            dfg,
            cgra,
        }
    }
}

/// Result of one batch job.
#[derive(Debug, Clone)]
pub struct BatchItem {
    /// The job's display name.
    pub name: String,
    /// Content hash the result is cached under.
    pub fingerprint: Fingerprint,
    /// The mapping outcome (shared with the cache: a repeated request
    /// returns the *same allocation*, so results are byte-identical).
    pub outcome: Arc<EngineOutcome>,
    /// `true` when the result came from the cache without solving.
    pub cached: bool,
    /// Wall-clock time this job took inside the batch (≈0 on cache hits).
    pub elapsed: Duration,
}

/// Cache occupancy and traffic counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Distinct results currently held.
    pub entries: usize,
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that had to solve.
    pub misses: u64,
    /// Problems with a proven II lower bound on record (kept across
    /// execution-config changes and even across results the result cache
    /// refuses to hold, like timeouts).
    pub bound_entries: usize,
    /// Entries that came from the on-disk store at startup (0 without
    /// persistence).
    pub persistent_entries: usize,
    /// Hits answered by an entry loaded from disk — repeat lookups that
    /// never touched the SAT solver in *this* process's lifetime.
    pub persistent_hits: u64,
    /// Misses whose II ladder started from a previously proven lower
    /// bound instead of the MII — rungs below it were skipped unsolved.
    pub bound_starts: u64,
    /// Clause-arena garbage collections across every solve this engine
    /// ran (summed from the per-attempt [`satmapit_sat::SolverStats`]).
    pub gc_runs: u64,
    /// Literal slots reclaimed by those collections, summed likewise.
    pub lits_reclaimed: u64,
    /// The largest post-solve arena waste (in words) any attempt left
    /// behind — an upper bound on how much dead clause memory a single
    /// solver carried at once.
    pub arena_wasted: u64,
    /// Learnt clauses exported to portfolio share pools across every race
    /// this engine ran (cancelled siblings included; see
    /// [`crate::RaceStats::shared_exported`]). 0 with sharing off.
    pub shared_exported: u64,
    /// Sibling clauses imported at restart boundaries, summed likewise.
    pub shared_imported: u64,
    /// Share-pool ring evictions, summed likewise.
    pub shared_dropped: u64,
    /// Races won by a SAT lane (the winning mapping came from the SAT
    /// backend), summed across every solve this engine ran (see
    /// [`crate::RaceStats::sat_wins`]).
    pub sat_wins: u64,
    /// Races won by the morph lane, summed likewise.
    pub morph_wins: u64,
    /// Cross-backend bound exchanges: II closures where one backend's
    /// `Unsat` proof spared the other backend the rung (see
    /// [`crate::RaceStats::bound_exchanges`]). 0 outside
    /// [`crate::BackendKind::Race`].
    pub bound_exchanges: u64,
    /// Result-cache entries evicted by the size bound
    /// ([`crate::CacheLifecycle::max_entries`]), least-recently-used
    /// first. 0 with the default unbounded lifecycle.
    pub evicted_size: u64,
    /// Result-cache entries evicted by the age bound
    /// ([`crate::CacheLifecycle::max_age`]).
    pub evicted_age: u64,
    /// Store-compaction generations completed so far: incremental
    /// compactions triggered by
    /// [`crate::CacheLifecycle::compact_every`] plus explicit
    /// [`Engine::compact_persistent`] calls. 0 without persistence.
    pub compactions: u64,
    /// Failed store appends/fsyncs since startup (0 without
    /// persistence). Solving is unaffected — the failed record simply
    /// is not durable.
    pub append_errors: u64,
    /// fsyncs issued by the append cadence
    /// ([`crate::DurabilityPolicy::fsync_every`]).
    pub fsyncs: u64,
    /// `true` once consecutive append failures crossed
    /// [`crate::DurabilityPolicy::max_append_failures`] and the engine
    /// entered degraded memory-only mode: it keeps answering (and
    /// solving) from memory but no longer touches the disk. Cleared
    /// only by restart.
    pub degraded: bool,
}

/// Where a served result came from.
#[derive(Debug, Clone)]
pub struct Served {
    /// The (shared) outcome.
    pub outcome: Arc<EngineOutcome>,
    /// The content hash the request was looked up under (callers reuse
    /// it instead of re-hashing the problem).
    pub key: Fingerprint,
    /// `true` when no solving happened — the result cache answered.
    pub cached: bool,
    /// `true` when the answering entry was loaded from the on-disk store
    /// (implies `cached`).
    pub persistent: bool,
}

/// One memoized result plus the metadata cache eviction needs.
#[derive(Debug)]
struct CacheEntry {
    outcome: Arc<EngineOutcome>,
    /// When the entry entered this process's cache (by load or solve);
    /// the age bound measures from here.
    inserted: Instant,
    /// Engine-wide access tick at last use; the size bound evicts the
    /// smallest first (least recently used).
    last_used: u64,
}

/// A mapping service: solves through the II-race and memoizes every result
/// under a content hash of (DFG structure, CGRA, configuration), so
/// repeated requests are O(1).
///
/// ```
/// use satmapit_cgra::Cgra;
/// use satmapit_dfg::{Dfg, Op};
/// use satmapit_engine::{Engine, EngineConfig};
/// use std::sync::Arc;
///
/// let mut dfg = Dfg::new("pair");
/// let a = dfg.add_const(1);
/// let b = dfg.add_node(Op::Neg);
/// dfg.add_edge(a, b, 0);
///
/// let engine = Engine::new(EngineConfig::default());
/// let (first, cached) = engine.map(&dfg, &Cgra::square(2));
/// assert!(!cached);
/// let (second, cached) = engine.map(&dfg, &Cgra::square(2));
/// assert!(cached);
/// assert!(Arc::ptr_eq(&first, &second)); // byte-identical result
/// ```
#[derive(Debug)]
pub struct Engine {
    config: EngineConfig,
    cache: Mutex<HashMap<Fingerprint, CacheEntry>>,
    /// Proven II lower bounds per *problem* (see
    /// [`problem_fingerprint`]): `b` means every II below `b` was answered
    /// `Unsat` for that problem; `u32::MAX` means proven unmappable at
    /// every II. Unlike the result cache this survives timeouts — a job
    /// that died at the deadline still donates the rungs it closed, so
    /// the retry starts its ladder higher.
    bounds: Mutex<HashMap<Fingerprint, u32>>,
    hits: AtomicU64,
    misses: AtomicU64,
    persistent_hits: AtomicU64,
    bound_starts: AtomicU64,
    /// Solver-level GC telemetry, summed over every attempt of every
    /// solve this engine ran (see [`CacheStats::gc_runs`] & friends).
    gc_runs: AtomicU64,
    lits_reclaimed: AtomicU64,
    /// Peak post-solve arena waste in words (fetch_max, not a sum).
    arena_wasted: AtomicU64,
    /// Portfolio clause-sharing traffic, summed over every race (see
    /// [`CacheStats::shared_exported`] & friends).
    shared_exported: AtomicU64,
    shared_imported: AtomicU64,
    shared_dropped: AtomicU64,
    /// Cross-backend race outcomes, summed over every race (see
    /// [`CacheStats::sat_wins`] & friends).
    sat_wins: AtomicU64,
    morph_wins: AtomicU64,
    bound_exchanges: AtomicU64,
    /// Monotone access clock for LRU eviction: every cache touch takes
    /// a ticket and stamps the entry.
    tick: AtomicU64,
    /// Entries evicted by the size bound (see
    /// [`CacheStats::evicted_size`]).
    evicted_size: AtomicU64,
    /// Entries evicted by the age bound (see
    /// [`CacheStats::evicted_age`]).
    evicted_age: AtomicU64,
    /// Thundering-herd guard: fingerprints currently being solved. A
    /// lookup that finds its key here waits for the leader to finish and
    /// then re-reads the cache, instead of solving the identical problem
    /// a second time — essential once many service clients submit the
    /// same job concurrently.
    inflight: Mutex<HashSet<Fingerprint>>,
    inflight_cv: Condvar,
    /// Disk persistence, when opened with [`Engine::with_cache_dir`].
    persist: Option<Persistence>,
}

/// Open on-disk stores plus the keys they seeded the caches with.
#[derive(Debug)]
struct Persistence {
    dir: PathBuf,
    results: Mutex<Appender>,
    bounds: Mutex<Appender>,
    /// Result-cache keys that came from disk (lookups hitting these
    /// count as persistent hits; [`Engine::clear_cache`] empties it so a
    /// re-solved key is no longer reported as loaded-from-disk).
    loaded: Mutex<HashSet<Fingerprint>>,
    /// `true` once anything was appended since the last compaction; lets
    /// the drop-time compaction skip rewriting files that are already
    /// exactly the live set.
    dirty: std::sync::atomic::AtomicBool,
    /// Successful appends since the last compaction; when it reaches
    /// [`crate::CacheLifecycle::compact_every`] the appending thread
    /// compacts in place, starting a new generation.
    appends: AtomicU64,
    /// Completed compaction generations (see
    /// [`CacheStats::compactions`]).
    generation: AtomicU64,
    /// Single-flight latch so concurrent append thresholds trigger one
    /// compaction, not a pile-up behind the store locks.
    compacting: std::sync::atomic::AtomicBool,
    /// Failed store appends/fsyncs since startup (monotone; see
    /// [`CacheStats::append_errors`]).
    append_errors: AtomicU64,
    /// Consecutive append failures — reset by any success; crossing
    /// [`crate::DurabilityPolicy::max_append_failures`] trips
    /// `degraded`.
    failure_streak: AtomicU64,
    /// One-way latch: once set, the engine stops touching the disk
    /// entirely (no appends, no compaction) and serves from memory only
    /// until restart.
    degraded: std::sync::atomic::AtomicBool,
    /// fsyncs issued by the append cadence (see [`CacheStats::fsyncs`]).
    fsyncs: AtomicU64,
    /// Load-time diagnostics: skipped records, ignored files.
    warnings: Vec<String>,
}

/// Locks an engine-internal mutex, recovering from poison. Every
/// structure behind these mutexes is mutated by single inserts/clears
/// that leave it coherent even if the owning thread panics mid-solve,
/// so a panicking worker must degrade to one failed request — never
/// wedge the shared engine for every later caller (the lock-discipline
/// invariant; see docs/lint.md).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::new(EngineConfig::default())
    }
}

impl Engine {
    /// An engine with the given configuration and an empty, in-memory-only
    /// cache.
    pub fn new(config: EngineConfig) -> Engine {
        Engine {
            config,
            cache: Mutex::new(HashMap::new()),
            bounds: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            persistent_hits: AtomicU64::new(0),
            bound_starts: AtomicU64::new(0),
            gc_runs: AtomicU64::new(0),
            lits_reclaimed: AtomicU64::new(0),
            arena_wasted: AtomicU64::new(0),
            shared_exported: AtomicU64::new(0),
            shared_imported: AtomicU64::new(0),
            shared_dropped: AtomicU64::new(0),
            sat_wins: AtomicU64::new(0),
            morph_wins: AtomicU64::new(0),
            bound_exchanges: AtomicU64::new(0),
            tick: AtomicU64::new(0),
            evicted_size: AtomicU64::new(0),
            evicted_age: AtomicU64::new(0),
            inflight: Mutex::new(HashSet::new()),
            inflight_cv: Condvar::new(),
            persist: None,
        }
    }

    /// An engine whose result and proven-II-bound caches are backed by the
    /// versioned, checksummed stores in `dir` (see [`crate::persist`]):
    /// existing records seed the caches, every miss appends its record, and
    /// [`Engine::compact_persistent`] (also run on drop) rewrites the files
    /// from the live set. Corrupt or truncated records are skipped and
    /// reported through [`Engine::load_warnings`], never trusted.
    ///
    /// # Errors
    ///
    /// Fails only on real I/O errors (unreadable directory, failing
    /// appends); corruption is downgraded to warnings.
    pub fn with_cache_dir(config: EngineConfig, dir: &Path) -> io::Result<Engine> {
        std::fs::create_dir_all(dir)?;
        // Sweep temp files stranded by a compaction that crashed before
        // its rename — they hold a superseded snapshot at best.
        let mut warnings = persist::clean_stale_tmp(dir)?;
        let (results, load_warnings) = persist::load_results(dir)?;
        warnings.extend(load_warnings);
        let (bounds, bound_warnings) = persist::load_bounds(dir)?;
        warnings.extend(bound_warnings);
        let loaded: HashSet<Fingerprint> = results.keys().copied().collect();
        let persistence = Persistence {
            results: Mutex::new(Appender::open(
                &dir.join(persist::RESULTS_FILE),
                StoreKind::Results,
            )?),
            bounds: Mutex::new(Appender::open(
                &dir.join(persist::BOUNDS_FILE),
                StoreKind::Bounds,
            )?),
            dir: dir.to_path_buf(),
            loaded: Mutex::new(loaded),
            dirty: std::sync::atomic::AtomicBool::new(false),
            appends: AtomicU64::new(0),
            generation: AtomicU64::new(0),
            compacting: std::sync::atomic::AtomicBool::new(false),
            append_errors: AtomicU64::new(0),
            failure_streak: AtomicU64::new(0),
            degraded: std::sync::atomic::AtomicBool::new(false),
            fsyncs: AtomicU64::new(0),
            warnings,
        };
        // Loaded entries all share one birth instant and tick 0: the age
        // bound measures residency in *this* process, and an untouched
        // loaded entry is the first LRU victim.
        let now = Instant::now();
        let cache: HashMap<Fingerprint, CacheEntry> = results
            .into_iter()
            .map(|(key, outcome)| {
                (
                    key,
                    CacheEntry {
                        outcome,
                        inserted: now,
                        last_used: 0,
                    },
                )
            })
            .collect();
        Ok(Engine {
            config,
            cache: Mutex::new(cache),
            bounds: Mutex::new(bounds),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            persistent_hits: AtomicU64::new(0),
            bound_starts: AtomicU64::new(0),
            gc_runs: AtomicU64::new(0),
            lits_reclaimed: AtomicU64::new(0),
            arena_wasted: AtomicU64::new(0),
            shared_exported: AtomicU64::new(0),
            shared_imported: AtomicU64::new(0),
            shared_dropped: AtomicU64::new(0),
            sat_wins: AtomicU64::new(0),
            morph_wins: AtomicU64::new(0),
            bound_exchanges: AtomicU64::new(0),
            tick: AtomicU64::new(0),
            evicted_size: AtomicU64::new(0),
            evicted_age: AtomicU64::new(0),
            inflight: Mutex::new(HashSet::new()),
            inflight_cv: Condvar::new(),
            persist: Some(persistence),
        })
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The cache directory backing this engine, if persistence is on.
    pub fn cache_dir(&self) -> Option<&Path> {
        self.persist.as_ref().map(|p| p.dir.as_path())
    }

    /// Diagnostics from loading the on-disk stores (skipped corrupt
    /// records, ignored foreign files). Empty without persistence.
    pub fn load_warnings(&self) -> &[String] {
        self.persist.as_ref().map_or(&[], |p| &p.warnings)
    }

    /// Cache occupancy and hit/miss counters.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            // ordering: every atomic load below reads an independent,
            // monotone telemetry counter; the snapshot is advisory and
            // needs no cross-counter consistency.
            entries: lock(&self.cache).len(),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            bound_entries: lock(&self.bounds).len(),
            persistent_entries: self.persist.as_ref().map_or(0, |p| lock(&p.loaded).len()),
            persistent_hits: self.persistent_hits.load(Ordering::Relaxed),
            bound_starts: self.bound_starts.load(Ordering::Relaxed),
            gc_runs: self.gc_runs.load(Ordering::Relaxed),
            lits_reclaimed: self.lits_reclaimed.load(Ordering::Relaxed),
            arena_wasted: self.arena_wasted.load(Ordering::Relaxed),
            shared_exported: self.shared_exported.load(Ordering::Relaxed),
            shared_imported: self.shared_imported.load(Ordering::Relaxed),
            shared_dropped: self.shared_dropped.load(Ordering::Relaxed),
            sat_wins: self.sat_wins.load(Ordering::Relaxed),
            morph_wins: self.morph_wins.load(Ordering::Relaxed),
            bound_exchanges: self.bound_exchanges.load(Ordering::Relaxed),
            evicted_size: self.evicted_size.load(Ordering::Relaxed),
            evicted_age: self.evicted_age.load(Ordering::Relaxed),
            compactions: self
                .persist
                .as_ref()
                .map_or(0, |p| p.generation.load(Ordering::Relaxed)),
            append_errors: self
                .persist
                .as_ref()
                .map_or(0, |p| p.append_errors.load(Ordering::Relaxed)),
            fsyncs: self
                .persist
                .as_ref()
                .map_or(0, |p| p.fsyncs.load(Ordering::Relaxed)),
            degraded: self.degraded(),
        }
    }

    /// `true` once the engine tripped into degraded memory-only mode:
    /// consecutive store-append failures crossed
    /// [`crate::DurabilityPolicy::max_append_failures`], so disk writes
    /// are disabled and every answer comes from (and stays in) memory.
    /// Always `false` without persistence; cleared only by restart.
    pub fn degraded(&self) -> bool {
        // ordering: one-way advisory latch; a racing reader seeing the
        // old value only costs one more append attempt.
        self.persist
            .as_ref()
            .is_some_and(|p| p.degraded.load(Ordering::Relaxed))
    }

    /// Drops every cached result and every proven II bound (in memory
    /// only; on-disk stores keep their records until the next compaction).
    pub fn clear_cache(&self) {
        lock(&self.cache).clear();
        lock(&self.bounds).clear();
        if let Some(persist) = &self.persist {
            // Keys re-solved after a clear are fresh work, not replays of
            // the on-disk store; they must not report as persistent hits.
            lock(&persist.loaded).clear();
            // The stores no longer match the (now empty) live set.
            // ordering: dirty is a single advisory flag read at drop;
            // nothing synchronizes through it.
            persist.dirty.store(true, Ordering::Relaxed);
        }
    }

    /// Rewrites the on-disk stores from the live in-memory caches:
    /// deduplicates superseded records, drops corrupt tails, and leaves
    /// each file exactly one record per entry. A no-op without
    /// persistence. Runs automatically when the engine is dropped.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from the rewrite; the original files
    /// are replaced atomically (temp file + rename), so a failed
    /// compaction never destroys existing records.
    pub fn compact_persistent(&self) -> io::Result<()> {
        let Some(persist) = &self.persist else {
            return Ok(());
        };
        // A degraded engine has sworn off the disk: compacting would be
        // a fresh round of writes against the same failing device, and
        // worse, a *successful* rewrite would replace a store holding
        // records the memory-only mode never persisted.
        // ordering: one-way advisory latch (see `Engine::degraded`).
        if persist.degraded.load(Ordering::Relaxed) {
            return Ok(());
        }
        let sync = self.config.durability.sync_compaction;
        {
            let cache = lock(&self.cache);
            let mut payloads: Vec<(Fingerprint, Vec<u8>)> = cache
                .iter()
                .map(|(&key, entry)| (key, persist::encode_result_record(key, &entry.outcome)))
                .collect();
            // Deterministic file contents: key order, not hash-map order.
            payloads.sort_by_key(|(key, _)| *key);
            let payloads: Vec<Vec<u8>> = payloads.into_iter().map(|(_, p)| p).collect();
            let mut appender = lock(&persist.results);
            persist::rewrite(
                &persist.dir.join(persist::RESULTS_FILE),
                StoreKind::Results,
                &payloads,
                sync,
            )?;
            // The rewrite replaced the inode the appender held open;
            // reopen so later appends land in the compacted file.
            *appender =
                Appender::open(&persist.dir.join(persist::RESULTS_FILE), StoreKind::Results)?;
        }
        {
            let bounds = lock(&self.bounds);
            let mut payloads: Vec<(Fingerprint, Vec<u8>)> = bounds
                .iter()
                .map(|(&key, &bound)| (key, persist::encode_bound_record(key, bound)))
                .collect();
            payloads.sort_by_key(|(key, _)| *key);
            let payloads: Vec<Vec<u8>> = payloads.into_iter().map(|(_, p)| p).collect();
            let mut appender = lock(&persist.bounds);
            persist::rewrite(
                &persist.dir.join(persist::BOUNDS_FILE),
                StoreKind::Bounds,
                &payloads,
                sync,
            )?;
            *appender = Appender::open(&persist.dir.join(persist::BOUNDS_FILE), StoreKind::Bounds)?;
        }
        // ordering: same advisory dirty flag as in clear_cache.
        persist.dirty.store(false, Ordering::Relaxed);
        // ordering: both are advisory counters — appends restarts the
        // incremental-compaction countdown, generation feeds telemetry.
        persist.appends.store(0, Ordering::Relaxed);
        persist.generation.fetch_add(1, Ordering::Relaxed); // ordering: see above
        Ok(())
    }

    /// The proven II lower bound on record for `(dfg, cgra)` under this
    /// engine's mapping semantics, if any (`u32::MAX` = proven unmappable
    /// at every II).
    pub fn proven_bound(&self, dfg: &Dfg, cgra: &Cgra) -> Option<u32> {
        let key = problem_fingerprint(dfg, cgra, &self.config.mapper);
        lock(&self.bounds).get(&key).copied()
    }

    /// Maps one request, serving it from the cache when possible. Returns
    /// the (shared) outcome and whether it was a cache hit.
    pub fn map(&self, dfg: &Dfg, cgra: &Cgra) -> (Arc<EngineOutcome>, bool) {
        let served = self.map_with_deadline(dfg, cgra, None);
        (served.outcome, served.cached)
    }

    /// A pure cache probe: answers from the result cache if the entry
    /// exists (counting it as a hit, exactly like [`Engine::map`] would),
    /// and returns `None` without solving — or queuing, or waiting on an
    /// in-flight leader — otherwise. Lets callers with an already-expired
    /// deadline still serve cached answers instead of a reflexive
    /// timeout.
    pub fn lookup_cached(&self, dfg: &Dfg, cgra: &Cgra) -> Option<Served> {
        let key = fingerprint(dfg, cgra, &self.config);
        let mut span = obs::trace::Span::begin(obs::trace::Category::Persist, "cache_probe");
        let hit = {
            // ordering: the LRU tick only needs uniqueness-ish
            // monotonicity for victim selection; ties are harmless.
            let tick = self.tick.fetch_add(1, Ordering::Relaxed);
            let mut cache = lock(&self.cache);
            cache.get_mut(&key).map(|entry| {
                entry.last_used = tick;
                Arc::clone(&entry.outcome)
            })
        };
        let Some(hit) = hit else {
            span.arg("hit", 0);
            return None;
        };
        // ordering: monotone telemetry counter; Relaxed suffices.
        self.hits.fetch_add(1, Ordering::Relaxed);
        let persistent = self
            .persist
            .as_ref()
            .is_some_and(|p| lock(&p.loaded).contains(&key));
        if persistent {
            // ordering: monotone telemetry counter; Relaxed suffices.
            self.persistent_hits.fetch_add(1, Ordering::Relaxed);
        }
        span.arg("hit", 1);
        span.arg("persistent", i64::from(persistent));
        Some(Served {
            outcome: hit,
            key,
            cached: true,
            persistent,
        })
    }

    /// Whether `(dfg, cgra)` is currently memoized, *without* counting a
    /// hit or touching the LRU clock. For admission controllers deciding
    /// whether a tight-deadline request is worth queuing: a positive
    /// probe here means the worker will answer from the cache in
    /// microseconds, so shedding it would be wrong — while the eventual
    /// serve still books its hit exactly once.
    pub fn peek_cached(&self, dfg: &Dfg, cgra: &Cgra) -> bool {
        let key = fingerprint(dfg, cgra, &self.config);
        lock(&self.cache).contains_key(&key)
    }

    /// [`Engine::map`] with an optional wall-clock deadline for *this
    /// lookup only*. The cache key is unchanged — the deadline is an
    /// execution constraint, not part of the problem — so a request that
    /// completes in time populates the cache for every later caller, and
    /// one that times out is not memoized (the retry solves afresh).
    /// The effective solve budget is the tighter of the engine's
    /// configured timeout and the remaining time to `deadline`.
    pub fn map_with_deadline(&self, dfg: &Dfg, cgra: &Cgra, deadline: Option<Instant>) -> Served {
        let key = fingerprint(dfg, cgra, &self.config);
        self.map_keyed(key, dfg, cgra, self.config.effective_workers(), deadline)
    }

    fn map_keyed(
        &self,
        key: Fingerprint,
        dfg: &Dfg,
        cgra: &Cgra,
        workers: usize,
        deadline: Option<Instant>,
    ) -> Served {
        loop {
            let hit = {
                // ordering: LRU tick, as in lookup_cached.
                let tick = self.tick.fetch_add(1, Ordering::Relaxed);
                let mut cache = lock(&self.cache);
                cache.get_mut(&key).map(|entry| {
                    entry.last_used = tick;
                    Arc::clone(&entry.outcome)
                })
            };
            if let Some(hit) = hit {
                // ordering: monotone telemetry counter; Relaxed suffices.
                self.hits.fetch_add(1, Ordering::Relaxed);
                let persistent = self
                    .persist
                    .as_ref()
                    .is_some_and(|p| lock(&p.loaded).contains(&key));
                if persistent {
                    // ordering: monotone telemetry counter.
                    self.persistent_hits.fetch_add(1, Ordering::Relaxed);
                }
                if obs::trace::enabled() {
                    obs::trace::complete(
                        obs::trace::Category::Persist,
                        "cache_probe",
                        obs::trace::now_us(),
                        0,
                        vec![
                            ("hit", obs::trace::ArgValue::Int(1)),
                            (
                                "persistent",
                                obs::trace::ArgValue::Int(i64::from(persistent)),
                            ),
                        ],
                    );
                }
                return Served {
                    outcome: hit,
                    key,
                    cached: true,
                    persistent,
                };
            }
            // Become the leader for this key, or wait for the current one
            // and re-read the cache (its result lands there unless it was
            // transient, in which case we take over).
            {
                let mut inflight = lock(&self.inflight);
                if inflight.contains(&key) {
                    // A follower whose own deadline has passed must not
                    // keep waiting on a leader with a laxer budget: fall
                    // through and solve — with the expired deadline the
                    // race reports Timeout almost immediately, honouring
                    // this caller's budget without disturbing the leader.
                    if deadline.is_some_and(|d| Instant::now() >= d) {
                        drop(inflight);
                        return self.solve_keyed(key, dfg, cgra, workers, deadline);
                    }
                    let _wait = self
                        .inflight_cv
                        .wait_timeout(inflight, Duration::from_millis(50))
                        .unwrap_or_else(PoisonError::into_inner);
                    continue;
                }
                inflight.insert(key);
            }
            // The guard removes the key and wakes followers even if the
            // solve below unwinds — a panicking leader must not strand
            // its followers in the wait loop.
            struct InflightGuard<'a> {
                engine: &'a Engine,
                key: Fingerprint,
            }
            impl Drop for InflightGuard<'_> {
                fn drop(&mut self) {
                    lock(&self.engine.inflight).remove(&self.key);
                    self.engine.inflight_cv.notify_all();
                }
            }
            let _guard = InflightGuard { engine: self, key };
            return self.solve_keyed(key, dfg, cgra, workers, deadline);
        }
    }

    /// The miss path: race the problem, record bounds, memoize and
    /// persist. Callers hold the in-flight leadership for `key`.
    fn solve_keyed(
        &self,
        key: Fingerprint,
        dfg: &Dfg,
        cgra: &Cgra,
        workers: usize,
        deadline: Option<Instant>,
    ) -> Served {
        let mut config = self.config.clone();
        config.workers = workers.max(1);
        if let Some(deadline) = deadline {
            let remaining = deadline.saturating_duration_since(Instant::now());
            config.mapper.timeout = Some(match config.mapper.timeout {
                Some(t) => t.min(remaining),
                None => remaining,
            });
        }
        // Consume any proven lower bound for this problem: rungs below it
        // were already answered Unsat (possibly by a differently-configured
        // or timed-out run), so the race starts above them.
        let problem_key = problem_fingerprint(dfg, cgra, &config.mapper);
        let known_bound = lock(&self.bounds).get(&problem_key).copied();
        if known_bound.is_some() {
            // ordering: monotone telemetry counter; Relaxed suffices.
            self.bound_starts.fetch_add(1, Ordering::Relaxed);
        }
        let outcome = Arc::new(map_raced_with_bound(dfg, cgra, &config, known_bound));
        // ordering: monotone telemetry counter; Relaxed suffices.
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.record_solver_telemetry(&outcome);
        self.record_bound(problem_key, known_bound, &outcome);
        // Wall-clock-dependent failures are not memoized: a timed-out job
        // resubmitted later (idler machine, luckier race) deserves a fresh
        // solve. Internal failures (a panicking worker, caught and
        // isolated by the race) are likewise transient — memoizing one
        // would pin a crash report into the cache forever. Everything
        // else — successes and deterministic failures — is cached; the
        // first insert wins so concurrent solvers of the same key still
        // leave later lookups byte-identical.
        let transient = matches!(
            outcome.outcome.result,
            Err(satmapit_core::MapFailure::Timeout { .. })
                | Err(satmapit_core::MapFailure::Internal(_))
        );
        if transient {
            return Served {
                outcome,
                key,
                cached: false,
                persistent: false,
            };
        }
        let shared = {
            // ordering: LRU tick, as in lookup_cached. Taken before the
            // lock so the freshly inserted entry carries the newest
            // stamp and can never be the eviction victim it just made
            // room for.
            let tick = self.tick.fetch_add(1, Ordering::Relaxed);
            let mut cache = lock(&self.cache);
            let entry = cache.entry(key).or_insert_with(|| CacheEntry {
                outcome: Arc::clone(&outcome),
                inserted: Instant::now(),
                last_used: 0,
            });
            entry.last_used = tick;
            let shared = Arc::clone(&entry.outcome);
            self.evict_locked(&mut cache);
            shared
        };
        // Only the winning insert reaches the store — a lane that lost the
        // race to an identical key must not write a duplicate record.
        if Arc::ptr_eq(&shared, &outcome) {
            if let Some(persist) = &self.persist {
                let mut span =
                    obs::trace::Span::begin(obs::trace::Category::Persist, "persist_result");
                let record = persist::encode_result_record(key, &shared);
                span.arg("bytes", record.len() as i64);
                let acknowledged = self.persist_append(persist, &persist.results, &record);
                span.arg("persisted", i64::from(acknowledged));
                drop(span);
                if acknowledged {
                    self.note_append();
                }
            }
        }
        Served {
            outcome: shared,
            key,
            cached: false,
            persistent: false,
        }
    }

    /// Folds each attempt's clause-arena counters into the engine-wide
    /// telemetry surfaced by [`Engine::cache_stats`]: GC runs and
    /// reclaimed literals are summed, arena waste keeps its peak.
    fn record_solver_telemetry(&self, outcome: &EngineOutcome) {
        let mut gc_runs = 0u64;
        let mut lits = 0u64;
        let mut wasted_peak = 0u64;
        for attempt in &outcome.outcome.attempts {
            if let Some(stats) = &attempt.solver_stats {
                gc_runs += stats.gc_runs;
                lits += stats.lits_reclaimed;
                wasted_peak = wasted_peak.max(stats.arena_wasted);
            }
        }
        // ordering: all telemetry folds below are independent monotone
        // counters (fetch_max for the peak); nothing synchronizes
        // through them, so Relaxed is exactly right.
        if gc_runs > 0 {
            self.gc_runs.fetch_add(gc_runs, Ordering::Relaxed); // ordering: see above
        }
        if lits > 0 {
            self.lits_reclaimed.fetch_add(lits, Ordering::Relaxed); // ordering: see above
        }
        self.arena_wasted.fetch_max(wasted_peak, Ordering::Relaxed); // ordering: see above

        // Share traffic comes from the race-level sums, not the attempt
        // trace: cancelled siblings (whose attempts never reach the
        // trace) are where most exports happen.
        let race = &outcome.stats;
        if race.shared_exported > 0 {
            // ordering: monotone telemetry counter.
            self.shared_exported
                .fetch_add(race.shared_exported, Ordering::Relaxed);
        }
        if race.shared_imported > 0 {
            // ordering: monotone telemetry counter.
            self.shared_imported
                .fetch_add(race.shared_imported, Ordering::Relaxed);
        }
        if race.shared_dropped > 0 {
            // ordering: monotone telemetry counter.
            self.shared_dropped
                .fetch_add(race.shared_dropped, Ordering::Relaxed);
        }
        if race.sat_wins > 0 {
            // ordering: monotone telemetry counter.
            self.sat_wins.fetch_add(race.sat_wins, Ordering::Relaxed);
        }
        if race.morph_wins > 0 {
            // ordering: monotone telemetry counter.
            self.morph_wins
                .fetch_add(race.morph_wins, Ordering::Relaxed);
        }
        if race.bound_exchanges > 0 {
            // ordering: monotone telemetry counter.
            self.bound_exchanges
                .fetch_add(race.bound_exchanges, Ordering::Relaxed);
        }
    }

    /// Extracts and records the II lower bound this outcome proved: the
    /// contiguous run of `Unsat` closures anchored at the race's start
    /// (IIs below the start are covered by the MII theory plus the
    /// previously recorded bound), or `u32::MAX` when an UNSAT core proved
    /// the problem unmappable at every II. Only sound proofs feed the map
    /// — giveups (conflict budgets, register-allocation retries) never do,
    /// and engines configured with an explicit `start_ii` record nothing
    /// (their start is not a feasibility statement).
    fn record_bound(
        &self,
        problem_key: Fingerprint,
        known_bound: Option<u32>,
        outcome: &EngineOutcome,
    ) {
        if self.config.mapper.start_ii.is_some() {
            return;
        }
        let proven = if outcome.proven_unmappable {
            u32::MAX
        } else {
            let anchor = outcome.stats.race_start;
            if anchor == 0 {
                return; // the race never ran
            }
            let mut expected = anchor;
            for attempt in &outcome.outcome.attempts {
                if attempt.ii == expected && attempt.outcome == AttemptOutcome::Unsat {
                    expected += 1;
                } else {
                    break;
                }
            }
            expected
        };
        if Some(proven) <= known_bound {
            return; // nothing new proven
        }
        let improved = {
            let mut bounds = lock(&self.bounds);
            let entry = bounds.entry(problem_key).or_insert(0);
            if proven > *entry {
                *entry = proven;
                true
            } else {
                false
            }
        };
        if improved {
            if let Some(persist) = &self.persist {
                let mut span =
                    obs::trace::Span::begin(obs::trace::Category::Persist, "persist_bound");
                span.arg("proven_ii", i64::from(proven));
                let record = persist::encode_bound_record(problem_key, proven);
                let acknowledged = self.persist_append(persist, &persist.bounds, &record);
                span.arg("persisted", i64::from(acknowledged));
                drop(span);
                if acknowledged {
                    self.note_append();
                }
            }
        }
    }

    /// Applies the configured [`crate::CacheLifecycle`] bounds with the
    /// cache lock held: first sweeps entries past `max_age`, then evicts
    /// least-recently-used entries until `max_entries` is honoured. The
    /// caller just inserted the newest entry, which carries the highest
    /// tick and therefore never evicts itself.
    fn evict_locked(&self, cache: &mut HashMap<Fingerprint, CacheEntry>) {
        let lifecycle = &self.config.lifecycle;
        if let Some(max_age) = lifecycle.max_age {
            let now = Instant::now();
            let expired: Vec<Fingerprint> = cache
                .iter()
                .filter(|(_, entry)| now.duration_since(entry.inserted) > max_age)
                .map(|(&key, _)| key)
                .collect();
            for key in expired {
                cache.remove(&key);
                self.drop_loaded(key);
                // ordering: monotone telemetry counter.
                self.evicted_age.fetch_add(1, Ordering::Relaxed);
            }
        }
        if lifecycle.max_entries == 0 {
            return;
        }
        while cache.len() > lifecycle.max_entries {
            let victim = cache
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(&key, _)| key);
            let Some(victim) = victim else { break };
            cache.remove(&victim);
            self.drop_loaded(victim);
            // ordering: monotone telemetry counter.
            self.evicted_size.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Forgets that `key` was seeded from disk, so a later re-solve of an
    /// evicted entry is fresh work, not a persistent hit — and marks the
    /// store dirty, because it still holds the evicted record until the
    /// next compaction.
    fn drop_loaded(&self, key: Fingerprint) {
        if let Some(persist) = &self.persist {
            lock(&persist.loaded).remove(&key);
            // ordering: advisory dirty flag, read at drop.
            persist.dirty.store(true, Ordering::Relaxed);
        }
    }

    /// Appends one record to a persistent store under the configured
    /// [`crate::DurabilityPolicy`]: write through the appender's failure
    /// latch, fsync on the cadence, count failures, and trip the
    /// degraded latch after `max_append_failures` consecutive failures.
    /// Returns `true` when the record was acknowledged (written, and
    /// synced if the cadence said so) — `false` on failure or when the
    /// engine is already degraded, in which case the caller serves from
    /// memory and moves on.
    fn persist_append(
        &self,
        persist: &Persistence,
        store: &Mutex<Appender>,
        record: &[u8],
    ) -> bool {
        // ordering: one-way advisory latch (see `Engine::degraded`).
        if persist.degraded.load(Ordering::Relaxed) {
            return false;
        }
        let fsync_every = self.config.durability.fsync_every;
        let result = {
            let mut appender = lock(store);
            appender.append(record).and_then(|()| {
                if fsync_every > 0 && appender.unsynced() >= fsync_every {
                    appender.sync()?;
                    // ordering: monotone telemetry counter.
                    persist.fsyncs.fetch_add(1, Ordering::Relaxed);
                }
                Ok(())
            })
        };
        match result {
            Ok(()) => {
                // ordering: the streak is advisory failure bookkeeping;
                // an interleaved reset/bump only shifts when the latch
                // trips by one append.
                persist.failure_streak.store(0, Ordering::Relaxed);
                // ordering: advisory dirty flag, read at drop.
                persist.dirty.store(true, Ordering::Relaxed);
                true
            }
            Err(e) => {
                // ordering: monotone telemetry counter.
                persist.append_errors.fetch_add(1, Ordering::Relaxed);
                // ordering: advisory failure bookkeeping (see above).
                let streak = persist.failure_streak.fetch_add(1, Ordering::Relaxed) + 1;
                obs::warn!(
                    "satmapit::engine::persist",
                    "store append failed ({streak} consecutive): {e}"
                );
                let max = self.config.durability.max_append_failures;
                // ordering: one-way advisory latch; swap so exactly one
                // thread logs the transition.
                if max > 0 && streak >= max && !persist.degraded.swap(true, Ordering::Relaxed) {
                    obs::error!(
                        "satmapit::engine::persist",
                        "entering degraded memory-only mode after {streak} consecutive \
                         append failures; disk writes disabled until restart"
                    );
                }
                false
            }
        }
    }

    /// Books one successful store append and, every
    /// [`crate::CacheLifecycle::compact_every`] appends, compacts the
    /// stores in place — incremental compaction instead of letting
    /// superseded records pile up until shutdown. Single-flight: when
    /// several threads cross the threshold together, one compacts and
    /// the rest skip. Callers must not hold any engine lock.
    fn note_append(&self) {
        let every = self.config.lifecycle.compact_every;
        let Some(persist) = &self.persist else { return };
        if every == 0 {
            return;
        }
        // ordering: the append counter is advisory — an off-by-a-few
        // threshold crossing only shifts when compaction runs.
        if persist.appends.fetch_add(1, Ordering::Relaxed) + 1 < every {
            return;
        }
        // ordering: acquire/release on the single-flight latch pairs the
        // winner's compaction with the store(false) that reopens it.
        if persist
            .compacting
            .compare_exchange(
                false,
                true,
                Ordering::Acquire,
                Ordering::Relaxed, // ordering: failed CAS just skips; no data guarded
            )
            .is_err()
        {
            return;
        }
        let result = self.compact_persistent();
        // ordering: release the latch; see the CAS above.
        persist.compacting.store(false, Ordering::Release);
        if let Err(e) = result {
            obs::warn!(
                "satmapit::engine::persist",
                "incremental cache compaction failed: {e}"
            );
        }
    }

    /// Maps a whole batch over a bounded pool: up to `workers` distinct
    /// jobs run concurrently, each receiving a proportional share of the
    /// worker budget for its own II-race. Jobs with identical content
    /// (same fingerprint) are solved once and fanned out — duplicates
    /// come back as cache hits. Results come back in job order.
    pub fn map_batch(&self, jobs: Vec<Job>) -> Vec<BatchItem> {
        if jobs.is_empty() {
            return Vec::new();
        }
        let keys: Vec<Fingerprint> = jobs
            .iter()
            .map(|job| fingerprint(&job.dfg, &job.cgra, &self.config))
            .collect();
        // In-flight dedup: solve each distinct fingerprint exactly once
        // (the cache alone can't prevent two lanes racing the same key).
        let mut seen: HashSet<Fingerprint> = HashSet::new();
        let first_occurrence: Vec<bool> = keys.iter().map(|&k| seen.insert(k)).collect();
        let unique: Vec<usize> = first_occurrence
            .iter()
            .enumerate()
            .filter_map(|(index, &first)| first.then_some(index))
            .collect();

        let budget = self.config.effective_workers();
        let lanes = budget.min(unique.len()).max(1);
        let inner_workers = (budget / lanes).max(1);

        type Solved = (Arc<EngineOutcome>, bool, Duration);
        let solved: Vec<Mutex<Option<Solved>>> = unique.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);

        std::thread::scope(|scope| {
            for _ in 0..lanes {
                scope.spawn(|| loop {
                    // ordering: a work-stealing ticket counter; each slot
                    // is claimed exactly once and the result handoff
                    // happens through the per-slot mutex, not this atomic.
                    let slot = next.fetch_add(1, Ordering::Relaxed);
                    if slot >= unique.len() {
                        return;
                    }
                    let index = unique[slot];
                    let job = &jobs[index];
                    let t0 = Instant::now();
                    let served =
                        self.map_keyed(keys[index], &job.dfg, &job.cgra, inner_workers, None);
                    *lock(&solved[slot]) = Some((served.outcome, served.cached, t0.elapsed()));
                });
            }
        });

        let mut by_key: HashMap<Fingerprint, Solved> = HashMap::with_capacity(unique.len());
        for (slot, &index) in unique.iter().enumerate() {
            let result = lock(&solved[slot])
                .clone()
                .expect("every unique slot was visited");
            by_key.insert(keys[index], result);
        }

        jobs.iter()
            .zip(&keys)
            .zip(&first_occurrence)
            .map(|((job, &key), &first)| {
                let (outcome, cached, elapsed) = by_key[&key].clone();
                // A duplicate of an earlier job in the same batch is a hit
                // by construction and took no solve time of its own —
                // except for transient (timed-out or internally failed)
                // results, which the cache refuses to hold and a
                // resubmission would re-solve.
                let transient = matches!(
                    outcome.outcome.result,
                    Err(satmapit_core::MapFailure::Timeout { .. })
                        | Err(satmapit_core::MapFailure::Internal(_))
                );
                BatchItem {
                    name: job.name.clone(),
                    fingerprint: key,
                    outcome,
                    cached: cached || (!first && !transient),
                    elapsed: if first { elapsed } else { Duration::ZERO },
                }
            })
            .collect()
    }
}

impl Drop for Engine {
    /// Best-effort shutdown compaction: a persistent engine rewrites its
    /// stores so the next startup loads one clean record per entry.
    /// Skipped when nothing was appended since the last compaction (an
    /// explicit [`Engine::compact_persistent`] — e.g. the service's
    /// shutdown path — already left the files exactly the live set).
    /// Failures are reported, never panicked — drop runs on unwind paths.
    fn drop(&mut self) {
        let dirty = self
            .persist
            .as_ref()
            // ordering: advisory dirty flag; by drop time no other
            // thread holds the engine, so there is nothing to order.
            .is_some_and(|p| p.dirty.load(Ordering::Relaxed));
        if dirty {
            if let Err(e) = self.compact_persistent() {
                obs::warn!(
                    "satmapit::engine::persist",
                    "cache compaction on shutdown failed: {e}"
                );
            }
        }
    }
}
