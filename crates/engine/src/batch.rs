//! The batch frontend: many (kernel × CGRA) jobs over a bounded worker
//! pool, memoized in a content-addressed result cache.

use satmapit_cgra::Cgra;
use satmapit_dfg::Dfg;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::fingerprint::{fingerprint, Fingerprint};
use crate::race::{map_raced, EngineOutcome};
use crate::EngineConfig;

/// One mapping request in a batch.
#[derive(Debug, Clone)]
pub struct Job {
    /// Display name (reported back in the [`BatchItem`]).
    pub name: String,
    /// The loop body to map.
    pub dfg: Dfg,
    /// The target architecture.
    pub cgra: Cgra,
}

impl Job {
    /// A named mapping request.
    pub fn new(name: impl Into<String>, dfg: Dfg, cgra: Cgra) -> Job {
        Job {
            name: name.into(),
            dfg,
            cgra,
        }
    }
}

/// Result of one batch job.
#[derive(Debug, Clone)]
pub struct BatchItem {
    /// The job's display name.
    pub name: String,
    /// Content hash the result is cached under.
    pub fingerprint: Fingerprint,
    /// The mapping outcome (shared with the cache: a repeated request
    /// returns the *same allocation*, so results are byte-identical).
    pub outcome: Arc<EngineOutcome>,
    /// `true` when the result came from the cache without solving.
    pub cached: bool,
    /// Wall-clock time this job took inside the batch (≈0 on cache hits).
    pub elapsed: Duration,
}

/// Cache occupancy and traffic counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Distinct results currently held.
    pub entries: usize,
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that had to solve.
    pub misses: u64,
}

/// A mapping service: solves through the II-race and memoizes every result
/// under a content hash of (DFG structure, CGRA, configuration), so
/// repeated requests are O(1).
///
/// ```
/// use satmapit_cgra::Cgra;
/// use satmapit_dfg::{Dfg, Op};
/// use satmapit_engine::{Engine, EngineConfig};
/// use std::sync::Arc;
///
/// let mut dfg = Dfg::new("pair");
/// let a = dfg.add_const(1);
/// let b = dfg.add_node(Op::Neg);
/// dfg.add_edge(a, b, 0);
///
/// let engine = Engine::new(EngineConfig::default());
/// let (first, cached) = engine.map(&dfg, &Cgra::square(2));
/// assert!(!cached);
/// let (second, cached) = engine.map(&dfg, &Cgra::square(2));
/// assert!(cached);
/// assert!(Arc::ptr_eq(&first, &second)); // byte-identical result
/// ```
#[derive(Debug)]
pub struct Engine {
    config: EngineConfig,
    cache: Mutex<HashMap<Fingerprint, Arc<EngineOutcome>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::new(EngineConfig::default())
    }
}

impl Engine {
    /// An engine with the given configuration and an empty cache.
    pub fn new(config: EngineConfig) -> Engine {
        Engine {
            config,
            cache: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Cache occupancy and hit/miss counters.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            entries: self.cache.lock().expect("cache poisoned").len(),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Drops every cached result.
    pub fn clear_cache(&self) {
        self.cache.lock().expect("cache poisoned").clear();
    }

    /// Maps one request, serving it from the cache when possible. Returns
    /// the (shared) outcome and whether it was a cache hit.
    pub fn map(&self, dfg: &Dfg, cgra: &Cgra) -> (Arc<EngineOutcome>, bool) {
        let key = fingerprint(dfg, cgra, &self.config);
        self.map_keyed(key, dfg, cgra, self.config.effective_workers())
    }

    fn map_keyed(
        &self,
        key: Fingerprint,
        dfg: &Dfg,
        cgra: &Cgra,
        workers: usize,
    ) -> (Arc<EngineOutcome>, bool) {
        if let Some(hit) = self.cache.lock().expect("cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (Arc::clone(hit), true);
        }
        let mut config = self.config.clone();
        config.workers = workers.max(1);
        let outcome = Arc::new(map_raced(dfg, cgra, &config));
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Wall-clock-dependent failures are not memoized: a timed-out job
        // resubmitted later (idler machine, luckier race) deserves a fresh
        // solve. Everything else — successes and deterministic failures —
        // is cached; the first insert wins so concurrent solvers of the
        // same key still leave later lookups byte-identical.
        let transient = matches!(
            outcome.outcome.result,
            Err(satmapit_core::MapFailure::Timeout { .. })
        );
        if transient {
            return (outcome, false);
        }
        let mut cache = self.cache.lock().expect("cache poisoned");
        let entry = cache.entry(key).or_insert(outcome);
        (Arc::clone(entry), false)
    }

    /// Maps a whole batch over a bounded pool: up to `workers` distinct
    /// jobs run concurrently, each receiving a proportional share of the
    /// worker budget for its own II-race. Jobs with identical content
    /// (same fingerprint) are solved once and fanned out — duplicates
    /// come back as cache hits. Results come back in job order.
    pub fn map_batch(&self, jobs: Vec<Job>) -> Vec<BatchItem> {
        if jobs.is_empty() {
            return Vec::new();
        }
        let keys: Vec<Fingerprint> = jobs
            .iter()
            .map(|job| fingerprint(&job.dfg, &job.cgra, &self.config))
            .collect();
        // In-flight dedup: solve each distinct fingerprint exactly once
        // (the cache alone can't prevent two lanes racing the same key).
        let mut seen: HashSet<Fingerprint> = HashSet::new();
        let first_occurrence: Vec<bool> = keys.iter().map(|&k| seen.insert(k)).collect();
        let unique: Vec<usize> = first_occurrence
            .iter()
            .enumerate()
            .filter_map(|(index, &first)| first.then_some(index))
            .collect();

        let budget = self.config.effective_workers();
        let lanes = budget.min(unique.len()).max(1);
        let inner_workers = (budget / lanes).max(1);

        type Solved = (Arc<EngineOutcome>, bool, Duration);
        let solved: Vec<Mutex<Option<Solved>>> = unique.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);

        std::thread::scope(|scope| {
            for _ in 0..lanes {
                scope.spawn(|| loop {
                    let slot = next.fetch_add(1, Ordering::Relaxed);
                    if slot >= unique.len() {
                        return;
                    }
                    let index = unique[slot];
                    let job = &jobs[index];
                    let t0 = Instant::now();
                    let (outcome, cached) =
                        self.map_keyed(keys[index], &job.dfg, &job.cgra, inner_workers);
                    *solved[slot].lock().expect("result slot poisoned") =
                        Some((outcome, cached, t0.elapsed()));
                });
            }
        });

        let mut by_key: HashMap<Fingerprint, Solved> = HashMap::with_capacity(unique.len());
        for (slot, &index) in unique.iter().enumerate() {
            let result = solved[slot]
                .lock()
                .expect("result slot poisoned")
                .clone()
                .expect("every unique slot was visited");
            by_key.insert(keys[index], result);
        }

        jobs.iter()
            .zip(&keys)
            .zip(&first_occurrence)
            .map(|((job, &key), &first)| {
                let (outcome, cached, elapsed) = by_key[&key].clone();
                // A duplicate of an earlier job in the same batch is a hit
                // by construction and took no solve time of its own —
                // except for transient (timed-out) results, which the
                // cache refuses to hold and a resubmission would re-solve.
                let transient = matches!(
                    outcome.outcome.result,
                    Err(satmapit_core::MapFailure::Timeout { .. })
                );
                BatchItem {
                    name: job.name.clone(),
                    fingerprint: key,
                    outcome,
                    cached: cached || (!first && !transient),
                    elapsed: if first { elapsed } else { Duration::ZERO },
                }
            })
            .collect()
    }
}
