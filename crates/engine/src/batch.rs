//! The batch frontend: many (kernel × CGRA) jobs over a bounded worker
//! pool, memoized in a content-addressed result cache.

use satmapit_cgra::Cgra;
use satmapit_dfg::Dfg;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::fingerprint::{fingerprint, problem_fingerprint, Fingerprint};
use crate::race::{map_raced_with_bound, EngineOutcome};
use crate::EngineConfig;
use satmapit_core::AttemptOutcome;

/// One mapping request in a batch.
#[derive(Debug, Clone)]
pub struct Job {
    /// Display name (reported back in the [`BatchItem`]).
    pub name: String,
    /// The loop body to map.
    pub dfg: Dfg,
    /// The target architecture.
    pub cgra: Cgra,
}

impl Job {
    /// A named mapping request.
    pub fn new(name: impl Into<String>, dfg: Dfg, cgra: Cgra) -> Job {
        Job {
            name: name.into(),
            dfg,
            cgra,
        }
    }
}

/// Result of one batch job.
#[derive(Debug, Clone)]
pub struct BatchItem {
    /// The job's display name.
    pub name: String,
    /// Content hash the result is cached under.
    pub fingerprint: Fingerprint,
    /// The mapping outcome (shared with the cache: a repeated request
    /// returns the *same allocation*, so results are byte-identical).
    pub outcome: Arc<EngineOutcome>,
    /// `true` when the result came from the cache without solving.
    pub cached: bool,
    /// Wall-clock time this job took inside the batch (≈0 on cache hits).
    pub elapsed: Duration,
}

/// Cache occupancy and traffic counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Distinct results currently held.
    pub entries: usize,
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that had to solve.
    pub misses: u64,
    /// Problems with a proven II lower bound on record (kept across
    /// execution-config changes and even across results the result cache
    /// refuses to hold, like timeouts).
    pub bound_entries: usize,
}

/// A mapping service: solves through the II-race and memoizes every result
/// under a content hash of (DFG structure, CGRA, configuration), so
/// repeated requests are O(1).
///
/// ```
/// use satmapit_cgra::Cgra;
/// use satmapit_dfg::{Dfg, Op};
/// use satmapit_engine::{Engine, EngineConfig};
/// use std::sync::Arc;
///
/// let mut dfg = Dfg::new("pair");
/// let a = dfg.add_const(1);
/// let b = dfg.add_node(Op::Neg);
/// dfg.add_edge(a, b, 0);
///
/// let engine = Engine::new(EngineConfig::default());
/// let (first, cached) = engine.map(&dfg, &Cgra::square(2));
/// assert!(!cached);
/// let (second, cached) = engine.map(&dfg, &Cgra::square(2));
/// assert!(cached);
/// assert!(Arc::ptr_eq(&first, &second)); // byte-identical result
/// ```
#[derive(Debug)]
pub struct Engine {
    config: EngineConfig,
    cache: Mutex<HashMap<Fingerprint, Arc<EngineOutcome>>>,
    /// Proven II lower bounds per *problem* (see
    /// [`problem_fingerprint`]): `b` means every II below `b` was answered
    /// `Unsat` for that problem; `u32::MAX` means proven unmappable at
    /// every II. Unlike the result cache this survives timeouts — a job
    /// that died at the deadline still donates the rungs it closed, so
    /// the retry starts its ladder higher.
    bounds: Mutex<HashMap<Fingerprint, u32>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::new(EngineConfig::default())
    }
}

impl Engine {
    /// An engine with the given configuration and an empty cache.
    pub fn new(config: EngineConfig) -> Engine {
        Engine {
            config,
            cache: Mutex::new(HashMap::new()),
            bounds: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Cache occupancy and hit/miss counters.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            entries: self.cache.lock().expect("cache poisoned").len(),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            bound_entries: self.bounds.lock().expect("bounds poisoned").len(),
        }
    }

    /// Drops every cached result and every proven II bound.
    pub fn clear_cache(&self) {
        self.cache.lock().expect("cache poisoned").clear();
        self.bounds.lock().expect("bounds poisoned").clear();
    }

    /// The proven II lower bound on record for `(dfg, cgra)` under this
    /// engine's mapping semantics, if any (`u32::MAX` = proven unmappable
    /// at every II).
    pub fn proven_bound(&self, dfg: &Dfg, cgra: &Cgra) -> Option<u32> {
        let key = problem_fingerprint(dfg, cgra, &self.config.mapper);
        self.bounds
            .lock()
            .expect("bounds poisoned")
            .get(&key)
            .copied()
    }

    /// Maps one request, serving it from the cache when possible. Returns
    /// the (shared) outcome and whether it was a cache hit.
    pub fn map(&self, dfg: &Dfg, cgra: &Cgra) -> (Arc<EngineOutcome>, bool) {
        let key = fingerprint(dfg, cgra, &self.config);
        self.map_keyed(key, dfg, cgra, self.config.effective_workers())
    }

    fn map_keyed(
        &self,
        key: Fingerprint,
        dfg: &Dfg,
        cgra: &Cgra,
        workers: usize,
    ) -> (Arc<EngineOutcome>, bool) {
        if let Some(hit) = self.cache.lock().expect("cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (Arc::clone(hit), true);
        }
        let mut config = self.config.clone();
        config.workers = workers.max(1);
        // Consume any proven lower bound for this problem: rungs below it
        // were already answered Unsat (possibly by a differently-configured
        // or timed-out run), so the race starts above them.
        let problem_key = problem_fingerprint(dfg, cgra, &config.mapper);
        let known_bound = self
            .bounds
            .lock()
            .expect("bounds poisoned")
            .get(&problem_key)
            .copied();
        let outcome = Arc::new(map_raced_with_bound(dfg, cgra, &config, known_bound));
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.record_bound(problem_key, known_bound, &outcome);
        // Wall-clock-dependent failures are not memoized: a timed-out job
        // resubmitted later (idler machine, luckier race) deserves a fresh
        // solve. Everything else — successes and deterministic failures —
        // is cached; the first insert wins so concurrent solvers of the
        // same key still leave later lookups byte-identical.
        let transient = matches!(
            outcome.outcome.result,
            Err(satmapit_core::MapFailure::Timeout { .. })
        );
        if transient {
            return (outcome, false);
        }
        let mut cache = self.cache.lock().expect("cache poisoned");
        let entry = cache.entry(key).or_insert(outcome);
        (Arc::clone(entry), false)
    }

    /// Extracts and records the II lower bound this outcome proved: the
    /// contiguous run of `Unsat` closures anchored at the race's start
    /// (IIs below the start are covered by the MII theory plus the
    /// previously recorded bound), or `u32::MAX` when an UNSAT core proved
    /// the problem unmappable at every II. Only sound proofs feed the map
    /// — giveups (conflict budgets, register-allocation retries) never do,
    /// and engines configured with an explicit `start_ii` record nothing
    /// (their start is not a feasibility statement).
    fn record_bound(
        &self,
        problem_key: Fingerprint,
        known_bound: Option<u32>,
        outcome: &EngineOutcome,
    ) {
        if self.config.mapper.start_ii.is_some() {
            return;
        }
        let proven = if outcome.proven_unmappable {
            u32::MAX
        } else {
            let anchor = outcome.stats.race_start;
            if anchor == 0 {
                return; // the race never ran
            }
            let mut expected = anchor;
            for attempt in &outcome.outcome.attempts {
                if attempt.ii == expected && attempt.outcome == AttemptOutcome::Unsat {
                    expected += 1;
                } else {
                    break;
                }
            }
            expected
        };
        if Some(proven) <= known_bound {
            return; // nothing new proven
        }
        let mut bounds = self.bounds.lock().expect("bounds poisoned");
        let entry = bounds.entry(problem_key).or_insert(proven);
        *entry = (*entry).max(proven);
    }

    /// Maps a whole batch over a bounded pool: up to `workers` distinct
    /// jobs run concurrently, each receiving a proportional share of the
    /// worker budget for its own II-race. Jobs with identical content
    /// (same fingerprint) are solved once and fanned out — duplicates
    /// come back as cache hits. Results come back in job order.
    pub fn map_batch(&self, jobs: Vec<Job>) -> Vec<BatchItem> {
        if jobs.is_empty() {
            return Vec::new();
        }
        let keys: Vec<Fingerprint> = jobs
            .iter()
            .map(|job| fingerprint(&job.dfg, &job.cgra, &self.config))
            .collect();
        // In-flight dedup: solve each distinct fingerprint exactly once
        // (the cache alone can't prevent two lanes racing the same key).
        let mut seen: HashSet<Fingerprint> = HashSet::new();
        let first_occurrence: Vec<bool> = keys.iter().map(|&k| seen.insert(k)).collect();
        let unique: Vec<usize> = first_occurrence
            .iter()
            .enumerate()
            .filter_map(|(index, &first)| first.then_some(index))
            .collect();

        let budget = self.config.effective_workers();
        let lanes = budget.min(unique.len()).max(1);
        let inner_workers = (budget / lanes).max(1);

        type Solved = (Arc<EngineOutcome>, bool, Duration);
        let solved: Vec<Mutex<Option<Solved>>> = unique.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);

        std::thread::scope(|scope| {
            for _ in 0..lanes {
                scope.spawn(|| loop {
                    let slot = next.fetch_add(1, Ordering::Relaxed);
                    if slot >= unique.len() {
                        return;
                    }
                    let index = unique[slot];
                    let job = &jobs[index];
                    let t0 = Instant::now();
                    let (outcome, cached) =
                        self.map_keyed(keys[index], &job.dfg, &job.cgra, inner_workers);
                    *solved[slot].lock().expect("result slot poisoned") =
                        Some((outcome, cached, t0.elapsed()));
                });
            }
        });

        let mut by_key: HashMap<Fingerprint, Solved> = HashMap::with_capacity(unique.len());
        for (slot, &index) in unique.iter().enumerate() {
            let result = solved[slot]
                .lock()
                .expect("result slot poisoned")
                .clone()
                .expect("every unique slot was visited");
            by_key.insert(keys[index], result);
        }

        jobs.iter()
            .zip(&keys)
            .zip(&first_occurrence)
            .map(|((job, &key), &first)| {
                let (outcome, cached, elapsed) = by_key[&key].clone();
                // A duplicate of an earlier job in the same batch is a hit
                // by construction and took no solve time of its own —
                // except for transient (timed-out) results, which the
                // cache refuses to hold and a resubmission would re-solve.
                let transient = matches!(
                    outcome.outcome.result,
                    Err(satmapit_core::MapFailure::Timeout { .. })
                );
                BatchItem {
                    name: job.name.clone(),
                    fingerprint: key,
                    outcome,
                    cached: cached || (!first && !transient),
                    elapsed: if first { elapsed } else { Duration::ZERO },
                }
            })
            .collect()
    }
}
