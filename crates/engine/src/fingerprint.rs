//! Content fingerprinting for the result cache.
//!
//! A mapping request is fully determined by the DFG structure, the CGRA
//! instance and the engine configuration, so the cache keys on a 128-bit
//! content hash of exactly those three. Node labels and the DFG name are
//! deliberately excluded: they are presentation metadata and two renamed
//! copies of the same loop body should share a cache entry.

use satmapit_cgra::Cgra;
use satmapit_dfg::Dfg;

use crate::EngineConfig;

/// A 128-bit content hash (two independent 64-bit FNV-1a streams).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Incremental FNV-1a hasher over two de-correlated streams.
#[derive(Debug, Clone)]
pub struct Hasher {
    a: u64,
    b: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

impl Default for Hasher {
    fn default() -> Hasher {
        Hasher::new()
    }
}

impl Hasher {
    /// A fresh hasher.
    pub fn new() -> Hasher {
        Hasher {
            a: FNV_OFFSET,
            // A distinct offset basis de-correlates the second stream.
            b: FNV_OFFSET ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
            self.b = (self.b ^ u64::from(byte ^ 0xA5)).wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs an integer (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a signed integer (little-endian).
    pub fn write_i64(&mut self, v: i64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a string with a length prefix (prevents concatenation
    /// ambiguity between adjacent fields).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// Absorbs an optional integer distinguishably from its absence.
    pub fn write_opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(v) => {
                self.write(&[1]);
                self.write_u64(v);
            }
            None => self.write(&[0]),
        }
    }

    /// The accumulated 128-bit fingerprint.
    pub fn finish(&self) -> Fingerprint {
        Fingerprint((u128::from(self.a) << 64) | u128::from(self.b))
    }
}

/// Absorbs the structural content of a DFG: ops, immediates and the full
/// edge relation. Names and labels are excluded (see module docs).
pub fn hash_dfg(h: &mut Hasher, dfg: &Dfg) {
    h.write_u64(dfg.num_nodes() as u64);
    for n in dfg.node_ids() {
        let node = dfg.node(n);
        h.write_str(&format!("{:?}", node.op));
        h.write_i64(node.imm);
    }
    h.write_u64(dfg.num_edges() as u64);
    for (_, e) in dfg.edges() {
        h.write_u64(e.src.index() as u64);
        h.write_u64(e.dst.index() as u64);
        h.write_u64(u64::from(e.operand));
        h.write_u64(u64::from(e.distance));
        h.write_i64(e.init);
    }
}

/// Absorbs a CGRA instance: geometry, topology, registers, memory policy.
pub fn hash_cgra(h: &mut Hasher, cgra: &Cgra) {
    h.write_u64(u64::from(cgra.rows()));
    h.write_u64(u64::from(cgra.cols()));
    h.write_str(&format!("{:?}", cgra.topology()));
    h.write_u64(u64::from(cgra.regs_per_pe()));
    h.write_str(&format!("{:?}", cgra.memory_policy()));
}

/// Absorbs every result-affecting knob of an [`EngineConfig`].
pub fn hash_config(h: &mut Hasher, config: &EngineConfig) {
    let m = &config.mapper;
    h.write_u64(u64::from(m.max_ii));
    h.write_opt_u64(m.timeout.map(|d| d.as_nanos() as u64));
    h.write_str(&format!("{:?}", m.amo));
    h.write_opt_u64(m.max_conflicts_per_ii);
    h.write_u64(m.regalloc_budget);
    h.write_opt_u64(m.start_ii.map(u64::from));
    h.write_str(&format!("{:?}", m.slack));
    h.write_u64(u64::from(m.ra_cuts));
    h.write(&[u8::from(m.register_pressure)]);
    h.write(&[u8::from(m.incremental)]);
    h.write(&[u8::from(m.rung_transfer)]);
    h.write_u64(m.solver.restart_base);
    h.write_opt_u64(m.solver.phase_seed);
    // Arena GC preserves the formula but compacts watch lists, which can
    // reorder propagation and therefore the model found — an execution
    // knob like the phase seed, so it moves the result key.
    h.write(&[u8::from(m.solver.gc)]);
    h.write_u64(config.race_width as u64);
    h.write_u64(config.portfolio as u64);
    // Learnt-clause sharing changes which (equally valid) model a
    // portfolio finds, so its knobs move the result key — but only when
    // sharing can actually engage (enabled *and* ≥ 2 siblings per II,
    // matching the race's activation condition): share-off and
    // portfolio-1 configurations must keep hashing exactly like builds
    // that predate the feature, so existing persistent caches stay warm.
    // (The *problem* fingerprint below excludes sharing entirely: UNSAT
    // proofs are share-independent.)
    if config.share.enabled && config.portfolio > 1 {
        h.write_str("share");
        h.write_u64(u64::from(config.share.share_lbd_max));
        h.write_u64(config.share.share_len_max as u64);
        h.write_u64(config.share.share_ring_cap as u64);
    }
    // The backend choice can change which (equally valid) model is found
    // for a feasible II, so non-default kinds move the result key — but
    // the default (Sat) hashes nothing, keeping every pre-backend
    // persistent cache byte-identically warm. (The *problem* fingerprint
    // below stays backend-blind: both backends search the same KMS
    // candidate space, so UNSAT proofs transfer between them.)
    if config.backend != crate::BackendKind::Sat {
        h.write_str("backend");
        h.write_str(config.backend.as_str());
    }
}

/// The cache key for one mapping request under `config`.
pub fn fingerprint(dfg: &Dfg, cgra: &Cgra, config: &EngineConfig) -> Fingerprint {
    let mut h = Hasher::new();
    hash_dfg(&mut h, dfg);
    hash_cgra(&mut h, cgra);
    hash_config(&mut h, config);
    h.finish()
}

/// The key of the *problem semantics* only: the DFG structure, the CGRA,
/// and the two configuration knobs that change which IIs are feasible
/// (mobility-window slack and the C4 register-pressure constraints).
///
/// Unlike [`fingerprint`], execution knobs — timeouts, worker counts, race
/// width, solver seeds, AMO encoding, incremental mode — are excluded: an
/// `Unsat` proof at some II transfers between any two configurations that
/// agree on this key. The engine's proven-II-bound cache is keyed on it,
/// so a retried job (longer timeout, different parallelism) starts its
/// ladder above everything already proven infeasible.
pub fn problem_fingerprint(
    dfg: &Dfg,
    cgra: &Cgra,
    mapper: &satmapit_core::MapperConfig,
) -> Fingerprint {
    let mut h = Hasher::new();
    h.write_str("problem-semantics-v1");
    hash_dfg(&mut h, dfg);
    hash_cgra(&mut h, cgra);
    h.write_str(&format!("{:?}", mapper.slack));
    h.write(&[u8::from(mapper.register_pressure)]);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use satmapit_dfg::Op;

    fn sample_dfg(name: &str) -> Dfg {
        let mut dfg = Dfg::new(name);
        let a = dfg.add_const(7);
        let b = dfg.add_node(Op::Neg);
        dfg.add_edge(a, b, 0);
        dfg
    }

    #[test]
    fn stable_across_calls() {
        let dfg = sample_dfg("x");
        let cgra = Cgra::square(3);
        let config = EngineConfig::default();
        assert_eq!(
            fingerprint(&dfg, &cgra, &config),
            fingerprint(&dfg, &cgra, &config)
        );
    }

    #[test]
    fn name_is_cosmetic() {
        let cgra = Cgra::square(3);
        let config = EngineConfig::default();
        assert_eq!(
            fingerprint(&sample_dfg("a"), &cgra, &config),
            fingerprint(&sample_dfg("b"), &cgra, &config)
        );
    }

    #[test]
    fn structure_and_architecture_matter() {
        let cgra = Cgra::square(3);
        let config = EngineConfig::default();
        let base = fingerprint(&sample_dfg("x"), &cgra, &config);

        let mut bigger = sample_dfg("x");
        let _ = bigger.add_const(9);
        assert_ne!(base, fingerprint(&bigger, &cgra, &config));

        assert_ne!(
            base,
            fingerprint(&sample_dfg("x"), &Cgra::square(4), &config)
        );

        let mut other_config = EngineConfig::default();
        other_config.mapper.max_ii = 7;
        assert_ne!(base, fingerprint(&sample_dfg("x"), &cgra, &other_config));
    }

    /// Pins the module-docs promise: two structurally identical DFGs that
    /// differ only in node labels and graph name share a fingerprint.
    #[test]
    fn node_labels_and_graph_name_are_cosmetic() {
        let cgra = Cgra::square(3);
        let config = EngineConfig::default();

        let mut plain = Dfg::new("kernel-a");
        let a = plain.add_node_labeled(Op::Const, 7, "x");
        let b = plain.add_node_labeled(Op::Neg, 0, "y");
        plain.add_edge(a, b, 0);

        let mut renamed = Dfg::new("kernel-b-entirely-different-name");
        let a = renamed.add_node_labeled(Op::Const, 7, "loop_invariant_base_pointer");
        let b = renamed.add_node_labeled(Op::Neg, 0, "negated_offset");
        renamed.add_edge(a, b, 0);

        assert_eq!(
            fingerprint(&plain, &cgra, &config),
            fingerprint(&renamed, &cgra, &config)
        );
        assert_eq!(
            problem_fingerprint(&plain, &cgra, &config.mapper),
            problem_fingerprint(&renamed, &cgra, &config.mapper)
        );
    }

    #[test]
    fn problem_fingerprint_ignores_execution_knobs_only() {
        let dfg = sample_dfg("x");
        let cgra = Cgra::square(3);
        let base = EngineConfig::default();
        let key = problem_fingerprint(&dfg, &cgra, &base.mapper);

        // Execution knobs do not move the problem key…
        let mut exec = base.clone();
        exec.mapper.timeout = Some(std::time::Duration::from_secs(1));
        exec.mapper.max_conflicts_per_ii = Some(10);
        exec.mapper.incremental = false;
        exec.mapper.solver.phase_seed = Some(42);
        assert_eq!(key, problem_fingerprint(&dfg, &cgra, &exec.mapper));

        // …but semantic knobs do.
        let mut semantic = base.clone();
        semantic.mapper.register_pressure = false;
        assert_ne!(key, problem_fingerprint(&dfg, &cgra, &semantic.mapper));
        let mut semantic = base;
        semantic.mapper.slack = satmapit_core::SlackPolicy::Zero;
        assert_ne!(key, problem_fingerprint(&dfg, &cgra, &semantic.mapper));
    }

    #[test]
    fn incremental_knob_moves_the_result_key() {
        let dfg = sample_dfg("x");
        let cgra = Cgra::square(3);
        let on = EngineConfig::default();
        let mut off = EngineConfig::default();
        off.mapper.incremental = false;
        assert_ne!(
            fingerprint(&dfg, &cgra, &on),
            fingerprint(&dfg, &cgra, &off)
        );
    }

    #[test]
    fn share_off_keys_are_bit_identical_to_pre_share_keys() {
        // The share field only joins the hash when enabled: a share-off
        // config must hash exactly like the default (which is how every
        // pre-feature persistent cache was keyed), while share-on moves
        // the result key but never the problem key.
        let dfg = sample_dfg("x");
        let cgra = Cgra::square(3);
        let default_config = EngineConfig::default();
        let mut off = EngineConfig::default();
        off.share = crate::ShareConfig::off();
        assert_eq!(
            fingerprint(&dfg, &cgra, &default_config),
            fingerprint(&dfg, &cgra, &off)
        );

        // Share-on with a portfolio of one cannot engage (the race needs
        // ≥ 2 siblings per II), so it must keep the pre-share key too —
        // toggling --share at portfolio 1 must not cold the caches.
        let on_solo = EngineConfig {
            share: crate::ShareConfig::on(),
            ..EngineConfig::default()
        };
        assert_eq!(on_solo.portfolio, 1);
        assert_eq!(
            fingerprint(&dfg, &cgra, &default_config),
            fingerprint(&dfg, &cgra, &on_solo)
        );

        let on = EngineConfig {
            portfolio: 2,
            share: crate::ShareConfig::on(),
            ..EngineConfig::default()
        };
        let off_portfolio = EngineConfig {
            portfolio: 2,
            ..EngineConfig::default()
        };
        assert_ne!(
            fingerprint(&dfg, &cgra, &off_portfolio),
            fingerprint(&dfg, &cgra, &on),
            "engaged sharing can change the model found, so it moves the result key"
        );
        let mut on_small_ring = on.clone();
        on_small_ring.share.share_ring_cap = 7;
        assert_ne!(
            fingerprint(&dfg, &cgra, &on),
            fingerprint(&dfg, &cgra, &on_small_ring)
        );

        // The proven-II-bound key is share-blind: UNSAT proofs transfer.
        assert_eq!(
            problem_fingerprint(&dfg, &cgra, &default_config.mapper),
            problem_fingerprint(&dfg, &cgra, &on.mapper)
        );
    }

    #[test]
    fn default_backend_keys_are_bit_identical_to_pre_backend_keys() {
        // The backend field only joins the hash when it is not Sat: a
        // default config must hash exactly like builds that predate the
        // field (warm caches), while morph/race move the result key but
        // never the problem key (UNSAT proofs are backend-independent).
        let dfg = sample_dfg("x");
        let cgra = Cgra::square(3);
        let default_config = EngineConfig::default();
        let explicit_sat = EngineConfig {
            backend: crate::BackendKind::Sat,
            ..EngineConfig::default()
        };
        assert_eq!(
            fingerprint(&dfg, &cgra, &default_config),
            fingerprint(&dfg, &cgra, &explicit_sat)
        );
        let morph = EngineConfig {
            backend: crate::BackendKind::Morph,
            ..EngineConfig::default()
        };
        let race = EngineConfig {
            backend: crate::BackendKind::Race,
            ..EngineConfig::default()
        };
        assert_ne!(
            fingerprint(&dfg, &cgra, &default_config),
            fingerprint(&dfg, &cgra, &morph)
        );
        assert_ne!(
            fingerprint(&dfg, &cgra, &morph),
            fingerprint(&dfg, &cgra, &race)
        );
        assert_eq!(
            problem_fingerprint(&dfg, &cgra, &morph.mapper),
            problem_fingerprint(&dfg, &cgra, &default_config.mapper)
        );
    }

    #[test]
    fn immediates_matter() {
        let cgra = Cgra::square(2);
        let config = EngineConfig::default();
        let mut a = Dfg::new("k");
        let _ = a.add_const(1);
        let mut b = Dfg::new("k");
        let _ = b.add_const(2);
        assert_ne!(
            fingerprint(&a, &cgra, &config),
            fingerprint(&b, &cgra, &config)
        );
    }
}
