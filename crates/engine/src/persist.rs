//! Disk persistence for the batch [`Engine`](crate::Engine)'s caches.
//!
//! Two append-only, versioned, checksummed stores live in a cache
//! directory:
//!
//! * **`results.smc`** — the content-hash result cache: one record per
//!   solved fingerprint, holding the full [`EngineOutcome`] (mapping,
//!   register allocation, per-II trace, race telemetry). A warm restart
//!   replays these without touching the SAT solver.
//! * **`bounds.smc`** — the proven-II-bound cache: `problem_fingerprint →
//!   proven lower bound` records (`u32::MAX` = unmappable at every II).
//!
//! ## On-disk format
//!
//! Both files share the layout (all integers little-endian):
//!
//! ```text
//! header:  magic "SMCACHE\0" (8) | format version u32 (4) | kind u8 (1) | zero pad (3)
//! record:  payload length u32 (4) | FNV-1a-64 checksum of payload u64 (8) | payload
//! ```
//!
//! Records are appended on every cache miss and the file is rewritten
//! ("compacted") on shutdown, deduplicating superseded records and
//! dropping any corrupt tail. Loading is defensive: a record whose
//! checksum or decoding fails is **skipped with a warning**, and a
//! truncated tail (an interrupted append) ends the scan without error —
//! corruption can cost cache entries but can never poison results or
//! panic the daemon.
//!
//! The record payload codec ([`encode_result_record`] /
//! [`decode_result_record`], [`encode_bound_record`] /
//! [`decode_bound_record`]) is exposed for tests and tooling; round-trip
//! fidelity is pinned by proptests in `tests/persist_roundtrip.rs`.

use crate::fingerprint::Fingerprint;
use crate::race::{EngineOutcome, RaceStats};
use satmapit_core::encoder::EncodeStats;
use satmapit_core::{
    AttemptOutcome, IiAttempt, MapFailure, MapOutcome, MappedLoop, Mapping, Placement, TransferKind,
};
use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// File name of the result-cache store inside a cache directory.
pub const RESULTS_FILE: &str = "results.smc";
/// File name of the proven-II-bound store inside a cache directory.
pub const BOUNDS_FILE: &str = "bounds.smc";

/// Magic bytes opening every store file.
pub const MAGIC: [u8; 8] = *b"SMCACHE\0";
/// Current format version. Files whose version is neither this nor a
/// member of [`COMPATIBLE_VERSIONS`] are ignored wholesale (with a
/// warning) rather than misread.
///
/// v2 extended the persisted [`satmapit_sat::SolverStats`] with the
/// clause-arena GC counters (`gc_runs`, `lits_reclaimed`, `arena_wasted`,
/// `arena_words`); v3 added the portfolio clause-sharing counters
/// (`shared_exported`/`shared_imported`/`shared_dropped`, in both
/// [`satmapit_sat::SolverStats`] and [`RaceStats`]). Older stores are
/// simply re-solved. v4 is the durability overhaul (appender rollback
/// latch, fsync policy, synced compaction, checksum-verified loader
/// resync); the record codec is byte-identical to v3, so v3 stores stay
/// readable. v5 added the cross-backend race counters to [`RaceStats`]
/// (`sat_wins`/`morph_wins`/`bound_exchanges`); the codec changed, so
/// older stores are re-solved.
pub const FORMAT_VERSION: u32 = 5;
/// Prior format versions whose record codec is identical to the current
/// one; loaders accept them and appenders extend them in place. Empty
/// since v5 changed the [`RaceStats`] codec.
pub const COMPATIBLE_VERSIONS: &[u32] = &[];
const HEADER_LEN: usize = 16;
/// Upper bound on a single record's payload; anything larger is treated
/// as framing corruption (a flipped bit in a length field must not make
/// the loader attempt a gigabyte allocation).
const MAX_RECORD_LEN: u32 = 64 << 20;

/// Which cache a store file holds (byte 12 of the header).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreKind {
    /// The content-hash result cache.
    Results,
    /// The proven-II-bound cache.
    Bounds,
}

impl StoreKind {
    fn code(self) -> u8 {
        match self {
            StoreKind::Results => 1,
            StoreKind::Bounds => 2,
        }
    }

    /// Fault-plane site name for appends to this store.
    fn append_site(self) -> &'static str {
        match self {
            StoreKind::Results => "append.results",
            StoreKind::Bounds => "append.bounds",
        }
    }

    /// Fault-plane site name for the appender's fsync.
    fn sync_site(self) -> &'static str {
        match self {
            StoreKind::Results => "sync.results",
            StoreKind::Bounds => "sync.bounds",
        }
    }

    /// Fault-plane site name for the failed-append rollback truncate.
    fn truncate_site(self) -> &'static str {
        match self {
            StoreKind::Results => "truncate.results",
            StoreKind::Bounds => "truncate.bounds",
        }
    }
}

/// Decoding failures of persisted bytes. All of them are *recoverable*:
/// loaders report the record (or file) and move on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The payload ended before the value it promised.
    Truncated,
    /// An enum tag byte has no corresponding variant.
    BadTag {
        /// Which type was being decoded.
        what: &'static str,
        /// The unrecognized tag.
        tag: u8,
    },
    /// The file does not open with [`MAGIC`].
    BadMagic,
    /// The file's format version is not [`FORMAT_VERSION`].
    BadVersion(u32),
    /// The file's kind byte does not match the expected store.
    BadKind(u8),
    /// A stored string is not valid UTF-8.
    BadString,
    /// A stored integer does not fit the target type.
    BadValue(&'static str),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Truncated => write!(f, "record truncated"),
            PersistError::BadTag { what, tag } => write!(f, "unknown tag {tag} for {what}"),
            PersistError::BadMagic => write!(f, "not a SAT-MapIt cache file (bad magic)"),
            PersistError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported cache format version {v} (want {FORMAT_VERSION})"
                )
            }
            PersistError::BadKind(k) => write!(f, "wrong store kind byte {k}"),
            PersistError::BadString => write!(f, "stored string is not UTF-8"),
            PersistError::BadValue(what) => write!(f, "stored {what} out of range"),
        }
    }
}

impl std::error::Error for PersistError {}

/// 64-bit FNV-1a over `bytes` — the record checksum.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ---------------------------------------------------------------------------
// Byte-level reader/writer
// ---------------------------------------------------------------------------

/// Little-endian byte sink for record payloads.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// A fresh, empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// The accumulated payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn duration(&mut self, d: Duration) {
        self.u64(d.as_secs());
        self.u32(d.subsec_nanos());
    }
}

/// Little-endian cursor over a record payload.
#[derive(Debug)]
pub struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A cursor at the start of `data`.
    pub fn new(data: &'a [u8]) -> ByteReader<'a> {
        ByteReader { data, pos: 0 }
    }

    /// `true` once every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.data.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self.pos.checked_add(n).ok_or(PersistError::Truncated)?;
        if end > self.data.len() {
            return Err(PersistError::Truncated);
        }
        let slice = &self.data[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }
    fn bool(&mut self) -> Result<bool, PersistError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(PersistError::BadTag { what: "bool", tag }),
        }
    }
    fn u16(&mut self) -> Result<u16, PersistError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn u128(&mut self) -> Result<u128, PersistError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }
    fn usize(&mut self) -> Result<usize, PersistError> {
        usize::try_from(self.u64()?).map_err(|_| PersistError::BadValue("usize"))
    }
    fn str(&mut self) -> Result<String, PersistError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| PersistError::BadString)
    }
    fn duration(&mut self) -> Result<Duration, PersistError> {
        let secs = self.u64()?;
        let nanos = self.u32()?;
        if nanos >= 1_000_000_000 {
            return Err(PersistError::BadValue("duration nanos"));
        }
        Ok(Duration::new(secs, nanos))
    }
    fn len_capped(&mut self, what: &'static str) -> Result<usize, PersistError> {
        let len = self.usize()?;
        // A length prefix can never promise more elements than bytes left;
        // rejecting early keeps a flipped length bit from allocating wild.
        if len > self.data.len().saturating_sub(self.pos) {
            return Err(PersistError::BadValue(what));
        }
        Ok(len)
    }
}

// ---------------------------------------------------------------------------
// Domain codecs
// ---------------------------------------------------------------------------

fn write_encode_stats(w: &mut ByteWriter, s: &EncodeStats) {
    w.usize(s.placement_vars);
    w.usize(s.total_vars);
    w.usize(s.clauses);
    w.usize(s.c1_clauses);
    w.usize(s.c2_clauses);
    w.usize(s.c3_compat_clauses);
    w.usize(s.c3_guard_clauses);
    w.usize(s.occupancy_vars);
    w.usize(s.pressure_vars);
    w.usize(s.pressure_clauses);
}

fn read_encode_stats(r: &mut ByteReader<'_>) -> Result<EncodeStats, PersistError> {
    Ok(EncodeStats {
        placement_vars: r.usize()?,
        total_vars: r.usize()?,
        clauses: r.usize()?,
        c1_clauses: r.usize()?,
        c2_clauses: r.usize()?,
        c3_compat_clauses: r.usize()?,
        c3_guard_clauses: r.usize()?,
        occupancy_vars: r.usize()?,
        pressure_vars: r.usize()?,
        pressure_clauses: r.usize()?,
    })
}

fn write_solver_stats(w: &mut ByteWriter, s: &satmapit_sat::SolverStats) {
    w.u64(s.decisions);
    w.u64(s.propagations);
    w.u64(s.conflicts);
    w.u64(s.restarts);
    w.u64(s.learnt_clauses);
    w.u64(s.removed_clauses);
    w.u64(s.added_clauses);
    w.u64(s.gc_runs);
    w.u64(s.lits_reclaimed);
    w.u64(s.arena_wasted);
    w.u64(s.arena_words);
    w.u64(s.shared_exported);
    w.u64(s.shared_imported);
    w.u64(s.shared_dropped);
}

fn read_solver_stats(r: &mut ByteReader<'_>) -> Result<satmapit_sat::SolverStats, PersistError> {
    Ok(satmapit_sat::SolverStats {
        decisions: r.u64()?,
        propagations: r.u64()?,
        conflicts: r.u64()?,
        restarts: r.u64()?,
        learnt_clauses: r.u64()?,
        removed_clauses: r.u64()?,
        added_clauses: r.u64()?,
        gc_runs: r.u64()?,
        lits_reclaimed: r.u64()?,
        arena_wasted: r.u64()?,
        arena_words: r.u64()?,
        shared_exported: r.u64()?,
        shared_imported: r.u64()?,
        shared_dropped: r.u64()?,
    })
}

fn write_stop_reason(w: &mut ByteWriter, reason: satmapit_sat::StopReason) {
    use satmapit_sat::StopReason;
    w.u8(match reason {
        StopReason::ConflictLimit => 0,
        StopReason::Timeout => 1,
        StopReason::Cancelled => 2,
    });
}

fn read_stop_reason(r: &mut ByteReader<'_>) -> Result<satmapit_sat::StopReason, PersistError> {
    use satmapit_sat::StopReason;
    match r.u8()? {
        0 => Ok(StopReason::ConflictLimit),
        1 => Ok(StopReason::Timeout),
        2 => Ok(StopReason::Cancelled),
        tag => Err(PersistError::BadTag {
            what: "StopReason",
            tag,
        }),
    }
}

fn write_pe_alloc_failure(w: &mut ByteWriter, f: satmapit_regalloc::PeAllocFailure) {
    use satmapit_regalloc::PeAllocFailure;
    match f {
        PeAllocFailure::Infeasible => w.u8(0),
        PeAllocFailure::BudgetExhausted => w.u8(1),
        PeAllocFailure::IllegalSpan { id } => {
            w.u8(2);
            w.u32(id);
        }
    }
}

fn read_pe_alloc_failure(
    r: &mut ByteReader<'_>,
) -> Result<satmapit_regalloc::PeAllocFailure, PersistError> {
    use satmapit_regalloc::PeAllocFailure;
    match r.u8()? {
        0 => Ok(PeAllocFailure::Infeasible),
        1 => Ok(PeAllocFailure::BudgetExhausted),
        2 => Ok(PeAllocFailure::IllegalSpan { id: r.u32()? }),
        tag => Err(PersistError::BadTag {
            what: "PeAllocFailure",
            tag,
        }),
    }
}

fn write_attempt_outcome(w: &mut ByteWriter, outcome: &AttemptOutcome) {
    match outcome {
        AttemptOutcome::Mapped => w.u8(0),
        AttemptOutcome::RegAllocFailed(e) => {
            w.u8(1);
            w.usize(e.pe);
            write_pe_alloc_failure(w, e.failure);
        }
        AttemptOutcome::Unsat => w.u8(2),
        AttemptOutcome::SolverBudget(reason) => {
            w.u8(3);
            write_stop_reason(w, *reason);
        }
    }
}

fn read_attempt_outcome(r: &mut ByteReader<'_>) -> Result<AttemptOutcome, PersistError> {
    match r.u8()? {
        0 => Ok(AttemptOutcome::Mapped),
        1 => Ok(AttemptOutcome::RegAllocFailed(
            satmapit_regalloc::RegAllocError {
                pe: r.usize()?,
                failure: read_pe_alloc_failure(r)?,
            },
        )),
        2 => Ok(AttemptOutcome::Unsat),
        3 => Ok(AttemptOutcome::SolverBudget(read_stop_reason(r)?)),
        tag => Err(PersistError::BadTag {
            what: "AttemptOutcome",
            tag,
        }),
    }
}

fn write_attempt(w: &mut ByteWriter, a: &IiAttempt) {
    w.u32(a.ii);
    write_encode_stats(w, &a.encode_stats);
    write_attempt_outcome(w, &a.outcome);
    match &a.solver_stats {
        None => w.u8(0),
        Some(s) => {
            w.u8(1);
            write_solver_stats(w, s);
        }
    }
    w.u32(a.ra_cuts);
    w.duration(a.elapsed);
}

fn read_attempt(r: &mut ByteReader<'_>) -> Result<IiAttempt, PersistError> {
    Ok(IiAttempt {
        ii: r.u32()?,
        encode_stats: read_encode_stats(r)?,
        outcome: read_attempt_outcome(r)?,
        solver_stats: match r.u8()? {
            0 => None,
            1 => Some(read_solver_stats(r)?),
            tag => {
                return Err(PersistError::BadTag {
                    what: "Option<SolverStats>",
                    tag,
                })
            }
        },
        ra_cuts: r.u32()?,
        elapsed: r.duration()?,
    })
}

fn write_mapping(w: &mut ByteWriter, m: &Mapping) {
    w.u32(m.ii);
    w.u32(m.folds);
    w.usize(m.placements.len());
    for p in &m.placements {
        w.u16(p.pe.0);
        w.u32(p.cycle);
        w.u32(p.fold);
    }
    w.usize(m.transfers.len());
    for t in &m.transfers {
        w.u8(match t {
            TransferKind::SamePeRegister => 0,
            TransferKind::NeighborOutput => 1,
        });
    }
}

fn read_mapping(r: &mut ByteReader<'_>) -> Result<Mapping, PersistError> {
    let ii = r.u32()?;
    let folds = r.u32()?;
    let n = r.len_capped("placement count")?;
    let mut placements = Vec::with_capacity(n);
    for _ in 0..n {
        placements.push(Placement {
            pe: satmapit_cgra::PeId(r.u16()?),
            cycle: r.u32()?,
            fold: r.u32()?,
        });
    }
    let n = r.len_capped("transfer count")?;
    let mut transfers = Vec::with_capacity(n);
    for _ in 0..n {
        transfers.push(match r.u8()? {
            0 => TransferKind::SamePeRegister,
            1 => TransferKind::NeighborOutput,
            tag => {
                return Err(PersistError::BadTag {
                    what: "TransferKind",
                    tag,
                })
            }
        });
    }
    Ok(Mapping {
        ii,
        folds,
        placements,
        transfers,
    })
}

fn write_mapped_loop(w: &mut ByteWriter, m: &MappedLoop) {
    write_mapping(w, &m.mapping);
    let per_pe = m.registers.per_pe();
    w.usize(per_pe.len());
    for pe in per_pe {
        w.usize(pe.len());
        for &(value, reg) in pe {
            w.u32(value);
            w.u8(reg);
        }
    }
    w.u32(m.mii);
}

fn read_mapped_loop(r: &mut ByteReader<'_>) -> Result<MappedLoop, PersistError> {
    let mapping = read_mapping(r)?;
    let num_pes = r.len_capped("register PE count")?;
    let mut per_pe = Vec::with_capacity(num_pes);
    for _ in 0..num_pes {
        let n = r.len_capped("register value count")?;
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            values.push((r.u32()?, r.u8()?));
        }
        per_pe.push(values);
    }
    Ok(MappedLoop {
        mapping,
        registers: satmapit_regalloc::RegAllocation::from_per_pe(per_pe),
        mii: r.u32()?,
    })
}

fn write_map_failure(w: &mut ByteWriter, e: &MapFailure) {
    use satmapit_dfg::DfgError;
    match e {
        MapFailure::InvalidDfg(d) => {
            w.u8(0);
            match d {
                DfgError::Empty => w.u8(0),
                DfgError::DanglingEdge(e) => {
                    w.u8(1);
                    w.u32(e.0);
                }
                DfgError::SourceHasNoOutput(e) => {
                    w.u8(2);
                    w.u32(e.0);
                }
                DfgError::OperandOutOfRange(e) => {
                    w.u8(3);
                    w.u32(e.0);
                }
                DfgError::MissingOperand { node, slot } => {
                    w.u8(4);
                    w.u32(node.0);
                    w.usize(*slot);
                }
                DfgError::DuplicateOperand { node, slot } => {
                    w.u8(5);
                    w.u32(node.0);
                    w.usize(*slot);
                }
                DfgError::ForwardCycle => w.u8(6),
            }
        }
        MapFailure::Structural(s) => {
            use satmapit_core::encoder::EncodeError;
            w.u8(1);
            match s {
                EncodeError::NoPeForOp { node } => {
                    w.u8(0);
                    w.u32(node.0);
                }
                EncodeError::SelfEdgeDistance { edge } => {
                    w.u8(1);
                    w.u32(edge.0);
                }
            }
        }
        MapFailure::Timeout { at_ii } => {
            w.u8(2);
            w.u32(*at_ii);
        }
        MapFailure::IiCapReached { cap } => {
            w.u8(3);
            w.u32(*cap);
        }
        MapFailure::InvalidIi { ii, max_ii } => {
            w.u8(4);
            w.u32(*ii);
            w.u32(*max_ii);
        }
        MapFailure::Internal(msg) => {
            w.u8(5);
            w.str(msg);
        }
    }
}

fn read_map_failure(r: &mut ByteReader<'_>) -> Result<MapFailure, PersistError> {
    use satmapit_core::encoder::EncodeError;
    use satmapit_dfg::{DfgError, EdgeId, NodeId};
    match r.u8()? {
        0 => Ok(MapFailure::InvalidDfg(match r.u8()? {
            0 => DfgError::Empty,
            1 => DfgError::DanglingEdge(EdgeId(r.u32()?)),
            2 => DfgError::SourceHasNoOutput(EdgeId(r.u32()?)),
            3 => DfgError::OperandOutOfRange(EdgeId(r.u32()?)),
            4 => DfgError::MissingOperand {
                node: NodeId(r.u32()?),
                slot: r.usize()?,
            },
            5 => DfgError::DuplicateOperand {
                node: NodeId(r.u32()?),
                slot: r.usize()?,
            },
            6 => DfgError::ForwardCycle,
            tag => {
                return Err(PersistError::BadTag {
                    what: "DfgError",
                    tag,
                })
            }
        })),
        1 => Ok(MapFailure::Structural(match r.u8()? {
            0 => EncodeError::NoPeForOp {
                node: NodeId(r.u32()?),
            },
            1 => EncodeError::SelfEdgeDistance {
                edge: EdgeId(r.u32()?),
            },
            tag => {
                return Err(PersistError::BadTag {
                    what: "EncodeError",
                    tag,
                })
            }
        })),
        2 => Ok(MapFailure::Timeout { at_ii: r.u32()? }),
        3 => Ok(MapFailure::IiCapReached { cap: r.u32()? }),
        4 => Ok(MapFailure::InvalidIi {
            ii: r.u32()?,
            max_ii: r.u32()?,
        }),
        5 => Ok(MapFailure::Internal(r.str()?)),
        tag => Err(PersistError::BadTag {
            what: "MapFailure",
            tag,
        }),
    }
}

/// Serializes a full engine outcome (result, per-II trace, race stats).
pub fn write_outcome(w: &mut ByteWriter, outcome: &EngineOutcome) {
    match &outcome.outcome.result {
        Ok(mapped) => {
            w.u8(1);
            write_mapped_loop(w, mapped);
        }
        Err(e) => {
            w.u8(0);
            write_map_failure(w, e);
        }
    }
    w.usize(outcome.outcome.attempts.len());
    for a in &outcome.outcome.attempts {
        write_attempt(w, a);
    }
    w.duration(outcome.outcome.elapsed);
    w.usize(outcome.stats.workers);
    w.u64(outcome.stats.tasks_started);
    w.u64(outcome.stats.tasks_cancelled);
    w.u32(outcome.stats.race_start);
    w.u64(outcome.stats.shared_exported);
    w.u64(outcome.stats.shared_imported);
    w.u64(outcome.stats.shared_dropped);
    w.u64(outcome.stats.sat_wins);
    w.u64(outcome.stats.morph_wins);
    w.u64(outcome.stats.bound_exchanges);
    w.bool(outcome.proven_unmappable);
}

/// Deserializes an engine outcome written by [`write_outcome`].
pub fn read_outcome(r: &mut ByteReader<'_>) -> Result<EngineOutcome, PersistError> {
    let result = match r.u8()? {
        1 => Ok(read_mapped_loop(r)?),
        0 => Err(read_map_failure(r)?),
        tag => {
            return Err(PersistError::BadTag {
                what: "Result<MappedLoop, MapFailure>",
                tag,
            })
        }
    };
    let n = r.len_capped("attempt count")?;
    let mut attempts = Vec::with_capacity(n);
    for _ in 0..n {
        attempts.push(read_attempt(r)?);
    }
    let elapsed = r.duration()?;
    let stats = RaceStats {
        workers: r.usize()?,
        tasks_started: r.u64()?,
        tasks_cancelled: r.u64()?,
        race_start: r.u32()?,
        shared_exported: r.u64()?,
        shared_imported: r.u64()?,
        shared_dropped: r.u64()?,
        sat_wins: r.u64()?,
        morph_wins: r.u64()?,
        bound_exchanges: r.u64()?,
    };
    let proven_unmappable = r.bool()?;
    Ok(EngineOutcome {
        outcome: MapOutcome {
            result,
            attempts,
            elapsed,
        },
        stats,
        proven_unmappable,
    })
}

/// Encodes one result-cache record: `fingerprint → outcome`.
pub fn encode_result_record(key: Fingerprint, outcome: &EngineOutcome) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u128(key.0);
    write_outcome(&mut w, outcome);
    w.into_bytes()
}

/// Decodes a record written by [`encode_result_record`]. Trailing bytes
/// are rejected — a record must parse exactly.
pub fn decode_result_record(bytes: &[u8]) -> Result<(Fingerprint, EngineOutcome), PersistError> {
    let mut r = ByteReader::new(bytes);
    let key = Fingerprint(r.u128()?);
    let outcome = read_outcome(&mut r)?;
    if !r.is_empty() {
        return Err(PersistError::BadValue("trailing bytes"));
    }
    Ok((key, outcome))
}

/// Encodes one bound-cache record: `problem fingerprint → proven bound`.
pub fn encode_bound_record(key: Fingerprint, bound: u32) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u128(key.0);
    w.u32(bound);
    w.into_bytes()
}

/// Decodes a record written by [`encode_bound_record`].
pub fn decode_bound_record(bytes: &[u8]) -> Result<(Fingerprint, u32), PersistError> {
    let mut r = ByteReader::new(bytes);
    let key = Fingerprint(r.u128()?);
    let bound = r.u32()?;
    if !r.is_empty() {
        return Err(PersistError::BadValue("trailing bytes"));
    }
    Ok((key, bound))
}

// ---------------------------------------------------------------------------
// File store
// ---------------------------------------------------------------------------

fn header_bytes(kind: StoreKind) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[..8].copy_from_slice(&MAGIC);
    h[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    h[12] = kind.code();
    h
}

fn check_header(bytes: &[u8], kind: StoreKind) -> Result<(), PersistError> {
    if bytes.len() < HEADER_LEN {
        return Err(PersistError::Truncated);
    }
    if bytes[..8] != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != FORMAT_VERSION && !COMPATIBLE_VERSIONS.contains(&version) {
        return Err(PersistError::BadVersion(version));
    }
    if bytes[12] != kind.code() {
        return Err(PersistError::BadKind(bytes[12]));
    }
    Ok(())
}

/// Reads every intact record payload of a store file.
///
/// Returns the payloads plus human-readable warnings for everything that
/// had to be skipped. A missing file is simply empty. The scan trusts
/// nothing but checksums: when a frame fails to validate — a torn
/// append, a corrupted length prefix, a flipped payload bit — the
/// loader searches forward for the next offset holding a
/// checksum-verified frame and resumes there, so damage is always
/// bounded to the damaged bytes and records appended *after* a tear are
/// still recovered. Only a tail with no verified frame anywhere in it
/// is dropped.
pub fn read_records(path: &Path, kind: StoreKind) -> io::Result<(Vec<Vec<u8>>, Vec<String>)> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok((Vec::new(), Vec::new())),
        Err(e) => return Err(e),
    }
    let mut warnings = Vec::new();
    if let Err(e) = check_header(&bytes, kind) {
        warnings.push(format!("{}: ignoring cache file: {e}", path.display()));
        return Ok((Vec::new(), warnings));
    }
    let mut records = Vec::new();
    let mut pos = HEADER_LEN;
    let mut index = 0usize;
    while pos < bytes.len() {
        if bytes.len() - pos < 12 {
            warnings.push(format!(
                "{}: truncated record header at offset {pos} (interrupted append?); \
                 dropping tail",
                path.display()
            ));
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        let sum = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap());
        let body = pos + 12;
        if len > MAX_RECORD_LEN || bytes.len() - body < len as usize {
            // Implausible framing: a torn append's length prefix promises
            // bytes that never landed. Records appended after the tear
            // (by a process that failed to roll the tear back) are still
            // intact — find the next frame whose checksum proves it real.
            match scan_for_record(&bytes, pos + 1) {
                Some(next) => {
                    warnings.push(format!(
                        "{}: record {index} at offset {pos} claims {len} bytes (torn \
                         append?); resynced at the next verified record, offset {next}",
                        path.display()
                    ));
                    pos = next;
                    index += 1;
                    continue;
                }
                None => {
                    warnings.push(format!(
                        "{}: record {index} at offset {pos} claims {len} bytes but only {} \
                         remain and no later record verifies; dropping tail",
                        path.display(),
                        bytes.len() - body
                    ));
                    break;
                }
            }
        }
        let payload = &bytes[body..body + len as usize];
        if checksum(payload) != sum {
            // The checksum only covers the payload the *length prefix*
            // framed — if the corruption hit the length itself, advancing
            // by it would desynchronize the scan and silently mis-skip
            // every following valid record. Advance by the prefix only
            // when the frame it implies next *verifies* (or the file ends
            // cleanly there); otherwise fall back to scanning for a
            // verified frame anywhere in the tail.
            let next = body + len as usize;
            if next == bytes.len() || verified_at(&bytes, next) {
                warnings.push(format!(
                    "{}: record {index} at offset {pos} fails its checksum; skipped",
                    path.display()
                ));
                pos = next;
                index += 1;
                continue;
            }
            match scan_for_record(&bytes, pos + 1) {
                Some(next) => {
                    warnings.push(format!(
                        "{}: record {index} at offset {pos} fails its checksum and its \
                         length prefix is untrustworthy; resynced at the next verified \
                         record, offset {next}",
                        path.display()
                    ));
                    pos = next;
                    index += 1;
                    continue;
                }
                None => {
                    warnings.push(format!(
                        "{}: record {index} at offset {pos} fails its checksum and no \
                         later record verifies; dropping tail",
                        path.display()
                    ));
                    break;
                }
            }
        }
        records.push(payload.to_vec());
        pos = body + len as usize;
        index += 1;
    }
    Ok((records, warnings))
}

/// `true` when a full record frame at `pos` parses *and* its payload
/// checksum validates — strong evidence (2⁻⁶⁴ false-positive odds) of a
/// real record boundary. This is what lets the loader resynchronize
/// after torn or corrupt bytes without ever trusting damaged framing.
fn verified_at(bytes: &[u8], pos: usize) -> bool {
    if pos > bytes.len() || bytes.len() - pos < 12 {
        return false;
    }
    let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
    let sum = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap());
    let body = pos + 12;
    if len > MAX_RECORD_LEN || bytes.len() - body < len as usize {
        return false;
    }
    checksum(&bytes[body..body + len as usize]) == sum
}

/// The first offset ≥ `from` holding a checksum-verified record frame.
/// Candidate offsets whose length field is implausible are rejected
/// before any checksum work, so the scan is cheap on random garbage.
fn scan_for_record(bytes: &[u8], from: usize) -> Option<usize> {
    (from..bytes.len()).find(|&pos| verified_at(bytes, pos))
}

/// Appends framed records to a store file, creating it (with a header)
/// when absent or empty.
///
/// The appender carries a **failure latch**: it tracks the end offset of
/// the last fully written record, and any failed append (`ENOSPC`, a
/// partial `write_all`, an injected fault) rolls the file back to that
/// offset so torn bytes can never sit between records and desync the
/// loader. If the rollback itself fails the appender **seals** — every
/// later append is refused — because continuing to append after
/// unremovable torn bytes would strand each new record behind garbage.
#[derive(Debug)]
pub struct Appender {
    file: File,
    path: PathBuf,
    kind: StoreKind,
    /// End offset of the last fully written record (or the header);
    /// the rollback target for a failed append.
    committed: u64,
    /// Successful appends since the last [`Appender::sync`] — the
    /// fsync-cadence state [`crate::DurabilityPolicy::fsync_every`]
    /// compares against.
    unsynced: u64,
    /// Set when a failed append could not be rolled back; permanent.
    sealed: bool,
}

impl Appender {
    /// Opens `path` for appending, writing the header first if the file is
    /// new or empty. A non-empty file whose header does not validate is
    /// **truncated** and re-headered: its records were unreachable anyway
    /// (loaders ignore the whole file), and appending after a bad header
    /// would make every record written this run equally unreadable — the
    /// cache regrows, silent ongoing data loss does not.
    pub fn open(path: &Path, kind: StoreKind) -> io::Result<Appender> {
        let valid_nonempty = match File::open(path) {
            Ok(mut f) => {
                let mut header = [0u8; HEADER_LEN];
                match f.read_exact(&mut header) {
                    Ok(()) => check_header(&header, kind).is_ok(),
                    Err(_) => false, // shorter than a header: rewrite
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => false,
            Err(e) => return Err(e),
        };
        let file = if valid_nonempty {
            OpenOptions::new().append(true).open(path)?
        } else {
            let mut fresh = File::create(path)?; // truncates
            fresh.write_all(&header_bytes(kind))?;
            fresh.flush()?;
            drop(fresh);
            OpenOptions::new().append(true).open(path)?
        };
        let committed = file.metadata()?.len();
        Ok(Appender {
            file,
            path: path.to_path_buf(),
            kind,
            committed,
            unsynced: 0,
            sealed: false,
        })
    }

    /// The file this appender writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Successful appends since the last [`Appender::sync`].
    pub fn unsynced(&self) -> u64 {
        self.unsynced
    }

    /// `true` once a failed append could not be rolled back and the
    /// appender refused all further writes (see the type docs).
    pub fn sealed(&self) -> bool {
        self.sealed
    }

    /// Appends one framed, checksummed record and flushes it. On any
    /// write failure the file is truncated back to the pre-write offset
    /// (the failure latch); if that truncation fails too, the appender
    /// seals itself permanently.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        if self.sealed {
            return Err(io::Error::other(
                "appender sealed: an earlier failed append could not be rolled back",
            ));
        }
        let mut frame = Vec::with_capacity(12 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&checksum(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        // One write_all per record keeps concurrent appends (behind the
        // engine's mutex) and crashes from interleaving frames.
        let written = satmapit_faults::write_all(self.kind.append_site(), &mut self.file, &frame)
            .and_then(|()| self.file.flush());
        match written {
            Ok(()) => {
                self.committed += frame.len() as u64;
                self.unsynced += 1;
                Ok(())
            }
            Err(e) => {
                // A partial write_all left torn bytes after `committed`;
                // without this rollback every later record would sit
                // behind garbage the loader has to fight past.
                let rollback = satmapit_faults::check(self.kind.truncate_site())
                    .and_then(|()| self.file.set_len(self.committed));
                if rollback.is_err() {
                    self.sealed = true;
                }
                Err(e)
            }
        }
    }

    /// Makes every appended record durable (`fsync`) and resets the
    /// [`Appender::unsynced`] cadence counter.
    pub fn sync(&mut self) -> io::Result<()> {
        satmapit_faults::check(self.kind.sync_site())?;
        self.file.sync_all()?;
        self.unsynced = 0;
        Ok(())
    }
}

/// Atomically rewrites a store file from in-memory payloads: write to a
/// sibling temp file, then rename over the original. Deduplicates nothing
/// itself — callers pass the already-deduplicated live set.
///
/// With `sync` set the rewrite is crash-durable, not merely atomic: the
/// temp file is `sync_all`ed *before* the rename (so the rename can
/// never publish a name whose bytes are still in the page cache) and
/// the parent directory is fsynced *after* it (so a crash cannot
/// resurrect the pre-compaction file). A temp file stranded by a crash
/// between create and rename is swept by [`clean_stale_tmp`] on the
/// next load.
pub fn rewrite(path: &Path, kind: StoreKind, payloads: &[Vec<u8>], sync: bool) -> io::Result<()> {
    let tmp = path.with_extension("smc.tmp");
    {
        let mut file = File::create(&tmp)?;
        satmapit_faults::write_all("compact.write", &mut file, &header_bytes(kind))?;
        for payload in payloads {
            let mut frame = Vec::with_capacity(12 + payload.len());
            frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            frame.extend_from_slice(&checksum(payload).to_le_bytes());
            frame.extend_from_slice(payload);
            satmapit_faults::write_all("compact.write", &mut file, &frame)?;
        }
        file.flush()?;
        if sync {
            satmapit_faults::check("compact.sync")?;
            file.sync_all()?;
        }
    }
    satmapit_faults::check("compact.rename")?;
    std::fs::rename(&tmp, path)?;
    if sync {
        satmapit_faults::check("compact.dirsync")?;
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                File::open(parent)?.sync_all()?;
            }
        }
    }
    Ok(())
}

/// Removes stray `*.smc.tmp` files left behind by a compaction that
/// crashed between writing its temp file and renaming it into place.
/// Returns one warning line per file swept (or per sweep failure); the
/// engine surfaces them through `load_warnings`.
pub fn clean_stale_tmp(dir: &Path) -> io::Result<Vec<String>> {
    let mut warnings = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if !name.ends_with(".smc.tmp") {
            continue;
        }
        let path = entry.path();
        match std::fs::remove_file(&path) {
            Ok(()) => warnings.push(format!(
                "{}: removed stale temp file from an interrupted compaction",
                path.display()
            )),
            Err(e) => warnings.push(format!(
                "{}: could not remove stale temp file: {e}",
                path.display()
            )),
        }
    }
    Ok(warnings)
}

/// A loaded result cache: fingerprint-keyed shared outcomes.
pub type ResultMap = HashMap<Fingerprint, Arc<EngineOutcome>>;

/// Loads the result cache from `dir`. Duplicate keys keep the first
/// (oldest) record, matching the in-memory cache's first-insert-wins.
pub fn load_results(dir: &Path) -> io::Result<(ResultMap, Vec<String>)> {
    let path = dir.join(RESULTS_FILE);
    let (records, mut warnings) = read_records(&path, StoreKind::Results)?;
    let mut map = HashMap::with_capacity(records.len());
    for (index, payload) in records.iter().enumerate() {
        match decode_result_record(payload) {
            Ok((key, outcome)) => {
                map.entry(key).or_insert_with(|| Arc::new(outcome));
            }
            Err(e) => warnings.push(format!(
                "{}: record {index} does not decode ({e}); skipped",
                path.display()
            )),
        }
    }
    Ok((map, warnings))
}

/// Loads the proven-II-bound cache from `dir`; duplicate keys keep the
/// strongest (largest) bound, mirroring the in-memory merge.
pub fn load_bounds(dir: &Path) -> io::Result<(HashMap<Fingerprint, u32>, Vec<String>)> {
    let path = dir.join(BOUNDS_FILE);
    let (records, mut warnings) = read_records(&path, StoreKind::Bounds)?;
    let mut map = HashMap::with_capacity(records.len());
    for (index, payload) in records.iter().enumerate() {
        match decode_bound_record(payload) {
            Ok((key, bound)) => {
                let entry = map.entry(key).or_insert(bound);
                *entry = (*entry).max(bound);
            }
            Err(e) => warnings.push(format!(
                "{}: record {index} does not decode ({e}); skipped",
                path.display()
            )),
        }
    }
    Ok((map, warnings))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_is_stable_and_input_sensitive() {
        assert_eq!(checksum(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(checksum(b"abc"), checksum(b"abc"));
        assert_ne!(checksum(b"abc"), checksum(b"abd"));
    }

    #[test]
    fn bound_record_round_trips() {
        let key = Fingerprint(0xDEAD_BEEF_0123_4567_89AB_CDEF_0000_FFFF);
        for bound in [0, 3, u32::MAX] {
            let bytes = encode_bound_record(key, bound);
            assert_eq!(decode_bound_record(&bytes), Ok((key, bound)));
        }
    }

    #[test]
    fn bound_record_rejects_trailing_bytes() {
        let mut bytes = encode_bound_record(Fingerprint(1), 2);
        bytes.push(0);
        assert_eq!(
            decode_bound_record(&bytes),
            Err(PersistError::BadValue("trailing bytes"))
        );
    }

    #[test]
    fn truncated_payload_is_an_error_not_a_panic() {
        let bytes = encode_bound_record(Fingerprint(1), 2);
        for cut in 0..bytes.len() {
            assert!(decode_bound_record(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn reader_rejects_absurd_length_prefixes() {
        // A length prefix promising more elements than remaining bytes must
        // fail fast instead of attempting the allocation.
        let mut w = ByteWriter::new();
        w.u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.len_capped("test").is_err());
    }
}
