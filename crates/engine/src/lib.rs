//! # satmapit-engine
//!
//! A multi-threaded mapping engine layered on the SAT-MapIt mapper
//! (`satmapit-core`). The sequential search of paper Fig. 3 proves
//! candidate IIs infeasible one at a time; this crate attacks that
//! wall-clock bottleneck on three fronts:
//!
//! 1. **II-race** ([`map_raced`]): a pool of workers speculatively solves
//!    II, II+1, …, II+k concurrently. A shared stop flag (plumbed into
//!    [`satmapit_sat::SolveLimits`]) cancels losing workers cooperatively
//!    the moment a lower feasible II is proven, and UNSAT proofs at low
//!    IIs slide the race window upward.
//! 2. **Portfolio**: optionally, several solver configurations (phase
//!    seed, restart scale, at-most-one encoding) race *the same* II; the
//!    first definitive answer cancels its siblings.
//! 3. **Batch + cache** ([`Engine`]): many (kernel × CGRA) jobs over a
//!    bounded worker pool, memoized in a content-hash-keyed result cache
//!    — repeated requests are O(1) and return byte-identical results.
//!
//! The engine returns **the same best II as the sequential mapper**
//! whenever the sequential search is exact (the default configuration);
//! see [`race`] for the precise guarantee.
//!
//! ```
//! use satmapit_cgra::Cgra;
//! use satmapit_dfg::{Dfg, Op};
//! use satmapit_engine::{map_raced, EngineConfig};
//!
//! let mut dfg = Dfg::new("pair");
//! let a = dfg.add_const(1);
//! let b = dfg.add_node(Op::Neg);
//! dfg.add_edge(a, b, 0);
//!
//! let outcome = map_raced(&dfg, &Cgra::square(2), &EngineConfig::default());
//! assert_eq!(outcome.ii(), Some(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod fingerprint;
pub mod race;

pub use batch::{BatchItem, CacheStats, Engine, Job};
pub use fingerprint::Fingerprint;
pub use race::{map_raced, portfolio_variant, EngineOutcome, RaceStats};

use satmapit_core::MapperConfig;

/// Configuration of the parallel engine.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// The underlying mapper configuration (variant 0 of the portfolio
    /// runs it verbatim — the agreement anchor with the sequential
    /// mapper).
    pub mapper: MapperConfig,
    /// How many candidate IIs are raced concurrently (the sliding window
    /// above the lowest unresolved II). `1` disables speculation across
    /// IIs.
    pub race_width: usize,
    /// Solver-portfolio variants raced per II. `1` disables the
    /// portfolio; variant 0 is always the canonical configuration.
    pub portfolio: usize,
    /// Worker threads. `0` means one per available hardware thread.
    pub workers: usize,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            mapper: MapperConfig::default(),
            race_width: 4,
            portfolio: 1,
            workers: 0,
        }
    }
}

impl EngineConfig {
    /// The resolved worker count (`workers`, or the hardware parallelism
    /// when 0).
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use satmapit_cgra::Cgra;
    use satmapit_core::{map, AttemptOutcome, MapFailure, MapperConfig};
    use satmapit_dfg::{Dfg, Op};
    use std::sync::Arc;
    use std::time::Duration;

    fn chain(n: usize) -> Dfg {
        let mut dfg = Dfg::new(format!("chain{n}"));
        let mut prev = dfg.add_const(1);
        for _ in 1..n {
            let next = dfg.add_node(Op::Neg);
            dfg.add_edge(prev, next, 0);
            prev = next;
        }
        dfg
    }

    /// A recurrence that forces the search through UNSAT IIs before the
    /// feasible one (RecMII < achieved II is impossible here; instead the
    /// 1x1 resource bound forces climbing).
    fn recurrence() -> Dfg {
        let mut dfg = Dfg::new("rec");
        let a = dfg.add_node(Op::Neg);
        let b = dfg.add_node(Op::Neg);
        let c = dfg.add_node(Op::Neg);
        dfg.add_edge(a, b, 0);
        dfg.add_edge(b, c, 0);
        dfg.add_back_edge(c, a, 0, 1, 0);
        dfg
    }

    #[test]
    fn race_matches_sequential_on_simple_chain() {
        let dfg = chain(4);
        let cgra = Cgra::square(2);
        let sequential = map(&dfg, &cgra);
        let raced = map_raced(&dfg, &cgra, &EngineConfig::default());
        assert_eq!(raced.ii(), sequential.ii());
        assert_eq!(raced.ii(), Some(1));
    }

    #[test]
    fn race_matches_sequential_through_unsat_prefix() {
        let dfg = recurrence();
        let cgra = Cgra::square(1);
        let sequential = map(&dfg, &cgra);
        let raced = map_raced(&dfg, &cgra, &EngineConfig::default());
        assert_eq!(raced.ii(), sequential.ii());
        assert_eq!(raced.ii(), Some(3));
        // The trace must show the same definitive attempts, in order.
        let seq_iis: Vec<u32> = sequential.attempts.iter().map(|a| a.ii).collect();
        let race_iis: Vec<u32> = raced.outcome.attempts.iter().map(|a| a.ii).collect();
        assert_eq!(race_iis, seq_iis);
    }

    #[test]
    fn portfolio_race_still_agrees() {
        let dfg = recurrence();
        let cgra = Cgra::square(1);
        let config = EngineConfig {
            portfolio: 3,
            race_width: 2,
            ..EngineConfig::default()
        };
        let raced = map_raced(&dfg, &cgra, &config);
        assert_eq!(raced.ii(), Some(3));
    }

    #[test]
    fn ii_cap_reported_like_sequential() {
        let dfg = chain(5);
        let cgra = Cgra::square(1);
        let mapper = MapperConfig {
            max_ii: 3, // MII is 5 on a 1x1
            ..MapperConfig::default()
        };
        let config = EngineConfig {
            mapper,
            ..EngineConfig::default()
        };
        let raced = map_raced(&dfg, &cgra, &config);
        assert_eq!(
            raced.outcome.result.unwrap_err(),
            MapFailure::IiCapReached { cap: 3 }
        );
        assert!(raced.outcome.attempts.is_empty());
    }

    #[test]
    fn invalid_dfg_fails_fast() {
        let mut dfg = Dfg::new("bad");
        let _ = dfg.add_node(Op::Add); // Add with no operands
        let raced = map_raced(&dfg, &Cgra::square(2), &EngineConfig::default());
        assert!(matches!(
            raced.outcome.result,
            Err(MapFailure::InvalidDfg(_))
        ));
    }

    #[test]
    fn zero_timeout_reports_timeout() {
        let dfg = chain(6);
        let cgra = Cgra::square(2);
        let mapper = MapperConfig {
            timeout: Some(Duration::ZERO),
            ..MapperConfig::default()
        };
        let config = EngineConfig {
            mapper,
            ..EngineConfig::default()
        };
        let raced = map_raced(&dfg, &cgra, &config);
        assert!(matches!(
            raced.outcome.result,
            Err(MapFailure::Timeout { .. })
        ));
    }

    #[test]
    fn winning_attempt_is_last_and_mapped() {
        let dfg = recurrence();
        let raced = map_raced(&dfg, &Cgra::square(1), &EngineConfig::default());
        let last = raced.outcome.attempts.last().expect("has attempts");
        assert_eq!(last.outcome, AttemptOutcome::Mapped);
        assert_eq!(Some(last.ii), raced.ii());
    }

    #[test]
    fn engine_cache_returns_identical_result() {
        let dfg = chain(4);
        let cgra = Cgra::square(2);
        let engine = Engine::new(EngineConfig::default());
        let (first, cached_first) = engine.map(&dfg, &cgra);
        let (second, cached_second) = engine.map(&dfg, &cgra);
        assert!(!cached_first);
        assert!(cached_second);
        assert!(Arc::ptr_eq(&first, &second));
        let stats = engine.cache_stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn batch_deduplicates_identical_jobs() {
        let dfg = chain(4);
        let cgra = Cgra::square(2);
        let engine = Engine::new(EngineConfig::default());
        let jobs = vec![
            Job::new("a", dfg.clone(), cgra.clone()),
            Job::new("b", chain(3), cgra.clone()),
            Job::new("a-again", dfg.clone(), cgra.clone()),
        ];
        let items = engine.map_batch(jobs);
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].name, "a");
        assert_eq!(items[2].name, "a-again");
        assert_eq!(items[0].fingerprint, items[2].fingerprint);
        assert_ne!(items[0].fingerprint, items[1].fingerprint);
        // The duplicate is solved once and fanned out: only two distinct
        // solves happen, the repeat comes back as a hit sharing the same
        // allocation as the original.
        assert!(!items[0].cached);
        assert!(items[2].cached);
        assert!(Arc::ptr_eq(&items[0].outcome, &items[2].outcome));
        let stats = engine.cache_stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.misses, 2, "the duplicate never reached a solver");
        assert_eq!(items[0].outcome.ii(), items[2].outcome.ii());
    }

    #[test]
    fn timeouts_are_not_cached() {
        let dfg = chain(6);
        let cgra = Cgra::square(2);
        let mapper = MapperConfig {
            timeout: Some(Duration::ZERO),
            ..MapperConfig::default()
        };
        let engine = Engine::new(EngineConfig {
            mapper,
            ..EngineConfig::default()
        });
        let (first, cached) = engine.map(&dfg, &cgra);
        assert!(!cached);
        assert!(matches!(
            first.outcome.result,
            Err(MapFailure::Timeout { .. })
        ));
        // A wall-clock failure must not poison the cache: the retry solves
        // afresh instead of replaying the stale Err(Timeout).
        assert_eq!(engine.cache_stats().entries, 0);
        let (_, cached) = engine.map(&dfg, &cgra);
        assert!(!cached);
    }

    #[test]
    fn single_worker_race_still_resolves() {
        let config = EngineConfig {
            workers: 1,
            race_width: 1,
            ..EngineConfig::default()
        };
        let raced = map_raced(&recurrence(), &Cgra::square(1), &config);
        assert_eq!(raced.ii(), Some(3));
        assert_eq!(raced.stats.workers, 1);
    }
}
