//! # satmapit-engine
//!
//! A multi-threaded mapping engine layered on the SAT-MapIt mapper
//! (`satmapit-core`). The sequential search of paper Fig. 3 proves
//! candidate IIs infeasible one at a time; this crate attacks that
//! wall-clock bottleneck on three fronts:
//!
//! 1. **II-race** ([`map_raced`]): a pool of workers speculatively solves
//!    II, II+1, …, II+k concurrently. A shared stop flag (plumbed into
//!    [`satmapit_sat::SolveLimits`]) cancels losing workers cooperatively
//!    the moment a lower feasible II is proven, and UNSAT proofs at low
//!    IIs slide the race window upward.
//! 2. **Portfolio**: optionally, several solver configurations (phase
//!    seed, restart scale, at-most-one encoding) race *the same* II; the
//!    first definitive answer cancels its siblings.
//! 3. **Batch + cache** ([`Engine`]): many (kernel × CGRA) jobs over a
//!    bounded worker pool, memoized in a content-hash-keyed result cache
//!    — repeated requests are O(1) and return byte-identical results.
//!
//! The engine returns **the same best II as the sequential mapper**
//! whenever the sequential search is exact (the default configuration);
//! see [`race`] for the precise guarantee.
//!
//! ```
//! use satmapit_cgra::Cgra;
//! use satmapit_dfg::{Dfg, Op};
//! use satmapit_engine::{map_raced, EngineConfig};
//!
//! let mut dfg = Dfg::new("pair");
//! let a = dfg.add_const(1);
//! let b = dfg.add_node(Op::Neg);
//! dfg.add_edge(a, b, 0);
//!
//! let outcome = map_raced(&dfg, &Cgra::square(2), &EngineConfig::default());
//! assert_eq!(outcome.ii(), Some(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod fingerprint;
pub mod persist;
pub mod race;

pub use batch::{BatchItem, CacheStats, Engine, Job, Served};
pub use fingerprint::{problem_fingerprint, Fingerprint};
pub use race::{map_raced, map_raced_with_bound, portfolio_variant, EngineOutcome, RaceStats};

use satmapit_core::MapperConfig;

/// Which exact backend(s) the engine runs (see
/// [`satmapit_core::Backend`] for the per-II attempt contract and
/// `docs/backends.md` for the cross-backend design).
///
/// Every kind is exact and agrees on the best II: `Sat` and `Morph` are
/// single-backend races over the same KMS candidate space, and `Race`
/// runs both concurrently on the same II window with bound exchange —
/// an UNSAT proof from either backend closes the II for both. The
/// default (`Sat`) hashes into no fingerprint, so existing caches stay
/// warm; the other kinds join the result key (a morph-found mapping for
/// a feasible II can legitimately differ from the SAT model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// The SAT ladder (paper backend), optionally a solver portfolio.
    #[default]
    Sat,
    /// The monomorphism search (`satmapit-morph`) alone.
    Morph,
    /// Both backends cross-raced on the same II window.
    Race,
}

impl BackendKind {
    /// The `--backend` flag spelling of this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            BackendKind::Sat => "sat",
            BackendKind::Morph => "morph",
            BackendKind::Race => "race",
        }
    }

    /// Parses a `--backend` flag value.
    pub fn parse(s: &str) -> Option<BackendKind> {
        match s {
            "sat" => Some(BackendKind::Sat),
            "morph" => Some(BackendKind::Morph),
            "race" => Some(BackendKind::Race),
            _ => None,
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Learnt-clause sharing between the portfolio siblings racing one II
/// (see [`satmapit_sat::share`] for the pool mechanics and soundness
/// rules). Off by default: with sharing off (or `portfolio = 1`) the
/// race is bit-identical to a build without the feature, and the result
/// fingerprint is unchanged. With sharing on, siblings exchange short
/// low-LBD lemmas through a bounded per-II pool — which can change which
/// (equally valid) model is found and how fast, so the knobs join the
/// result fingerprint, and determinism requires `portfolio = 1` or
/// sharing off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShareConfig {
    /// Master switch. `false` ⇒ no pool is ever allocated and the solver
    /// hot path is untouched.
    pub enabled: bool,
    /// Only clauses with LBD ≤ this are exported (the classic portfolio
    /// quality filter; glue clauses travel, noise stays home).
    pub share_lbd_max: u32,
    /// Only clauses with at most this many literals are exported.
    pub share_len_max: usize,
    /// Capacity of each per-II pool ring; bounds share-pool memory at
    /// `ring_cap × mean clause size` per open II. Overflow evicts the
    /// oldest clause (counted in `shared_dropped`).
    pub share_ring_cap: usize,
}

impl ShareConfig {
    /// Sharing disabled (the default; bit-identical to PR 4 behaviour).
    pub fn off() -> ShareConfig {
        ShareConfig {
            enabled: false,
            ..ShareConfig::on()
        }
    }

    /// Sharing enabled with the default thresholds.
    pub fn on() -> ShareConfig {
        ShareConfig {
            enabled: true,
            share_lbd_max: 6,
            share_len_max: 24,
            share_ring_cap: 4096,
        }
    }
}

impl Default for ShareConfig {
    fn default() -> ShareConfig {
        ShareConfig::off()
    }
}

/// Lifecycle bounds for the engine's result cache and its on-disk
/// store. None of these knobs joins any fingerprint: they change *when*
/// an answer has to be recomputed, never what the answer is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLifecycle {
    /// Upper bound on in-memory result-cache entries; exceeding it
    /// evicts least-recently-used entries (counted in
    /// [`CacheStats::evicted_size`]). `0` means unbounded — the
    /// default, preserving the grow-forever behaviour batch runs want.
    pub max_entries: usize,
    /// Upper bound on an entry's age (measured from when it entered
    /// this process's cache, by load or by solve); older entries are
    /// evicted on the next insert (counted in
    /// [`CacheStats::evicted_age`]). `None` means unbounded.
    pub max_age: Option<std::time::Duration>,
    /// How many successful store appends accumulate before the engine
    /// compacts the persistent stores in place, starting a new
    /// generation (counted in [`CacheStats::compactions`]). `0` defers
    /// every compaction to shutdown, the pre-lifecycle behaviour.
    pub compact_every: u64,
}

impl Default for CacheLifecycle {
    fn default() -> CacheLifecycle {
        CacheLifecycle {
            max_entries: 0,
            max_age: None,
            compact_every: 256,
        }
    }
}

/// Crash-safety policy for the persistent stores. None of these knobs
/// joins any fingerprint: they change *when bytes become durable* and
/// how write failures are handled, never which mapping any solve
/// returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityPolicy {
    /// `fsync` a store after every N successful appends. `1` (the
    /// default) makes each append durable before the solve returns —
    /// the property the crash-torture suite asserts: an acknowledged
    /// record survives any later kill. `0` never fsyncs from the append
    /// path (a crash can lose whatever the page cache held).
    pub fsync_every: u64,
    /// Make compaction durable, not merely atomic: `sync_all` the temp
    /// file before renaming it over the store, and fsync the parent
    /// directory after the rename (see [`persist::rewrite`]). Default
    /// `true`.
    pub sync_compaction: bool,
    /// After this many *consecutive* failed appends (or fsyncs) the
    /// engine stops touching the disk and serves from memory only —
    /// degraded mode, surfaced as [`CacheStats::degraded`] and the
    /// daemon's `"status":"degraded"` health. A restart with a healthy
    /// disk recovers. `0` disables the latch (every append keeps
    /// retrying the disk). Default `3`.
    pub max_append_failures: u64,
}

impl Default for DurabilityPolicy {
    fn default() -> DurabilityPolicy {
        DurabilityPolicy {
            fsync_every: 1,
            sync_compaction: true,
            max_append_failures: 3,
        }
    }
}

/// Configuration of the parallel engine.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// The underlying mapper configuration (variant 0 of the portfolio
    /// runs it verbatim — the agreement anchor with the sequential
    /// mapper).
    pub mapper: MapperConfig,
    /// Which exact backend(s) to race (SAT ladder by default; see
    /// [`BackendKind`]).
    pub backend: BackendKind,
    /// How many candidate IIs are raced concurrently (the sliding window
    /// above the lowest unresolved II). `1` disables speculation across
    /// IIs.
    pub race_width: usize,
    /// Solver-portfolio variants raced per II. `1` disables the
    /// portfolio; variant 0 is always the canonical configuration.
    pub portfolio: usize,
    /// Worker threads. `0` means one per available hardware thread.
    pub workers: usize,
    /// Learnt-clause sharing between portfolio siblings (off by
    /// default).
    pub share: ShareConfig,
    /// Result-cache eviction bounds and incremental store compaction
    /// cadence (unbounded cache, compaction every 256 appends by
    /// default). Never part of a fingerprint.
    pub lifecycle: CacheLifecycle,
    /// Crash-safety policy for the persistent stores: fsync cadence,
    /// synced compaction, and the degraded-mode failure latch. Never
    /// part of a fingerprint — durability changes when bytes hit disk,
    /// not what any solve returns.
    pub durability: DurabilityPolicy,
    /// Test-only fault injection: race workers panic while attempting a
    /// DFG with exactly this name, exercising the engine's
    /// panic-isolation path. `None` (always, outside tests) is
    /// free of overhead.
    #[doc(hidden)]
    pub panic_on_name: Option<String>,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            mapper: MapperConfig::default(),
            backend: BackendKind::default(),
            race_width: 4,
            portfolio: 1,
            workers: 0,
            share: ShareConfig::off(),
            lifecycle: CacheLifecycle::default(),
            durability: DurabilityPolicy::default(),
            panic_on_name: None,
        }
    }
}

impl EngineConfig {
    /// The resolved worker count (`workers`, or the hardware parallelism
    /// when 0).
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use satmapit_cgra::Cgra;
    use satmapit_core::{map, AttemptOutcome, MapFailure, MapperConfig};
    use satmapit_dfg::{Dfg, Op};
    use std::sync::Arc;
    use std::time::Duration;

    fn chain(n: usize) -> Dfg {
        let mut dfg = Dfg::new(format!("chain{n}"));
        let mut prev = dfg.add_const(1);
        for _ in 1..n {
            let next = dfg.add_node(Op::Neg);
            dfg.add_edge(prev, next, 0);
            prev = next;
        }
        dfg
    }

    /// A recurrence that forces the search through UNSAT IIs before the
    /// feasible one (RecMII < achieved II is impossible here; instead the
    /// 1x1 resource bound forces climbing).
    fn recurrence() -> Dfg {
        let mut dfg = Dfg::new("rec");
        let a = dfg.add_node(Op::Neg);
        let b = dfg.add_node(Op::Neg);
        let c = dfg.add_node(Op::Neg);
        dfg.add_edge(a, b, 0);
        dfg.add_edge(b, c, 0);
        dfg.add_back_edge(c, a, 0, 1, 0);
        dfg
    }

    #[test]
    fn race_matches_sequential_on_simple_chain() {
        let dfg = chain(4);
        let cgra = Cgra::square(2);
        let sequential = map(&dfg, &cgra);
        let raced = map_raced(&dfg, &cgra, &EngineConfig::default());
        assert_eq!(raced.ii(), sequential.ii());
        assert_eq!(raced.ii(), Some(1));
    }

    #[test]
    fn race_matches_sequential_through_unsat_prefix() {
        let dfg = recurrence();
        let cgra = Cgra::square(1);
        let sequential = map(&dfg, &cgra);
        let raced = map_raced(&dfg, &cgra, &EngineConfig::default());
        assert_eq!(raced.ii(), sequential.ii());
        assert_eq!(raced.ii(), Some(3));
        // The trace must show the same definitive attempts, in order.
        let seq_iis: Vec<u32> = sequential.attempts.iter().map(|a| a.ii).collect();
        let race_iis: Vec<u32> = raced.outcome.attempts.iter().map(|a| a.ii).collect();
        assert_eq!(race_iis, seq_iis);
    }

    #[test]
    fn portfolio_race_still_agrees() {
        let dfg = recurrence();
        let cgra = Cgra::square(1);
        let config = EngineConfig {
            portfolio: 3,
            race_width: 2,
            ..EngineConfig::default()
        };
        let raced = map_raced(&dfg, &cgra, &config);
        assert_eq!(raced.ii(), Some(3));
    }

    #[test]
    fn ii_cap_reported_like_sequential() {
        let dfg = chain(5);
        let cgra = Cgra::square(1);
        let mapper = MapperConfig {
            max_ii: 3, // MII is 5 on a 1x1
            ..MapperConfig::default()
        };
        let config = EngineConfig {
            mapper,
            ..EngineConfig::default()
        };
        let raced = map_raced(&dfg, &cgra, &config);
        assert_eq!(
            raced.outcome.result.unwrap_err(),
            MapFailure::IiCapReached { cap: 3 }
        );
        assert!(raced.outcome.attempts.is_empty());
    }

    #[test]
    fn invalid_dfg_fails_fast() {
        let mut dfg = Dfg::new("bad");
        let _ = dfg.add_node(Op::Add); // Add with no operands
        let raced = map_raced(&dfg, &Cgra::square(2), &EngineConfig::default());
        assert!(matches!(
            raced.outcome.result,
            Err(MapFailure::InvalidDfg(_))
        ));
    }

    #[test]
    fn zero_timeout_reports_timeout() {
        let dfg = chain(6);
        let cgra = Cgra::square(2);
        let mapper = MapperConfig {
            timeout: Some(Duration::ZERO),
            ..MapperConfig::default()
        };
        let config = EngineConfig {
            mapper,
            ..EngineConfig::default()
        };
        let raced = map_raced(&dfg, &cgra, &config);
        assert!(matches!(
            raced.outcome.result,
            Err(MapFailure::Timeout { .. })
        ));
    }

    #[test]
    fn winning_attempt_is_last_and_mapped() {
        let dfg = recurrence();
        let raced = map_raced(&dfg, &Cgra::square(1), &EngineConfig::default());
        let last = raced.outcome.attempts.last().expect("has attempts");
        assert_eq!(last.outcome, AttemptOutcome::Mapped);
        assert_eq!(Some(last.ii), raced.ii());
    }

    #[test]
    fn engine_cache_returns_identical_result() {
        let dfg = chain(4);
        let cgra = Cgra::square(2);
        let engine = Engine::new(EngineConfig::default());
        let (first, cached_first) = engine.map(&dfg, &cgra);
        let (second, cached_second) = engine.map(&dfg, &cgra);
        assert!(!cached_first);
        assert!(cached_second);
        assert!(Arc::ptr_eq(&first, &second));
        let stats = engine.cache_stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn batch_deduplicates_identical_jobs() {
        let dfg = chain(4);
        let cgra = Cgra::square(2);
        let engine = Engine::new(EngineConfig::default());
        let jobs = vec![
            Job::new("a", dfg.clone(), cgra.clone()),
            Job::new("b", chain(3), cgra.clone()),
            Job::new("a-again", dfg.clone(), cgra.clone()),
        ];
        let items = engine.map_batch(jobs);
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].name, "a");
        assert_eq!(items[2].name, "a-again");
        assert_eq!(items[0].fingerprint, items[2].fingerprint);
        assert_ne!(items[0].fingerprint, items[1].fingerprint);
        // The duplicate is solved once and fanned out: only two distinct
        // solves happen, the repeat comes back as a hit sharing the same
        // allocation as the original.
        assert!(!items[0].cached);
        assert!(items[2].cached);
        assert!(Arc::ptr_eq(&items[0].outcome, &items[2].outcome));
        let stats = engine.cache_stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.misses, 2, "the duplicate never reached a solver");
        assert_eq!(items[0].outcome.ii(), items[2].outcome.ii());
    }

    #[test]
    fn concurrent_identical_lookups_solve_once() {
        // The thundering-herd guard: N threads racing the same cold key
        // must produce exactly one solve; the rest wait and hit.
        let dfg = chain(4);
        let cgra = Cgra::square(2);
        let engine = Engine::new(EngineConfig::default());
        let outcomes: Vec<Arc<crate::EngineOutcome>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| engine.map(&dfg, &cgra).0))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let stats = engine.cache_stats();
        assert_eq!(stats.misses, 1, "one leader solved");
        assert_eq!(stats.hits, 7, "every follower hit the cache");
        for outcome in &outcomes {
            assert!(Arc::ptr_eq(outcome, &outcomes[0]), "all byte-identical");
        }
    }

    #[test]
    fn timeouts_are_not_cached() {
        let dfg = chain(6);
        let cgra = Cgra::square(2);
        let mapper = MapperConfig {
            timeout: Some(Duration::ZERO),
            ..MapperConfig::default()
        };
        let engine = Engine::new(EngineConfig {
            mapper,
            ..EngineConfig::default()
        });
        let (first, cached) = engine.map(&dfg, &cgra);
        assert!(!cached);
        assert!(matches!(
            first.outcome.result,
            Err(MapFailure::Timeout { .. })
        ));
        // A wall-clock failure must not poison the cache: the retry solves
        // afresh instead of replaying the stale Err(Timeout).
        assert_eq!(engine.cache_stats().entries, 0);
        let (_, cached) = engine.map(&dfg, &cgra);
        assert!(!cached);
    }

    /// A load (column 0) feeding a store (column 3) on a split-port 1x4:
    /// PE-level infeasible at every II.
    fn split_unmappable() -> (Dfg, Cgra) {
        use satmapit_cgra::MemoryPolicy;
        let mut dfg = Dfg::new("split");
        let addr = dfg.add_const(0);
        let ld = dfg.add_node(Op::Load);
        dfg.add_edge(addr, ld, 0);
        let st = dfg.add_node(Op::Store);
        dfg.add_edge(addr, st, 0);
        dfg.add_edge(ld, st, 1);
        let cgra = Cgra::new(1, 4).with_memory_policy(MemoryPolicy::SplitLoadStore);
        (dfg, cgra)
    }

    /// A fanout that forces the race through several UNSAT rungs: one
    /// producer with 5 consumers on a 1x2 row (MII 3, maps well above it).
    fn fanout() -> (Dfg, Cgra) {
        let mut dfg = Dfg::new("fan5");
        let src = dfg.add_const(1);
        for _ in 0..5 {
            let n = dfg.add_node(Op::Neg);
            dfg.add_edge(src, n, 0);
        }
        (dfg, Cgra::new(1, 2))
    }

    #[test]
    fn race_consumes_unmappable_core() {
        let (dfg, cgra) = split_unmappable();
        let raced = map_raced(&dfg, &cgra, &EngineConfig::default());
        assert_eq!(
            raced.outcome.result.unwrap_err(),
            MapFailure::IiCapReached { cap: 50 }
        );
        assert!(raced.proven_unmappable, "core avoids the per-II group");
        assert!(
            raced.stats.tasks_started < 50,
            "the doomed ladder must not be ground out rung by rung ({} tasks)",
            raced.stats.tasks_started
        );
        // Agreement: the sequential incremental ladder reaches the same
        // verdict.
        let sequential = map(&dfg, &cgra);
        assert_eq!(
            sequential.result.unwrap_err(),
            MapFailure::IiCapReached { cap: 50 }
        );
    }

    #[test]
    fn proven_bound_lets_repeat_races_skip_closed_rungs() {
        let (dfg, cgra) = fanout();
        let config = EngineConfig::default();
        let cold = map_raced(&dfg, &cgra, &config);
        let best = cold.ii().expect("fanout maps eventually");
        let sequential = map(&dfg, &cgra);
        assert_eq!(Some(best), sequential.ii(), "agreement first");
        assert!(
            cold.outcome.attempts.len() > 1,
            "fanout must climb through UNSAT rungs, got {:?}",
            cold.outcome
                .attempts
                .iter()
                .map(|a| a.ii)
                .collect::<Vec<_>>()
        );
        // Feed the proven bound back: the race starts at the winner
        // directly and answers with a single rung.
        let warm = race::map_raced_with_bound(&dfg, &cgra, &config, Some(best));
        assert_eq!(warm.ii(), Some(best));
        assert_eq!(warm.outcome.attempts.len(), 1, "lower rungs skipped");
        assert_eq!(warm.stats.race_start, best);
        // An unmappability bound short-circuits without solving at all.
        let doomed = race::map_raced_with_bound(&dfg, &cgra, &config, Some(u32::MAX));
        assert_eq!(
            doomed.outcome.result.unwrap_err(),
            MapFailure::IiCapReached { cap: 50 }
        );
        assert!(doomed.proven_unmappable);
        assert_eq!(doomed.stats.tasks_started, 0);
    }

    #[test]
    fn engine_records_proven_bounds() {
        let (dfg, cgra) = fanout();
        let engine = Engine::new(EngineConfig::default());
        assert_eq!(engine.proven_bound(&dfg, &cgra), None);
        let (outcome, _) = engine.map(&dfg, &cgra);
        let best = outcome.ii().expect("maps");
        assert_eq!(
            engine.proven_bound(&dfg, &cgra),
            Some(best),
            "every II below the winner was closed Unsat"
        );
        assert_eq!(engine.cache_stats().bound_entries, 1);

        let (split_dfg, split_cgra) = split_unmappable();
        let (outcome, _) = engine.map(&split_dfg, &split_cgra);
        assert!(outcome.outcome.result.is_err());
        assert_eq!(
            engine.proven_bound(&split_dfg, &split_cgra),
            Some(u32::MAX),
            "unmappability is recorded as an infinite bound"
        );
        engine.clear_cache();
        assert_eq!(engine.cache_stats().bound_entries, 0);
        assert_eq!(engine.proven_bound(&dfg, &cgra), None);
    }

    #[test]
    fn share_on_portfolio_race_agrees_with_sequential() {
        // Sharing only changes *which* clauses each sibling knows; the
        // closure rules (variant 0 or a sound UNSAT proof) are untouched,
        // so the best II must match the sequential mapper's exactly.
        let dfg = recurrence();
        let cgra = Cgra::square(1);
        let sequential = map(&dfg, &cgra);
        let config = EngineConfig {
            portfolio: 3,
            race_width: 2,
            share: ShareConfig::on(),
            ..EngineConfig::default()
        };
        let raced = map_raced(&dfg, &cgra, &config);
        assert_eq!(raced.ii(), sequential.ii());
        assert_eq!(raced.ii(), Some(3));

        let (fan_dfg, fan_cgra) = fanout();
        let raced = map_raced(&fan_dfg, &fan_cgra, &config);
        assert_eq!(raced.ii(), map(&fan_dfg, &fan_cgra).ii());
    }

    #[test]
    fn share_off_and_single_variant_races_allocate_no_pools() {
        // With sharing off — or a portfolio of one — the race must stay on
        // the handle-free hot path: zero share traffic in the telemetry.
        let dfg = recurrence();
        let cgra = Cgra::square(1);
        for config in [
            EngineConfig::default(),
            EngineConfig {
                portfolio: 3,
                share: ShareConfig::off(),
                ..EngineConfig::default()
            },
            EngineConfig {
                portfolio: 1,
                share: ShareConfig::on(),
                ..EngineConfig::default()
            },
        ] {
            let raced = map_raced(&dfg, &cgra, &config);
            assert_eq!(raced.ii(), Some(3));
            assert_eq!(raced.stats.shared_exported, 0);
            assert_eq!(raced.stats.shared_imported, 0);
            assert_eq!(raced.stats.shared_dropped, 0);
        }
    }

    #[test]
    fn single_worker_race_still_resolves() {
        let config = EngineConfig {
            workers: 1,
            race_width: 1,
            ..EngineConfig::default()
        };
        let raced = map_raced(&recurrence(), &Cgra::square(1), &config);
        assert_eq!(raced.ii(), Some(3));
        assert_eq!(raced.stats.workers, 1);
    }
}
