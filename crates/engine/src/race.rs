//! The speculative II-race.
//!
//! The sequential mapper (paper Fig. 3) tries II = MII, MII+1, … strictly
//! in order, and almost all of its time is burnt *proving the infeasible
//! IIs infeasible* — every other core sits idle while one SAT instance
//! grinds. The race flips that around: a pool of workers attempts a
//! window of candidate IIs (and, optionally, several solver-portfolio
//! variants per II) concurrently, with cooperative cancellation through
//! the stop flag in [`SolveLimits`]:
//!
//! * a **mapping** found at II = k immediately cancels every attempt at
//!   II ≥ k — they can no longer improve the answer;
//! * an **UNSAT proof** (or the canonical variant giving up) at II = j
//!   *closes* j and lets the window slide upward;
//! * the race resolves once some mapped II has every lower candidate
//!   closed — which is exactly the sequential answer.
//!
//! ## Agreement with the sequential mapper
//!
//! Variant 0 of the portfolio runs the *identical* configuration as
//! [`Mapper::run`], and only variant 0 (or a sound UNSAT proof from any
//! variant) may close an II. Under the default configuration — no per-II
//! conflict budget, no register-allocation giveups — every closure is
//! then a proof, and the race returns **the same best II as the
//! sequential search**. When the sequential search is itself heuristic
//! (conflict budgets, RA giveups), a non-canonical variant may still
//! *map* an II the canonical configuration would have skipped, in which
//! case the race only improves on the sequential answer (a lower II),
//! never worsens it.
//!
//! ## Learnt-clause sharing between siblings
//!
//! With [`crate::ShareConfig::enabled`] and `portfolio ≥ 2`, the
//! siblings racing one II exchange short, low-LBD learnt clauses through
//! a bounded per-II [`SharePool`] (see `satmapit_sat::share` for the
//! pool mechanics, the compatibility-class fencing between different AMO
//! encodings, and the guard-filtering soundness rules). Sharing never
//! changes *whether* an II is feasible — closures still require variant
//! 0 or a sound UNSAT proof, so the best II is unchanged — but it can
//! change which (equally valid) model is found and how fast.
//! **Determinism therefore requires `portfolio = 1` or sharing off**;
//! share-off races are bit-identical to builds without the feature and
//! keep their result-cache fingerprints.
//!
//! ## Cross-backend racing and bound exchange
//!
//! With [`crate::BackendKind::Race`] the lanes racing each II are not
//! all SAT: a [`satmapit_morph`] monomorphism lane joins the window,
//! attempting the same IIs through the [`Backend`] trait. Both backends
//! enumerate the identical KMS candidate space, so an `Unsat` **proof**
//! from either lane soundly closes the II for both — that closure is a
//! *bound exchange* (counted in [`RaceStats::bound_exchanges`]): the II
//! one backend proved infeasible is a rung the other backend never has
//! to grind, and it feeds the engine's shared proven-bound cache that
//! either backend starts above on the next solve. Closure discipline is
//! unchanged: lane 0 stays the canonical agreement anchor (its
//! definitive giveups close), non-canonical lanes close only with
//! proofs, so the best II still matches the sequential mapper. See
//! `docs/backends.md` for the soundness argument.

use satmapit_cgra::Cgra;
use satmapit_core::{
    AttemptOutcome, AttemptReport, Backend, IiAttempt, MapFailure, MapOutcome, MappedLoop, Mapper,
    MapperConfig,
};
use satmapit_dfg::Dfg;
use satmapit_morph::MorphMapper;
use satmapit_obs as obs;
use satmapit_sat::encode::AmoEncoding;
use satmapit_sat::{ShareHandle, SharePool, SolveLimits};
use std::collections::{BTreeMap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use crate::{BackendKind, EngineConfig, ShareConfig};

/// Effort and outcome counters of one race.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RaceStats {
    /// Worker threads the race ran on.
    pub workers: usize,
    /// Single-II attempts dispatched (including cancelled ones).
    pub tasks_started: u64,
    /// Attempts that observed the stop flag and aborted cooperatively.
    pub tasks_cancelled: u64,
    /// The first candidate II the race considered (the prepared start,
    /// lifted by any known proven bound). 0 when the race never started
    /// (preparation failed or the window was empty). The batch engine uses
    /// this as the anchor when it turns `Unsat` closures into a proven II
    /// lower bound.
    pub race_start: u32,
    /// Learnt clauses portfolio siblings exported to their per-II share
    /// pools, summed over *every* attempt of the race — cancelled
    /// siblings included, since their exports are exactly what the
    /// winners imported. 0 with sharing off.
    pub shared_exported: u64,
    /// Sibling clauses imported at restart boundaries, summed likewise.
    pub shared_imported: u64,
    /// Share-pool ring evictions (clauses overwritten before every
    /// sibling read them); a persistently high value means
    /// `share_ring_cap` is too small for the conflict rate.
    pub shared_dropped: u64,
    /// 1 when a SAT lane produced the winning mapping of this race, else
    /// 0. Summed by the batch engine into a fleet-level counter.
    pub sat_wins: u64,
    /// 1 when the morph lane produced the winning mapping, else 0.
    pub morph_wins: u64,
    /// II closures whose `Unsat` proof crossed backends: in a
    /// [`crate::BackendKind::Race`], one backend proved the II
    /// infeasible and the other backend was thereby spared ever
    /// establishing it (see the module docs). Always 0 in
    /// single-backend races.
    pub bound_exchanges: u64,
}

/// A [`MapOutcome`] plus race-level telemetry.
///
/// `outcome.attempts` holds the *definitive* attempts in II order: every
/// closed II below the winner plus the winning attempt itself. Cancelled
/// attempts appear only in `stats.tasks_cancelled`.
#[derive(Debug, Clone)]
pub struct EngineOutcome {
    /// Result and definitive per-II trace, like the sequential mapper's.
    pub outcome: MapOutcome,
    /// Race telemetry.
    pub stats: RaceStats,
    /// `true` when the loop is proven unmappable at *every* II — either a
    /// cached unmappability bound was supplied, or preparation's
    /// pre-solved II-invariant PE-level prefix is contradictory (see
    /// [`satmapit_core::AttemptReport::proven_unmappable`]). The race
    /// then fails fast without dispatching a single rung, and the batch
    /// engine records an infinite II lower bound so repeat lookups never
    /// solve again.
    pub proven_unmappable: bool,
}

impl EngineOutcome {
    /// The achieved II, if mapping succeeded.
    pub fn ii(&self) -> Option<u32> {
        self.outcome.ii()
    }
}

/// The solver configuration raced as portfolio variant `k`.
///
/// Variant 0 is always the caller's configuration verbatim (the agreement
/// anchor); higher variants perturb the phase seed, the restart scale and
/// the at-most-one encoding — all answer-preserving knobs.
pub fn portfolio_variant(base: &MapperConfig, k: usize) -> MapperConfig {
    if k == 0 {
        return base.clone();
    }
    let mut config = base.clone();
    config.solver.phase_seed = Some((k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    config.solver.restart_base = match k % 3 {
        1 => 32,
        2 => 400,
        _ => base.solver.restart_base,
    };
    // Odd variants force the ladder encoding; even ones keep Auto (which
    // already picks pairwise for small groups without risking the
    // quadratic blowup unguarded pairwise has on large ones).
    config.amo = if k % 2 == 1 {
        AmoEncoding::Sequential
    } else {
        AmoEncoding::Auto
    };
    config
}

/// One competitor in the race: a prepared backend plus its lane-level
/// policy. Lane 0 is always the canonical agreement anchor (the
/// caller's configuration verbatim on the primary backend).
struct Lane<'a> {
    backend: Box<dyn Backend + 'a>,
    /// Whether this lane exchanges learnt clauses with its per-II
    /// siblings (SAT portfolio lanes only; the morph lane has no clause
    /// database).
    shares: bool,
    /// The lane's Perfetto timeline-row label (kernel-name prefixed).
    label: String,
}

struct Task {
    ii: u32,
    lane: usize,
    stop: Arc<AtomicBool>,
    /// This sibling's connection to the II's share pool (sharing on and
    /// ≥ 2 sharing lanes only).
    share: Option<ShareHandle>,
}

struct Best {
    ii: u32,
    lane: usize,
    attempt: IiAttempt,
    mapped: MappedLoop,
}

#[derive(Default)]
struct OpenIi {
    dispatched: usize,
    stops: Vec<Arc<AtomicBool>>,
    /// The learnt-clause exchange ring shared by this II's portfolio
    /// siblings; allocated lazily on the first dispatch when sharing is
    /// on, dropped with the `OpenIi` once the II is settled.
    pool: Option<Arc<SharePool>>,
}

struct RaceState {
    start: u32,
    max_ii: u32,
    race_width: u32,
    /// Per-lane clause-sharing participation, indexed by lane; its
    /// length is the lane count each open II dispatches.
    lane_shares: Vec<bool>,
    /// Per-lane backend name ([`Backend::name`]), for win attribution.
    lane_backends: Vec<&'static str>,
    /// `true` when the lanes span more than one backend — the
    /// precondition for counting bound exchanges.
    cross_backend: bool,
    /// `Some` when learnt-clause sharing is active for this race
    /// (enabled in the config *and* more than one sharing lane per II).
    share: Option<ShareConfig>,
    open: HashMap<u32, OpenIi>,
    closed: BTreeMap<u32, IiAttempt>,
    best: Option<Best>,
    fatal: Option<MapFailure>,
    tasks_started: u64,
    tasks_cancelled: u64,
    shared_exported: u64,
    shared_imported: u64,
    shared_dropped: u64,
    bound_exchanges: u64,
}

impl RaceState {
    fn finished(&self) -> bool {
        if self.fatal.is_some() {
            return true;
        }
        match &self.best {
            Some(best) => (self.start..best.ii).all(|ii| self.closed.contains_key(&ii)),
            None => (self.start..=self.max_ii).all(|ii| self.closed.contains_key(&ii)),
        }
    }

    /// Dispatches the next (II, lane) attempt inside the sliding race
    /// window, if one is available.
    fn take_task(&mut self) -> Option<Task> {
        let mut ii = self.start;
        let mut considered = 0u32;
        let num_lanes = self.lane_shares.len();
        while ii <= self.max_ii && considered < self.race_width {
            if self.best.as_ref().is_some_and(|b| ii >= b.ii) {
                break; // IIs at or above the current winner are moot
            }
            if !self.closed.contains_key(&ii) {
                considered += 1;
                let share = self.share;
                let open = self.open.entry(ii).or_default();
                if open.dispatched < num_lanes {
                    let lane = open.dispatched;
                    open.dispatched += 1;
                    let stop = Arc::new(AtomicBool::new(false));
                    open.stops.push(Arc::clone(&stop));
                    let share = share.filter(|_| self.lane_shares[lane]).map(|cfg| {
                        let pool = open
                            .pool
                            .get_or_insert_with(|| Arc::new(SharePool::new(cfg.share_ring_cap)));
                        ShareHandle::new(
                            Arc::clone(pool),
                            lane as u32,
                            cfg.share_lbd_max,
                            cfg.share_len_max,
                        )
                    });
                    self.tasks_started += 1;
                    return Some(Task {
                        ii,
                        lane,
                        stop,
                        share,
                    });
                }
            }
            ii += 1;
        }
        None
    }

    fn cancel_at_or_above(&mut self, ii: u32) {
        for (&open_ii, open) in &self.open {
            if open_ii >= ii {
                for stop in &open.stops {
                    // ordering: one-way cancel latch polled at solver
                    // restart boundaries; no data rides on it, a stale
                    // read just delays the cooperative abort one poll.
                    stop.store(true, Ordering::Relaxed);
                }
            }
        }
    }

    fn cancel_ii(&mut self, ii: u32) {
        if let Some(open) = self.open.get(&ii) {
            for stop in &open.stops {
                // ordering: same one-way cancel latch as above.
                stop.store(true, Ordering::Relaxed);
            }
        }
    }

    fn cancel_all(&mut self) {
        self.cancel_at_or_above(0);
    }

    fn record(&mut self, task: &Task, result: Result<AttemptReport, MapFailure>) {
        // Share telemetry is summed over every report that ran a solver —
        // cancelled siblings included: their exports are precisely what
        // the surviving siblings imported, and dropping them would make
        // `shared_exported` read near zero on a healthy race.
        if let Ok(report) = &result {
            if let Some(stats) = &report.attempt.solver_stats {
                self.shared_exported += stats.shared_exported;
                self.shared_imported += stats.shared_imported;
                self.shared_dropped += stats.shared_dropped;
            }
        }
        match result {
            Err(MapFailure::Timeout { at_ii }) => {
                // attempt_ii only reports Timeout when the shared deadline
                // genuinely passed, so this is always fatal here; a race
                // that nevertheless completed a winner is restored by the
                // end-of-race rescue below.
                match &mut self.fatal {
                    Some(MapFailure::Timeout { at_ii: lowest }) => {
                        *lowest = (*lowest).min(at_ii);
                    }
                    Some(_) => {}
                    None => self.fatal = Some(MapFailure::Timeout { at_ii }),
                }
            }
            Err(e) => {
                // Structural/Internal failures outrank a Timeout: the
                // end-of-race rescue may clear a Timeout fatal, but these
                // must never be masked.
                let existing_outranks =
                    matches!(self.fatal, Some(ref f) if !matches!(f, MapFailure::Timeout { .. }));
                if !existing_outranks {
                    self.fatal = Some(e);
                }
            }
            Ok(report) if !report.is_definitive() => {
                // The attempt was abandoned (cooperative cancel), not
                // answered; it never closes its II.
                self.tasks_cancelled += 1;
            }
            Ok(report) => match report.attempt.outcome {
                AttemptOutcome::Mapped => {
                    if self.best.as_ref().is_none_or(|b| task.ii < b.ii) {
                        self.best = Some(Best {
                            ii: task.ii,
                            lane: task.lane,
                            attempt: report.attempt,
                            mapped: report.mapped.expect("Mapped outcome carries a mapping"),
                        });
                        // Everything at or above the winner is now moot —
                        // including sibling variants of the same II.
                        self.cancel_at_or_above(task.ii);
                    }
                }
                _ => {
                    // Definitive no-mapping. Closure is sound when it comes
                    // from the canonical lane (it mirrors the sequential
                    // mapper exactly) or is an UNSAT proof (lane-
                    // independent — both backends exhaust the same KMS
                    // candidate space). Giveups from non-canonical lanes
                    // are dropped — closing on them could diverge from the
                    // sequential answer.
                    let is_proof = matches!(report.attempt.outcome, AttemptOutcome::Unsat);
                    if (task.lane == 0 || is_proof) && !self.closed.contains_key(&task.ii) {
                        // A proof closing an II in a cross-backend race
                        // spares the *other* backend that rung entirely —
                        // the bound exchange the module docs describe.
                        if is_proof && self.cross_backend {
                            self.bound_exchanges += 1;
                        }
                        self.closed.insert(task.ii, report.attempt);
                        self.cancel_ii(task.ii);
                    }
                }
            },
        }
        if self.finished() {
            self.cancel_all();
        }
    }
}

struct Shared {
    state: Mutex<RaceState>,
    cv: Condvar,
}

impl Shared {
    /// Locks the race state, recovering from poison: the state is a set
    /// of counters and per-II records that stay coherent under every
    /// partial update, and a panicking sibling must degrade to a
    /// per-request error — never wedge the race for the surviving
    /// workers.
    fn lock_state(&self) -> MutexGuard<'_, RaceState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Renders a `catch_unwind` payload for the [`MapFailure::Internal`]
/// message (panics carry `&str` or `String` in practice).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn worker(
    shared: &Shared,
    lanes: &[Lane<'_>],
    limits_proto: &SolveLimits,
    trace_base: Option<u64>,
    inject_panic: bool,
) {
    loop {
        let task = {
            let mut state = shared.lock_state();
            loop {
                if state.finished() {
                    drop(state);
                    shared.cv.notify_all();
                    return;
                }
                if let Some(task) = state.take_task() {
                    break task;
                }
                // Window fully in flight: wait for a sibling to record.
                // The timeout guards against missed wakeups near the end.
                state = shared
                    .cv
                    .wait_timeout(state, Duration::from_millis(25))
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
        };
        let mut limits = limits_proto.clone().with_stop_flag(Arc::clone(&task.stop));
        if let Some(share) = &task.share {
            limits = limits.with_share(share.clone());
        }
        // Spans from this task (the `race` task span here, the `rung`
        // span inside `attempt_ii`) all land on the lane's own track, so
        // concurrent lanes render as parallel timeline rows — one per
        // portfolio sibling and one per backend. `trace_base` is None
        // whenever tracing was off at race start — the hot path stays
        // guard-free.
        let lane = &lanes[task.lane];
        let _track = trace_base.map(|base| obs::trace::push_track(base + task.lane as u64));
        let mut span = obs::trace::Span::begin(
            obs::trace::Category::Race,
            &format!("task ii={} lane={}", task.ii, task.lane),
        );
        span.arg("ii", i64::from(task.ii));
        span.arg("lane", task.lane as i64);
        // A panicking attempt (a solver bug, or the injected test fault)
        // must cost exactly one task, not the whole engine: catch the
        // unwind here — before it can poison the shared state or tear
        // down the scoped-thread pool — and record it as an `Internal`
        // failure for this request.
        let result = catch_unwind(AssertUnwindSafe(|| {
            if inject_panic {
                panic!("injected race-worker fault (panic_on_name)");
            }
            lane.backend.attempt_ii(task.ii, &limits)
        }))
        .unwrap_or_else(|payload| {
            Err(MapFailure::Internal(format!(
                "race worker panicked at ii={} lane={}: {}",
                task.ii,
                task.lane,
                panic_message(payload.as_ref())
            )))
        });
        if span.active() {
            // ordering: advisory cancel latch; a stale read only mislabels
            // the trace span, it never affects the result.
            span.arg("cancelled", i64::from(task.stop.load(Ordering::Relaxed)));
        }
        drop(span);
        let mut state = shared.lock_state();
        state.record(&task, result);
        drop(state);
        shared.cv.notify_all();
    }
}

/// Maps `dfg` onto `cgra` by racing candidate IIs (and portfolio variants)
/// across a worker pool. See the module docs for the guarantees.
pub fn map_raced(dfg: &Dfg, cgra: &Cgra, config: &EngineConfig) -> EngineOutcome {
    map_raced_with_bound(dfg, cgra, config, None)
}

/// [`map_raced`] with a previously *proven* II lower bound: candidate IIs
/// below `known_lower_bound` were already answered `Unsat` for this exact
/// problem (same DFG, CGRA and mapping semantics) and are skipped without
/// solving. [`u32::MAX`] means the problem was proven unmappable at every
/// II. Passing an unproven bound forfeits the engine's agreement
/// guarantee — the batch [`crate::Engine`] only feeds bounds derived from
/// UNSAT closures or unmappability cores.
pub fn map_raced_with_bound(
    dfg: &Dfg,
    cgra: &Cgra,
    config: &EngineConfig,
    known_lower_bound: Option<u32>,
) -> EngineOutcome {
    let t0 = Instant::now();
    let failure = |result: MapFailure, elapsed: Duration, unmappable: bool| EngineOutcome {
        outcome: MapOutcome {
            result: Err(result),
            attempts: Vec::new(),
            elapsed,
        },
        stats: RaceStats::default(),
        proven_unmappable: unmappable,
    };

    let backend = config.backend;
    let mapper = Mapper::new(dfg, cgra).with_config(config.mapper.clone());
    let morph_mapper = MorphMapper::new(dfg, cgra).with_config(config.mapper.clone());
    let sat_base = if backend == BackendKind::Morph {
        None
    } else {
        match mapper.prepare() {
            Ok(p) => Some(p),
            Err(e) => return failure(e, t0.elapsed(), false),
        }
    };
    let morph_base = if backend == BackendKind::Sat {
        None
    } else {
        match morph_mapper.prepare() {
            Ok(p) => Some(p),
            Err(e) => return failure(e, t0.elapsed(), false),
        }
    };
    let max_ii = config.mapper.max_ii;
    // Either a cached proof or a backend's pre-solved II-invariant
    // relaxation says no II can map: fail fast, no rungs dispatched. Both
    // backends' probes are sound proofs over the same candidate space, so
    // either verdict condemns the whole race.
    let pre_proven = sat_base.as_ref().is_some_and(|b| b.proven_unmappable())
        || morph_base.as_ref().is_some_and(|b| b.proven_unmappable());
    if known_lower_bound == Some(u32::MAX) || pre_proven {
        return failure(MapFailure::IiCapReached { cap: max_ii }, t0.elapsed(), true);
    }
    let prepared_start = sat_base
        .as_ref()
        .map(|b| b.start_ii())
        .into_iter()
        .chain(morph_base.as_ref().map(|b| b.start_ii()))
        .max()
        .unwrap_or(1);
    let start = prepared_start.max(known_lower_bound.unwrap_or(0));
    if start > max_ii {
        return failure(
            MapFailure::IiCapReached { cap: max_ii },
            t0.elapsed(),
            false,
        );
    }

    // Lane 0 is the canonical agreement anchor: the caller's configuration
    // verbatim on the primary backend (SAT for `Sat`/`Race`, morph for
    // `Morph`). The portfolio only multiplies SAT lanes — the morph search
    // is deterministic, so racing perturbed copies of it would burn
    // workers re-deriving the same answer.
    let portfolio = config.portfolio.max(1);
    let mut lanes: Vec<Lane<'_>> = Vec::new();
    if let Some(base) = &sat_base {
        for k in 0..portfolio {
            let label = if k == 0 {
                format!("{} sat 0 (canonical)", dfg.name())
            } else {
                format!("{} sat {k}", dfg.name())
            };
            lanes.push(Lane {
                backend: Box::new(
                    base.clone()
                        .with_config(portfolio_variant(&config.mapper, k)),
                ),
                shares: true,
                label,
            });
        }
    }
    if let Some(base) = morph_base {
        lanes.push(Lane {
            backend: Box::new(base),
            shares: false,
            label: format!("{} morph", dfg.name()),
        });
    }

    let race_width = config.race_width.max(1) as u32;
    let deadline = config.mapper.timeout.map(|d| t0 + d);
    let mut limits_proto = SolveLimits::none();
    if let Some(dl) = deadline {
        limits_proto = limits_proto.with_deadline(dl);
    }
    if let Some(c) = config.mapper.max_conflicts_per_ii {
        limits_proto = limits_proto.with_max_conflicts(c);
    }

    let max_useful = (race_width as usize).saturating_mul(lanes.len());
    let workers = config.effective_workers().min(max_useful).max(1);

    // Sharing needs at least two *sharing* lanes per II to have a partner
    // (the morph lane has no clause database); with one SAT variant the
    // race stays on the handle-free hot path.
    let sharing_lanes = lanes.iter().filter(|l| l.shares).count();
    let share = (config.share.enabled && sharing_lanes > 1).then_some(config.share);

    let lane_shares: Vec<bool> = lanes.iter().map(|l| l.shares).collect();
    let lane_backends: Vec<&'static str> = lanes.iter().map(|l| l.backend.name()).collect();
    let cross_backend = lane_backends.iter().any(|&n| n != lane_backends[0]);

    let shared = Shared {
        state: Mutex::new(RaceState {
            start,
            max_ii,
            race_width,
            lane_shares,
            lane_backends,
            cross_backend,
            share,
            open: HashMap::new(),
            closed: BTreeMap::new(),
            best: None,
            fatal: None,
            tasks_started: 0,
            tasks_cancelled: 0,
            shared_exported: 0,
            shared_imported: 0,
            shared_dropped: 0,
            bound_exchanges: 0,
        }),
        cv: Condvar::new(),
    };

    // One trace track per lane, reserved up front so every worker thread
    // maps task lane `k` to the same backend-named timeline row.
    let trace_base = obs::trace::enabled().then(|| {
        let base = obs::trace::allocate_tracks(lanes.len() as u64);
        for (k, lane) in lanes.iter().enumerate() {
            obs::trace::name_track(base + k as u64, &lane.label);
        }
        base
    });

    // Test-only fault injection: make this loop's attempts panic inside
    // the workers, exercising the catch-unwind path end to end.
    let inject_panic = config.panic_on_name.as_deref() == Some(dfg.name());

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| worker(&shared, &lanes, &limits_proto, trace_base, inject_panic));
        }
    });

    let mut state = shared
        .state
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    let elapsed = t0.elapsed();

    // A complete winner (every lower II closed) beats a Timeout recorded
    // by a losing worker: the mapping was found before the deadline and is
    // provably the best II, so discarding it for Err(Timeout) would throw
    // away a full answer. Other fatals (structural/internal) still win —
    // they signal problems a mapping must not mask.
    let timeout_only = matches!(state.fatal, Some(MapFailure::Timeout { .. }));
    let best_is_complete = state
        .best
        .as_ref()
        .is_some_and(|b| (start..b.ii).all(|ii| state.closed.contains_key(&ii)));
    if timeout_only && best_is_complete {
        state.fatal = None;
    }

    // Winner attribution: exactly one lane's mapping is returned per
    // successful race, so its backend scores a single win; failed races
    // score nothing. Computed after the timeout rescue so a rescued
    // winner still counts.
    let (sat_wins, morph_wins) = match &state.best {
        Some(best) if state.fatal.is_none() => match state.lane_backends[best.lane] {
            "morph" => (0, 1),
            _ => (1, 0),
        },
        _ => (0, 0),
    };
    let stats = RaceStats {
        workers,
        tasks_started: state.tasks_started,
        tasks_cancelled: state.tasks_cancelled,
        race_start: start,
        shared_exported: state.shared_exported,
        shared_imported: state.shared_imported,
        shared_dropped: state.shared_dropped,
        sat_wins,
        morph_wins,
        bound_exchanges: state.bound_exchanges,
    };

    let (result, attempts) = if let Some(fatal) = state.fatal {
        let attempts = state.closed.into_values().collect();
        (Err(fatal), attempts)
    } else if let Some(best) = state.best {
        let mut attempts: Vec<IiAttempt> = state
            .closed
            .into_iter()
            .filter(|(ii, _)| *ii < best.ii)
            .map(|(_, a)| a)
            .collect();
        attempts.push(best.attempt);
        (Ok(best.mapped), attempts)
    } else {
        let attempts = state.closed.into_values().collect();
        (Err(MapFailure::IiCapReached { cap: max_ii }), attempts)
    };

    EngineOutcome {
        outcome: MapOutcome {
            result,
            attempts,
            elapsed,
        },
        stats,
        // Unmappability is decided before dispatch (preparation pre-solves
        // the PE-level prefix, shared by every portfolio variant), so a
        // race that ran rungs was, by construction, not proven unmappable.
        proven_unmappable: false,
    }
}
