//! Fault-injection suite for the persistence layer: every failure mode
//! the `satmapit-faults` plane can synthesize — short writes, `ENOSPC`,
//! failed truncations, interrupted compactions — must leave the store
//! either rolled back or recoverable, and the fault plane itself must be
//! invisible when no plan is installed.
//!
//! Fault plans are process-global, so every test that installs one takes
//! the `SERIAL` lock first; the whole binary effectively runs those
//! tests one at a time.

use satmapit_engine::persist::{self, Appender, StoreKind};
use satmapit_engine::{DurabilityPolicy, Engine, EngineConfig, Fingerprint};
use satmapit_faults as faults;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

static SERIAL: Mutex<()> = Mutex::new(());

/// Serializes plan-installing tests and guarantees the plan is cleared
/// even when an assertion panics mid-test.
struct PlanGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl PlanGuard {
    fn install(spec: &str) -> PlanGuard {
        let guard = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
        faults::install(spec).expect("valid plan");
        PlanGuard(guard)
    }
}

impl Drop for PlanGuard {
    fn drop(&mut self) {
        faults::clear();
    }
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let path = std::env::temp_dir().join(format!(
            "satmapit-faults-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&path).expect("create temp dir");
        TempDir(path)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn bound(key: u64, ii: u32) -> Vec<u8> {
    persist::encode_bound_record(Fingerprint(u128::from(key)), ii)
}

/// With no plan installed the fault plane must be a ghost: sites are not
/// even *counted* (the off path is a single relaxed atomic load that
/// bypasses all bookkeeping). Installing a plan afterwards proves it:
/// the very first call is hit 1, as if the earlier traffic never
/// happened.
#[test]
fn inactive_fault_plane_counts_nothing() {
    let guard = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
    faults::clear();
    let dir = TempDir::new("ghost");
    let path = dir.path().join(persist::BOUNDS_FILE);
    let mut appender = Appender::open(&path, StoreKind::Bounds).unwrap();
    appender.append(&bound(1, 2)).unwrap();
    appender.append(&bound(2, 3)).unwrap();
    appender.sync().unwrap();
    assert!(!faults::active());
    assert_eq!(faults::hits("append.bounds"), 0, "off = not even counted");
    assert_eq!(faults::injected(), 0);

    faults::install("error@append.bounds:1").unwrap();
    let err = appender.append(&bound(3, 4)).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::Other);
    assert_eq!(
        faults::hits("append.bounds"),
        1,
        "the first counted hit is the first call under the plan"
    );
    assert_eq!(faults::injected(), 1);
    faults::clear();
    drop(guard);
}

/// `DurabilityPolicy` is an I/O knob, not a solver knob: two configs
/// that differ only in durability must fingerprint identically, or a
/// daemon restarted with different fsync cadence would orphan its own
/// cache. (This is the test the exemption table entry for
/// `EngineConfig.durability` points at.)
#[test]
fn durability_policy_is_fingerprint_neutral() {
    let mut dfg = satmapit_dfg::Dfg::new("fpneutral");
    let a = dfg.add_const(1);
    let b = dfg.add_node(satmapit_dfg::Op::Neg);
    dfg.add_edge(a, b, 0);
    let cgra = satmapit_cgra::Cgra::square(2);

    let default_config = EngineConfig::default();
    let tuned = EngineConfig {
        durability: DurabilityPolicy {
            fsync_every: 64,
            sync_compaction: false,
            max_append_failures: 1,
        },
        ..EngineConfig::default()
    };
    assert_eq!(
        satmapit_engine::fingerprint::fingerprint(&dfg, &cgra, &default_config),
        satmapit_engine::fingerprint::fingerprint(&dfg, &cgra, &tuned),
    );
}

/// A short write must not leave torn bytes: the failure latch truncates
/// the file back to the last committed record, so the next append lands
/// cleanly and the loader never sees the tear.
#[test]
fn partial_write_is_rolled_back_to_a_clean_file() {
    let dir = TempDir::new("rollback");
    let path = dir.path().join(persist::BOUNDS_FILE);
    let mut appender = Appender::open(&path, StoreKind::Bounds).unwrap();
    appender.append(&bound(1, 2)).unwrap();
    let committed = fs::metadata(&path).unwrap().len();

    {
        let _plan = PlanGuard::install("partial-write=7@append.bounds:1");
        let err = appender.append(&bound(2, 3)).unwrap_err();
        assert!(err.to_string().contains("torn write"), "got: {err}");
    }
    assert_eq!(
        fs::metadata(&path).unwrap().len(),
        committed,
        "the 7 torn bytes were truncated away"
    );
    assert!(!appender.sealed());

    // The store is clean: the failed record can simply be re-appended.
    appender.append(&bound(2, 3)).unwrap();
    let (records, warnings) = persist::read_records(&path, StoreKind::Bounds).unwrap();
    assert_eq!(warnings, Vec::<String>::new());
    assert_eq!(records, vec![bound(1, 2), bound(2, 3)]);
}

/// `ENOSPC` surfaces as the real OS error, so callers can tell a full
/// disk from a bug.
#[test]
fn enospc_surfaces_as_the_os_error() {
    let dir = TempDir::new("enospc");
    let path = dir.path().join(persist::BOUNDS_FILE);
    let mut appender = Appender::open(&path, StoreKind::Bounds).unwrap();
    let _plan = PlanGuard::install("enospc-once@append.bounds");
    let err = appender.append(&bound(1, 2)).unwrap_err();
    assert_eq!(err.raw_os_error(), Some(28), "ENOSPC");
    // -once: the plan's budget is spent, the next append goes through.
    appender.append(&bound(1, 2)).unwrap();
}

/// An injected `EINTR` storm is absorbed by the retry loop inside the
/// write shim — the append succeeds and nothing is torn.
#[test]
fn eintr_storm_is_retried_to_completion() {
    let dir = TempDir::new("eintr");
    let path = dir.path().join(persist::BOUNDS_FILE);
    let mut appender = Appender::open(&path, StoreKind::Bounds).unwrap();
    let _plan = PlanGuard::install("eintr=5@append.bounds");
    appender.append(&bound(9, 4)).unwrap();
    assert!(faults::hits("append.bounds") >= 5, "the storm was consumed");
    let (records, warnings) = persist::read_records(&path, StoreKind::Bounds).unwrap();
    assert_eq!(warnings, Vec::<String>::new());
    assert_eq!(records, vec![bound(9, 4)]);
}

/// When the rollback truncation itself fails, the appender seals: no
/// further append may stack records behind unremovable torn bytes.
#[test]
fn failed_rollback_seals_the_appender() {
    let dir = TempDir::new("seal");
    let path = dir.path().join(persist::BOUNDS_FILE);
    let mut appender = Appender::open(&path, StoreKind::Bounds).unwrap();
    appender.append(&bound(1, 2)).unwrap();

    {
        let _plan = PlanGuard::install("partial-write=7@append.bounds:1;error@truncate.bounds:1");
        appender.append(&bound(2, 3)).unwrap_err();
    }
    assert!(appender.sealed());
    let refused = appender.append(&bound(3, 4)).unwrap_err();
    assert!(refused.to_string().contains("sealed"), "got: {refused}");

    // The torn bytes are still on disk (rollback failed), but the
    // checksum scan refuses to surface garbage: only the committed
    // record loads, with a warning about the tail.
    let (records, warnings) = persist::read_records(&path, StoreKind::Bounds).unwrap();
    assert_eq!(records, vec![bound(1, 2)]);
    assert_eq!(warnings.len(), 1, "{warnings:?}");
}

/// Satellite 1's bit-level fixture: header, valid record A, a torn frame
/// whose length prefix promises more bytes than landed, then valid
/// record B appended by a later (oblivious) process. The old loader
/// dropped everything from the tear on; the checksum-verified resync
/// must recover both A and B.
#[test]
fn torn_append_followed_by_valid_appends_recovers_both_sides() {
    let dir = TempDir::new("torn");
    let path = dir.path().join(persist::BOUNDS_FILE);
    let a = bound(0xA, 3);
    let b = bound(0xB, 7);

    // Lay the file out by hand from real frames: write A and B through
    // the appender, then splice a fabricated torn frame between them.
    let mut appender = Appender::open(&path, StoreKind::Bounds).unwrap();
    appender.append(&a).unwrap();
    appender.append(&b).unwrap();
    drop(appender);
    let bytes = fs::read(&path).unwrap();
    let frame_len = 12 + a.len();
    let (head, frame_b) = bytes.split_at(16 + frame_len);
    let mut spliced = head.to_vec();
    spliced.extend_from_slice(&100u32.to_le_bytes()); // promises 100 bytes…
    spliced.extend_from_slice(&0xDEAD_BEEF_u64.to_le_bytes());
    spliced.extend_from_slice(&[0x5A; 5]); // …but only 5 landed
    spliced.extend_from_slice(frame_b);
    fs::write(&path, &spliced).unwrap();

    let (records, warnings) = persist::read_records(&path, StoreKind::Bounds).unwrap();
    assert_eq!(records, vec![a, b], "both sides of the tear must survive");
    assert_eq!(warnings.len(), 1, "{warnings:?}");
    assert!(warnings[0].contains("torn append?"), "{warnings:?}");
    assert!(warnings[0].contains("resynced"), "{warnings:?}");
}

/// A compaction that dies before its fsync leaves the original store
/// untouched and a stale temp file behind; the sweep on the next load
/// removes it.
#[test]
fn interrupted_compaction_preserves_the_original_and_strands_a_tmp() {
    let dir = TempDir::new("compact");
    let path = dir.path().join(persist::BOUNDS_FILE);
    let original = vec![bound(1, 2), bound(2, 3)];
    persist::rewrite(&path, StoreKind::Bounds, &original, true).unwrap();

    {
        let _plan = PlanGuard::install("error-once@compact.sync");
        persist::rewrite(&path, StoreKind::Bounds, &[bound(9, 9)], true).unwrap_err();
    }

    let (records, warnings) = persist::read_records(&path, StoreKind::Bounds).unwrap();
    assert_eq!(records, original, "the original store is intact");
    assert_eq!(warnings, Vec::<String>::new());

    let tmp = path.with_extension("smc.tmp");
    assert!(tmp.exists(), "the interrupted compaction stranded its tmp");
    let swept = persist::clean_stale_tmp(dir.path()).unwrap();
    assert_eq!(swept.len(), 1, "{swept:?}");
    assert!(!tmp.exists());
}

/// End-to-end degraded mode at the engine level: persistent append
/// failures trip the latch after `max_append_failures` consecutive
/// misses, the engine keeps answering from memory, and the stats
/// surface the transition.
#[test]
fn persistent_append_failures_trip_degraded_memory_only_mode() {
    let dir = TempDir::new("degraded");
    let config = EngineConfig {
        durability: DurabilityPolicy {
            max_append_failures: 3,
            ..DurabilityPolicy::default()
        },
        ..EngineConfig::default()
    };
    let cgra = satmapit_cgra::Cgra::square(2);
    let chain = |n: usize| {
        let mut dfg = satmapit_dfg::Dfg::new(format!("chain{n}"));
        let mut prev = dfg.add_const(1);
        for _ in 1..n {
            let next = dfg.add_node(satmapit_dfg::Op::Neg);
            dfg.add_edge(prev, next, 0);
            prev = next;
        }
        dfg
    };

    // Every disk append fails: each solve loses its bound record *and*
    // its result record, so one solve costs two consecutive failures.
    let _plan = PlanGuard::install("error@append.results;error@append.bounds");
    let engine = Engine::with_cache_dir(config.clone(), dir.path()).unwrap();
    assert!(!engine.degraded());
    let (outcome, _) = engine.map(&chain(2), &cgra);
    assert!(outcome.ii().is_some(), "the solve itself is unaffected");
    assert!(!engine.degraded(), "two failures at threshold 3: not yet");
    let (outcome, _) = engine.map(&chain(3), &cgra);
    assert!(outcome.ii().is_some());
    assert!(engine.degraded(), "the third consecutive failure trips it");

    // Degraded: answers keep coming, from memory, and stats say so.
    let (outcome, cached) = engine.map(&chain(4), &cgra);
    assert!(outcome.ii().is_some());
    assert!(!cached);
    let (_, cached) = engine.map(&chain(4), &cgra);
    assert!(cached, "the in-memory cache still serves");
    let stats = engine.cache_stats();
    assert!(stats.degraded);
    assert_eq!(
        stats.append_errors, 3,
        "after the latch no further append is attempted or counted"
    );
    drop(engine); // shutdown compaction must also be skipped…

    // …so the on-disk store still carries only the (empty) header and a
    // restart comes back healthy with zero entries.
    drop(_plan);
    let engine = Engine::with_cache_dir(config, dir.path()).unwrap();
    assert!(!engine.degraded(), "degraded mode clears on restart");
    assert_eq!(engine.cache_stats().persistent_entries, 0);
    assert_eq!(engine.load_warnings(), Vec::<String>::new());
}

/// The fsync cadence policy actually batches syncs: with
/// `fsync_every = 3`, three appends cost one fsync, not three.
#[test]
fn fsync_cadence_batches_syncs() {
    let dir = TempDir::new("cadence");
    let config = EngineConfig {
        durability: DurabilityPolicy {
            fsync_every: 3,
            ..DurabilityPolicy::default()
        },
        ..EngineConfig::default()
    };
    let cgra = satmapit_cgra::Cgra::square(2);
    let engine = Engine::with_cache_dir(config, dir.path()).unwrap();
    for n in 2..5 {
        let mut dfg = satmapit_dfg::Dfg::new(format!("c{n}"));
        let mut prev = dfg.add_const(1);
        for _ in 1..n {
            let next = dfg.add_node(satmapit_dfg::Op::Neg);
            dfg.add_edge(prev, next, 0);
            prev = next;
        }
        let _ = engine.map(&dfg, &cgra);
    }
    let stats = engine.cache_stats();
    assert_eq!(stats.append_errors, 0);
    assert!(!stats.degraded);
    // Each solve appends one result record and one bound record; at
    // cadence 3 each store syncs exactly once instead of three times.
    assert_eq!(stats.fsyncs, 2, "one fsync per store, not one per append");
}
