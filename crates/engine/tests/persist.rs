//! The persistence layer end to end: warm restarts answer from disk,
//! proven bounds survive, and corrupt or truncated store files are
//! detected by the versioned header + checksums and skipped with a
//! warning instead of panicking or poisoning results.

use satmapit_cgra::Cgra;
use satmapit_dfg::{Dfg, Op};
use satmapit_engine::{Engine, EngineConfig};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A unique, self-cleaning cache directory per test.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let path = std::env::temp_dir().join(format!(
            "satmapit-persist-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&path).expect("create temp cache dir");
        TempDir(path)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }

    fn results_file(&self) -> PathBuf {
        self.0.join(satmapit_engine::persist::RESULTS_FILE)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn chain(n: usize) -> Dfg {
    let mut dfg = Dfg::new(format!("chain{n}"));
    let mut prev = dfg.add_const(1);
    for _ in 1..n {
        let next = dfg.add_node(Op::Neg);
        dfg.add_edge(prev, next, 0);
        prev = next;
    }
    dfg
}

/// One producer fanned out to 5 consumers on a 1x2 row: climbs through
/// several UNSAT rungs, so a proven II lower bound gets recorded.
fn fanout() -> (Dfg, Cgra) {
    let mut dfg = Dfg::new("fan5");
    let src = dfg.add_const(1);
    for _ in 0..5 {
        let n = dfg.add_node(Op::Neg);
        dfg.add_edge(src, n, 0);
    }
    (dfg, Cgra::new(1, 2))
}

#[test]
fn warm_restart_serves_results_from_disk_without_solving() {
    let dir = TempDir::new("warm");
    let dfg = chain(4);
    let cgra = Cgra::square(2);

    let first_debug = {
        let engine = Engine::with_cache_dir(EngineConfig::default(), dir.path()).unwrap();
        assert!(engine.load_warnings().is_empty());
        assert_eq!(engine.cache_stats().persistent_entries, 0);
        let (outcome, cached) = engine.map(&dfg, &cgra);
        assert!(!cached);
        format!("{outcome:?}")
        // engine drops here → shutdown compaction rewrites the stores
    };

    let engine = Engine::with_cache_dir(EngineConfig::default(), dir.path()).unwrap();
    assert!(
        engine.load_warnings().is_empty(),
        "{:?}",
        engine.load_warnings()
    );
    let stats = engine.cache_stats();
    assert_eq!(stats.persistent_entries, 1, "result record reloaded");
    assert_eq!(stats.entries, 1);

    let served = engine.map_with_deadline(&dfg, &cgra, None);
    assert!(served.cached, "warm restart must not re-solve");
    assert!(served.persistent, "the hit came from the on-disk store");
    assert_eq!(
        format!("{:?}", served.outcome),
        first_debug,
        "replayed outcome is byte-identical to the original solve"
    );
    let stats = engine.cache_stats();
    assert_eq!(stats.misses, 0, "no SAT work on the second run");
    assert_eq!(stats.persistent_hits, 1);
}

#[test]
fn proven_bounds_survive_restart_and_lift_the_ladder() {
    let dir = TempDir::new("bounds");
    let (dfg, cgra) = fanout();

    let best = {
        let engine = Engine::with_cache_dir(EngineConfig::default(), dir.path()).unwrap();
        let (outcome, _) = engine.map(&dfg, &cgra);
        let best = outcome.ii().expect("fanout maps");
        assert_eq!(engine.proven_bound(&dfg, &cgra), Some(best));
        best
    };

    let engine = Engine::with_cache_dir(EngineConfig::default(), dir.path()).unwrap();
    assert_eq!(
        engine.proven_bound(&dfg, &cgra),
        Some(best),
        "the bound is on record before any mapping"
    );
    // Drop the result cache but keep the bound: the re-solve must start
    // its ladder at the proven bound instead of grinding the low rungs.
    engine.clear_cache();
    let engine2 = {
        drop(engine);
        Engine::with_cache_dir(EngineConfig::default(), dir.path()).unwrap()
    };
    assert_eq!(
        engine2.cache_stats().persistent_entries,
        0,
        "results cleared"
    );
    assert_eq!(
        engine2.proven_bound(&dfg, &cgra),
        None,
        "bounds cleared too"
    );
}

#[test]
fn bounds_restart_skips_closed_rungs() {
    let dir = TempDir::new("bounds-skip");
    let (dfg, cgra) = fanout();

    let (best, cold_attempts) = {
        let engine = Engine::with_cache_dir(EngineConfig::default(), dir.path()).unwrap();
        let (outcome, _) = engine.map(&dfg, &cgra);
        (outcome.ii().unwrap(), outcome.outcome.attempts.len())
    };
    assert!(cold_attempts > 1, "fanout must climb through UNSAT rungs");

    // Restart, remove only the *result* store so the lookup misses but the
    // bound store still lifts the ladder.
    fs::remove_file(dir.results_file()).unwrap();
    let engine = Engine::with_cache_dir(EngineConfig::default(), dir.path()).unwrap();
    assert_eq!(engine.cache_stats().persistent_entries, 0);
    let (outcome, cached) = engine.map(&dfg, &cgra);
    assert!(!cached);
    assert_eq!(outcome.ii(), Some(best));
    assert_eq!(outcome.stats.race_start, best, "ladder starts at the bound");
    assert_eq!(outcome.outcome.attempts.len(), 1, "lower rungs skipped");
    assert_eq!(engine.cache_stats().bound_starts, 1);
}

#[test]
fn bit_flipped_record_is_skipped_with_warning() {
    let dir = TempDir::new("bitflip");
    let dfg = chain(4);
    let cgra = Cgra::square(2);
    {
        let engine = Engine::with_cache_dir(EngineConfig::default(), dir.path()).unwrap();
        let _ = engine.map(&dfg, &cgra);
    }

    // Flip one payload byte of the single record: header (16) + frame (12)
    // + a couple bytes in.
    let path = dir.results_file();
    let mut bytes = fs::read(&path).unwrap();
    assert!(bytes.len() > 40, "store holds a record");
    bytes[16 + 12 + 2] ^= 0x40;
    fs::write(&path, &bytes).unwrap();

    let engine = Engine::with_cache_dir(EngineConfig::default(), dir.path()).unwrap();
    assert_eq!(
        engine.load_warnings().len(),
        1,
        "{:?}",
        engine.load_warnings()
    );
    assert!(engine.load_warnings()[0].contains("checksum"));
    assert_eq!(engine.cache_stats().persistent_entries, 0, "record dropped");
    // The engine still works — it just solves afresh.
    let (outcome, cached) = engine.map(&dfg, &cgra);
    assert!(!cached);
    assert_eq!(outcome.ii(), Some(1));
}

#[test]
fn corrupt_record_does_not_take_down_its_neighbours() {
    let dir = TempDir::new("neighbour");
    let cgra = Cgra::square(2);
    {
        let engine = Engine::with_cache_dir(EngineConfig::default(), dir.path()).unwrap();
        let _ = engine.map(&chain(3), &cgra);
        let _ = engine.map(&chain(4), &cgra);
    }

    // Corrupt only the first record's payload; the second is still framed
    // by its own length prefix and must load.
    let path = dir.results_file();
    let mut bytes = fs::read(&path).unwrap();
    bytes[16 + 12 + 4] ^= 0xFF;
    fs::write(&path, &bytes).unwrap();

    let engine = Engine::with_cache_dir(EngineConfig::default(), dir.path()).unwrap();
    assert_eq!(engine.load_warnings().len(), 1);
    assert_eq!(engine.cache_stats().persistent_entries, 1, "survivor loads");
}

/// Satellite regression: a bit flip in a record's *length prefix* fails
/// the checksum like any corruption, but the old loader still advanced
/// the scan by the corrupt length — silently desynchronizing the frame
/// boundaries and mis-skipping every following valid record. The loader
/// now refuses to trust an unverified length: it scans forward for the
/// next frame whose checksum verifies and resynchronizes there, so the
/// flip costs exactly the flipped record and nothing after it.
#[test]
fn bit_flip_in_length_field_cannot_desync_the_scan() {
    use satmapit_engine::persist::{self, StoreKind};
    use satmapit_engine::Fingerprint;
    let dir = TempDir::new("len-flip");
    let path = dir.path().join(persist::BOUNDS_FILE);
    let p1 =
        persist::encode_bound_record(Fingerprint(0xAAAA_0000_1111_2222_3333_4444_5555_6666), 3);
    let p2 =
        persist::encode_bound_record(Fingerprint(0xBBBB_9999_8888_7777_6666_5555_4444_3333), 7);
    persist::rewrite(&path, StoreKind::Bounds, &[p1.clone(), p2.clone()], true).unwrap();

    // Record 1's length prefix lives right after the 16-byte file header;
    // flip one bit (20 → 28), which points the implied next-record
    // boundary into the middle of record 2's frame.
    let mut bytes = fs::read(&path).unwrap();
    bytes[16] ^= 0x08;
    fs::write(&path, &bytes).unwrap();

    let (records, warnings) = persist::read_records(&path, StoreKind::Bounds).unwrap();
    assert_eq!(
        records,
        vec![p2],
        "the scan must resynchronize on record 2's verified frame"
    );
    assert_eq!(warnings.len(), 1, "{warnings:?}");
    assert!(
        warnings[0].contains("resynced"),
        "the loader must report the recovery scan: {warnings:?}"
    );

    // Contrast: the same flip in the *payload* leaves the framing intact,
    // so only the flipped record is lost and its neighbour still loads
    // (pinned in detail by `corrupt_record_does_not_take_down_its_neighbours`).
    let (intact, _) = {
        let p1 = persist::encode_bound_record(Fingerprint(1), 3);
        let p2 = persist::encode_bound_record(Fingerprint(2), 7);
        persist::rewrite(&path, StoreKind::Bounds, &[p1, p2], true).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes[16 + 12 + 2] ^= 0x08; // payload byte of record 1
        fs::write(&path, &bytes).unwrap();
        persist::read_records(&path, StoreKind::Bounds).unwrap()
    };
    assert_eq!(intact.len(), 1, "a payload flip costs exactly one record");
}

#[test]
fn truncated_tail_is_dropped_without_panic() {
    let dir = TempDir::new("truncate");
    let cgra = Cgra::square(2);
    {
        let engine = Engine::with_cache_dir(EngineConfig::default(), dir.path()).unwrap();
        let _ = engine.map(&chain(4), &cgra);
    }
    let path = dir.results_file();
    let bytes = fs::read(&path).unwrap();
    // Cut the record in half — an interrupted append.
    fs::write(&path, &bytes[..16 + 12 + (bytes.len() - 28) / 2]).unwrap();

    let engine = Engine::with_cache_dir(EngineConfig::default(), dir.path()).unwrap();
    assert_eq!(engine.load_warnings().len(), 1);
    assert!(engine.load_warnings()[0].contains("dropping tail"));
    assert_eq!(engine.cache_stats().persistent_entries, 0);
}

#[test]
fn foreign_or_wrong_version_file_is_ignored_wholesale() {
    let dir = TempDir::new("magic");
    fs::write(dir.results_file(), b"definitely not a cache file").unwrap();
    let engine = Engine::with_cache_dir(EngineConfig::default(), dir.path()).unwrap();
    assert_eq!(engine.load_warnings().len(), 1);
    assert!(engine.load_warnings()[0].contains("bad magic"));
    assert_eq!(engine.cache_stats().persistent_entries, 0);

    // A future format version must be left alone, not misread.
    let dir2 = TempDir::new("version");
    let mut header = Vec::new();
    header.extend_from_slice(&satmapit_engine::persist::MAGIC);
    header.extend_from_slice(&99u32.to_le_bytes());
    header.push(1);
    header.extend_from_slice(&[0, 0, 0]);
    fs::write(dir2.results_file(), &header).unwrap();
    let engine = Engine::with_cache_dir(EngineConfig::default(), dir2.path()).unwrap();
    assert_eq!(engine.load_warnings().len(), 1);
    assert!(engine.load_warnings()[0].contains("version 99"));
}

#[test]
fn appends_after_a_bad_header_are_not_lost() {
    // Regression: a store whose header fails validation is ignored by the
    // loader — but the appender used to append *after* the bad header,
    // making every record written during the run unreadable too (silent
    // ongoing data loss if the process died before compaction). The
    // appender now truncates and re-headers the unusable file up front.
    let dir = TempDir::new("bad-header-append");
    fs::write(dir.results_file(), b"garbage, not a cache file").unwrap();
    {
        let engine = Engine::with_cache_dir(EngineConfig::default(), dir.path()).unwrap();
        assert_eq!(engine.cache_stats().persistent_entries, 0);
        let _ = engine.map(&chain(4), &Cgra::square(2));
        // Simulate a crash: skip the shutdown compaction entirely. The
        // appended record alone must be loadable.
        std::mem::forget(engine);
    }
    let engine = Engine::with_cache_dir(EngineConfig::default(), dir.path()).unwrap();
    assert!(
        engine.load_warnings().is_empty(),
        "{:?}",
        engine.load_warnings()
    );
    assert_eq!(
        engine.cache_stats().persistent_entries,
        1,
        "the record appended after the corrupt header must survive"
    );
}

#[test]
fn follower_with_expired_deadline_answers_without_the_leader() {
    use std::time::{Duration, Instant};
    // While a leader solves a problem, a same-key lookup whose own
    // deadline already passed must not inherit the leader's budget: it
    // answers on its own (a fast Timeout), or — if the leader happened to
    // finish first — takes the cache hit.
    let (dfg, cgra) = fanout();
    let engine = Engine::new(EngineConfig::default());
    std::thread::scope(|scope| {
        let leader = scope.spawn(|| engine.map(&dfg, &cgra));
        let expired = Instant::now() - Duration::from_millis(1);
        let served = engine.map_with_deadline(&dfg, &cgra, Some(expired));
        if !served.cached {
            assert!(
                matches!(
                    served.outcome.outcome.result,
                    Err(satmapit_core::MapFailure::Timeout { .. })
                ),
                "an expired-deadline follower reports its own timeout, got {:?}",
                served.outcome.outcome.result
            );
        }
        let (outcome, _) = leader.join().unwrap();
        assert!(outcome.ii().is_some(), "the leader is undisturbed");
    });
}

#[test]
fn compaction_deduplicates_superseded_records() {
    let dir = TempDir::new("compact");
    let (dfg, cgra) = fanout();
    {
        let engine = Engine::with_cache_dir(EngineConfig::default(), dir.path()).unwrap();
        let _ = engine.map(&dfg, &cgra);
        // Appends so far: one result record plus one bound record. Map a
        // second job to grow the append-only file…
        let _ = engine.map(&chain(3), &cgra);
        engine.compact_persistent().unwrap();
        let after_first = fs::metadata(dir.results_file()).unwrap().len();
        // …and verify appends after a compaction still reach the store
        // (the appender reopened the rewritten file).
        let _ = engine.map(&chain(4), &cgra);
        engine.compact_persistent().unwrap();
        assert!(fs::metadata(dir.results_file()).unwrap().len() > after_first);
    }
    let engine = Engine::with_cache_dir(EngineConfig::default(), dir.path()).unwrap();
    assert!(
        engine.load_warnings().is_empty(),
        "{:?}",
        engine.load_warnings()
    );
    assert_eq!(engine.cache_stats().persistent_entries, 3);
}

#[test]
fn plain_engine_has_no_persistence_side_effects() {
    let engine = Engine::new(EngineConfig::default());
    assert!(engine.cache_dir().is_none());
    assert!(engine.load_warnings().is_empty());
    let (outcome, _) = engine.map(&chain(3), &Cgra::square(2));
    assert_eq!(outcome.ii(), Some(1));
    assert_eq!(engine.cache_stats().persistent_entries, 0);
    engine.compact_persistent().unwrap(); // no-op, must not fail
}
