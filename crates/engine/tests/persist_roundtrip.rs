//! Property coverage for the persisted record codec: arbitrary engine
//! outcomes — successes with full mappings and register files, every
//! failure variant, attempt traces with every outcome kind — survive
//! encode→decode bit-exactly (compared through their complete `Debug`
//! rendering, which covers every field).

use proptest::prelude::*;
use satmapit_cgra::PeId;
use satmapit_core::encoder::EncodeStats;
use satmapit_core::{
    AttemptOutcome, IiAttempt, MapFailure, MapOutcome, MappedLoop, Mapping, Placement, TransferKind,
};
use satmapit_engine::persist::{
    decode_bound_record, decode_result_record, encode_bound_record, encode_result_record,
};
use satmapit_engine::{EngineOutcome, Fingerprint, RaceStats};
use satmapit_regalloc::{PeAllocFailure, RegAllocError, RegAllocation};
use satmapit_sat::{SolverStats, StopReason};
use std::time::Duration;

/// Deterministically expands a seed into an arbitrary outcome, exercising
/// every enum variant the codec handles. A seeded xorshift keeps the
/// generator simple under the offline proptest stand-in.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        // xorshift64*
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn u32(&mut self, bound: u32) -> u32 {
        (self.next() % u64::from(bound.max(1))) as u32
    }

    fn usize(&mut self, bound: usize) -> usize {
        (self.next() % bound.max(1) as u64) as usize
    }

    fn duration(&mut self) -> Duration {
        Duration::new(self.next() % 10_000, self.u32(1_000_000_000))
    }

    fn mapping(&mut self) -> Mapping {
        let nodes = 1 + self.usize(12);
        let edges = self.usize(16);
        Mapping {
            ii: 1 + self.u32(49),
            folds: 1 + self.u32(7),
            placements: (0..nodes)
                .map(|_| Placement {
                    pe: PeId(self.u32(25) as u16),
                    cycle: self.u32(50),
                    fold: self.u32(8),
                })
                .collect(),
            transfers: (0..edges)
                .map(|_| {
                    if self.next().is_multiple_of(2) {
                        TransferKind::SamePeRegister
                    } else {
                        TransferKind::NeighborOutput
                    }
                })
                .collect(),
        }
    }

    fn registers(&mut self) -> RegAllocation {
        let pes = self.usize(9);
        RegAllocation::from_per_pe(
            (0..pes)
                .map(|_| {
                    let n = self.usize(5);
                    (0..n).map(|_| (self.u32(64), self.u32(4) as u8)).collect()
                })
                .collect(),
        )
    }

    fn attempt_outcome(&mut self) -> AttemptOutcome {
        match self.next() % 6 {
            0 => AttemptOutcome::Mapped,
            1 => AttemptOutcome::Unsat,
            2 => AttemptOutcome::SolverBudget(match self.next() % 3 {
                0 => StopReason::ConflictLimit,
                1 => StopReason::Timeout,
                _ => StopReason::Cancelled,
            }),
            _ => AttemptOutcome::RegAllocFailed(RegAllocError {
                pe: self.usize(25),
                failure: match self.next() % 3 {
                    0 => PeAllocFailure::Infeasible,
                    1 => PeAllocFailure::BudgetExhausted,
                    _ => PeAllocFailure::IllegalSpan { id: self.u32(64) },
                },
            }),
        }
    }

    fn attempt(&mut self) -> IiAttempt {
        IiAttempt {
            ii: 1 + self.u32(49),
            encode_stats: EncodeStats {
                placement_vars: self.usize(100_000),
                total_vars: self.usize(100_000),
                clauses: self.usize(1_000_000),
                c1_clauses: self.usize(100_000),
                c2_clauses: self.usize(100_000),
                c3_compat_clauses: self.usize(100_000),
                c3_guard_clauses: self.usize(100_000),
                occupancy_vars: self.usize(100_000),
                pressure_vars: self.usize(100_000),
                pressure_clauses: self.usize(100_000),
            },
            outcome: self.attempt_outcome(),
            solver_stats: if self.next().is_multiple_of(4) {
                None
            } else {
                Some(SolverStats {
                    decisions: self.next(),
                    propagations: self.next(),
                    conflicts: self.next(),
                    restarts: self.next(),
                    learnt_clauses: self.next(),
                    removed_clauses: self.next(),
                    added_clauses: self.next(),
                    gc_runs: self.next(),
                    lits_reclaimed: self.next(),
                    arena_wasted: self.next(),
                    arena_words: self.next(),
                    shared_exported: self.next(),
                    shared_imported: self.next(),
                    shared_dropped: self.next(),
                })
            },
            ra_cuts: self.u32(200),
            elapsed: self.duration(),
        }
    }

    fn failure(&mut self) -> MapFailure {
        use satmapit_core::encoder::EncodeError;
        use satmapit_dfg::{DfgError, EdgeId, NodeId};
        match self.next() % 6 {
            0 => MapFailure::InvalidDfg(match self.next() % 7 {
                0 => DfgError::Empty,
                1 => DfgError::DanglingEdge(EdgeId(self.u32(64))),
                2 => DfgError::SourceHasNoOutput(EdgeId(self.u32(64))),
                3 => DfgError::OperandOutOfRange(EdgeId(self.u32(64))),
                4 => DfgError::MissingOperand {
                    node: NodeId(self.u32(64)),
                    slot: self.usize(3),
                },
                5 => DfgError::DuplicateOperand {
                    node: NodeId(self.u32(64)),
                    slot: self.usize(3),
                },
                _ => DfgError::ForwardCycle,
            }),
            1 => MapFailure::Structural(if self.next().is_multiple_of(2) {
                EncodeError::NoPeForOp {
                    node: NodeId(self.u32(64)),
                }
            } else {
                EncodeError::SelfEdgeDistance {
                    edge: EdgeId(self.u32(64)),
                }
            }),
            2 => MapFailure::Timeout {
                at_ii: 1 + self.u32(49),
            },
            3 => MapFailure::IiCapReached {
                cap: 1 + self.u32(49),
            },
            4 => MapFailure::InvalidIi {
                ii: self.u32(100),
                max_ii: self.u32(100),
            },
            _ => MapFailure::Internal(format!("synthetic #{:x} — ünïcode ✓", self.next())),
        }
    }

    fn outcome(&mut self) -> EngineOutcome {
        let result = if self.next().is_multiple_of(2) {
            Ok(MappedLoop {
                mapping: self.mapping(),
                registers: self.registers(),
                mii: 1 + self.u32(20),
            })
        } else {
            Err(self.failure())
        };
        let attempts = {
            let n = self.usize(6);
            (0..n).map(|_| self.attempt()).collect()
        };
        EngineOutcome {
            outcome: MapOutcome {
                result,
                attempts,
                elapsed: self.duration(),
            },
            stats: RaceStats {
                workers: 1 + self.usize(16),
                tasks_started: self.next() % 1000,
                tasks_cancelled: self.next() % 1000,
                race_start: self.u32(50),
                shared_exported: self.next() % 100_000,
                shared_imported: self.next() % 100_000,
                shared_dropped: self.next() % 1000,
                sat_wins: self.next() % 2,
                morph_wins: self.next() % 2,
                bound_exchanges: self.next() % 10,
            },
            proven_unmappable: self.next().is_multiple_of(8),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn result_records_round_trip(seed in any::<u64>()) {
        let mut generator = Gen(seed | 1);
        let key = Fingerprint((u128::from(generator.next()) << 64) | u128::from(generator.next()));
        let outcome = generator.outcome();
        let bytes = encode_result_record(key, &outcome);
        let (key2, outcome2) = decode_result_record(&bytes).expect("decodes");
        prop_assert_eq!(key, key2);
        prop_assert_eq!(format!("{outcome:?}"), format!("{outcome2:?}"));
        // Re-encoding the decoded value is byte-stable (canonical form).
        prop_assert_eq!(bytes, encode_result_record(key2, &outcome2));
    }

    #[test]
    fn bound_records_round_trip(hi in any::<u64>(), lo in any::<u64>(), bound in any::<u32>()) {
        let key = Fingerprint((u128::from(hi) << 64) | u128::from(lo));
        let bytes = encode_bound_record(key, bound);
        prop_assert_eq!(decode_bound_record(&bytes).expect("decodes"), (key, bound));
    }

    /// Mangled payloads never panic the decoder: every prefix and every
    /// single-byte corruption yields either an error or a decoded value —
    /// no slice-index or allocation blowups.
    #[test]
    fn decoder_is_total_on_corrupt_bytes(seed in any::<u64>(), flip in any::<usize>()) {
        let mut generator = Gen(seed | 1);
        let key = Fingerprint(u128::from(generator.next()));
        let outcome = generator.outcome();
        let bytes = encode_result_record(key, &outcome);
        let cut = flip % (bytes.len() + 1);
        let _ = decode_result_record(&bytes[..cut]);
        let mut mangled = bytes.clone();
        mangled[cut % bytes.len()] ^= 1 << (flip % 8);
        let _ = decode_result_record(&mangled);
    }
}
