//! The cache lifecycle end to end: the size bound holds under a
//! sustained cold-miss workload (LRU victims, counters booked), the age
//! bound expires stale entries, and incremental compaction keeps the
//! on-disk store one-record-per-entry without waiting for shutdown.

use satmapit_cgra::Cgra;
use satmapit_dfg::{Dfg, Op};
use satmapit_engine::{CacheLifecycle, Engine, EngineConfig};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// A unique, self-cleaning cache directory per test.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let path = std::env::temp_dir().join(format!(
            "satmapit-lifecycle-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&path).expect("create temp cache dir");
        TempDir(path)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn chain(n: usize) -> Dfg {
    let mut dfg = Dfg::new(format!("chain{n}"));
    let mut prev = dfg.add_const(1);
    for _ in 1..n {
        let next = dfg.add_node(Op::Neg);
        dfg.add_edge(prev, next, 0);
        prev = next;
    }
    dfg
}

fn bounded(max_entries: usize) -> EngineConfig {
    EngineConfig {
        lifecycle: CacheLifecycle {
            max_entries,
            ..CacheLifecycle::default()
        },
        ..EngineConfig::default()
    }
}

#[test]
fn the_size_bound_holds_under_a_sustained_cold_miss_workload() {
    let cgra = Cgra::square(2);
    let engine = Engine::new(bounded(4));
    for n in 2..14 {
        let (_, cached) = engine.map(&chain(n), &cgra);
        assert!(!cached, "chain{n} is a distinct problem");
        let stats = engine.cache_stats();
        assert!(
            stats.entries <= 4,
            "cache exceeded its bound after chain{n}: {} entries",
            stats.entries
        );
    }
    let stats = engine.cache_stats();
    assert_eq!(stats.entries, 4, "cache sits exactly at its bound");
    assert_eq!(stats.misses, 12);
    assert_eq!(
        stats.evicted_size, 8,
        "12 inserts into a 4-slot cache evict 8"
    );
    assert_eq!(stats.evicted_age, 0, "no age bound configured");
}

#[test]
fn eviction_is_least_recently_used_and_a_touch_refreshes() {
    let cgra = Cgra::square(2);
    let engine = Engine::new(bounded(2));
    let old = chain(2);
    let newer = chain(3);
    engine.map(&old, &cgra);
    engine.map(&newer, &cgra);
    // Touch `old` so `newer` becomes the LRU victim of the next insert.
    let (_, cached) = engine.map(&old, &cgra);
    assert!(cached);
    engine.map(&chain(4), &cgra);
    let (_, cached) = engine.map(&old, &cgra);
    assert!(cached, "the recently touched entry survived eviction");
    let (_, cached) = engine.map(&newer, &cgra);
    assert!(!cached, "the least recently used entry was the victim");
}

#[test]
fn the_age_bound_expires_stale_entries() {
    let cgra = Cgra::square(2);
    let config = EngineConfig {
        lifecycle: CacheLifecycle {
            max_age: Some(Duration::from_millis(30)),
            ..CacheLifecycle::default()
        },
        ..EngineConfig::default()
    };
    let engine = Engine::new(config);
    engine.map(&chain(2), &cgra);
    std::thread::sleep(Duration::from_millis(40));
    // The sweep runs on insert: this solve evicts the stale entry.
    engine.map(&chain(3), &cgra);
    let stats = engine.cache_stats();
    assert!(
        stats.evicted_age >= 1,
        "the over-age entry was swept: {stats:?}"
    );
    let (_, cached) = engine.map(&chain(2), &cgra);
    assert!(!cached, "an expired entry re-solves");
}

#[test]
fn incremental_compaction_runs_between_appends_not_just_at_shutdown() {
    let dir = TempDir::new("incremental");
    let cgra = Cgra::square(2);
    let config = EngineConfig {
        lifecycle: CacheLifecycle {
            compact_every: 2,
            ..CacheLifecycle::default()
        },
        ..EngineConfig::default()
    };
    let engine = Engine::with_cache_dir(config, dir.path()).unwrap();
    for n in 2..6 {
        engine.map(&chain(n), &cgra);
    }
    let stats = engine.cache_stats();
    assert!(
        stats.compactions >= 2,
        "4 appends at compact_every=2 start at least 2 generations: {stats:?}"
    );
    // The compacted store replays cleanly while the engine is still
    // running — no shutdown needed.
    let replay = Engine::with_cache_dir(EngineConfig::default(), dir.path()).unwrap();
    assert!(
        replay.load_warnings().is_empty(),
        "{:?}",
        replay.load_warnings()
    );
    assert!(replay.cache_stats().persistent_entries >= 2);
}

#[test]
fn an_evicted_persistent_entry_stops_counting_as_loaded() {
    let dir = TempDir::new("evict-loaded");
    let cgra = Cgra::square(2);
    {
        let engine = Engine::with_cache_dir(EngineConfig::default(), dir.path()).unwrap();
        engine.map(&chain(2), &cgra);
        engine.map(&chain(3), &cgra);
    }
    let engine = Engine::with_cache_dir(
        EngineConfig {
            lifecycle: CacheLifecycle {
                max_entries: 1,
                ..CacheLifecycle::default()
            },
            ..EngineConfig::default()
        },
        dir.path(),
    )
    .unwrap();
    assert_eq!(engine.cache_stats().persistent_entries, 2);
    // A fresh solve overflows the 1-slot cache and evicts both loaded
    // entries (they share tick 0; two evictions restore the bound).
    engine.map(&chain(4), &cgra);
    let stats = engine.cache_stats();
    assert_eq!(stats.entries, 1);
    assert_eq!(stats.evicted_size, 2);
    assert_eq!(
        stats.persistent_entries, 0,
        "evicted keys no longer report as loaded-from-disk"
    );
    // Re-solving an evicted key is fresh work, not a persistent hit.
    let served = engine.map_with_deadline(&chain(2), &cgra, None);
    assert!(!served.cached);
    assert!(!served.persistent);
}
