//! Crash-recovery torture: kill a real engine process at injected
//! points mid-append and mid-compaction, restart, and prove the
//! persistence contract — every record the engine acknowledged (both
//! the append and its fsync returned) survives the crash, the loader
//! never desyncs on whatever the crash left behind, and re-solved
//! answers agree with the pre-crash ones.
//!
//! The child is this same test binary re-invoked on the `#[ignore]`d
//! `crash_child` test with a fault plan in `SATMAPIT_FAULTS`; the
//! `abort` / `abort-write` actions kill it from inside the injected
//! I/O path, which is as close to a power cut as a test can get
//! without a lab bench.

use satmapit_cgra::Cgra;
use satmapit_dfg::{Dfg, Op};
use satmapit_engine::{CacheLifecycle, DurabilityPolicy, Engine, EngineConfig};
use std::fs;
use std::path::PathBuf;
use std::process::Command;
use std::sync::atomic::{AtomicUsize, Ordering};

const DIR_VAR: &str = "SATMAPIT_CRASH_DIR";

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let path = std::env::temp_dir().join(format!(
            "satmapit-crash-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&path).expect("create temp dir");
        TempDir(path)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// The fixed workload both sides replay: distinct, fast solves, with a
/// couple of ladder-climbing shapes so bound records get appended too.
fn jobs() -> Vec<(String, Dfg, Cgra)> {
    let mut jobs = Vec::new();
    // A producer fanned out to 5 consumers on a 1x2 row: climbs UNSAT
    // rungs, appending proven-bound records along the way.
    let mut fan = Dfg::new("fan5");
    let src = fan.add_const(1);
    for _ in 0..5 {
        let n = fan.add_node(Op::Neg);
        fan.add_edge(src, n, 0);
    }
    jobs.push(("fan5".to_string(), fan, Cgra::new(1, 2)));
    for n in 2..=7 {
        let mut dfg = Dfg::new(format!("chain{n}"));
        let mut prev = dfg.add_const(1);
        for _ in 1..n {
            let next = dfg.add_node(Op::Neg);
            dfg.add_edge(prev, next, 0);
            prev = next;
        }
        jobs.push((format!("chain{n}"), dfg, Cgra::square(2)));
    }
    jobs
}

fn torture_config() -> EngineConfig {
    EngineConfig {
        lifecycle: CacheLifecycle {
            // Compact aggressively so crashes land mid-compaction too.
            compact_every: 3,
            ..CacheLifecycle::default()
        },
        durability: DurabilityPolicy {
            fsync_every: 1, // every acknowledged append is fsynced
            ..DurabilityPolicy::default()
        },
        ..EngineConfig::default()
    }
}

/// The sacrificial process: replays the workload against the cache dir
/// from `SATMAPIT_CRASH_DIR` with the fault plan from `SATMAPIT_FAULTS`
/// armed, printing `RES <name> <ii>` for every completed solve and
/// `ACK <name> <ii>` for every solve whose records all reached the
/// fsynced store. An `abort` in the plan kills it mid-I/O.
#[test]
#[ignore = "helper: run by the torture parent in a subprocess"]
fn crash_child() {
    let Ok(dir) = std::env::var(DIR_VAR) else {
        return; // invoked outside the torture harness: nothing to do
    };
    satmapit_faults::init_from_env().expect("valid fault plan");
    let engine = Engine::with_cache_dir(torture_config(), dir.as_ref()).expect("open cache dir");
    for (name, dfg, cgra) in jobs() {
        let errors_before = engine.cache_stats().append_errors;
        let (outcome, cached) = engine.map(&dfg, &cgra);
        let ii = outcome.ii().expect("torture jobs all map");
        println!("RES {name} {ii}");
        let durable = engine.cache_stats().append_errors == errors_before;
        if !cached && durable {
            println!("ACK {name} {ii}");
        }
    }
}

/// One torture round: run the child under `plan`, then reopen the store
/// in this process and hold it to the contract.
fn torture(tag: &str, plan: &str) {
    let dir = TempDir::new(tag);
    let exe = std::env::current_exe().expect("own path");
    let output = Command::new(&exe)
        .args(["crash_child", "--exact", "--ignored", "--nocapture"])
        .env("SATMAPIT_FAULTS", plan)
        .env(DIR_VAR, dir.path())
        .output()
        .expect("spawn crash child");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let mut acked = Vec::new();
    let mut resolved = Vec::new();
    for line in stdout.lines() {
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("ACK") => acked.push((
                parts.next().expect("name").to_string(),
                parts.next().expect("ii").parse::<u32>().expect("ii"),
            )),
            Some("RES") => resolved.push((
                parts.next().expect("name").to_string(),
                parts.next().expect("ii").parse::<u32>().expect("ii"),
            )),
            _ => {}
        }
    }

    // Recovery: reopen the store this process (no fault plan here).
    let engine = Engine::with_cache_dir(torture_config(), dir.path())
        .unwrap_or_else(|e| panic!("[{tag}] {plan}: store must reopen after the crash: {e}"));
    for warning in engine.load_warnings() {
        // A crash may legitimately tear the tail; the loader must say
        // so, never silently misread.
        assert!(
            warning.contains("dropping tail")
                || warning.contains("resynced")
                || warning.contains("skipped")
                || warning.contains("stale temp file"),
            "[{tag}] {plan}: unexpected load warning: {warning}"
        );
    }
    // Whatever the crash stranded, the sweep on reopen removed it.
    for entry in fs::read_dir(dir.path()).unwrap() {
        let name = entry.unwrap().file_name();
        assert!(
            !name.to_string_lossy().ends_with(".smc.tmp"),
            "[{tag}] {plan}: stale temp file survived the reopen sweep"
        );
    }

    // Every fsync-acknowledged result answers from disk, II intact.
    for (name, ii) in &acked {
        let (_, dfg, cgra) = jobs()
            .into_iter()
            .find(|(n, _, _)| n == name)
            .expect("ACKed job is in the workload");
        let served = engine.map_with_deadline(&dfg, &cgra, None);
        assert!(
            served.cached && served.persistent,
            "[{tag}] {plan}: acknowledged record for `{name}` lost in the crash"
        );
        assert_eq!(
            served.outcome.ii(),
            Some(*ii),
            "[{tag}] {plan}: `{name}` replayed with a different II"
        );
    }
    // And every job the child solved at all re-solves to the same II —
    // crash debris must never steer the search.
    for (name, ii) in &resolved {
        let (_, dfg, cgra) = jobs()
            .into_iter()
            .find(|(n, _, _)| n == name)
            .expect("job is in the workload");
        let (outcome, _) = engine.map(&dfg, &cgra);
        assert_eq!(
            outcome.ii(),
            Some(*ii),
            "[{tag}] {plan}: `{name}` re-solved to a different II after the crash"
        );
    }
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state | 1;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// The torture matrix: seeded crash points across every append and
/// compaction site. Each seed varies the hit index (which append dies)
/// and, for torn writes, how many bytes land before the power goes out.
#[test]
fn seeded_crash_torture() {
    let mut rng: u64 = 0x7041_7041;
    for seed in 0..3u64 {
        let hit = 1 + xorshift(&mut rng) % 6;
        let torn = 1 + xorshift(&mut rng) % 24;
        torture(
            &format!("torn-append-{seed}"),
            &format!("abort-write={torn}@append.results:{hit}"),
        );
    }
    let hit = 1 + xorshift(&mut rng) % 3;
    torture("bound-abort", &format!("abort@append.bounds:{hit}"));
    let hit = 1 + xorshift(&mut rng) % 8;
    torture(
        "compact-torn",
        &format!("abort-write=9@compact.write:{hit}"),
    );
    torture("compact-sync", "abort@compact.sync:1");
    torture("compact-rename", "abort@compact.rename:1");
    torture("compact-dirsync", "abort@compact.dirsync:1");
    let hit = 1 + xorshift(&mut rng) % 4;
    torture("sync-abort", &format!("abort@sync.results:{hit}"));
}
